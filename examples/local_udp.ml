(* A real UDP overlay on the loopback interface — no simulation.

   Run with:  dune exec examples/local_udp.exe

   Twelve Basalt nodes bind real sockets, exchange real datagrams encoded
   with the wire codec, and converge to a well-mixed overlay within a
   couple of wall-clock seconds.  Every node only knows its two ring
   neighbors at startup; the chaotic search discovers the rest. *)

module Endpoint = Basalt_net.Endpoint
module Event_loop = Basalt_net.Event_loop
module Udp_node = Basalt_net.Udp_node

let n = 12
let tau = 0.05 (* 20 exchange rounds per second: a fast demo *)

let () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let config =
    Basalt_core.Config.make ~v:10 ~k:2 ~tau ~rho:(1.0 /. tau) ()
  in
  (* Bind everything on OS-assigned ports first to learn the endpoints. *)
  let probes =
    Array.init n (fun i ->
        Udp_node.create ~config ~loop
          ~listen:(Endpoint.make "127.0.0.1" 0)
          ~bootstrap:[] ~seed:(500 + i) ())
  in
  let endpoints = Array.map Udp_node.endpoint probes in
  Array.iter Udp_node.close probes;
  (* Restart each node knowing only its ring neighbors. *)
  let nodes =
    Array.init n (fun i ->
        Udp_node.create ~config ~loop ~listen:endpoints.(i)
          ~bootstrap:
            [ endpoints.((i + 1) mod n); endpoints.((i + n - 1) mod n) ]
          ~seed:(900 + i) ())
  in
  Printf.printf "started %d UDP nodes on loopback (tau = %gs)\n%!" n tau;

  let describe label =
    Printf.printf "%s\n" label;
    Array.iteri
      (fun i node ->
        let distinct =
          List.sort_uniq compare
            (List.map Endpoint.to_string (Udp_node.view node))
        in
        let stats = Udp_node.stats node in
        Printf.printf
          "  node %2d (%s): %2d distinct peers in view, %4d in / %4d out\n" i
          (Endpoint.to_string (Udp_node.endpoint node))
          (List.length distinct) stats.Udp_node.datagrams_in
          stats.Udp_node.datagrams_out)
      nodes;
    flush stdout
  in

  Event_loop.run_for loop 0.3;
  describe "after 0.3 s (about 6 rounds):";
  Event_loop.run_for loop 1.7;
  describe "after 2.0 s (about 40 rounds):";

  (* The sampling service: fresh, approximately uniform peers. *)
  let stream = Udp_node.samples nodes.(0) in
  Printf.printf "node 0 drew %d samples; last 8: %s\n"
    (Basalt_core.Sample_stream.total stream)
    (String.concat ", "
       (List.map
          (fun id -> Endpoint.to_string (Endpoint.of_node_id id))
          (Basalt_core.Sample_stream.recent stream 8)));
  let distinct_sampled =
    let seen = Hashtbl.create 16 in
    Basalt_core.Sample_stream.iter
      (fun id -> Hashtbl.replace seen (Basalt_proto.Node_id.to_int id) ())
      stream;
    Hashtbl.length seen
  in
  Printf.printf "distinct peers among node 0's retained samples: %d of %d\n"
    distinct_sampled (n - 1);
  Array.iter Udp_node.close nodes
