bin/repro.mli:
