bin/basalt_node.mli:
