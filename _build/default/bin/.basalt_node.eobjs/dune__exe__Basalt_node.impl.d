bin/basalt_node.ml: Arg Basalt_core Basalt_net Cmd Cmdliner List Printf Result String Term Unix
