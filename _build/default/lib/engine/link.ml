module Latency = struct
  type t = Zero | Constant of float | Uniform of { lo : float; hi : float }

  let sample t rng =
    match t with
    | Zero -> 0.0
    | Constant d -> d
    | Uniform { lo; hi } -> lo +. Basalt_prng.Rng.float rng (hi -. lo)

  let pp ppf = function
    | Zero -> Format.fprintf ppf "zero"
    | Constant d -> Format.fprintf ppf "constant(%g)" d
    | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g,%g)" lo hi
end

module Loss = struct
  type t = None | Bernoulli of float

  let drops t rng =
    match t with
    | None -> false
    | Bernoulli p -> Basalt_prng.Rng.bernoulli rng ~p

  let pp ppf = function
    | None -> Format.fprintf ppf "none"
    | Bernoulli p -> Format.fprintf ppf "bernoulli(%g)" p
end
