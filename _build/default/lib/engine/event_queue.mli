(** Priority queue of timestamped events.

    A binary min-heap ordered by [(time, sequence)]: events scheduled for
    the same instant are delivered in insertion order, which keeps
    simulation runs fully deterministic. *)

type 'a t
(** A queue of events carrying values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val push : 'a t -> time:float -> 'a -> unit
(** [push q ~time v] schedules [v] at [time]. *)

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the earliest event, or [None] if empty. *)

val peek_time : 'a t -> float option
(** [peek_time q] is the timestamp of the earliest event without removing
    it. *)

val size : 'a t -> int
(** [size q] is the number of pending events. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [size q = 0]. *)
