lib/engine/link.ml: Basalt_prng Format
