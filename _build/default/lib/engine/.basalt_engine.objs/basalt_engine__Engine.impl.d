lib/engine/engine.ml: Array Basalt_prng Event_queue Link Option
