lib/engine/engine.mli: Basalt_prng Link
