lib/engine/link.mli: Basalt_prng Format
