type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] slots at indices >= [len] are stale; a dummy entry fills slot 0
     of a fresh queue until the first push. *)
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q entry =
  let capacity = Array.length q.heap in
  if q.len = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit q.heap 0 heap 0 q.len;
    q.heap <- heap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < q.len && before q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.len && before q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q ~time value =
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.len) <- entry;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.heap.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.heap.(0) <- q.heap.(q.len);
      sift_down q 0
    end;
    Some (top.time, top.value)
  end

let peek_time q = if q.len = 0 then None else Some q.heap.(0).time
let size q = q.len
let is_empty q = q.len = 0
