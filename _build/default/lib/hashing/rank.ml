type backend =
  | Cheap
  | Siphash of Siphash.key
  | Prefix_diverse of { prefix_of : int -> int }

type seed = { backend : backend; value : int }

let fresh backend rng = { backend; value = Basalt_prng.Rng.bits rng }
let of_int backend value = { backend; value }
let seed_value s = s.value

(* Lexicographic (prefix-rank, id-rank) pair packed into one non-negative
   native integer: 30 bits of prefix rank above 32 bits of id rank. *)
let composite ~prefix_rank ~id_rank =
  ((prefix_rank land 0x3FFFFFFF) lsl 32) lor (id_rank land 0xFFFFFFFF)

let rank s id =
  match s.backend with
  | Cheap -> Mix.combine63 s.value id
  | Siphash key ->
      Int64.to_int
        (Siphash.hash_int64_pair key (Int64.of_int s.value) (Int64.of_int id))
      land max_int
  | Prefix_diverse { prefix_of } ->
      composite
        ~prefix_rank:(Mix.combine63 s.value (prefix_of id))
        ~id_rank:(Mix.combine63 s.value id)

(* [mixed] caches the identifier-side half of the cheap mixer;
   [raw] keeps the identifier for backends that hash it whole. *)
type prepared = { raw : int; mixed : int }

let prepare _backend id = { raw = id; mixed = Mix.mix63 id }

let rank_prepared s p =
  match s.backend with
  | Cheap -> Mix.mix63 (s.value lxor p.mixed)
  | Siphash key ->
      Int64.to_int
        (Siphash.hash_int64_pair key (Int64.of_int s.value)
           (Int64.of_int p.raw))
      land max_int
  | Prefix_diverse { prefix_of } ->
      composite
        ~prefix_rank:(Mix.combine63 s.value (prefix_of p.raw))
        ~id_rank:(Mix.mix63 (s.value lxor p.mixed))

let pp ppf s = Format.fprintf ppf "seed:%#x" s.value
