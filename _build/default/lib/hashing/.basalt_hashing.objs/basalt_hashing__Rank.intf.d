lib/hashing/rank.mli: Basalt_prng Format Siphash
