lib/hashing/rank.ml: Basalt_prng Format Int64 Mix Siphash
