lib/hashing/siphash.mli: Basalt_prng
