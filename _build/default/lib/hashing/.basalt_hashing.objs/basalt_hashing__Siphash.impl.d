lib/hashing/siphash.ml: Basalt_prng Bytes Char Int64
