lib/hashing/mix.ml: Char Int64 String
