lib/hashing/mix.mli:
