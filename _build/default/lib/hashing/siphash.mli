(** SipHash-c-d keyed hash function (Aumasson & Bernstein, 2012).

    Implemented from scratch on [int64].  SipHash is a pseudo-random
    function: under a secret key, outputs on attacker-chosen inputs are
    indistinguishable from random, which is exactly the property the
    Basalt rank function needs (a Byzantine node must not be able to craft
    identifiers that rank low under a correct node's fresh seeds).

    The default instance is SipHash-2-4; a faster SipHash-1-3 instance is
    also exposed.  Both match the reference implementation (the 2-4 test
    vectors from the paper's appendix are checked in the unit tests). *)

type key = { k0 : int64; k1 : int64 }
(** A 128-bit secret key. *)

val key_of_rng : Basalt_prng.Rng.t -> key
(** [key_of_rng rng] draws a fresh random key. *)

val key_of_ints : int64 -> int64 -> key
(** [key_of_ints k0 k1] builds a key from two explicit words. *)

val hash_bytes : ?c:int -> ?d:int -> key -> bytes -> int64
(** [hash_bytes ~c ~d key msg] is SipHash-c-d of [msg] under [key]
    (default [c = 2], [d = 4]). *)

val hash_string : ?c:int -> ?d:int -> key -> string -> int64
(** [hash_string] is {!hash_bytes} on the bytes of a string. *)

val hash_int64 : ?c:int -> ?d:int -> key -> int64 -> int64
(** [hash_int64 ~c ~d key x] hashes the 8-byte little-endian encoding of
    [x]; a fast path that allocates nothing. *)

val hash_int : ?c:int -> ?d:int -> key -> int -> int64
(** [hash_int key x] is [hash_int64 key (Int64.of_int x)]. *)

val hash_int64_pair : ?c:int -> ?d:int -> key -> int64 -> int64 -> int64
(** [hash_int64_pair key a b] hashes the 16-byte little-endian encoding of
    [(a, b)]; the allocation-free primitive behind seeded rank functions. *)
