(** Decayed frequency statistics over observed node identifiers.

    SPS (Jesi, Montresor & van Steen, 2010) detects {e hub attacks} by
    gathering statistics on the identifiers a node encounters in gossip
    exchanges: an identifier whose observed frequency (a proxy for its
    indegree) is extreme compared to the population is suspected of being
    malicious.  This module implements the bookkeeping: exponentially
    decayed occurrence counters and an outlier test. *)

type t
(** A mutable frequency table. *)

val create : ?decay:float -> unit -> t
(** [create ~decay ()] uses multiplicative decay factor [decay]
    (default [0.9]) applied by each {!tick}.
    @raise Invalid_argument unless [0 < decay <= 1]. *)

val record : t -> Basalt_proto.Node_id.t -> unit
(** [record t id] counts one occurrence of [id]. *)

val tick : t -> unit
(** [tick t] applies one decay step, prunes negligible entries, and
    refreshes the mean/std snapshot used by {!is_outlier} (which is
    otherwise kept stale for speed: one refresh per round, not per
    observation). *)

val count : t -> Basalt_proto.Node_id.t -> float
(** [count t id] is the current decayed occurrence count of [id]. *)

val observed : t -> int
(** [observed t] is the number of identifiers currently tracked. *)

val mean : t -> float
(** [mean t] is the mean decayed count over tracked identifiers. *)

val std : t -> float
(** [std t] is the standard deviation of decayed counts. *)

val is_outlier : t -> z:float -> Basalt_proto.Node_id.t -> bool
(** [is_outlier t ~z id] is [true] when [count id > mean + z * std] and
    enough identifiers have been observed for the statistics to be
    meaningful (at least 10 tracked identifiers — the warm-up period the
    Basalt paper identifies as SPS's weakness). *)
