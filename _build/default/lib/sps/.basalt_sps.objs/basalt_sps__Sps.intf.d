lib/sps/sps.mli: Basalt_prng Basalt_proto
