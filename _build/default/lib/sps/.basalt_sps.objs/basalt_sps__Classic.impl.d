lib/sps/classic.ml: Array Basalt_prng Basalt_proto List
