lib/sps/sps.ml: Array Basalt_proto Classic Hashtbl Indegree_stats
