lib/sps/indegree_stats.ml: Basalt_proto Float Hashtbl List Option
