lib/sps/indegree_stats.mli: Basalt_proto
