lib/sps/classic.mli: Basalt_prng Basalt_proto
