let weakly_connected ?(restrict = fun _ -> true) g =
  let n = Digraph.n g in
  let rev = Digraph.transpose g in
  let labels = Array.make n (-1) in
  let next_label = ref 0 in
  let queue = Queue.create () in
  for start = 0 to n - 1 do
    if restrict start && labels.(start) < 0 then begin
      let label = !next_label in
      incr next_label;
      labels.(start) <- label;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let visit v =
          if restrict v && labels.(v) < 0 then begin
            labels.(v) <- label;
            Queue.add v queue
          end
        in
        Array.iter visit (Digraph.out_neighbors g u);
        Array.iter visit (Digraph.out_neighbors rev u)
      done
    end
  done;
  labels

let count_components labels =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun l -> if l >= 0 && not (Hashtbl.mem seen l) then Hashtbl.add seen l ())
    labels;
  Hashtbl.length seen

let largest_component_fraction ?restrict g =
  let labels = weakly_connected ?restrict g in
  let sizes = Hashtbl.create 16 in
  let included = ref 0 in
  Array.iter
    (fun l ->
      if l >= 0 then begin
        incr included;
        Hashtbl.replace sizes l
          (1 + Option.value (Hashtbl.find_opt sizes l) ~default:0)
      end)
    labels;
  if !included = 0 then 0.0
  else begin
    let largest = Hashtbl.fold (fun _ size acc -> max size acc) sizes 0 in
    float_of_int largest /. float_of_int !included
  end

(* Iterative Tarjan SCC. *)
let strongly_connected g =
  let n = Digraph.n g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_scc = ref 0 in
  (* Explicit DFS stack: (vertex, next-child position). *)
  let dfs root =
    let call_stack = ref [ (root, 0) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !call_stack <> [] do
      match !call_stack with
      | [] -> ()
      | (u, child_pos) :: rest ->
          let neighbors = Digraph.out_neighbors g u in
          if child_pos < Array.length neighbors then begin
            call_stack := (u, child_pos + 1) :: rest;
            let v = neighbors.(child_pos) in
            if index.(v) < 0 then begin
              index.(v) <- !next_index;
              lowlink.(v) <- !next_index;
              incr next_index;
              stack := v :: !stack;
              on_stack.(v) <- true;
              call_stack := (v, 0) :: !call_stack
            end
            else if on_stack.(v) then
              lowlink.(u) <- min lowlink.(u) index.(v)
          end
          else begin
            call_stack := rest;
            (match rest with
            | (parent, _) :: _ ->
                lowlink.(parent) <- min lowlink.(parent) lowlink.(u)
            | [] -> ());
            if lowlink.(u) = index.(u) then begin
              let label = !next_scc in
              incr next_scc;
              let rec pop () =
                match !stack with
                | [] -> ()
                | v :: tail ->
                    stack := tail;
                    on_stack.(v) <- false;
                    scc.(v) <- label;
                    if v <> u then pop ()
              in
              pop ()
            end
          end
    done
  in
  for u = 0 to n - 1 do
    if index.(u) < 0 then dfs u
  done;
  scc
