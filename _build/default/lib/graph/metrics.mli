(** Graph quality metrics of the paper's Figure 4.

    All metrics follow the paper's measurement conventions (§4.5):
    - the {e clustering coefficient} averages the local clustering
      coefficient of correct nodes in an undirected version of the graph
      where malicious nodes are assumed all connected to one another;
    - the {e mean path length} is measured in a graph where malicious
      nodes have no connections in either direction (they do not
      cooperate in forwarding);
    - the {e in-degree spread} is the difference between the last and
      first decile of correct nodes' in-degrees (counting edges from
      correct nodes only).

    Expensive metrics accept sampling knobs so that large snapshots
    remain affordable; with the default [Rng] sampling the estimators are
    unbiased. *)

val clustering_coefficient :
  ?sample:int ->
  rng:Basalt_prng.Rng.t ->
  is_malicious:(int -> bool) ->
  Digraph.t ->
  float
(** [clustering_coefficient ~rng ~is_malicious g] averages the local
    clustering coefficient over (a sample of, default 400) correct
    vertices.  Nodes of undirected degree [< 2] contribute 0. *)

val mean_path_length :
  ?sources:int ->
  rng:Basalt_prng.Rng.t ->
  is_malicious:(int -> bool) ->
  Digraph.t ->
  float
(** [mean_path_length ~rng ~is_malicious g] runs BFS from (a sample of,
    default 64) correct sources over the correct-only directed subgraph
    and averages the distance to every reached correct vertex.  Returns
    [nan] when nothing is reachable. *)

val indegree_decile_spread : is_malicious:(int -> bool) -> Digraph.t -> float
(** [indegree_decile_spread ~is_malicious g] is the 90th minus the 10th
    percentile of correct vertices' in-degrees, counting only edges
    originating at correct vertices. *)

val indegrees_correct : is_malicious:(int -> bool) -> Digraph.t -> int array
(** [indegrees_correct ~is_malicious g] is the in-degree of each correct
    vertex, counting only edges from correct vertices (the raw data behind
    {!indegree_decile_spread}). *)

val reachable_fraction :
  ?sources:int ->
  rng:Basalt_prng.Rng.t ->
  is_malicious:(int -> bool) ->
  Digraph.t ->
  float
(** [reachable_fraction ~rng ~is_malicious g] is the average fraction of
    correct vertices reachable from a sampled correct source through
    correct vertices only — 1.0 in a healthy overlay, collapsing towards 0
    under partition. *)
