module Rng = Basalt_prng.Rng

let erdos_renyi rng ~n ~p =
  if n < 0 then invalid_arg "Generators.erdos_renyi: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Generators.erdos_renyi: p out of [0,1]";
  let adj =
    Array.init n (fun u ->
        let out = ref [] in
        for v = 0 to n - 1 do
          if v <> u && Rng.bernoulli rng ~p then out := v :: !out
        done;
        Array.of_list !out)
  in
  Digraph.of_adjacency adj

let k_out rng ~n ~k =
  if n < 0 then invalid_arg "Generators.k_out: negative n";
  let adj =
    Array.init n (fun u ->
        let candidates =
          Array.of_list (List.filter (fun v -> v <> u) (List.init n Fun.id))
        in
        Rng.sample_without_replacement rng ~k candidates)
  in
  Digraph.of_adjacency adj

let ring ?(shortcuts = 0) rng ~n =
  if n < 0 then invalid_arg "Generators.ring: negative n";
  let adj = Array.init n (fun u -> [ (u + 1) mod n ]) in
  for _ = 1 to shortcuts do
    if n > 1 then begin
      let u = Rng.int rng n in
      let v = Rng.int rng n in
      if u <> v then adj.(u) <- v :: adj.(u)
    end
  done;
  Digraph.of_adjacency (Array.map Array.of_list adj)

let preferential_attachment rng ~n ~out_degree =
  if n < 0 then invalid_arg "Generators.preferential_attachment: negative n";
  if out_degree <= 0 then
    invalid_arg "Generators.preferential_attachment: out_degree <= 0";
  let in_degree = Array.make (max n 1) 0 in
  let adj = Array.make (max n 1) [||] in
  for u = 1 to n - 1 do
    let k = min out_degree u in
    (* Weighted sampling without replacement by rejection: weight of
       candidate v is in_degree(v) + 1. *)
    let chosen = Hashtbl.create k in
    let total_weight = ref 0 in
    for v = 0 to u - 1 do
      total_weight := !total_weight + in_degree.(v) + 1
    done;
    let attempts = ref 0 in
    while Hashtbl.length chosen < k && !attempts < 1000 * k do
      incr attempts;
      let r = ref (Rng.int rng !total_weight) in
      let v = ref 0 in
      while !r >= in_degree.(!v) + 1 do
        r := !r - (in_degree.(!v) + 1);
        incr v
      done;
      if not (Hashtbl.mem chosen !v) then Hashtbl.add chosen !v ()
    done;
    let targets = Hashtbl.fold (fun v () acc -> v :: acc) chosen [] in
    adj.(u) <- Array.of_list targets;
    List.iter (fun v -> in_degree.(v) <- in_degree.(v) + 1) targets
  done;
  Digraph.of_adjacency (Array.sub adj 0 (max n 0))
