(** Connected components of the overlay.

    Weak connectivity over the correct-only subgraph detects network
    partitions (the catastrophic failure mode of Fig. 2c/2d, where "the
    network becomes fully disconnected"); strongly connected components
    refine the analysis for directed reachability. *)

val weakly_connected :
  ?restrict:(int -> bool) -> Digraph.t -> int array
(** [weakly_connected ?restrict g] labels each vertex with a component id
    ([-1] for vertices excluded by [restrict], which defaults to
    including all). *)

val largest_component_fraction :
  ?restrict:(int -> bool) -> Digraph.t -> float
(** [largest_component_fraction ?restrict g] is the size of the largest
    weak component divided by the number of included vertices ([0.] if
    none). *)

val strongly_connected : Digraph.t -> int array
(** [strongly_connected g] labels each vertex with its SCC id (Tarjan,
    iterative — safe on large graphs). *)

val count_components : int array -> int
(** [count_components labels] is the number of distinct non-negative
    labels. *)
