(** Node isolation (Eclipse success) detection.

    A correct node is {e isolated} when its view contains no correct
    identifier — every slot is either empty or holds a Byzantine
    identifier (§3.3.1).  An isolated node is fully at the mercy of the
    adversary.  Figure 5's success criterion is that no correct node is
    ever isolated during the second half of a run. *)

val is_isolated :
  is_malicious:(Basalt_proto.Node_id.t -> bool) ->
  Basalt_proto.Node_id.t array ->
  bool
(** [is_isolated ~is_malicious view] is [true] when [view] has no correct
    entry (an empty view is isolated). *)

val count :
  is_malicious:(Basalt_proto.Node_id.t -> bool) ->
  views:(int -> Basalt_proto.Node_id.t array) ->
  correct:int list ->
  int
(** [count ~is_malicious ~views ~correct] counts isolated nodes among the
    correct node indices. *)

val fraction :
  is_malicious:(Basalt_proto.Node_id.t -> bool) ->
  views:(int -> Basalt_proto.Node_id.t array) ->
  correct:int list ->
  float
(** [fraction] is [count] divided by the number of correct nodes ([0.] if
    none). *)
