let is_isolated ~is_malicious view =
  not (Array.exists (fun id -> not (is_malicious id)) view)

let count ~is_malicious ~views ~correct =
  List.fold_left
    (fun acc u -> if is_isolated ~is_malicious (views u) then acc + 1 else acc)
    0 correct

let fraction ~is_malicious ~views ~correct =
  match correct with
  | [] -> 0.0
  | _ ->
      float_of_int (count ~is_malicious ~views ~correct)
      /. float_of_int (List.length correct)
