lib/graph/digraph.mli: Basalt_proto
