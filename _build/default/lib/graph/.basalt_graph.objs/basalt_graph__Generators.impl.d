lib/graph/generators.ml: Array Basalt_prng Digraph Fun Hashtbl List
