lib/graph/generators.mli: Basalt_prng Digraph
