lib/graph/metrics.mli: Basalt_prng Digraph
