lib/graph/digraph.ml: Array Basalt_proto Hashtbl Int List
