lib/graph/metrics.ml: Array Basalt_prng Digraph Float Hashtbl Int List Queue
