lib/graph/isolation.ml: Array List
