lib/graph/components.ml: Array Digraph Hashtbl Option Queue
