lib/graph/isolation.mli: Basalt_proto
