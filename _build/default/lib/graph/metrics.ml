module Rng = Basalt_prng.Rng

let correct_vertices ~is_malicious g =
  let out = ref [] in
  for u = Digraph.n g - 1 downto 0 do
    if not (is_malicious u) then out := u :: !out
  done;
  Array.of_list !out

let sample_vertices rng vertices k =
  if Array.length vertices <= k then vertices
  else Rng.sample_without_replacement rng ~k vertices

(* Undirected adjacency sets, built once per snapshot. *)
let undirected_sets g =
  let n = Digraph.n g in
  let sets = Array.init n (fun _ -> Hashtbl.create 8) in
  for u = 0 to n - 1 do
    Array.iter
      (fun v ->
        Hashtbl.replace sets.(u) v ();
        Hashtbl.replace sets.(v) u ())
      (Digraph.out_neighbors g u)
  done;
  sets

let clustering_coefficient ?(sample = 400) ~rng ~is_malicious g =
  let sets = undirected_sets g in
  let correct = correct_vertices ~is_malicious g in
  let picked = sample_vertices rng correct sample in
  if Array.length picked = 0 then 0.0
  else begin
    let total = ref 0.0 in
    Array.iter
      (fun u ->
        let neighbors =
          Hashtbl.fold (fun v () acc -> v :: acc) sets.(u) []
        in
        let neighbors = Array.of_list neighbors in
        let d = Array.length neighbors in
        if d >= 2 then begin
          let connected = ref 0 in
          for i = 0 to d - 1 do
            for j = i + 1 to d - 1 do
              let a = neighbors.(i) and b = neighbors.(j) in
              (* Paper convention: malicious nodes are assumed to be all
                 connected to one another. *)
              if
                (is_malicious a && is_malicious b)
                || Hashtbl.mem sets.(a) b
              then incr connected
            done
          done;
          let pairs = d * (d - 1) / 2 in
          total := !total +. (float_of_int !connected /. float_of_int pairs)
        end)
      picked;
    !total /. float_of_int (Array.length picked)
  end

(* BFS over the correct-only directed subgraph; returns distances
   (-1 = unreached). *)
let bfs_correct ~is_malicious g source =
  let n = Digraph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 && not (is_malicious v) then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Digraph.out_neighbors g u)
  done;
  dist

let fold_bfs ?(sources = 64) ~rng ~is_malicious g f init =
  let correct = correct_vertices ~is_malicious g in
  let picked =
    sample_vertices rng
      (Array.of_list
         (List.filter (fun u -> not (is_malicious u)) (Array.to_list correct)))
      sources
  in
  Array.fold_left
    (fun acc source -> f acc (bfs_correct ~is_malicious g source) source)
    init picked

let mean_path_length ?sources ~rng ~is_malicious g =
  let total, count =
    fold_bfs ?sources ~rng ~is_malicious g
      (fun (total, count) dist source ->
        let t = ref total and c = ref count in
        Array.iteri
          (fun v d ->
            if d > 0 && v <> source then begin
              t := !t +. float_of_int d;
              c := !c + 1
            end)
          dist;
        (!t, !c))
      (0.0, 0)
  in
  if count = 0 then Float.nan else total /. float_of_int count

let reachable_fraction ?sources ~rng ~is_malicious g =
  let correct_total =
    Array.length (correct_vertices ~is_malicious g)
  in
  if correct_total <= 1 then 1.0
  else begin
    let sum, runs =
      fold_bfs ?sources ~rng ~is_malicious g
        (fun (sum, runs) dist _source ->
          let reached = ref 0 in
          Array.iteri
            (fun v d -> if d >= 0 && not (is_malicious v) then incr reached)
            dist;
          (* Exclude the source itself from the numerator and
             denominator. *)
          ( sum
            +. (float_of_int (!reached - 1) /. float_of_int (correct_total - 1)),
            runs + 1 ))
        (0.0, 0)
    in
    if runs = 0 then 0.0 else sum /. float_of_int runs
  end

let indegrees_correct ~is_malicious g =
  let n = Digraph.n g in
  let deg = Array.make n 0 in
  for u = 0 to n - 1 do
    if not (is_malicious u) then
      Array.iter
        (fun v -> if not (is_malicious v) then deg.(v) <- deg.(v) + 1)
        (Digraph.out_neighbors g u)
  done;
  let out = ref [] in
  for u = n - 1 downto 0 do
    if not (is_malicious u) then out := deg.(u) :: !out
  done;
  Array.of_list !out

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let idx = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx) in
    let hi = min (n - 1) (lo + 1) in
    let frac = idx -. float_of_int lo in
    (float_of_int sorted.(lo) *. (1.0 -. frac))
    +. (float_of_int sorted.(hi) *. frac)
  end

let indegree_decile_spread ~is_malicious g =
  let deg = indegrees_correct ~is_malicious g in
  Array.sort Int.compare deg;
  if Array.length deg = 0 then Float.nan
  else percentile deg 0.9 -. percentile deg 0.1
