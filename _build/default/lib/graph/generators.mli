(** Random graph generators.

    Reference models used to calibrate the overlay metrics (a healthy RPS
    overlay should look like a random k-out digraph) and to test the
    metric implementations against known closed forms:

    - Erdős–Rényi G(n, p): expected clustering ≈ p, short paths;
    - uniform k-out: every vertex picks k random out-neighbors — the
      shape an ideal peer sampler induces;
    - directed ring (+ optional shortcuts): high diameter, zero
      clustering — the opposite extreme;
    - preferential attachment: heavy-tailed in-degrees, the shape a
      {e biased} sampler drifts towards. *)

val erdos_renyi : Basalt_prng.Rng.t -> n:int -> p:float -> Digraph.t
(** [erdos_renyi rng ~n ~p] includes each ordered pair [(u, v)], [u <> v],
    independently with probability [p].
    @raise Invalid_argument if [p] is outside [\[0, 1\]] or [n < 0]. *)

val k_out : Basalt_prng.Rng.t -> n:int -> k:int -> Digraph.t
(** [k_out rng ~n ~k] gives every vertex [min k (n-1)] distinct uniform
    out-neighbors. *)

val ring : ?shortcuts:int -> Basalt_prng.Rng.t -> n:int -> Digraph.t
(** [ring rng ~n] is the directed cycle [0 -> 1 -> … -> 0];
    [shortcuts] adds that many uniformly random extra edges. *)

val preferential_attachment :
  Basalt_prng.Rng.t -> n:int -> out_degree:int -> Digraph.t
(** [preferential_attachment rng ~n ~out_degree] grows the graph vertex
    by vertex, each newcomer linking to [out_degree] targets chosen
    proportionally to in-degree + 1 (a Barabási–Albert flavor for
    digraphs). *)
