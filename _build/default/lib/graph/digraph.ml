type t = { adj : int array array }

let dedup_row n u row =
  let seen = Hashtbl.create (Array.length row) in
  let out = ref [] in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Digraph: vertex out of range";
      if v <> u && not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out := v :: !out
      end)
    row;
  Array.of_list (List.rev !out)

let of_views ~n view =
  let adj =
    Array.init n (fun u ->
        let row = Array.map Basalt_proto.Node_id.to_int (view u) in
        dedup_row n u row)
  in
  { adj }

let of_adjacency rows =
  let n = Array.length rows in
  { adj = Array.mapi (fun u row -> dedup_row n u row) rows }

let n g = Array.length g.adj
let out_neighbors g u = g.adj.(u)
let out_degree g u = Array.length g.adj.(u)

let in_degrees g =
  let deg = Array.make (n g) 0 in
  Array.iter (fun row -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) row) g.adj;
  deg

let transpose g =
  let count = Array.make (n g) 0 in
  Array.iter (fun row -> Array.iter (fun v -> count.(v) <- count.(v) + 1) row) g.adj;
  let rev = Array.map (fun c -> Array.make c 0) count in
  let fill = Array.make (n g) 0 in
  Array.iteri
    (fun u row ->
      Array.iter
        (fun v ->
          rev.(v).(fill.(v)) <- u;
          fill.(v) <- fill.(v) + 1)
        row)
    g.adj;
  { adj = rev }

let edge_count g = Array.fold_left (fun acc row -> acc + Array.length row) 0 g.adj
let has_edge g u v = Array.exists (Int.equal v) g.adj.(u)

let undirected_neighbors g u =
  let rev = transpose g in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  Array.iter add g.adj.(u);
  Array.iter add rev.adj.(u);
  Array.of_list (List.rev !out)
