module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Rng = Basalt_prng.Rng

type config = {
  n : int;
  adversarial : int;
  v : int;
  steps : float;
  force : float;
  seed : int;
}

let config ?(n = 532) ?(adversarial = 100) ?(v = 100) ?(steps = 600.0)
    ?(force = 10.0) ?(seed = 42) () =
  if n <= 0 then invalid_arg "Deployment.config: n must be positive";
  if adversarial < 0 || adversarial >= n then
    invalid_arg "Deployment.config: adversarial out of [0, n)";
  if v <= 0 then invalid_arg "Deployment.config: v must be positive";
  if steps <= 0.0 then invalid_arg "Deployment.config: steps must be positive";
  if force < 0.0 then invalid_arg "Deployment.config: negative force";
  { n; adversarial; v; steps; force; seed }

type result = {
  basalt_proportion : float;
  full_knowledge_proportion : float;
  true_proportion : float;
  witness_samples : int;
  witness_isolated : bool;
}

let run c =
  let f = float_of_int c.adversarial /. float_of_int c.n in
  let witness = Basalt_proto.Node_id.of_int 0 in
  let scenario =
    Scenario.make ~name:"live-deployment" ~n:c.n ~f ~force:c.force
      ~strategy:(Basalt_adversary.Adversary.Eclipse witness)
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:c.v ()))
      ~steps:c.steps ~seed:c.seed
      ~sample_window:4096 ()
  in
  let r = Runner.run scenario in
  let outcome = r.Runner.per_node.(0) in
  (* Full-knowledge baseline: the same number of samples, drawn uniformly
     from the whole membership. *)
  let rng = Rng.create ~seed:(c.seed + 1) in
  let draws = max 1 outcome.Runner.node_samples_total in
  let malicious_draws = ref 0 in
  for _ = 1 to draws do
    if Rng.int rng c.n >= c.n - c.adversarial then incr malicious_draws
  done;
  {
    basalt_proportion = outcome.Runner.node_sample_byz;
    full_knowledge_proportion =
      float_of_int !malicious_draws /. float_of_int draws;
    true_proportion = f;
    witness_samples = outcome.Runner.node_samples_total;
    witness_isolated = outcome.Runner.node_isolated;
  }
