module Tx = struct
  type id = int
  type t = { id : id; parents : id list; conflict : int }

  let genesis = { id = 0; parents = []; conflict = -1 }

  let pp ppf tx =
    Format.fprintf ppf "tx%d(parents=%s; conflict=%d)" tx.id
      (String.concat "," (List.map string_of_int tx.parents))
      tx.conflict
end

(* Per-transaction bookkeeping. *)
type entry = {
  tx : Tx.t;
  mutable chit : bool;
  mutable children : Tx.id list;
}

(* Per-conflict-set Snowball state. *)
type conflict_state = {
  mutable members : Tx.id list;  (* insertion order *)
  mutable preferred : Tx.id;
  mutable last : Tx.id;
  mutable count : int;  (* consecutive successes of [last] *)
}

type t = {
  entries : (Tx.id, entry) Hashtbl.t;
  conflicts : (int, conflict_state) Hashtbl.t;
  mutable order : Tx.id list;  (* reverse insertion order *)
}

let create () =
  let t =
    { entries = Hashtbl.create 64; conflicts = Hashtbl.create 64; order = [] }
  in
  Hashtbl.replace t.entries Tx.genesis.Tx.id
    { tx = Tx.genesis; chit = true; children = [] };
  Hashtbl.replace t.conflicts Tx.genesis.Tx.conflict
    {
      members = [ Tx.genesis.Tx.id ];
      preferred = Tx.genesis.Tx.id;
      last = Tx.genesis.Tx.id;
      count = 1;
    };
  t.order <- [ Tx.genesis.Tx.id ];
  t

let known t id = Hashtbl.mem t.entries id
let transactions t = List.rev t.order

let entry t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Tx_dag: unknown transaction %d" id)

let tx t id = (entry t id).tx

let ancestor_closure t id =
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      let e = entry t id in
      List.iter go e.tx.Tx.parents;
      out := e.tx :: !out
    end
  in
  go id;
  List.rev !out

let insert t tx =
  if known t tx.Tx.id then Ok ()
  else if not (List.for_all (known t) tx.Tx.parents) then
    Error (Printf.sprintf "tx%d has unknown parents" tx.Tx.id)
  else begin
    Hashtbl.replace t.entries tx.Tx.id { tx; chit = false; children = [] };
    t.order <- tx.Tx.id :: t.order;
    List.iter
      (fun p ->
        let pe = entry t p in
        pe.children <- tx.Tx.id :: pe.children)
      tx.Tx.parents;
    (match Hashtbl.find_opt t.conflicts tx.Tx.conflict with
    | Some cs -> cs.members <- cs.members @ [ tx.Tx.id ]
    | None ->
        Hashtbl.replace t.conflicts tx.Tx.conflict
          {
            members = [ tx.Tx.id ];
            preferred = tx.Tx.id;
            last = tx.Tx.id;
            count = 0;
          });
    Ok ()
  end

let conflict_set t tx =
  match Hashtbl.find_opt t.conflicts tx.Tx.conflict with
  | Some cs -> cs.members
  | None -> []

let conflict_state t id =
  let e = entry t id in
  Hashtbl.find t.conflicts e.tx.Tx.conflict

let is_preferred t id = (conflict_state t id).preferred = id

(* Walk ancestors (memoised per call via a visited set). *)
let fold_ancestry t id f init =
  let visited = Hashtbl.create 16 in
  let rec go acc id =
    if Hashtbl.mem visited id then acc
    else begin
      Hashtbl.add visited id ();
      let e = entry t id in
      List.fold_left go (f acc id) e.tx.Tx.parents
    end
  in
  go init id

let is_strongly_preferred t id =
  fold_ancestry t id (fun acc a -> acc && is_preferred t a) true

let confidence t id =
  (* Chits in the progeny: walk descendants. *)
  let visited = Hashtbl.create 16 in
  let rec go acc id =
    if Hashtbl.mem visited id then acc
    else begin
      Hashtbl.add visited id ();
      let e = entry t id in
      let acc = if e.chit then acc + 1 else acc in
      List.fold_left go acc e.children
    end
  in
  go 0 id

let update_conflict_after_success t id =
  let cs = conflict_state t id in
  if confidence t id > confidence t cs.preferred then cs.preferred <- id;
  if cs.last = id then cs.count <- cs.count + 1
  else begin
    cs.last <- id;
    cs.count <- 1
  end

let record_query_success t id =
  let e = entry t id in
  e.chit <- true;
  (* Update Snowball state for the transaction and all its ancestors,
     ancestors last so their confidences already include the new chit. *)
  fold_ancestry t id (fun () a -> update_conflict_after_success t a) ()

let record_query_failure t id =
  fold_ancestry t id
    (fun () a ->
      let cs = conflict_state t a in
      cs.count <- 0)
    ()

let chit t id = (entry t id).chit

let accepted ?(beta1 = 11) ?(beta2 = 20) t id =
  let self_ok id =
    if id = Tx.genesis.Tx.id then true
    else begin
      let cs = conflict_state t id in
      let singleton = List.length cs.members = 1 in
      cs.last = id
      && ((singleton && cs.count >= beta1) || cs.count >= beta2)
    end
  in
  fold_ancestry t id (fun acc a -> acc && self_ok a) true

let frontier t =
  let leaves =
    List.filter (fun id -> (entry t id).children = []) (transactions t)
  in
  let preferred, rest = List.partition (is_strongly_preferred t) leaves in
  preferred @ rest
