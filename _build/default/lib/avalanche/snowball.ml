type color = Red | Blue

let color_equal a b =
  match (a, b) with Red, Red | Blue, Blue -> true | Red, Blue | Blue, Red -> false

let opposite = function Red -> Blue | Blue -> Red

let pp_color ppf = function
  | Red -> Format.fprintf ppf "red"
  | Blue -> Format.fprintf ppf "blue"

type config = { sample_size : int; alpha : int; beta : int }

let config ?(sample_size = 10) ?(alpha = 7) ?(beta = 15) () =
  if sample_size <= 0 then invalid_arg "Snowball.config: sample_size <= 0";
  if alpha <= 0 || alpha > sample_size then
    invalid_arg "Snowball.config: alpha out of (0, sample_size]";
  if beta <= 0 then invalid_arg "Snowball.config: beta <= 0";
  { sample_size; alpha; beta }

type t = {
  config : config;
  mutable pref : color;
  mutable conf_red : int;
  mutable conf_blue : int;
  mutable last_success : color option;
  mutable streak : int;
  mutable decided : bool;
}

let create config initial =
  {
    config;
    pref = initial;
    conf_red = 0;
    conf_blue = 0;
    last_success = None;
    streak = 0;
    decided = false;
  }

let preference t = t.pref
let decided t = t.decided
let decision t = if t.decided then Some t.pref else None
let confidence t = function Red -> t.conf_red | Blue -> t.conf_blue
let streak t = t.streak

let register_votes t votes =
  if not t.decided then begin
    let red = List.length (List.filter (color_equal Red) votes) in
    let blue = List.length votes - red in
    let winner =
      if red >= t.config.alpha then Some Red
      else if blue >= t.config.alpha then Some Blue
      else None
    in
    match winner with
    | None -> t.streak <- 0
    | Some c ->
        (match c with
        | Red -> t.conf_red <- t.conf_red + 1
        | Blue -> t.conf_blue <- t.conf_blue + 1);
        if confidence t c > confidence t (opposite c) then t.pref <- c;
        (match t.last_success with
        | Some prev when color_equal prev c -> t.streak <- t.streak + 1
        | Some _ | None ->
            t.last_success <- Some c;
            t.streak <- 1);
        if t.streak >= t.config.beta then t.decided <- true
  end
