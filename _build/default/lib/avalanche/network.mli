(** A simulated Avalanche-style consensus network driven by an RPS.

    Correct nodes run two coupled protocols on the discrete-event engine:
    a peer sampling service (any {!Basalt_sim.Scenario.protocol}, or an
    idealised full-knowledge sampler) and a {!Snowball} instance deciding
    one binary value.  After a warm-up period for the sampler, each node
    periodically draws a committee from its sample stream, queries it, and
    feeds the collected votes to Snowball.

    Byzantine nodes vote adversarially — they answer every query with the
    {e opposite} of the querier's current preference, the strongest
    stalling strategy available without reading correct nodes' memory —
    and simultaneously run the usual RPS-level flooding attack, so a weak
    sampler lets them into more committees. *)

type sampling =
  | Service of Basalt_sim.Scenario.protocol
      (** Draw committees from the given peer sampler's output stream. *)
  | Full_knowledge
      (** Idealised uniform sampling over the whole membership (the
          baseline the paper's §5 compares against). *)

type config = private {
  n : int;
  f : float;
  force : float;
  sampling : sampling;
  snowball : Snowball.config;
  initial_red : float;  (** Fraction of correct nodes starting Red. *)
  warmup : float;  (** RPS warm-up time before querying starts. *)
  query_interval : float;
  steps : float;
  seed : int;
}

val config :
  ?n:int ->
  ?f:float ->
  ?force:float ->
  ?sampling:sampling ->
  ?snowball:Snowball.config ->
  ?initial_red:float ->
  ?warmup:float ->
  ?query_interval:float ->
  ?steps:float ->
  ?seed:int ->
  unit ->
  config
(** [config ()] defaults to 300 nodes, [f = 0.15], force 10, Basalt
    sampling with a 60-slot view, Snowball (10, 7, 15), 70% initial Red,
    warm-up 30, one query round per time unit, 200 steps.
    @raise Invalid_argument on out-of-range fractions or non-positive
    durations. *)

type result = {
  decided_fraction : float;  (** Correct nodes that finalised. *)
  agreement : bool;  (** No two correct nodes finalised different colors. *)
  decided_red_fraction : float;  (** Among decided, fraction on Red. *)
  mean_decision_time : float;  (** Mean finalisation time ([nan] if none). *)
  committee_byz : float;  (** Mean Byzantine share of queried committees. *)
  queries_sent : int;
}

val run : config -> result
(** [run c] simulates the network to completion. *)
