lib/avalanche/snowball.mli: Format
