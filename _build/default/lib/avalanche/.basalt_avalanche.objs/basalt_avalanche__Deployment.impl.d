lib/avalanche/deployment.ml: Array Basalt_adversary Basalt_core Basalt_prng Basalt_proto Basalt_sim
