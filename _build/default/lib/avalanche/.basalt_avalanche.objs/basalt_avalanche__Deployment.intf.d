lib/avalanche/deployment.mli:
