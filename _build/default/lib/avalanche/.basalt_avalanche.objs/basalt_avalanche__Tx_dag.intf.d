lib/avalanche/tx_dag.mli: Format
