lib/avalanche/snowball.ml: Format List
