lib/avalanche/tx_dag.ml: Format Hashtbl List Printf String
