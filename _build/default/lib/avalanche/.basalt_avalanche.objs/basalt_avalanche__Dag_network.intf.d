lib/avalanche/dag_network.mli: Network
