lib/avalanche/network.ml: Array Basalt_adversary Basalt_analysis Basalt_core Basalt_engine Basalt_prng Basalt_proto Basalt_sim Float List Snowball
