lib/avalanche/network.mli: Basalt_sim Snowball
