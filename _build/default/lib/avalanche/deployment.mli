(** Simulated substitute for the paper's live deployment (Section 5).

    The paper patched AvalancheGo to replace proof-of-stake peer sampling
    with a Basalt-derived sampler, launched ~100 adversarial nodes (≈20%
    of the live AVA network) attempting an Eclipse attack against a
    witness node, and measured, over 10 hours, the proportion of malicious
    nodes in the witness's samples under three samplers:

    - Basalt-derived: {b 17.5%},
    - full-knowledge uniform sampling: {b 18.4%},
    - ground truth (actual adversarial share): {b 18.8%}.

    We reproduce the protocol-level content of that experiment in the
    simulator: a network with the same adversarial share whose coalition
    concentrates its attack on one witness ({!Basalt_adversary.Adversary}
    [Eclipse] strategy), a Basalt sampler at the witness, and an
    idealised full-knowledge sampler drawing the same number of samples.
    See DESIGN.md ("Substitutions") for why this preserves the measured
    quantity's behavior. *)

type config = private {
  n : int;  (** Active network size (paper: ≈530 so 100 nodes are 18.8%). *)
  adversarial : int;  (** Number of attacker nodes (paper: 100). *)
  v : int;  (** Witness's Basalt view size. *)
  steps : float;  (** Duration (paper: 10 h at τ = 10 s → 3600 units). *)
  force : float;  (** Eclipse push intensity. *)
  seed : int;
}

val config :
  ?n:int ->
  ?adversarial:int ->
  ?v:int ->
  ?steps:float ->
  ?force:float ->
  ?seed:int ->
  unit ->
  config
(** [config ()] defaults to the paper's proportions at reduced duration:
    [n = 532], [adversarial = 100], [v = 100], [steps = 600],
    [force = 10]. @raise Invalid_argument if [adversarial >= n] or sizes
    are non-positive. *)

type result = {
  basalt_proportion : float;
      (** Malicious share of the witness's Basalt samples. *)
  full_knowledge_proportion : float;
      (** Malicious share of an equal number of uniform samples. *)
  true_proportion : float;  (** Actual adversarial share of the network. *)
  witness_samples : int;  (** Samples the witness's service emitted. *)
  witness_isolated : bool;  (** Whether the eclipse succeeded. *)
}

val run : config -> result
(** [run c] executes the deployment scenario. *)
