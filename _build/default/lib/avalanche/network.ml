module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module Engine = Basalt_engine.Engine
module Rng = Basalt_prng.Rng
module Scenario = Basalt_sim.Scenario
module Sample_stream = Basalt_core.Sample_stream
module Adversary = Basalt_adversary.Adversary

type sampling = Service of Scenario.protocol | Full_knowledge

type config = {
  n : int;
  f : float;
  force : float;
  sampling : sampling;
  snowball : Snowball.config;
  initial_red : float;
  warmup : float;
  query_interval : float;
  steps : float;
  seed : int;
}

let default_sampling =
  Service (Scenario.Basalt (Basalt_core.Config.make ~v:60 ()))

let config ?(n = 300) ?(f = 0.15) ?(force = 10.0) ?(sampling = default_sampling)
    ?(snowball = Snowball.config ()) ?(initial_red = 0.7) ?(warmup = 30.0)
    ?(query_interval = 1.0) ?(steps = 200.0) ?(seed = 42) () =
  if n <= 0 then invalid_arg "Network.config: n must be positive";
  if f < 0.0 || f >= 1.0 then invalid_arg "Network.config: f out of [0,1)";
  if force < 0.0 then invalid_arg "Network.config: negative force";
  if initial_red < 0.0 || initial_red > 1.0 then
    invalid_arg "Network.config: initial_red out of [0,1]";
  if warmup < 0.0 then invalid_arg "Network.config: negative warmup";
  if query_interval <= 0.0 then
    invalid_arg "Network.config: query_interval must be positive";
  if steps <= warmup then invalid_arg "Network.config: steps <= warmup";
  {
    n;
    f;
    force;
    sampling;
    snowball;
    initial_red;
    warmup;
    query_interval;
    steps;
    seed;
  }

(* Combined wire format: RPS traffic plus consensus queries/votes.  A
   query carries the querier's current preference, which is what Byzantine
   nodes vote against. *)
type msg =
  | Rps_msg of Message.t
  | Query of { preference : Snowball.color }
  | Vote of { color : Snowball.color }

type result = {
  decided_fraction : float;
  agreement : bool;
  decided_red_fraction : float;
  mean_decision_time : float;
  committee_byz : float;
  queries_sent : int;
}

type node_state = {
  snowball : Snowball.t;
  stream : Sample_stream.t;
  mutable pending_votes : Snowball.color list;
  mutable decision_time : float;
}

let run c =
  let master = Rng.create ~seed:c.seed in
  let engine_rng = Rng.split master in
  let node_rng = Rng.split master in
  let adversary_rng = Rng.split master in
  let bootstrap_rng = Rng.split master in
  let committee_rng = Rng.split master in
  let num_byz = int_of_float (Float.round (c.f *. float_of_int c.n)) in
  let q = c.n - num_byz in
  let engine : msg Engine.t = Engine.create ~rng:engine_rng ~n:c.n () in
  let is_malicious u = u >= q in
  (* --- Per-node consensus state --- *)
  let states =
    Array.init q (fun i ->
        let initial =
          if
            float_of_int i < c.initial_red *. float_of_int q
          then Snowball.Red
          else Snowball.Blue
        in
        {
          snowball = Snowball.create c.snowball initial;
          stream = Sample_stream.create ~capacity:256;
          pending_votes = [];
          decision_time = Float.nan;
        })
  in
  let queries_sent = ref 0 in
  let committee_byz_acc = Basalt_analysis.Stats.Online.create () in
  (* --- Peer samplers (when a service is configured) --- *)
  let samplers =
    match c.sampling with
    | Full_knowledge -> None
    | Service protocol ->
        let scenario =
          Scenario.make ~n:c.n ~f:c.f ~protocol ~steps:c.steps ~seed:c.seed ()
        in
        let maker = Scenario.maker scenario in
        let arr = Array.make q (Rps.null (Node_id.of_int 0)) in
        for i = 0 to q - 1 do
          let send ~dst m =
            Engine.send engine ~src:i ~dst:(Node_id.to_int dst) (Rps_msg m)
          in
          (* Bootstrap mirrors the runner: a small random mixed sample. *)
          let size = max 10 (c.n / 20) in
          let bootstrap =
            Array.init size (fun _ -> Node_id.of_int (Rng.int bootstrap_rng c.n))
          in
          arr.(i) <- maker ~id:(Node_id.of_int i) ~bootstrap ~rng:node_rng ~send
        done;
        Some arr
  in
  (* --- Message handling --- *)
  for i = 0 to q - 1 do
    let state = states.(i) in
    Engine.register engine i (fun ~from msg ->
        match msg with
        | Rps_msg m -> (
            match samplers with
            | Some arr -> arr.(i).Rps.on_message ~from:(Node_id.of_int from) m
            | None -> ())
        | Query _ ->
            Engine.send engine ~src:i ~dst:from
              (Vote { color = Snowball.preference state.snowball })
        | Vote { color } -> state.pending_votes <- color :: state.pending_votes)
  done;
  (* Byzantine nodes: RPS-level adversary plus anti-querier voting. *)
  let adversary =
    if num_byz = 0 then None
    else begin
      let malicious = Array.init num_byz (fun i -> Node_id.of_int (q + i)) in
      let correct = Array.init q Node_id.of_int in
      let v =
        match c.sampling with
        | Service p ->
            Scenario.view_size (Scenario.make ~n:c.n ~f:c.f ~protocol:p ())
        | Full_knowledge -> 60
      in
      let send ~src ~dst m =
        Engine.send engine ~src:(Node_id.to_int src) ~dst:(Node_id.to_int dst)
          (Rps_msg m)
      in
      let adv =
        Adversary.create ~rng:adversary_rng ~malicious ~correct ~v
          ~force:c.force ~send ()
      in
      for u = q to c.n - 1 do
        Engine.register engine u (fun ~from msg ->
            match msg with
            | Rps_msg m ->
                Adversary.on_message adv ~victim_reply:true
                  ~from:(Node_id.of_int from) ~to_:(Node_id.of_int u) m
            | Query { preference } ->
                Engine.send engine ~src:u ~dst:from
                  (Vote { color = Snowball.opposite preference })
            | Vote _ -> ())
      done;
      Some adv
    end
  in
  (* --- Timers --- *)
  (match (samplers, c.sampling) with
  | Some arr, Service protocol ->
      let proto_scenario =
        Scenario.make ~n:c.n ~f:c.f ~protocol ~steps:c.steps ()
      in
      let tau = Scenario.tau proto_scenario in
      let refresh = Scenario.refresh_interval proto_scenario in
      for i = 0 to q - 1 do
        let phase = Rng.float node_rng tau in
        Engine.every engine ~phase ~interval:tau arr.(i).Rps.on_round;
        let stream = states.(i).stream in
        let sampler = arr.(i) in
        Engine.every engine
          ~phase:(phase +. Rng.float node_rng refresh)
          ~interval:refresh
          (fun () -> Sample_stream.push_list stream (sampler.Rps.sample_tick ()))
      done
  | Some _, Full_knowledge | None, _ -> ());
  (match adversary with
  | Some adv ->
      Engine.every engine ~interval:1.0 (fun () -> Adversary.on_round adv)
  | None -> ());
  (* Query rounds: close the previous round's votes, then ask a fresh
     committee. *)
  for i = 0 to q - 1 do
    let state = states.(i) in
    let phase = c.warmup +. Rng.float node_rng c.query_interval in
    Engine.every engine ~phase ~interval:c.query_interval (fun () ->
        if not (Snowball.decided state.snowball) then begin
          Snowball.register_votes state.snowball state.pending_votes;
          if
            Snowball.decided state.snowball
            && Float.is_nan state.decision_time
          then state.decision_time <- Engine.now engine;
          state.pending_votes <- [];
          let committee =
            match c.sampling with
            | Full_knowledge ->
                Array.init c.snowball.Snowball.sample_size (fun _ ->
                    Node_id.of_int (Rng.int committee_rng c.n))
            | Service _ ->
                Sample_stream.draw state.stream committee_rng
                  ~k:c.snowball.Snowball.sample_size
          in
          if Array.length committee > 0 then begin
            let byz =
              Basalt_proto.View_ops.proportion
                (fun id -> is_malicious (Node_id.to_int id))
                committee
            in
            Basalt_analysis.Stats.Online.add committee_byz_acc byz;
            Array.iter
              (fun peer ->
                incr queries_sent;
                Engine.send engine ~src:i ~dst:(Node_id.to_int peer)
                  (Query { preference = Snowball.preference state.snowball }))
              committee
          end
        end)
  done;
  Engine.run_until engine c.steps;
  (* --- Collect results --- *)
  let decided = ref 0 in
  let decided_red = ref 0 in
  let decision_times = ref [] in
  Array.iter
    (fun state ->
      if Snowball.decided state.snowball then begin
        incr decided;
        (match Snowball.decision state.snowball with
        | Some Snowball.Red -> incr decided_red
        | Some Snowball.Blue | None -> ());
        if not (Float.is_nan state.decision_time) then
          decision_times := state.decision_time :: !decision_times
      end)
    states;
  let colors =
    Array.to_list states
    |> List.filter_map (fun s -> Snowball.decision s.snowball)
  in
  let agreement =
    match colors with
    | [] -> true
    | first :: rest -> List.for_all (Snowball.color_equal first) rest
  in
  {
    decided_fraction = float_of_int !decided /. float_of_int (max 1 q);
    agreement;
    decided_red_fraction =
      (if !decided = 0 then Float.nan
       else float_of_int !decided_red /. float_of_int !decided);
    mean_decision_time =
      (match !decision_times with
      | [] -> Float.nan
      | ts ->
          List.fold_left ( +. ) 0.0 ts /. float_of_int (List.length ts));
    committee_byz = Basalt_analysis.Stats.Online.mean committee_byz_acc;
    queries_sent = !queries_sent;
  }
