module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module Engine = Basalt_engine.Engine
module Rng = Basalt_prng.Rng
module Scenario = Basalt_sim.Scenario
module Sample_stream = Basalt_core.Sample_stream
module Adversary = Basalt_adversary.Adversary

type config = {
  n : int;
  f : float;
  force : float;
  sampling : Network.sampling;
  committee : int;
  alpha : int;
  beta1 : int;
  beta2 : int;
  warmup : float;
  steps : float;
  virtuous_txs : int;
  seed : int;
}

let config ?(n = 200) ?(f = 0.15) ?(force = 10.0)
    ?(sampling =
      Network.Service (Scenario.Basalt (Basalt_core.Config.make ~v:40 ~k:10 ())))
    ?(committee = 10) ?(alpha = 7) ?(beta1 = 5) ?(beta2 = 8) ?(warmup = 30.0)
    ?(steps = 250.0) ?(virtuous_txs = 20) ?(seed = 42) () =
  if n <= 0 then invalid_arg "Dag_network.config: n must be positive";
  if f < 0.0 || f >= 1.0 then invalid_arg "Dag_network.config: f out of [0,1)";
  if committee <= 0 || alpha <= 0 || alpha > committee then
    invalid_arg "Dag_network.config: bad committee/alpha";
  if beta1 <= 0 || beta2 < beta1 then
    invalid_arg "Dag_network.config: need 0 < beta1 <= beta2";
  if steps <= warmup then invalid_arg "Dag_network.config: steps <= warmup";
  {
    n;
    f;
    force;
    sampling;
    committee;
    alpha;
    beta1;
    beta2;
    warmup;
    steps;
    virtuous_txs;
    seed;
  }

(* Wire format: RPS traffic plus DAG queries/votes.  A query carries the
   transaction's ancestor closure in topological order so the recipient
   can always insert it. *)
type msg =
  | Rps_msg of Message.t
  | Query of { closure : Tx_dag.Tx.t list; subject : Tx_dag.Tx.id }
  | Vote of { subject : Tx_dag.Tx.id; positive : bool }

type node_state = {
  dag : Tx_dag.t;
  stream : Sample_stream.t;
  (* Votes collected for the currently-outstanding query, per subject. *)
  votes : (Tx_dag.Tx.id, int * int) Hashtbl.t;
  (* Avalanche queries each transaction once per node; confidence then
     grows through descendants' queries. *)
  queried : (Tx_dag.Tx.id, unit) Hashtbl.t;
  mutable accept_times : (Tx_dag.Tx.id * float) list;
  mutable round_robin : int;
}

type result = {
  safety : bool;
  conflict_resolved_fraction : float;
  virtuous_accepted_fraction : float;
  mean_acceptance_time : float;
  committee_byz : float;
  queries : int;
}

(* The scenario's transaction set: two conflicting spends (A = 1, B = 2,
   same conflict key) and a chain of virtuous transactions on top of A's
   branch. *)
let conflict_a = { Tx_dag.Tx.id = 1; parents = [ 0 ]; conflict = 100 }
let conflict_b = { Tx_dag.Tx.id = 2; parents = [ 0 ]; conflict = 100 }

let virtuous_tx index =
  (* tx 3 builds on A; each further one on its predecessor.  All in
     distinct singleton conflict sets. *)
  {
    Tx_dag.Tx.id = 3 + index;
    parents = [ (if index = 0 then conflict_a.Tx_dag.Tx.id else 2 + index) ];
    conflict = 200 + index;
  }

let run c =
  let master = Rng.create ~seed:c.seed in
  let engine_rng = Rng.split master in
  let node_rng = Rng.split master in
  let adversary_rng = Rng.split master in
  let bootstrap_rng = Rng.split master in
  let committee_rng = Rng.split master in
  let num_byz = int_of_float (Float.round (c.f *. float_of_int c.n)) in
  let q = c.n - num_byz in
  let engine : msg Engine.t = Engine.create ~rng:engine_rng ~n:c.n () in
  let is_malicious u = u >= q in
  let states =
    Array.init q (fun _ ->
        {
          dag = Tx_dag.create ();
          stream = Sample_stream.create ~capacity:256;
          votes = Hashtbl.create 8;
          queried = Hashtbl.create 8;
          accept_times = [];
          round_robin = 0;
        })
  in
  let queries = ref 0 in
  let committee_byz_acc = Basalt_analysis.Stats.Online.create () in
  (* --- RPS substrate (same wiring as Network) --- *)
  let samplers =
    match c.sampling with
    | Network.Full_knowledge -> None
    | Network.Service protocol ->
        let scenario =
          Scenario.make ~n:c.n ~f:c.f ~protocol ~steps:c.steps ~seed:c.seed ()
        in
        let maker = Scenario.maker scenario in
        let arr = Array.make q (Rps.null (Node_id.of_int 0)) in
        for i = 0 to q - 1 do
          let send ~dst m =
            Engine.send engine ~src:i ~dst:(Node_id.to_int dst) (Rps_msg m)
          in
          let size = max 10 (c.n / 20) in
          let bootstrap =
            Array.init size (fun _ -> Node_id.of_int (Rng.int bootstrap_rng c.n))
          in
          arr.(i) <- maker ~id:(Node_id.of_int i) ~bootstrap ~rng:node_rng ~send
        done;
        Some arr
  in
  (* --- Correct node message handling --- *)
  (* A completed query can finalise ancestors, not just its subject, so
     scan the whole (small) DAG for new acceptances. *)
  let tracked_accepts i _subject =
    let state = states.(i) in
    List.iter
      (fun id ->
        if
          id <> Tx_dag.Tx.genesis.Tx_dag.Tx.id
          && (not (List.mem_assoc id state.accept_times))
          && Tx_dag.accepted ~beta1:c.beta1 ~beta2:c.beta2 state.dag id
        then
          state.accept_times <- (id, Engine.now engine) :: state.accept_times)
      (Tx_dag.transactions state.dag)
  in
  for i = 0 to q - 1 do
    let state = states.(i) in
    Engine.register engine i (fun ~from msg ->
        match msg with
        | Rps_msg m -> (
            match samplers with
            | Some arr -> arr.(i).Rps.on_message ~from:(Node_id.of_int from) m
            | None -> ())
        | Query { closure; subject } ->
            List.iter (fun tx -> ignore (Tx_dag.insert state.dag tx)) closure;
            let positive =
              Tx_dag.known state.dag subject
              && Tx_dag.is_strongly_preferred state.dag subject
            in
            Engine.send engine ~src:i ~dst:from (Vote { subject; positive })
        | Vote { subject; positive } -> (
            match Hashtbl.find_opt state.votes subject with
            | None -> ()
            | Some (yes, total) ->
                let yes = if positive then yes + 1 else yes in
                let total = total + 1 in
                Hashtbl.replace state.votes subject (yes, total);
                if total = c.committee then begin
                  Hashtbl.remove state.votes subject;
                  if yes >= c.alpha then
                    Tx_dag.record_query_success state.dag subject
                  else Tx_dag.record_query_failure state.dag subject;
                  tracked_accepts i subject
                end))
  done;
  (* --- Byzantine nodes: vote for B, against everything else --- *)
  let adversary =
    if num_byz = 0 then None
    else begin
      let malicious = Array.init num_byz (fun i -> Node_id.of_int (q + i)) in
      let correct = Array.init q Node_id.of_int in
      let send ~src ~dst m =
        Engine.send engine ~src:(Node_id.to_int src) ~dst:(Node_id.to_int dst)
          (Rps_msg m)
      in
      let adv =
        Adversary.create ~rng:adversary_rng ~malicious ~correct ~v:40
          ~force:c.force ~send ()
      in
      for u = q to c.n - 1 do
        Engine.register engine u (fun ~from msg ->
            match msg with
            | Rps_msg m ->
                Adversary.on_message adv ~victim_reply:true
                  ~from:(Node_id.of_int from) ~to_:(Node_id.of_int u) m
            | Query { subject; _ } ->
                let positive = subject = conflict_b.Tx_dag.Tx.id in
                Engine.send engine ~src:u ~dst:from (Vote { subject; positive })
            | Vote _ -> ())
      done;
      Some adv
    end
  in
  (* --- Timers --- *)
  (match (samplers, c.sampling) with
  | Some arr, Network.Service protocol ->
      let proto_scenario =
        Scenario.make ~n:c.n ~f:c.f ~protocol ~steps:c.steps ()
      in
      let tau = Scenario.tau proto_scenario in
      let refresh = Scenario.refresh_interval proto_scenario in
      for i = 0 to q - 1 do
        let phase = Rng.float node_rng tau in
        Engine.every engine ~phase ~interval:tau arr.(i).Rps.on_round;
        let stream = states.(i).stream in
        let sampler = arr.(i) in
        Engine.every engine
          ~phase:(phase +. Rng.float node_rng refresh)
          ~interval:refresh
          (fun () -> Sample_stream.push_list stream (sampler.Rps.sample_tick ()))
      done
  | Some _, Network.Full_knowledge | None, _ -> ());
  (match adversary with
  | Some adv -> Engine.every engine ~interval:1.0 (fun () -> Adversary.on_round adv)
  | None -> ());
  (* Transaction issuance: the conflict appears right after warm-up at
     two distinct correct nodes; virtuous transactions follow. *)
  Engine.schedule engine ~delay:c.warmup (fun () ->
      ignore (Tx_dag.insert states.(0).dag conflict_a);
      if q > 1 then ignore (Tx_dag.insert states.(1).dag conflict_b));
  (* Virtuous transactions are issued by node 0, which built the A
     branch and therefore always knows each new transaction's parent. *)
  for v = 0 to c.virtuous_txs - 1 do
    Engine.schedule engine
      ~delay:(c.warmup +. (2.0 *. float_of_int (v + 1)))
      (fun () ->
        let issuer = states.(0) in
        let tx = virtuous_tx v in
        if List.for_all (Tx_dag.known issuer.dag) tx.Tx_dag.Tx.parents then
          ignore (Tx_dag.insert issuer.dag tx))
  done;
  (* Query rounds: each correct node repeatedly queries a committee about
     its oldest not-yet-accepted transaction (round-robin over
     candidates). *)
  for i = 0 to q - 1 do
    let state = states.(i) in
    let phase = c.warmup +. Rng.float node_rng 1.0 in
    Engine.every engine ~phase ~interval:1.0 (fun () ->
        (* One-shot querying (the Avalanche rule): query the oldest known
           transaction not yet queried by this node. *)
        let candidates =
          List.filter
            (fun id ->
              id <> Tx_dag.Tx.genesis.Tx_dag.Tx.id
              && not (Hashtbl.mem state.queried id))
            (Tx_dag.transactions state.dag)
        in
        match candidates with
        | [] -> ()
        | subject :: _ ->
            if not (Hashtbl.mem state.votes subject) then begin
              let committee =
                match c.sampling with
                | Network.Full_knowledge ->
                    Array.init c.committee (fun _ ->
                        Node_id.of_int (Rng.int committee_rng c.n))
                | Network.Service _ ->
                    Sample_stream.draw state.stream committee_rng
                      ~k:c.committee
              in
              if Array.length committee = c.committee then begin
                Hashtbl.replace state.queried subject ();
                Hashtbl.replace state.votes subject (0, 0);
                incr queries;
                Basalt_analysis.Stats.Online.add committee_byz_acc
                  (Basalt_proto.View_ops.proportion
                     (fun id -> is_malicious (Node_id.to_int id))
                     committee);
                let closure = Tx_dag.ancestor_closure state.dag subject in
                Array.iter
                  (fun peer ->
                    Engine.send engine ~src:i ~dst:(Node_id.to_int peer)
                      (Query { closure; subject }))
                  committee
              end
            end)
  done;
  Engine.run_until engine c.steps;
  (* --- Results --- *)
  let a = conflict_a.Tx_dag.Tx.id and b = conflict_b.Tx_dag.Tx.id in
  let accepted_a = ref 0 and accepted_b = ref 0 in
  let virtuous_fracs = ref [] in
  let accept_times = ref [] in
  Array.iter
    (fun state ->
      let acc id = Tx_dag.accepted ~beta1:c.beta1 ~beta2:c.beta2 state.dag id in
      let known_and id = Tx_dag.known state.dag id && acc id in
      if known_and a then incr accepted_a;
      if known_and b then incr accepted_b;
      let virtuous_ids = List.init c.virtuous_txs (fun v -> 3 + v) in
      let accepted_virtuous =
        List.length (List.filter known_and virtuous_ids)
      in
      virtuous_fracs :=
        (float_of_int accepted_virtuous /. float_of_int (max 1 c.virtuous_txs))
        :: !virtuous_fracs;
      List.iter (fun (_, t) -> accept_times := t :: !accept_times) state.accept_times)
    states;
  (* Safety: conflicting transactions must not both be accepted anywhere
     (per node is guaranteed by the conflict-set rule; across nodes we
     check no split-brain). *)
  let safety = !accepted_a = 0 || !accepted_b = 0 in
  {
    safety;
    conflict_resolved_fraction =
      float_of_int (!accepted_a + !accepted_b) /. float_of_int (max 1 q);
    virtuous_accepted_fraction =
      (match !virtuous_fracs with
      | [] -> 0.0
      | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    mean_acceptance_time =
      (match !accept_times with
      | [] -> Float.nan
      | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    committee_byz = Basalt_analysis.Stats.Online.mean committee_byz_acc;
    queries = !queries;
  }
