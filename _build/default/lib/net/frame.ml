module Wire = Basalt_codec.Wire
module Node_id = Basalt_proto.Node_id

let max_frame = 1 lsl 20

let encode ~sender msg =
  let payload = Wire.encode msg in
  let len = 8 + Bytes.length payload in
  let frame = Bytes.create (4 + len) in
  Bytes.set_int32_be frame 0 (Int32.of_int len);
  Bytes.set_int64_be frame 4 (Int64.of_int (Node_id.to_int sender));
  Bytes.blit payload 0 frame 12 (Bytes.length payload);
  frame

module Decoder = struct
  type event = Frame of Node_id.t * Basalt_proto.Message.t | Corrupt of string

  type t = { mutable buffer : Buffer.t; mutable corrupt : string option }

  let create () = { buffer = Buffer.create 256; corrupt = None }
  let buffered t = Buffer.length t.buffer

  (* Try to extract one complete frame from the front of the buffer. *)
  let try_frame t =
    let data = Buffer.contents t.buffer in
    let available = String.length data in
    if available < 4 then None
    else begin
      let len = Int32.to_int (String.get_int32_be data 0) in
      if len < 8 then Some (Error "frame shorter than its sender field")
      else if len > max_frame then Some (Error "frame exceeds maximum size")
      else if available < 4 + len then None
      else begin
        let sender_raw = String.get_int64_be data 4 in
        let rest = Buffer.create (available - 4 - len) in
        Buffer.add_substring rest data (4 + len) (available - 4 - len);
        t.buffer <- rest;
        if sender_raw < 0L || sender_raw > Int64.of_int max_int then
          Some (Error "sender id out of range")
        else begin
          let sender = Node_id.of_int (Int64.to_int sender_raw) in
          match
            Wire.decode_sub (Bytes.unsafe_of_string data) ~off:12 ~len:(len - 8)
          with
          | Ok msg -> Some (Ok (sender, msg))
          | Error e -> Some (Error (Format.asprintf "%a" Wire.pp_error e))
        end
      end
    end

  let feed t buf ~off ~len =
    match t.corrupt with
    | Some msg -> [ Corrupt msg ]
    | None ->
        Buffer.add_subbytes t.buffer buf off len;
        let rec drain acc =
          match try_frame t with
          | None -> List.rev acc
          | Some (Ok (sender, msg)) -> drain (Frame (sender, msg) :: acc)
          | Some (Error e) ->
              t.corrupt <- Some e;
              List.rev (Corrupt e :: acc)
        in
        drain []
end
