type t = { addr : Unix.inet_addr; port : int }

let check_port port =
  if port < 0 || port > 0xFFFF then
    invalid_arg "Endpoint: port out of [0, 65535]"

let make host port =
  check_port port;
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found | Invalid_argument _ ->
        invalid_arg ("Endpoint.make: cannot resolve " ^ host))
  in
  { addr; port }

let of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "missing ':' in endpoint %S" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port_str = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_str with
      | None -> Error (Printf.sprintf "bad port in endpoint %S" s)
      | Some port -> (
          try Ok (make host port)
          with Invalid_argument msg -> Error msg))

let to_string e =
  Printf.sprintf "%s:%d" (Unix.string_of_inet_addr e.addr) e.port

let pp ppf e = Format.fprintf ppf "%s" (to_string e)

(* Pack a.b.c.d:port as (a<<40)|(b<<32)|(c<<24)|(d<<16)|port — 48 bits,
   comfortably inside a non-negative native integer. *)
let to_node_id e =
  let s = Unix.string_of_inet_addr e.addr in
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let a = int_of_string a
      and b = int_of_string b
      and c = int_of_string c
      and d = int_of_string d in
      Basalt_proto.Node_id.of_int
        ((a lsl 40) lor (b lsl 32) lor (c lsl 24) lor (d lsl 16) lor e.port)
  | _ -> invalid_arg "Endpoint.to_node_id: not an IPv4 address"

let of_node_id id =
  let x = Basalt_proto.Node_id.to_int id in
  let a = (x lsr 40) land 0xFF
  and b = (x lsr 32) land 0xFF
  and c = (x lsr 24) land 0xFF
  and d = (x lsr 16) land 0xFF
  and port = x land 0xFFFF in
  {
    addr = Unix.inet_addr_of_string (Printf.sprintf "%d.%d.%d.%d" a b c d);
    port;
  }

let to_sockaddr e = Unix.ADDR_INET (e.addr, e.port)

let of_sockaddr = function
  | Unix.ADDR_INET (addr, port) -> Ok { addr; port }
  | Unix.ADDR_UNIX _ -> Error "unix-domain address"

let equal a b = a.addr = b.addr && a.port = b.port
