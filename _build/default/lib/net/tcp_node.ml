module Basalt = Basalt_core.Basalt
module Config = Basalt_core.Config
module Sample_stream = Basalt_core.Sample_stream
module Node_id = Basalt_proto.Node_id

type stats = {
  frames_in : int;
  frames_out : int;
  connections_in : int;
  connections_out : int;
  connection_errors : int;
}

(* One TCP connection, either dialed (we know the peer id) or accepted
   (peer id learned from its frames). *)
type conn = {
  fd : Unix.file_descr;
  decoder : Frame.Decoder.t;
  mutable connecting : bool;  (* dialed, handshake not yet complete *)
  mutable outbuf : bytes;  (* pending unwritten output *)
  mutable out_off : int;
}

type t = {
  loop : Event_loop.t;
  listener : Unix.file_descr;
  endpoint : Endpoint.t;
  node : Basalt.t;
  stream : Sample_stream.t;
  outgoing : (int, conn) Hashtbl.t;  (* peer id -> conn *)
  mutable incoming : conn list;
  read_buffer : bytes;
  frames_in : int ref;
  frames_out : int ref;
  connections_in : int ref;
  connections_out : int ref;
  connection_errors : int ref;
}

let bind_listener listen =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Endpoint.to_sockaddr listen);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (addr, port) -> (fd, { Endpoint.addr; port })
  | Unix.ADDR_UNIX _ -> assert false

let drop_conn t conn =
  Event_loop.remove_fd t.loop conn.fd;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Hashtbl.iter
    (fun peer c -> if c == conn then Hashtbl.remove t.outgoing peer)
    (Hashtbl.copy t.outgoing);
  t.incoming <- List.filter (fun c -> not (c == conn)) t.incoming

(* Flush as much pending output as the socket accepts; arm a writable
   watch for the rest. *)
let rec flush_out t conn =
  let pending = Bytes.length conn.outbuf - conn.out_off in
  if pending = 0 then Event_loop.remove_writable t.loop conn.fd
  else begin
    match Unix.write conn.fd conn.outbuf conn.out_off pending with
    | written ->
        conn.out_off <- conn.out_off + written;
        if written < pending then arm_writable t conn
        else begin
          conn.outbuf <- Bytes.empty;
          conn.out_off <- 0;
          Event_loop.remove_writable t.loop conn.fd
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        arm_writable t conn
    | exception Unix.Unix_error _ ->
        incr t.connection_errors;
        drop_conn t conn
  end

and arm_writable t conn =
  Event_loop.on_writable t.loop conn.fd (fun () ->
      if conn.connecting then begin
        conn.connecting <- false;
        match Unix.getsockopt_error conn.fd with
        | Some _ ->
            incr t.connection_errors;
            drop_conn t conn
        | None -> flush_out t conn
      end
      else flush_out t conn)

let queue_frame t conn frame =
  let pending = Bytes.length conn.outbuf - conn.out_off in
  let merged = Bytes.create (pending + Bytes.length frame) in
  Bytes.blit conn.outbuf conn.out_off merged 0 pending;
  Bytes.blit frame 0 merged pending (Bytes.length frame);
  conn.outbuf <- merged;
  conn.out_off <- 0;
  incr t.frames_out;
  if conn.connecting then arm_writable t conn else flush_out t conn

let handle_events t events =
  List.iter
    (fun event ->
      match event with
      | Frame.Decoder.Frame (sender, msg) ->
          incr t.frames_in;
          Basalt.on_message t.node ~from:sender msg
      | Frame.Decoder.Corrupt _ -> incr t.connection_errors)
    events

let watch_reads t conn =
  Event_loop.on_readable t.loop conn.fd (fun () ->
      match Unix.read conn.fd t.read_buffer 0 (Bytes.length t.read_buffer) with
      | 0 -> drop_conn t conn
      | len ->
          let events = Frame.Decoder.feed conn.decoder t.read_buffer ~off:0 ~len in
          handle_events t events;
          if
            List.exists
              (function Frame.Decoder.Corrupt _ -> true | _ -> false)
              events
          then drop_conn t conn
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error _ ->
          incr t.connection_errors;
          drop_conn t conn)

let dial t peer_id =
  let endpoint = Endpoint.of_node_id (Node_id.of_int peer_id) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  let conn =
    {
      fd;
      decoder = Frame.Decoder.create ();
      connecting = true;
      outbuf = Bytes.empty;
      out_off = 0;
    }
  in
  let register () =
    incr t.connections_out;
    Hashtbl.replace t.outgoing peer_id conn;
    watch_reads t conn;
    Some conn
  in
  match Unix.connect fd (Endpoint.to_sockaddr endpoint) with
  | () ->
      conn.connecting <- false;
      register ()
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> register ()
  | exception Unix.Unix_error _ ->
      incr t.connection_errors;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let create ?(config = Config.make ~v:16 ~k:4 ()) ~loop ~listen ~bootstrap
    ~seed () =
  let listener, endpoint = bind_listener listen in
  let frames_in = ref 0 in
  let frames_out = ref 0 in
  let connections_in = ref 0 in
  let connections_out = ref 0 in
  let connection_errors = ref 0 in
  let self = Endpoint.to_node_id endpoint in
  let t_ref = ref None in
  let send ~dst msg =
    match !t_ref with
    | None -> ()
    | Some t -> (
        let peer = Node_id.to_int dst in
        let conn =
          match Hashtbl.find_opt t.outgoing peer with
          | Some c -> Some c
          | None -> dial t peer
        in
        match conn with
        | Some conn -> queue_frame t conn (Frame.encode ~sender:self msg)
        | None -> ())
  in
  let node =
    Basalt.create ~config ~id:self
      ~bootstrap:(Array.of_list (List.map Endpoint.to_node_id bootstrap))
      ~rng:(Basalt_prng.Rng.create ~seed)
      ~send ()
  in
  let t =
    {
      loop;
      listener;
      endpoint;
      node;
      stream = Sample_stream.create ~capacity:1024;
      outgoing = Hashtbl.create 32;
      incoming = [];
      read_buffer = Bytes.create 65536;
      frames_in;
      frames_out;
      connections_in;
      connections_out;
      connection_errors;
    }
  in
  t_ref := Some t;
  Event_loop.on_readable loop listener (fun () ->
      match Unix.accept listener with
      | fd, _addr ->
          Unix.set_nonblock fd;
          incr t.connections_in;
          let conn =
            {
              fd;
              decoder = Frame.Decoder.create ();
              connecting = false;
              outbuf = Bytes.empty;
              out_off = 0;
            }
          in
          t.incoming <- conn :: t.incoming;
          watch_reads t conn
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ());
  let tau = config.Config.tau in
  let phase = 0.01 +. (float_of_int (seed land 0xF) /. 500.0) in
  Event_loop.every loop ~phase ~interval:tau (fun () -> Basalt.on_round node);
  Event_loop.every loop ~interval:(Config.refresh_interval config) (fun () ->
      Sample_stream.push_list t.stream (Basalt.sample_tick node));
  t

let endpoint t = t.endpoint
let id t = Basalt.id t.node
let view t = Array.to_list (Array.map Endpoint.of_node_id (Basalt.view t.node))
let samples t = t.stream

let stats t =
  {
    frames_in = !(t.frames_in);
    frames_out = !(t.frames_out);
    connections_in = !(t.connections_in);
    connections_out = !(t.connections_out);
    connection_errors = !(t.connection_errors);
  }

let close t =
  Event_loop.remove_fd t.loop t.listener;
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Hashtbl.iter
    (fun _ conn ->
      Event_loop.remove_fd t.loop conn.fd;
      try Unix.close conn.fd with Unix.Unix_error _ -> ())
    t.outgoing;
  Hashtbl.reset t.outgoing;
  List.iter
    (fun conn ->
      Event_loop.remove_fd t.loop conn.fd;
      try Unix.close conn.fd with Unix.Unix_error _ -> ())
    t.incoming;
  t.incoming <- []
