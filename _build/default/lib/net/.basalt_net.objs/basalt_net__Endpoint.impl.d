lib/net/endpoint.ml: Array Basalt_proto Format Printf String Unix
