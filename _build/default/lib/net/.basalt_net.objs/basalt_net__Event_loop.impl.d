lib/net/event_loop.ml: Basalt_engine Float List Option Unix
