lib/net/frame.ml: Basalt_codec Basalt_proto Buffer Bytes Format Int32 Int64 List String
