lib/net/event_loop.mli: Unix
