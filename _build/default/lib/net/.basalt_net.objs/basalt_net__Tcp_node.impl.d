lib/net/tcp_node.ml: Array Basalt_core Basalt_prng Basalt_proto Bytes Endpoint Event_loop Frame Hashtbl List Unix
