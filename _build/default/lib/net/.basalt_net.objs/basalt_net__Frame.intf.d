lib/net/frame.mli: Basalt_proto
