lib/net/tcp_node.mli: Basalt_core Basalt_proto Endpoint Event_loop
