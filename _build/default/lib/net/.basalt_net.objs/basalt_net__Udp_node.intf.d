lib/net/udp_node.mli: Basalt_core Basalt_proto Endpoint Event_loop
