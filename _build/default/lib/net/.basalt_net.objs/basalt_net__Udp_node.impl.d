lib/net/udp_node.ml: Array Basalt_codec Basalt_core Basalt_prng Bytes Endpoint Event_loop List Unix
