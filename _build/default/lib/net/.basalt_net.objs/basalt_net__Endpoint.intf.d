lib/net/endpoint.mli: Basalt_proto Format Unix
