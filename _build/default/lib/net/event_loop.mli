(** Single-threaded real-time event loop over Unix file descriptors.

    A minimal reactor: readable-fd callbacks plus monotonic-deadline
    timers, multiplexed with [Unix.select].  One loop can host many
    sockets — the integration tests run a whole overlay of UDP nodes
    inside one process. *)

type t
(** A loop instance. *)

val create : unit -> t

val now : t -> float
(** [now t] is the current monotonic-ish time in seconds (wall clock from
    [Unix.gettimeofday]; only differences are used). *)

val on_readable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** [on_readable t fd f] invokes [f] whenever [fd] is readable.  One
    callback per fd; registering again replaces it. *)

val on_writable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** [on_writable t fd f] invokes [f] when [fd] becomes writable (used for
    non-blocking connects and backpressured sends).  One callback per fd;
    remove it with {!remove_writable} once the buffer drains. *)

val remove_writable : t -> Unix.file_descr -> unit
(** [remove_writable t fd] stops watching [fd] for writability. *)

val remove_fd : t -> Unix.file_descr -> unit
(** [remove_fd t fd] stops watching [fd] (both directions). *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] once after [delay] seconds. *)

val every : t -> ?phase:float -> interval:float -> (unit -> unit) -> unit
(** [every t ~interval f] runs [f] periodically ([phase] defaults to
    [interval]). @raise Invalid_argument if [interval <= 0]. *)

val stop : t -> unit
(** [stop t] makes the current {!run} return after the ongoing
    iteration. *)

val run_for : t -> float -> unit
(** [run_for t seconds] processes events for (at least) the given wall
    duration, then returns.  Returns earlier only on {!stop}. *)
