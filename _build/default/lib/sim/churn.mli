(** Node churn model.

    The paper's simulations replace churn with an "ultimate churn event"
    — all nodes having just joined (§4.1).  This model restores
    continuous churn as an extension: every time unit, an expected
    [rate] fraction of correct nodes is {e replaced} — the node loses all
    protocol state and rejoins immediately with a fresh bootstrap sample,
    as if a new participant had taken its slot.  Byzantine nodes do not
    churn (the adversary keeps its resources), which is the conservative
    choice. *)

type style =
  | Replace
      (** The affected node loses its state and immediately rejoins with
          a fresh bootstrap (continuous membership turnover). *)
  | Crash
      (** The affected node goes silent forever (fail-stop).  Dead nodes
          are excluded from the denominator of all measurements. *)

type t = private {
  rate : float;  (** Expected fraction of correct nodes affected per unit. *)
  start : float;  (** Churn begins at this time (lets the overlay form). *)
  style : style;
}

val make : ?start:float -> ?style:style -> rate:float -> unit -> t
(** [make ~rate ()] with [start] defaulting to [0.] and [style] to
    {!Replace}.
    @raise Invalid_argument if [rate < 0] or [rate > 1] or [start < 0]. *)

val replacements : t -> Basalt_prng.Rng.t -> correct:int -> int
(** [replacements t rng ~correct] draws how many nodes to replace this
    unit: the integer part of [rate * correct] plus a Bernoulli trial on
    the fraction. *)
