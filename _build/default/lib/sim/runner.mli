(** Monte-Carlo run driver.

    Wires a {!Scenario.t} into the discrete-event engine: correct nodes
    run the scenario's protocol (rounds every τ, sample ticks every k/ρ),
    Byzantine nodes are impersonated by the collective
    {!Basalt_adversary.Adversary}, and a measurement task records the
    statistics of {!Measurements} at the scenario's cadence.

    Node identifiers are laid out deterministically: correct nodes occupy
    [\[0, Q)], Byzantine nodes [\[Q, n)].  The ranking hash makes the
    numbering irrelevant to the protocols. *)

type node_outcome = {
  node_view_byz : float;  (** Final Byzantine proportion in the view. *)
  node_sample_byz : float;
      (** Byzantine proportion among the node's retained samples. *)
  node_samples_total : int;  (** Samples the node's service emitted. *)
  node_isolated : bool;  (** Whether the node ended isolated. *)
}

type bandwidth = {
  correct_messages : int;  (** Messages sent by correct nodes. *)
  correct_bytes : int;  (** Estimated wire bytes from correct nodes. *)
  adversary_messages : int;
  adversary_bytes : int;
  max_datagram : int;
      (** Largest single message payload observed — the §4.3 budget
          argument requires it to fit one 1500-byte MTU. *)
}

type result = {
  scenario : Scenario.t;
  series : Measurements.t;
  final : Measurements.point;  (** Last measurement. *)
  per_node : node_outcome array;  (** Indexed by correct node id. *)
  ever_isolated_after_half : bool;
      (** Whether any correct node was isolated during the second half of
          the run (Fig. 5's failure criterion). *)
  transport : Basalt_engine.Engine.stats;
  bandwidth : bandwidth;
  adversary_pushes : int;
  nodes_churned : int;  (** Replacements performed by the churn model. *)
  sample_histogram : int array;
      (** How often each node id was emitted as a sample, aggregated over
          all correct nodes' service outputs — the raw data behind
          stream-uniformity statistics (a good RPS draws every node
          equally often). *)
}

val is_malicious : Scenario.t -> Basalt_proto.Node_id.t -> bool
(** [is_malicious s id] under the deterministic layout. *)

val run : Scenario.t -> result
(** [run s] executes the scenario to completion. *)

val run_with_observer :
  ?observer:(time:float -> views:(int -> Basalt_proto.Node_id.t array) -> unit) ->
  Scenario.t ->
  result
(** [run_with_observer ~observer s] additionally invokes [observer] at
    each measurement instant with a view accessor (correct nodes only;
    malicious indices yield [[||]]) — the hook used to export snapshots or
    compute custom metrics. *)
