lib/sim/report.ml: Array Buffer Float Fun List Measurements Option Printf String
