lib/sim/runner.ml: Array Basalt_adversary Basalt_analysis Basalt_core Basalt_engine Basalt_graph Basalt_prng Basalt_proto Churn Float Hashtbl List Measurements Scenario
