lib/sim/scenario.mli: Basalt_adversary Basalt_brahms Basalt_core Basalt_engine Basalt_proto Basalt_sps Churn Format
