lib/sim/measurements.ml: Float List
