lib/sim/sweep.ml: Float List Measurements Runner Scenario
