lib/sim/scenario.ml: Basalt_adversary Basalt_brahms Basalt_core Basalt_engine Basalt_sps Churn Float Format Option
