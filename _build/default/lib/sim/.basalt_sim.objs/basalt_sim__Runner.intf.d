lib/sim/runner.mli: Basalt_engine Basalt_proto Measurements Scenario
