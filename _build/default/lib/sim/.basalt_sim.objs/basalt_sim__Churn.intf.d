lib/sim/churn.mli: Basalt_prng
