lib/sim/sweep.mli: Runner Scenario
