lib/sim/report.mli: Measurements
