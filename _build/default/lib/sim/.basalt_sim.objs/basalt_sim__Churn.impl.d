lib/sim/churn.ml: Basalt_prng
