lib/sim/measurements.mli:
