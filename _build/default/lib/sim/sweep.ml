type aggregate = {
  mean_view_byz : float;
  mean_sample_byz : float;
  mean_isolated : float;
  isolation_runs : int;
  runs : int;
}

let run_seeds s ~seeds =
  List.map (fun seed -> Runner.run (Scenario.with_seed s seed)) seeds

let aggregate results =
  match results with
  | [] -> invalid_arg "Sweep.aggregate: no runs"
  | _ ->
      let n = List.length results in
      let total field =
        List.fold_left (fun acc r -> acc +. field r.Runner.final) 0.0 results
        /. float_of_int n
      in
      {
        mean_view_byz = total (fun p -> p.Measurements.view_byz);
        mean_sample_byz = total (fun p -> p.Measurements.sample_byz);
        mean_isolated = total (fun p -> p.Measurements.isolated);
        isolation_runs =
          List.length
            (List.filter (fun r -> r.Runner.ever_isolated_after_half) results);
        runs = n;
      }

let sweep ~make ~seeds xs =
  List.map (fun x -> (x, aggregate (run_seeds (make x) ~seeds))) xs

let max_rho ~make ~rhos ~seeds =
  let sorted = List.sort_uniq Float.compare rhos in
  (* Try candidates in increasing order and stop at the first failure:
     isolation risk grows with rho (Fig. 2c), so once a rate fails, all
     larger ones would too. *)
  let rec scan best = function
    | [] -> best
    | rho :: rest ->
        let agg = aggregate (run_seeds (make ~rho) ~seeds) in
        if agg.isolation_runs = 0 then scan (Some rho) rest else best
  in
  scan None sorted
