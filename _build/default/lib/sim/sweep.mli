(** Parameter sweeps and multi-seed aggregation.

    The paper's figures vary one parameter at a time around the base
    scenario and average results over runs; these helpers drive
    {!Runner.run} accordingly. *)

type aggregate = {
  mean_view_byz : float;
  mean_sample_byz : float;
  mean_isolated : float;
  isolation_runs : int;  (** Runs with at least one isolation after the
                             half-time mark. *)
  runs : int;
}

val run_seeds : Scenario.t -> seeds:int list -> Runner.result list
(** [run_seeds s ~seeds] runs [s] once per seed. *)

val aggregate : Runner.result list -> aggregate
(** [aggregate results] averages final measurements across runs.
    @raise Invalid_argument on the empty list. *)

val sweep :
  make:('a -> Scenario.t) -> seeds:int list -> 'a list -> ('a * aggregate) list
(** [sweep ~make ~seeds xs] evaluates [make x] for each parameter value
    [x], averaged over [seeds]. *)

val max_rho :
  make:(rho:float -> Scenario.t) ->
  rhos:float list ->
  seeds:int list ->
  float option
(** [max_rho ~make ~rhos ~seeds] tests the candidate rates in increasing
    order and returns the largest [rho] before the first failure, where a
    failure is any run observing an isolated correct node during the
    second half of the simulation — the success criterion of Fig. 5.
    Isolation risk grows with [rho], so the scan stops at the first
    failing rate.  [None] if even the smallest fails. *)
