type style = Replace | Crash

type t = { rate : float; start : float; style : style }

let make ?(start = 0.0) ?(style = Replace) ~rate () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Churn.make: rate out of [0,1]";
  if start < 0.0 then invalid_arg "Churn.make: negative start";
  { rate; start; style }

let replacements t rng ~correct =
  let expected = t.rate *. float_of_int correct in
  let whole = int_of_float expected in
  let frac = expected -. float_of_int whole in
  whole + (if Basalt_prng.Rng.bernoulli rng ~p:frac then 1 else 0)
