(** Application-facing sample stream with a bounded history window.

    The RPS service produces a continuous stream [(p_i)] of identifiers;
    applications typically consume the most recent ones (e.g. an
    Avalanche-style consensus draws each query committee from fresh
    samples).  This module keeps the last [capacity] samples in a ring
    buffer and provides the statistics the evaluation section measures
    (proportion of Byzantine identifiers among recent samples). *)

type t
(** A bounded sample history. *)

val create : capacity:int -> t
(** [create ~capacity] retains the last [capacity] samples.
    @raise Invalid_argument if [capacity <= 0]. *)

val push : t -> Basalt_proto.Node_id.t -> unit
(** [push t id] appends one sample, evicting the oldest if full. *)

val push_list : t -> Basalt_proto.Node_id.t list -> unit
(** [push_list t ids] appends samples in order. *)

val total : t -> int
(** [total t] counts all samples ever pushed. *)

val retained : t -> int
(** [retained t] is the current window size, [<= capacity]. *)

val recent : t -> int -> Basalt_proto.Node_id.t list
(** [recent t n] is the most recent [min n (retained t)] samples, newest
    first. *)

val proportion : (Basalt_proto.Node_id.t -> bool) -> t -> float
(** [proportion p t] is the fraction of retained samples satisfying [p];
    [0.] when empty. *)

val iter : (Basalt_proto.Node_id.t -> unit) -> t -> unit
(** [iter f t] applies [f] to each retained sample, oldest first. *)

val draw : t -> Basalt_prng.Rng.t -> k:int -> Basalt_proto.Node_id.t array
(** [draw t rng ~k] picks [k] retained samples uniformly at random with
    replacement (committee selection helper). Returns [[||]] when
    empty. *)
