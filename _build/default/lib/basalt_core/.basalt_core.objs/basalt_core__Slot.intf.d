lib/basalt_core/slot.mli: Basalt_hashing Basalt_prng Basalt_proto
