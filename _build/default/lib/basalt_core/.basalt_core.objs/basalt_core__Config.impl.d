lib/basalt_core/config.ml: Basalt_hashing Format Option
