lib/basalt_core/slot.ml: Basalt_hashing Basalt_proto
