lib/basalt_core/basalt.ml: Array Basalt_hashing Basalt_prng Basalt_proto Config Hashtbl List Option Slot
