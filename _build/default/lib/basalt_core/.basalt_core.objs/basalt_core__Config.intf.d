lib/basalt_core/config.mli: Basalt_hashing Format
