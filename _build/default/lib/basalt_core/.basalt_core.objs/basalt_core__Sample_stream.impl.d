lib/basalt_core/sample_stream.ml: Array Basalt_prng Basalt_proto List
