lib/basalt_core/sample_stream.mli: Basalt_prng Basalt_proto
