lib/basalt_core/basalt.mli: Basalt_prng Basalt_proto Config
