lib/adversary/adversary.mli: Basalt_prng Basalt_proto
