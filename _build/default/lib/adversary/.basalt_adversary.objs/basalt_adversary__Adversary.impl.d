lib/adversary/adversary.ml: Array Basalt_prng Basalt_proto Hashtbl
