module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Report = Basalt_sim.Report

type row = {
  protocol : string;
  msgs_per_node_round : float;
  bytes_per_node_round : float;
  max_datagram : int;
  fits_mtu : bool;
  adversary_bytes_ratio : float;
}

let run ?(scale = Scale.Standard) () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let protocols =
    [
      ("basalt", Scenario.Basalt (Basalt_core.Config.make ~v ()));
      ("brahms", Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
      ("sps", Scenario.Sps (Basalt_sps.Sps.config ~l:v ()));
      ("classic", Scenario.Classic (Basalt_sps.Classic.config ~l:v ()));
    ]
  in
  List.map
    (fun (name, protocol) ->
      let scenario =
        Scenario.make ~name:"cost" ~n ~f:0.1 ~force:10.0 ~protocol ~steps ()
      in
      let r = Runner.run scenario in
      let q = float_of_int (Scenario.num_correct scenario) in
      let rounds = steps /. Scenario.tau scenario in
      let b = r.Runner.bandwidth in
      let per_round x = float_of_int x /. (q *. rounds) in
      {
        protocol = name;
        msgs_per_node_round = per_round b.Runner.correct_messages;
        bytes_per_node_round = per_round b.Runner.correct_bytes;
        max_datagram = b.Runner.max_datagram;
        fits_mtu = b.Runner.max_datagram <= 1500;
        adversary_bytes_ratio =
          (if b.Runner.correct_bytes = 0 then Float.nan
           else
             float_of_int b.Runner.adversary_bytes
             /. float_of_int b.Runner.correct_bytes);
      })
    protocols

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "protocol"; cell = (fun i -> arr.(i).protocol) };
      {
        Report.header = "msgs/node/round";
        cell = (fun i -> Report.float_cell arr.(i).msgs_per_node_round);
      };
      {
        Report.header = "bytes/node/round";
        cell = (fun i -> Report.float_cell arr.(i).bytes_per_node_round);
      };
      {
        Report.header = "max_datagram";
        cell = (fun i -> string_of_int arr.(i).max_datagram);
      };
      {
        Report.header = "fits_MTU";
        cell = (fun i -> string_of_bool arr.(i).fits_mtu);
      };
      {
        Report.header = "adv/correct bytes";
        cell = (fun i -> Report.float_cell arr.(i).adversary_bytes_ratio);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv () =
  Printf.printf "== communication cost (n=%d, v=%d, f=0.1, F=10)\n"
    (Scale.n scale) (Scale.v scale);
  let rows, cols = columns (run ~scale ()) in
  Output.emit ?csv ~rows cols
