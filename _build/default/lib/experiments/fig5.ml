module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report

type row = {
  v : int;
  basalt_max_rho : float option;
  brahms_max_rho : float option;
}

let run ?(scale = Scale.Standard) () =
  let n = Scale.n scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let rhos = Scale.sampling_rates scale in
  let make_basalt v ~rho =
    Scenario.make ~name:"fig5-basalt" ~n ~f:0.1 ~force:10.0
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v ~rho ()))
      ~steps ()
  in
  let make_brahms v ~rho =
    Scenario.make ~name:"fig5-brahms" ~n ~f:0.1 ~force:10.0
      ~protocol:(Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ~rho ()))
      ~steps ()
  in
  List.map
    (fun v ->
      {
        v;
        basalt_max_rho = Sweep.max_rho ~make:(make_basalt v) ~rhos ~seeds;
        brahms_max_rho = Sweep.max_rho ~make:(make_brahms v) ~rhos ~seeds;
      })
    (Scale.view_sizes scale)

let rho_cell = function Some r -> Report.float_cell r | None -> "none"

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "v"; cell = (fun i -> string_of_int arr.(i).v) };
      {
        Report.header = "basalt_max_rho";
        cell = (fun i -> rho_cell arr.(i).basalt_max_rho);
      };
      {
        Report.header = "brahms_max_rho";
        cell = (fun i -> rho_cell arr.(i).brahms_max_rho);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv () =
  Printf.printf
    "== fig5 (max sampling rate without isolation)  [n=%d f=0.1 F=10]\n"
    (Scale.n scale);
  let rows, cols = columns (run ~scale ()) in
  Output.emit ?csv ~rows cols
