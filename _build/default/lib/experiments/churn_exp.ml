module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Sweep = Basalt_sim.Sweep
module Churn = Basalt_sim.Churn
module Report = Basalt_sim.Report

type row = {
  churn_rate : float;
  basalt : Sweep.aggregate;
  brahms : Sweep.aggregate;
  basalt_churned : int;
}

let rates = [ 0.0; 0.005; 0.01; 0.02; 0.05 ]

let run ?(scale = Scale.Standard) () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  List.map
    (fun churn_rate ->
      let churn =
        if churn_rate = 0.0 then None
        else Some (Churn.make ~start:(steps /. 4.0) ~rate:churn_rate ())
      in
      let scenario protocol =
        Scenario.make ~name:"churn" ~n ~f:0.1 ~force:10.0 ~protocol ~steps
          ?churn ()
      in
      let basalt_scenario =
        scenario (Scenario.Basalt (Basalt_core.Config.make ~v ()))
      in
      let basalt_runs = Sweep.run_seeds basalt_scenario ~seeds in
      let brahms =
        Sweep.aggregate
          (Sweep.run_seeds
             (scenario (Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ())))
             ~seeds)
      in
      {
        churn_rate;
        basalt = Sweep.aggregate basalt_runs;
        brahms;
        basalt_churned =
          (match basalt_runs with
          | r :: _ -> r.Runner.nodes_churned
          | [] -> 0);
      })
    rates

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      {
        Report.header = "churn_rate";
        cell = (fun i -> Report.float_cell arr.(i).churn_rate);
      };
      {
        Report.header = "basalt_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_sample_byz);
      };
      {
        Report.header = "brahms_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_sample_byz);
      };
      {
        Report.header = "basalt_isolated";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_isolated);
      };
      {
        Report.header = "brahms_isolated";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_isolated);
      };
      {
        Report.header = "replacements";
        cell = (fun i -> string_of_int arr.(i).basalt_churned);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv () =
  Printf.printf "== churn extension (n=%d, v=%d, f=0.1, F=10)\n" (Scale.n scale)
    (Scale.v scale);
  let rows, cols = columns (run ~scale ()) in
  Output.emit ?csv ~rows cols
