module Dag_network = Basalt_avalanche.Dag_network
module Network = Basalt_avalanche.Network
module Scenario = Basalt_sim.Scenario
module Report = Basalt_sim.Report

type row = {
  sampler : string;
  safety : bool;
  conflict_resolved : float;
  virtuous_accepted : float;
  committee_byz : float;
}

let dims scale =
  match scale with
  | Scale.Quick -> (100, 24, 150.0)
  | Scale.Standard -> (200, 40, 250.0)
  | Scale.Full -> (400, 60, 300.0)

let run ?(scale = Scale.Standard) () =
  let n, v, steps = dims scale in
  let samplers =
    [
      ("full-knowledge", Network.Full_knowledge);
      ( "basalt",
        Network.Service (Scenario.Basalt (Basalt_core.Config.make ~v ~k:(v / 4) ())) );
      ( "classic",
        Network.Service (Scenario.Classic (Basalt_sps.Classic.config ~l:v ())) );
    ]
  in
  List.map
    (fun (name, sampling) ->
      let r =
        Dag_network.run
          (Dag_network.config ~n ~f:0.15 ~sampling ~steps ~warmup:25.0 ())
      in
      {
        sampler = name;
        safety = r.Dag_network.safety;
        conflict_resolved = r.Dag_network.conflict_resolved_fraction;
        virtuous_accepted = r.Dag_network.virtuous_accepted_fraction;
        committee_byz = r.Dag_network.committee_byz;
      })
    samplers

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "sampler"; cell = (fun i -> arr.(i).sampler) };
      {
        Report.header = "safety";
        cell = (fun i -> string_of_bool arr.(i).safety);
      };
      {
        Report.header = "conflict_resolved";
        cell = (fun i -> Report.float_cell arr.(i).conflict_resolved);
      };
      {
        Report.header = "virtuous_accepted";
        cell = (fun i -> Report.float_cell arr.(i).virtuous_accepted);
      };
      {
        Report.header = "committee_byz";
        cell = (fun i -> Report.float_cell arr.(i).committee_byz);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv () =
  let n, v, _ = dims scale in
  Printf.printf
    "== dag extension: Avalanche DAG consensus with a double-spend (n=%d, \
     v=%d, f=0.15, F=10)\n"
    n v;
  let rows, cols = columns (run ~scale ()) in
  Output.emit ?csv ~rows cols
