module Report = Basalt_sim.Report
module Model = Basalt_analysis.Model

let rows =
  [
    ("n", "number of nodes", "1000, 10000", "scale preset");
    ("f", "fraction of Byzantine nodes", "10%, 30%", "0.1");
    ("Q", "number of correct nodes", "(1-f)n", "derived");
    ("F", "attack force", ">= 0", "10");
    ("v", "view size", "50 to 200", "scale preset");
    ("tau", "exchange interval", "1 time unit", "1");
    ("rho", "sampling rate", "~1 per time unit", "1");
    ("k", "replacement count", "up to v/2", "v/2");
    ("l", "Brahms view/sampler size", "= v", "= v");
    ("alpha,beta,gamma", "Brahms push/pull/sample weights", "1/3", "1/3");
  ]

let print ?(scale = Scale.Standard) () =
  Printf.printf "== Table 1: parameters (scale=%s: n=%d, v=%d)\n"
    (Scale.to_string scale) (Scale.n scale) (Scale.v scale);
  let arr = Array.of_list rows in
  Report.print_table ~rows:(Array.length arr)
    [
      { Report.header = "param"; cell = (fun i -> let a, _, _, _ = arr.(i) in a) };
      {
        Report.header = "meaning";
        cell = (fun i -> let _, b, _, _ = arr.(i) in b);
      };
      { Report.header = "paper"; cell = (fun i -> let _, _, c, _ = arr.(i) in c) };
      {
        Report.header = "default here";
        cell = (fun i -> let _, _, _, d = arr.(i) in d);
      };
    ];
  Printf.printf "\nEq.16 stability across the paper envelope (exists B1?):\n";
  List.iter
    (fun (n, f, v) ->
      let env = Model.env ~n ~f ~v () in
      Printf.printf "  n=%-6d f=%.2f v=%-4d -> %s\n" n f v
        (match Model.steady_state env with
        | Some b1 -> Printf.sprintf "B1 = %.4f (optimal %.2f)" b1 f
        | None -> "no equilibrium (attack wins)"))
    [
      (1000, 0.1, 50);
      (1000, 0.1, 100);
      (1000, 0.3, 100);
      (10_000, 0.1, 160);
      (10_000, 0.3, 160);
      (10_000, 0.1, 50);
    ]
