module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report
module Link = Basalt_engine.Link

type row = {
  loss_rate : float;
  basalt : Sweep.aggregate;
  brahms : Sweep.aggregate;
}

let loss_rates = [ 0.0; 0.1; 0.2; 0.4 ]

let run ?(scale = Scale.Standard) () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  List.map
    (fun loss_rate ->
      let loss =
        if loss_rate = 0.0 then Link.Loss.None
        else Link.Loss.Bernoulli loss_rate
      in
      let agg protocol =
        Sweep.aggregate
          (Sweep.run_seeds
             (Scenario.make ~name:"robustness" ~n ~f:0.1 ~force:10.0 ~protocol
                ~steps ~loss ())
             ~seeds)
      in
      {
        loss_rate;
        basalt = agg (Scenario.Basalt (Basalt_core.Config.make ~v ()));
        brahms = agg (Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
      })
    loss_rates

type latency_row = { jitter : float; basalt_sample_byz : float }

let jitters = [ 0.0; 0.25; 0.5; 1.0 ]

let run_latency ?(scale = Scale.Standard) () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  List.map
    (fun jitter ->
      let latency =
        if jitter = 0.0 then Link.Latency.Zero
        else Link.Latency.Uniform { lo = 0.0; hi = jitter }
      in
      let agg =
        Sweep.aggregate
          (Sweep.run_seeds
             (Scenario.make ~name:"robustness-latency" ~n ~f:0.1 ~force:10.0
                ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v ()))
                ~steps ~latency ())
             ~seeds)
      in
      { jitter; basalt_sample_byz = agg.Sweep.mean_sample_byz })
    jitters

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      {
        Report.header = "loss_rate";
        cell = (fun i -> Report.float_cell arr.(i).loss_rate);
      };
      {
        Report.header = "basalt_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_sample_byz);
      };
      {
        Report.header = "brahms_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_sample_byz);
      };
      {
        Report.header = "basalt_isolated";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_isolated);
      };
      {
        Report.header = "brahms_isolated";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_isolated);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv () =
  Printf.printf "== robustness extension: message loss (n=%d, v=%d, F=10)\n"
    (Scale.n scale) (Scale.v scale);
  let rows, cols = columns (run ~scale ()) in
  Output.emit ?csv ~rows cols;
  Printf.printf "latency jitter sweep (basalt, max delay as fraction of tau):\n";
  List.iter
    (fun r ->
      Printf.printf "  jitter=%.2f  samples_byz=%.4f\n" r.jitter
        r.basalt_sample_byz)
    (run_latency ~scale ())
