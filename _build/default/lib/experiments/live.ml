module Deployment = Basalt_avalanche.Deployment
module Report = Basalt_sim.Report

type row = {
  sampler : string;
  malicious_proportion : float;
  paper_value : float;
}

let config_of scale =
  match scale with
  | Scale.Quick -> Deployment.config ~n:266 ~adversarial:50 ~v:40 ~steps:150.0 ()
  | Scale.Standard -> Deployment.config ~n:532 ~adversarial:100 ~v:100 ~steps:600.0 ()
  | Scale.Full ->
      (* The paper's 10-hour run at one exchange per 10 s. *)
      Deployment.config ~n:532 ~adversarial:100 ~v:100 ~steps:3600.0 ()

let run ?(scale = Scale.Standard) () =
  let result = Deployment.run (config_of scale) in
  ( [
      {
        sampler = "basalt-derived";
        malicious_proportion = result.Deployment.basalt_proportion;
        paper_value = 0.175;
      };
      {
        sampler = "full-knowledge";
        malicious_proportion = result.Deployment.full_knowledge_proportion;
        paper_value = 0.184;
      };
      {
        sampler = "ground-truth";
        malicious_proportion = result.Deployment.true_proportion;
        paper_value = 0.188;
      };
    ],
    result )

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "sampler"; cell = (fun i -> arr.(i).sampler) };
      {
        Report.header = "malicious_prop";
        cell = (fun i -> Report.float_cell arr.(i).malicious_proportion);
      };
      {
        Report.header = "paper";
        cell = (fun i -> Report.float_cell arr.(i).paper_value);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv () =
  let rows, result = run ~scale () in
  Printf.printf
    "== live deployment (simulated; eclipse on witness, %d samples%s)\n"
    result.Deployment.witness_samples
    (if result.Deployment.witness_isolated then ", WITNESS ISOLATED" else "");
  let n, cols = columns rows in
  Output.emit ?csv ~rows:n cols
