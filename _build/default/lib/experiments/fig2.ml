module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report

type panel = F_byzantine | Force | Rho | View_size

let panel_name = function
  | F_byzantine -> "fig2a (vs f)"
  | Force -> "fig2b (vs F)"
  | Rho -> "fig2c (vs rho)"
  | View_size -> "fig2d (vs v)"

let all_panels = [ F_byzantine; Force; Rho; View_size ]

type row = {
  x : float;
  optimal : float;
  basalt : Sweep.aggregate;
  brahms : Sweep.aggregate;
}

type point = { f : float; force : float; rho : float; v : int }

let base scale =
  { f = 0.1; force = 10.0; rho = 1.0; v = Scale.v scale }

let protocol_of which point =
  match which with
  | `Basalt -> Scenario.Basalt (Basalt_core.Config.make ~v:point.v ~rho:point.rho ())
  | `Brahms ->
      Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:point.v ~rho:point.rho ())

let scenario scale which point =
  Scenario.make
    ~name:(panel_name F_byzantine)
    ~n:(Scale.n scale) ~f:point.f ~force:point.force
    ~protocol:(protocol_of which point)
    ~steps:(Scale.steps scale) ()

let points scale panel =
  let base = base scale in
  match panel with
  | F_byzantine ->
      List.map
        (fun f -> (f, { base with f }))
        (Scale.byzantine_fractions scale)
  | Force ->
      List.map (fun force -> (force, { base with force })) (Scale.forces scale)
  | Rho ->
      List.map (fun rho -> (rho, { base with rho })) (Scale.sampling_rates scale)
  | View_size ->
      List.map
        (fun v -> (float_of_int v, { base with v }))
        (Scale.view_sizes scale)

let run ?(scale = Scale.Standard) panel =
  let seeds = Scale.seeds scale in
  List.map
    (fun (x, point) ->
      let agg which =
        Sweep.aggregate (Sweep.run_seeds (scenario scale which point) ~seeds)
      in
      { x; optimal = point.f; basalt = agg `Basalt; brahms = agg `Brahms })
    (points scale panel)

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "x"; cell = (fun i -> Report.float_cell arr.(i).x) };
      {
        Report.header = "basalt_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_sample_byz);
      };
      {
        Report.header = "brahms_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_sample_byz);
      };
      {
        Report.header = "optimal";
        cell = (fun i -> Report.float_cell arr.(i).optimal);
      };
      {
        Report.header = "basalt_isolated";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_isolated);
      };
      {
        Report.header = "brahms_isolated";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_isolated);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv panel =
  Printf.printf "== %s  [scale=%s]\n" (panel_name panel) (Scale.to_string scale);
  let rows, cols = columns (run ~scale panel) in
  Output.emit ?csv ~rows cols
