type t = Quick | Standard | Full

let of_string = function
  | "quick" -> Ok Quick
  | "standard" -> Ok Standard
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown scale %S (quick|standard|full)" s)

let to_string = function
  | Quick -> "quick"
  | Standard -> "standard"
  | Full -> "full"

let n = function Quick -> 300 | Standard -> 1000 | Full -> 10_000
let v = function Quick -> 40 | Standard -> 100 | Full -> 160
let steps = function Quick -> 100.0 | Standard -> 200.0 | Full -> 200.0
(* One seed per run at the larger presets keeps the full suite's wall
   time reasonable on one core; the determinism of the runner means any
   point can be re-averaged by passing more seeds to the library API. *)
let seeds = function Quick -> [ 1 ] | Standard -> [ 1 ] | Full -> [ 1 ]

let view_sizes = function
  | Quick -> [ 20; 30; 40; 60 ]
  | Standard -> [ 30; 50; 75; 100; 150; 200 ]
  | Full -> [ 50; 75; 100; 125; 160; 200 ]

let byzantine_fractions = function
  | Quick -> [ 0.05; 0.1; 0.2; 0.3 ]
  | Standard | Full -> [ 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.4 ]

let forces = function
  | Quick -> [ 1.0; 10.0; 100.0 ]
  | Standard | Full -> [ 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0 ]

let sampling_rates = function
  | Quick -> [ 0.5; 1.0; 2.0; 4.0 ]
  | Standard | Full -> [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ]
