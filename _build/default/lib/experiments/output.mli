(** Shared table emission for experiment modules: print to stdout and
    optionally write the same rows as CSV for external plotting. *)

val emit :
  ?csv:string -> rows:int -> Basalt_sim.Report.column list -> unit
(** [emit ?csv ~rows cols] prints the aligned table; when [csv] is given,
    also writes the data to that path and notes it on stdout. *)
