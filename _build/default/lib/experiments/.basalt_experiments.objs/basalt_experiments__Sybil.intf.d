lib/experiments/sybil.mli: Basalt_sim Scale
