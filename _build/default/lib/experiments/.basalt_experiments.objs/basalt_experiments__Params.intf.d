lib/experiments/params.mli: Scale
