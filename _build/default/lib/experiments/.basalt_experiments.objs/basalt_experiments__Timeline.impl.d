lib/experiments/timeline.ml: Array Basalt_brahms Basalt_core Basalt_sim Basalt_sps List Output Printf String
