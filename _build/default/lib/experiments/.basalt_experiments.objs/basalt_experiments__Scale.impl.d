lib/experiments/scale.ml: Printf
