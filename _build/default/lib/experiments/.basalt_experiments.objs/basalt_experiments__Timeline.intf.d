lib/experiments/timeline.mli: Basalt_sim
