lib/experiments/live.ml: Array Basalt_avalanche Basalt_sim Output Printf Scale
