lib/experiments/output.mli: Basalt_sim
