lib/experiments/fig4.mli: Basalt_sim Scale
