lib/experiments/sybil.ml: Array Basalt_core Basalt_hashing Basalt_sim List Output Printf Scale
