lib/experiments/fig5.mli: Basalt_sim Scale
