lib/experiments/cost.mli: Basalt_sim Scale
