lib/experiments/fig5.ml: Array Basalt_brahms Basalt_core Basalt_sim List Output Printf Scale
