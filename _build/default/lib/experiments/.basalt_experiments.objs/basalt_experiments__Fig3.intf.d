lib/experiments/fig3.mli: Basalt_sim Scale
