lib/experiments/output.ml: Basalt_sim Printf
