lib/experiments/fig4.ml: Array Basalt_analysis Basalt_brahms Basalt_core Basalt_sim List Output Printf Scale
