lib/experiments/scale.mli: Stdlib
