lib/experiments/fig3.ml: Array Basalt_brahms Basalt_core Basalt_sim Float Fun List Output Printf Scale
