lib/experiments/uniformity.mli: Basalt_sim Scale
