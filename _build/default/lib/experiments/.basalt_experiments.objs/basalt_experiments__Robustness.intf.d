lib/experiments/robustness.mli: Basalt_sim Scale
