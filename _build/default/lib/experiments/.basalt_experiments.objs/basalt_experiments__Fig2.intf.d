lib/experiments/fig2.mli: Basalt_sim Scale
