lib/experiments/churn_exp.mli: Basalt_sim Scale
