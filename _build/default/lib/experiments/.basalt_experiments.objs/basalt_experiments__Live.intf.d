lib/experiments/live.mli: Basalt_avalanche Basalt_sim Scale
