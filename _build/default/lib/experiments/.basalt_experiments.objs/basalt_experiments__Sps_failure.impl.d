lib/experiments/sps_failure.ml: Array Basalt_adversary Basalt_brahms Basalt_core Basalt_sim Basalt_sps List Output Printf Scale
