lib/experiments/theory.mli: Scale
