lib/experiments/sps_failure.mli: Basalt_sim Scale
