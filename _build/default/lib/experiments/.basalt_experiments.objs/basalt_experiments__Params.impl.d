lib/experiments/params.ml: Array Basalt_analysis Basalt_sim List Printf Scale
