lib/experiments/theory.ml: Array Basalt_analysis Basalt_core Basalt_sim List Printf Scale
