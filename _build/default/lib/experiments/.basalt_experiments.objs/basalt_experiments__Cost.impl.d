lib/experiments/cost.ml: Array Basalt_brahms Basalt_core Basalt_sim Basalt_sps Float List Output Printf Scale
