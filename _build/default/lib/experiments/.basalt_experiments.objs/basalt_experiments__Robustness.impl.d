lib/experiments/robustness.ml: Array Basalt_brahms Basalt_core Basalt_engine Basalt_sim List Output Printf Scale
