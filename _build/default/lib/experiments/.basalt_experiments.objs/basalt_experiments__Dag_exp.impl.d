lib/experiments/dag_exp.ml: Array Basalt_avalanche Basalt_core Basalt_sim Basalt_sps List Output Printf Scale
