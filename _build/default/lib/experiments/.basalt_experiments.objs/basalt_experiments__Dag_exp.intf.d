lib/experiments/dag_exp.mli: Basalt_sim Scale
