lib/experiments/uniformity.ml: Array Basalt_analysis Basalt_brahms Basalt_core Basalt_prng Basalt_sim Basalt_sps Float List Output Printf Scale
