lib/brahms/brahms_config.mli: Basalt_hashing Format
