lib/brahms/brahms_config.ml: Basalt_hashing Float Format Option
