lib/brahms/brahms.mli: Basalt_prng Basalt_proto Brahms_config
