lib/brahms/brahms.ml: Array Basalt_core Basalt_hashing Basalt_prng Basalt_proto Brahms_config Float List
