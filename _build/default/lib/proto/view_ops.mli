(** Operations on views (arrays of node identifiers).

    Shared helpers for inspecting and combining the fixed-size views that
    every protocol in this repository maintains. *)

val count : (Node_id.t -> bool) -> Node_id.t array -> int
(** [count p view] is the number of entries satisfying [p]. *)

val proportion : (Node_id.t -> bool) -> Node_id.t array -> float
(** [proportion p view] is [count p view / length view]; [0.] if the view
    is empty. *)

val distinct : Node_id.t array -> Node_id.t array
(** [distinct view] removes duplicates, preserving first occurrence
    order. *)

val contains : Node_id.t array -> Node_id.t -> bool
(** [contains view id] tests membership. *)

val random_member : Basalt_prng.Rng.t -> Node_id.t array -> Node_id.t option
(** [random_member rng view] is a uniform element, or [None] if empty. *)

val random_subset :
  Basalt_prng.Rng.t -> k:int -> Node_id.t array -> Node_id.t array
(** [random_subset rng ~k view] draws [min k (length view)] distinct
    positions uniformly (the [rand(k, S)] primitive of paper Eq. (1)). *)

val union : Node_id.t array list -> Node_id.t array
(** [union views] concatenates and deduplicates. *)
