let count p view =
  Array.fold_left (fun acc id -> if p id then acc + 1 else acc) 0 view

let proportion p view =
  let len = Array.length view in
  if len = 0 then 0.0 else float_of_int (count p view) /. float_of_int len

let distinct view =
  let seen = Hashtbl.create (Array.length view) in
  let out = ref [] in
  Array.iter
    (fun id ->
      let key = Node_id.to_int id in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := id :: !out
      end)
    view;
  Array.of_list (List.rev !out)

let contains view id = Array.exists (Node_id.equal id) view

let random_member rng view =
  if Array.length view = 0 then None
  else Some (Basalt_prng.Rng.pick rng view)

let random_subset rng ~k view =
  Basalt_prng.Rng.sample_without_replacement rng ~k view

let union views = distinct (Array.concat views)
