type t =
  | Pull_request
  | Pull_reply of Node_id.t array
  | Push of Node_id.t array
  | Push_id of Node_id.t

let kind = function
  | Pull_request -> "pull"
  | Pull_reply _ -> "pull-reply"
  | Push _ -> "push"
  | Push_id _ -> "push-id"

let payload_ids = function
  | Pull_request -> 0
  | Pull_reply view | Push view -> Array.length view
  | Push_id _ -> 1

let bytes_on_wire ?(id_size = 4) m = 4 + (id_size * payload_ids m)

let pp ppf m =
  match m with
  | Pull_request -> Format.fprintf ppf "PULL"
  | Pull_reply view -> Format.fprintf ppf "PULL-REPLY[%d ids]" (Array.length view)
  | Push view -> Format.fprintf ppf "PUSH[%d ids]" (Array.length view)
  | Push_id id -> Format.fprintf ppf "PUSH-ID[%a]" Node_id.pp id
