lib/proto/node_id.ml: Array Format Int
