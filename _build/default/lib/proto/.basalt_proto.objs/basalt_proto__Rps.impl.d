lib/proto/rps.ml: Basalt_prng Message Node_id
