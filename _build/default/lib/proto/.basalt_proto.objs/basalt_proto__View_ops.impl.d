lib/proto/view_ops.ml: Array Basalt_prng Hashtbl List Node_id
