lib/proto/rps.mli: Basalt_prng Message Node_id
