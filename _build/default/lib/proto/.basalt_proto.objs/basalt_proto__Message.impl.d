lib/proto/message.ml: Array Format Node_id
