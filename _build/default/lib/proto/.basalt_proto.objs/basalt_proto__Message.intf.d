lib/proto/message.mli: Format Node_id
