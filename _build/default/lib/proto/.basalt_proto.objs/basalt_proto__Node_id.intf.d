lib/proto/node_id.mli: Format
