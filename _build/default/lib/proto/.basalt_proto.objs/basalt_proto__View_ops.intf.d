lib/proto/view_ops.mli: Basalt_prng Node_id
