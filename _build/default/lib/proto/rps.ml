type send = dst:Node_id.t -> Message.t -> unit

type t = {
  protocol : string;
  node : Node_id.t;
  on_message : from:Node_id.t -> Message.t -> unit;
  on_round : unit -> unit;
  sample_tick : unit -> Node_id.t list;
  current_view : unit -> Node_id.t array;
}

type maker =
  id:Node_id.t ->
  bootstrap:Node_id.t array ->
  rng:Basalt_prng.Rng.t ->
  send:send ->
  t

let null node =
  {
    protocol = "null";
    node;
    on_message = (fun ~from:_ _ -> ());
    on_round = ignore;
    sample_tick = (fun () -> []);
    current_view = (fun () -> [||]);
  }
