type t = int

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative id";
  i

let to_int id = id
let equal = Int.equal
let compare = Int.compare
let hash id = id
let pp ppf id = Format.fprintf ppf "n%d" id
let range n = Array.init n (fun i -> i)
