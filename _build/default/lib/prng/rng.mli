(** Seedable random number generator for simulations.

    A thin, deterministic wrapper around {!Xoshiro256} providing the draw
    primitives the simulator and the protocols need.  Every run of an
    experiment is reproducible from a single integer seed; independent
    sub-streams are obtained with {!split} so that, e.g., each simulated
    node owns its own generator and the schedule of one node does not
    perturb the randomness of another. *)

type t
(** Mutable generator. *)

val create : seed:int -> t
(** [create ~seed] returns a deterministic generator for [seed]. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream.  The child and
    the parent then evolve independently. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val int64 : t -> int64
(** [int64 t] is the next raw 64-bit output. *)

val bits : t -> int
(** [bits t] is a uniform non-negative native integer (62 random bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)], using rejection sampling so
    the result is exactly uniform.  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)], with 53 bits of precision. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a].
    @raise Invalid_argument if [a] is empty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list t l] is a uniformly chosen element of [l].
    @raise Invalid_argument if [l] is empty. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] permutes [a] uniformly (Fisher–Yates). *)

val sample_without_replacement : t -> k:int -> 'a array -> 'a array
(** [sample_without_replacement t ~k a] draws [min k (Array.length a)]
    distinct positions of [a], uniformly, in random order. *)

val sample_indices : t -> k:int -> n:int -> int array
(** [sample_indices t ~k ~n] draws [min k n] distinct integers from
    [\[0, n)], uniformly, in random order. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from Exp([rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of failures before the first success of
    a Bernoulli([p]) sequence. @raise Invalid_argument unless [0 < p <= 1]. *)
