(** Zipf-distributed integer sampling.

    Used by workload generators (e.g. skewed choice of gossip targets or of
    decisions submitted to the consensus example).  The sampler precomputes
    the cumulative distribution once and then draws in O(log n) by binary
    search. *)

type t
(** A prepared Zipf distribution over [{0, …, n-1}]. *)

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a Zipf distribution with exponent [s] over [n]
    ranks; rank [i] has weight [1 / (i+1)^s].
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank in [\[0, n)]. *)

val n : t -> int
(** [n t] is the support size. *)

val probability : t -> int -> float
(** [probability t i] is the probability of rank [i]. *)
