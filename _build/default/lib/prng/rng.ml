type t = Xoshiro256.t

let create ~seed = Xoshiro256.create (Splitmix64.mix (Int64.of_int seed))
let copy = Xoshiro256.copy
let int64 = Xoshiro256.next

let split t =
  let s0 = Xoshiro256.next t in
  let s1 = Xoshiro256.next t in
  let s2 = Xoshiro256.next t in
  let s3 = Xoshiro256.next t in
  (* Remix through SplitMix64 so the child stream is decorrelated from the
     parent even though it is seeded from the parent's outputs. *)
  let m = Splitmix64.mix in
  if m s0 = 0L && m s1 = 0L && m s2 = 0L && m s3 = 0L then
    Xoshiro256.of_state 1L 0L 0L 0L
  else Xoshiro256.of_state (m s0) (m s1) (m s2) (m s3)

let bits t = Int64.to_int (Xoshiro256.next t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits t land (bound - 1)
  else
    let threshold = max_int - (max_int mod bound) in
    let rec go () =
      let r = bits t in
      if r >= threshold then go () else r mod bound
    in
    go ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t x =
  let mantissa = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  mantissa *. 0x1.0p-53 *. x

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t ~p = float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_indices t ~k ~n =
  if n < 0 then invalid_arg "Rng.sample_indices: negative n";
  let k = min k n in
  if k <= 0 then [||]
  else if 3 * k >= n then begin
    (* Dense case: partial Fisher–Yates over an explicit index array. *)
    let idx = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in_range t ~lo:i ~hi:(n - 1) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp
    done;
    Array.sub idx 0 k
  end
  else begin
    (* Sparse case: rejection into a hash table, k << n. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let candidate = int t n in
      if not (Hashtbl.mem seen candidate) then begin
        Hashtbl.add seen candidate ();
        out.(!filled) <- candidate;
        incr filled
      end
    done;
    out
  end

let sample_without_replacement t ~k a =
  let idx = sample_indices t ~k ~n:(Array.length a) in
  Array.map (fun i -> a.(i)) idx

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
