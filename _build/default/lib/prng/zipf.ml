type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !total
  done;
  let z = !total in
  Array.iteri (fun i c -> cdf.(i) <- c /. z) cdf;
  { cdf }

let n t = Array.length t.cdf

let probability t i =
  if i < 0 || i >= n t then invalid_arg "Zipf.probability: rank out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cdf strictly exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length t.cdf - 1)
