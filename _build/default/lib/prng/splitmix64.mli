(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable generator (Steele, Lea & Flood, OOPSLA'14)
    used here both as a stand-alone PRNG and to seed {!Xoshiro256}.  The
    implementation matches the reference C code bit for bit; see the unit
    tests for the published test vectors. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator initialised with [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val mix : int64 -> int64
(** [mix z] is the stateless SplitMix64 finalizer: a high-quality 64-bit
    bijective mixer, usable as a hash of [z]. *)
