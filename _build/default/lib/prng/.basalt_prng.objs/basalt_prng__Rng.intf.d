lib/prng/rng.mli:
