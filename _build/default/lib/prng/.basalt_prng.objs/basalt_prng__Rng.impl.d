lib/prng/rng.ml: Array Float Hashtbl Int64 List Splitmix64 Xoshiro256
