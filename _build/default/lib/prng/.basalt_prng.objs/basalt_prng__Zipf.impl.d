lib/prng/zipf.ml: Array Float Rng
