(** Xoshiro256++ pseudo-random number generator.

    The general-purpose generator of Blackman & Vigna (2019), with 256 bits
    of state and period [2^256 - 1].  State is initialised from a
    {!Splitmix64} stream, as recommended by the authors. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] seeds the four state words from a SplitMix64 stream
    started at [seed]. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state s0 s1 s2 s3] builds a generator from an explicit state.
    @raise Invalid_argument if all four words are zero (the one forbidden
    state). *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)
