lib/codec/wire.ml: Array Basalt_proto Bytes Format Int64 Result
