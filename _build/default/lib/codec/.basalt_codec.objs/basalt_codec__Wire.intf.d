lib/codec/wire.mli: Basalt_proto Format
