lib/analysis/ode.mli:
