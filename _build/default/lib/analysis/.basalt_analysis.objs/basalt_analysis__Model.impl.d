lib/analysis/model.ml: Ode Option
