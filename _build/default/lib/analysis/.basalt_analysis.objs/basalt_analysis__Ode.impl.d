lib/analysis/ode.ml: Float List
