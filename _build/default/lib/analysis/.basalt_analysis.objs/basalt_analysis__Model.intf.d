lib/analysis/model.mli:
