lib/analysis/fit.mli:
