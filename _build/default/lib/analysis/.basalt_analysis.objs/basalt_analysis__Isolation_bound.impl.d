lib/analysis/isolation_bound.ml: Model
