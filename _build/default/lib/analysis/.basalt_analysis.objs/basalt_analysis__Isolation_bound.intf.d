lib/analysis/isolation_bound.mli: Model
