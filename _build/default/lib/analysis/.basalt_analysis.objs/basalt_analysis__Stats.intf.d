lib/analysis/stats.mli:
