type env = { n : int; f : float; v : int; tau : float; rho : float }

let env ?(n = 10_000) ?(f = 0.1) ?(v = 160) ?(tau = 1.0) ?(rho = 1.0) () =
  if n <= 0 then invalid_arg "Model.env: n must be positive";
  if f < 0.0 || f >= 1.0 then invalid_arg "Model.env: f out of [0,1)";
  if v <= 0 then invalid_arg "Model.env: v must be positive";
  if tau <= 0.0 then invalid_arg "Model.env: tau must be positive";
  if rho <= 0.0 then invalid_arg "Model.env: rho must be positive";
  { n; f; v; tau; rho }

let b_max e = e.f *. float_of_int e.n
let q e = (1.0 -. e.f) *. float_of_int e.n
let b_of_c e c = if e.f = 0.0 then 0.0 else b_max e /. (b_max e +. c)

let c_of_b e b =
  if b <= 0.0 then infinity else b_max e *. (1.0 -. b) /. b

(* Eq. (13): dc/dt = 2 C^2 v / tau * (1 - c / ((1-f) n)) - rho c / v. *)
let dc_dt e ~c =
  let v = float_of_int e.v in
  let cap = q e in
  let big_c = 1.0 -. b_of_c e c in
  (2.0 *. big_c *. big_c *. v /. e.tau *. (1.0 -. (c /. cap)))
  -. (e.rho *. c /. v)

(* Eq. (14): dB/dt = B(1-B)(rho/v - 2v(1-B)(B-f) / (tau f (1-f) n)). *)
let db_dt e ~b =
  if e.f = 0.0 then 0.0
  else begin
    let v = float_of_int e.v in
    let n = float_of_int e.n in
    b *. (1.0 -. b)
    *. ((e.rho /. v)
       -. (2.0 *. v *. (1.0 -. b) *. (b -. e.f)
          /. (e.tau *. e.f *. (1.0 -. e.f) *. n)))
  end

(* Eq. (16): B_{1,2} = (1 + f -/+ sqrt((1-f)^2 - 2 rho f (1-f) n / v^2)) / 2
   (with tau normalised to 1; the general case replaces rho by
   rho * tau). *)
let equilibria e =
  let v = float_of_int e.v in
  let n = float_of_int e.n in
  let rho = e.rho *. e.tau in
  let disc = ((1.0 -. e.f) ** 2.0) -. (2.0 *. rho *. e.f *. (1.0 -. e.f) *. n /. (v *. v)) in
  if disc < 0.0 then None
  else begin
    let root = sqrt disc in
    Some ((1.0 +. e.f -. root) /. 2.0, (1.0 +. e.f +. root) /. 2.0)
  end

let steady_state e = Option.map fst (equilibria e)
let optimal e = e.f

let trajectory e ~b0 ~t1 ~dt =
  Ode.solve ~f:(fun ~t:_ ~y -> db_dt e ~b:y) ~y0:b0 ~t0:0.0 ~t1 ~dt

let view_size_for e ~target_b =
  if target_b <= e.f then
    invalid_arg "Model.view_size_for: target below the optimum f";
  let rec search v =
    if v > 1_000_000 then v
    else begin
      match steady_state { e with v } with
      | Some b1 when b1 <= target_b -> v
      | _ -> search (v + 1)
    end
  in
  search 1
