let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let m = mean xs in
    let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sum_sq /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of [0,1]";
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let idx = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx) in
    let hi = min (n - 1) (lo + 1) in
    let frac = idx -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 0.5

let min_max xs =
  if Array.length xs = 0 then (Float.nan, Float.nan)
  else
    Array.fold_left
      (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
      (xs.(0), xs.(0)) xs

let confidence95 xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else 1.96 *. stddev xs /. sqrt (float_of_int n)

module Online = struct
  type t = { mutable count : int; mutable mean : float; mutable m2 : float }

  let create () = { count = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.count
  let mean t = if t.count = 0 then Float.nan else t.mean

  let variance t =
    if t.count = 0 then Float.nan else t.m2 /. float_of_int t.count

  let stddev t = sqrt (variance t)
end
