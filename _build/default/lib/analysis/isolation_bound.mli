(** Isolation probability bounds (paper §3.3.1).

    Two ways a correct node can become isolated (eclipsed): joining the
    network with a Byzantine-dominated bootstrap, or having all its
    remaining correct slots displaced when seeds are reset.  These
    closed-form bounds show both probabilities can be driven below any
    threshold by sizing [v], [k] and the bootstrap; the [theory]
    experiment reproduces the worked numbers from the paper
    ([B^v < 1e-10] for the joining case, [Δc >= 467] for the reset
    case). *)

val joining_isolation_probability :
  env:Model.env -> f0:float -> bootstrap_size:int -> float
(** Eq. (7): probability that a joining node ends up with only Byzantine
    neighbors, given a bootstrap sample of [bootstrap_size] peers of which
    a fraction [f0] is Byzantine, under worst-case flooding. *)

val reset_isolation_probability : env:Model.env -> k:int -> c:float -> float
(** Eq. (8): probability that, at a reset of [k] slots, all [v - k]
    non-reset slots already hold Byzantine identifiers, when [c]
    correct identifiers have been seen. *)

val coupon_expected_trials : q:float -> c0:float -> delta:int -> float
(** Eq. (9): expected number of uniform correct-identifier receptions
    needed to learn [delta] {e new distinct} correct identifiers when
    [c0] of [q] are already known.
    @raise Invalid_argument if [c0 + delta > q]. *)

val identifiers_received_between_resets :
  env:Model.env -> k:int -> c0:float -> float
(** Eq. (10): lower bound on the number of correct identifiers received
    between two resets, given [c0] correct identifiers currently known. *)

val delta_c_lower_bound : env:Model.env -> k:int -> c0:float -> float
(** Eq. (12): lower bound on the number of {e new distinct} correct
    identifiers learned between two consecutive resets. *)

val safe_c_threshold : env:Model.env -> k:int -> target:float -> float
(** [safe_c_threshold ~env ~k ~target] is the smallest [c] for which
    {!reset_isolation_probability} drops below [target] (the paper's
    example: [c >= 585] gives [< 1e-10] for its scenario). *)
