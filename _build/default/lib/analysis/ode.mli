(** Numerical integration of ordinary differential equations.

    A classical fixed-step fourth-order Runge–Kutta integrator, used to
    solve the paper's continuous model (Eqs. 13–14) and compare its
    trajectory against Monte-Carlo simulations. *)

val rk4_step : f:(t:float -> y:float -> float) -> t:float -> y:float -> dt:float -> float
(** [rk4_step ~f ~t ~y ~dt] advances [y' = f t y] by one step. *)

val solve :
  f:(t:float -> y:float -> float) ->
  y0:float ->
  t0:float ->
  t1:float ->
  dt:float ->
  (float * float) list
(** [solve ~f ~y0 ~t0 ~t1 ~dt] integrates from [(t0, y0)] to [t1],
    returning the trajectory including both endpoints.
    @raise Invalid_argument if [dt <= 0] or [t1 < t0]. *)

val final :
  f:(t:float -> y:float -> float) ->
  y0:float ->
  t0:float ->
  t1:float ->
  dt:float ->
  float
(** [final ~f ~y0 ~t0 ~t1 ~dt] is the last value of {!solve}. *)
