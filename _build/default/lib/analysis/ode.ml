let rk4_step ~f ~t ~y ~dt =
  let k1 = f ~t ~y in
  let k2 = f ~t:(t +. (dt /. 2.0)) ~y:(y +. (dt *. k1 /. 2.0)) in
  let k3 = f ~t:(t +. (dt /. 2.0)) ~y:(y +. (dt *. k2 /. 2.0)) in
  let k4 = f ~t:(t +. dt) ~y:(y +. (dt *. k3)) in
  y +. (dt /. 6.0 *. (k1 +. (2.0 *. k2) +. (2.0 *. k3) +. k4))

let solve ~f ~y0 ~t0 ~t1 ~dt =
  if dt <= 0.0 then invalid_arg "Ode.solve: dt must be positive";
  if t1 < t0 then invalid_arg "Ode.solve: t1 < t0";
  let rec go t y acc =
    if t >= t1 then List.rev ((t, y) :: acc)
    else begin
      let step = Float.min dt (t1 -. t) in
      let y' = rk4_step ~f ~t ~y ~dt:step in
      go (t +. step) y' ((t, y) :: acc)
    end
  in
  go t0 y0 []

let final ~f ~y0 ~t0 ~t1 ~dt =
  match List.rev (solve ~f ~y0 ~t0 ~t1 ~dt) with
  | (_, y) :: _ -> y
  | [] -> y0
