let joining_isolation_probability ~env ~f0 ~bootstrap_size =
  let fn = Model.b_max env in
  if fn = 0.0 then 0.0
  else begin
    let c = (1.0 -. f0) *. float_of_int bootstrap_size in
    let b = 1.0 /. (1.0 +. (c /. fn)) in
    b ** float_of_int env.Model.v
  end

let reset_isolation_probability ~env ~k ~c =
  let fn = Model.b_max env in
  if fn = 0.0 then 0.0
  else begin
    let b = fn /. (fn +. c) in
    b ** float_of_int (env.Model.v - k)
  end

let coupon_expected_trials ~q ~c0 ~delta =
  if c0 +. float_of_int delta > q then
    invalid_arg "Isolation_bound.coupon_expected_trials: delta too large";
  let total = ref 0.0 in
  for i = 0 to delta - 1 do
    total := !total +. (q /. (q -. c0 -. float_of_int i))
  done;
  !total

let identifiers_received_between_resets ~env ~k ~c0 =
  let fn = Model.b_max env in
  let v = float_of_int env.Model.v in
  float_of_int k /. env.Model.rho *. (v /. env.Model.tau)
  *. (c0 /. (fn +. c0))
  *. (1.0 -. env.Model.f)

let delta_c_lower_bound ~env ~k ~c0 =
  let fn = Model.b_max env in
  let q = Model.q env in
  let v = float_of_int env.Model.v in
  let k = float_of_int k in
  let numerator = k *. v *. c0 *. (1.0 -. env.Model.f) *. (q -. c0) in
  let denominator =
    (q *. env.Model.tau *. env.Model.rho *. (fn +. c0))
    +. (k *. v *. c0 *. (1.0 -. env.Model.f))
  in
  numerator /. denominator

let safe_c_threshold ~env ~k ~target =
  let rec search lo hi =
    (* Invariant: prob(hi) < target <= prob(lo). *)
    if hi -. lo <= 1.0 then hi
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if reset_isolation_probability ~env ~k ~c:mid < target then
        search lo mid
      else search mid hi
    end
  in
  if reset_isolation_probability ~env ~k ~c:0.0 < target then 0.0
  else search 0.0 (float_of_int env.Model.n *. 10.0)
