type exponential = { y0 : float; y_inf : float; tau : float; r_square : float }

let linear points =
  let n = List.length points in
  if n < 2 then None
  else begin
    let fn = float_of_int n in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let denom = (fn *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then None
    else begin
      let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. fn in
      Some (slope, intercept)
    end
  end

let r_square_of points ~slope ~intercept =
  let n = float_of_int (List.length points) in
  let mean_y = List.fold_left (fun a (_, y) -> a +. y) 0.0 points /. n in
  let ss_tot =
    List.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.0)) 0.0 points
  in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let fitted = (slope *. x) +. intercept in
        a +. ((y -. fitted) ** 2.0))
      0.0 points
  in
  if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot)

let exponential_decay ?(tail_fraction = 0.25) series =
  let n = List.length series in
  if n < 4 then None
  else begin
    let tail_count = max 1 (int_of_float (tail_fraction *. float_of_int n)) in
    let tail = List.filteri (fun i _ -> i >= n - tail_count) series in
    let y_inf =
      List.fold_left (fun a (_, y) -> a +. y) 0.0 tail
      /. float_of_int (List.length tail)
    in
    (* Log-linearise the gap; keep only points decisively off the
       plateau. *)
    let log_points =
      List.filter_map
        (fun (t, y) ->
          let gap = Float.abs (y -. y_inf) in
          if gap > 1e-9 then Some (t, Float.log gap) else None)
        (List.filteri (fun i _ -> i < n - tail_count) series)
    in
    match linear log_points with
    | None -> None
    | Some (slope, intercept) ->
        if slope >= 0.0 then None (* not decaying *)
        else begin
          let tau = -1.0 /. slope in
          let gap0 = Float.exp intercept in
          let y0 =
            match series with
            | (_, first_y) :: _ ->
                if first_y >= y_inf then y_inf +. gap0 else y_inf -. gap0
            | [] -> y_inf
          in
          Some
            {
              y0;
              y_inf;
              tau;
              r_square = r_square_of log_points ~slope ~intercept;
            }
        end
  end

let half_life fit = fit.tau *. Float.log 2.0
