(** The paper's continuous-time model of Basalt (Section 3).

    The model tracks, for an average view slot of an average correct node,
    [c(t)] — the number of distinct correct identifiers seen since the
    slot's last reset — under the worst-case assumption that the adversary
    has flooded every correct node with all [b_max = f·n] Byzantine
    identifiers.  The probability that the slot currently holds a
    Byzantine identifier is then [B(t) = b_max / (b_max + c(t))]
    (Theorem 3.1 / Corollary 3.2).

    [c(t)] evolves by pull exchanges, push exchanges and slot resets,
    giving Eq. (13); substituting yields the autonomous equation (14) for
    [B(t)], whose stable equilibrium [B1] (Eq. 16) is the model's
    prediction for the steady-state proportion of Byzantine entries in
    views — the quantity Figure 2 measures. *)

type env = {
  n : int;  (** Total number of nodes. *)
  f : float;  (** Fraction of Byzantine nodes. *)
  v : int;  (** View size. *)
  tau : float;  (** Exchange interval. *)
  rho : float;  (** Sampling rate. *)
}

val env : ?n:int -> ?f:float -> ?v:int -> ?tau:float -> ?rho:float -> unit -> env
(** [env ()] is the paper's base scenario: [n = 10000], [f = 0.1],
    [v = 160], [tau = 1], [rho = 1].
    @raise Invalid_argument on non-positive sizes/rates or [f] outside
    [\[0, 1)]. *)

val b_max : env -> float
(** [b_max e] is [f * n], the number of Byzantine identifiers. *)

val q : env -> float
(** [q e] is [(1 - f) * n], the number of correct nodes. *)

val b_of_c : env -> float -> float
(** [b_of_c e c] is Corollary 3.2: [b_max / (b_max + c)]. *)

val c_of_b : env -> float -> float
(** [c_of_b e b] inverts {!b_of_c}. *)

val dc_dt : env -> c:float -> float
(** [dc_dt e ~c] is Eq. (13). *)

val db_dt : env -> b:float -> float
(** [db_dt e ~b] is Eq. (14). *)

val equilibria : env -> (float * float) option
(** [equilibria e] returns [(B1, B2)] from Eq. (16) — [B1] the stable and
    [B2] the unstable root — or [None] when the discriminant is negative
    (no steady state: the attack wins regardless of the initial
    condition). *)

val steady_state : env -> float option
(** [steady_state e] is the stable equilibrium [B1], if it exists. *)

val optimal : env -> float
(** [optimal e] is [f]: the best achievable Byzantine proportion for any
    sampler (the adversary's fair share). *)

val trajectory : env -> b0:float -> t1:float -> dt:float -> (float * float) list
(** [trajectory e ~b0 ~t1 ~dt] integrates Eq. (14) from [B(0) = b0] to
    time [t1] (RK4, step [dt]). *)

val view_size_for : env -> target_b:float -> int
(** [view_size_for e ~target_b] is the smallest view size whose predicted
    stable state does not exceed [target_b] (holding the rest of [e]
    fixed).  @raise Invalid_argument if [target_b <= f] (unreachable). *)
