(** Curve fitting for convergence quantification.

    Fig. 4's qualitative claim — "BASALT converges much more rapidly than
    Brahms" — becomes quantitative by fitting each time series with an
    exponential relaxation toward its plateau,

    [y(t) = y∞ + (y0 - y∞) · exp(-t / τ)],

    and comparing the fitted time constants τ.  The fit estimates [y∞]
    from the series tail and then performs an ordinary least-squares
    regression of [log |y(t) - y∞|] on [t]. *)

type exponential = {
  y0 : float;  (** Fitted initial value. *)
  y_inf : float;  (** Plateau (estimated from the tail). *)
  tau : float;  (** Time constant: time to close 63% of the gap. *)
  r_square : float;  (** Goodness of the log-linear fit. *)
}

val linear : (float * float) list -> (float * float) option
(** [linear points] is the least-squares [(slope, intercept)] of [y] on
    [x]; [None] with fewer than two distinct [x] values. *)

val exponential_decay :
  ?tail_fraction:float -> (float * float) list -> exponential option
(** [exponential_decay series] fits the relaxation model.  The plateau is
    the mean of the last [tail_fraction] (default 0.25) of the points.
    Returns [None] when the series is too short (< 4 points) or the gap
    to the plateau is numerically negligible. *)

val half_life : exponential -> float
(** [half_life fit] is [tau · ln 2]: time to close half the gap. *)
