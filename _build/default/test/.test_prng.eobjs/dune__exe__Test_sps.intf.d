test/test_sps.mli:
