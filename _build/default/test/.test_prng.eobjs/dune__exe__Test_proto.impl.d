test/test_proto.ml: Alcotest Array Basalt_prng Basalt_proto Format Int List Message Node_id QCheck QCheck_alcotest Rps View_ops
