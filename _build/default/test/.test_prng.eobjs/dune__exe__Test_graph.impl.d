test/test_graph.ml: Alcotest Array Basalt_graph Basalt_prng Basalt_proto Components Digraph Float Gen Generators Int Isolation List Metrics Printf QCheck QCheck_alcotest
