test/test_avalanche.ml: Alcotest Basalt_avalanche Basalt_core Basalt_sim Dag_network Deployment Float Format List Network QCheck QCheck_alcotest Result Snowball Tx_dag
