test/test_sim.ml: Alcotest Array Basalt_brahms Basalt_core Basalt_engine Basalt_prng Basalt_proto Basalt_sim Basalt_sps Churn Filename Float List Option Printf Report Runner Scenario String Sweep Sys
