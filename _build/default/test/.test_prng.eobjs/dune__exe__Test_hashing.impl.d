test/test_hashing.ml: Alcotest Array Basalt_hashing Basalt_prng Bytes Char Hashtbl Int64 List Mix Printf QCheck QCheck_alcotest Rank Siphash
