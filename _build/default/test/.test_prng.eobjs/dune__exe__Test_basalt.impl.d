test/test_basalt.ml: Alcotest Array Basalt Basalt_core Basalt_hashing Basalt_prng Basalt_proto Config Gen Int List Option QCheck QCheck_alcotest Sample_stream Slot
