test/test_net.ml: Alcotest Array Basalt_codec Basalt_core Basalt_net Basalt_proto Buffer Bytes Int32 List Printf Result Unix
