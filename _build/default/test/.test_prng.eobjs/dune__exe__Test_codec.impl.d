test/test_codec.ml: Alcotest Array Basalt_codec Basalt_proto Bytes Gen List QCheck QCheck_alcotest
