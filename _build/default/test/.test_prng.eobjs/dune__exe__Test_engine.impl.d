test/test_engine.ml: Alcotest Basalt_engine Basalt_prng Engine Event_queue Float Int Link List QCheck QCheck_alcotest
