test/test_adversary.ml: Adversary Alcotest Array Basalt_adversary Basalt_prng Basalt_proto Float List QCheck QCheck_alcotest
