test/test_avalanche.mli:
