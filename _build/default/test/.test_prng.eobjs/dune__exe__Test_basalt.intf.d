test/test_basalt.mli:
