test/test_experiments.ml: Alcotest Basalt_avalanche Basalt_experiments Basalt_sim Cost Fig2 Float Lazy List Live Printf Result Scale Sps_failure String Sybil Theory Timeline Uniformity
