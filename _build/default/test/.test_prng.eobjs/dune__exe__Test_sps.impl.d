test/test_sps.ml: Alcotest Array Basalt_prng Basalt_proto Basalt_sps Classic Float Indegree_stats List Sps
