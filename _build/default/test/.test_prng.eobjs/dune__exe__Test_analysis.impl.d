test/test_analysis.ml: Alcotest Array Basalt_analysis Fit Float Gen Isolation_bound List Model Ode Printf QCheck QCheck_alcotest Stats
