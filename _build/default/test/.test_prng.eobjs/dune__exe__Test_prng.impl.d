test/test_prng.ml: Alcotest Array Basalt_prng Float Fun Hashtbl Int List Printf QCheck QCheck_alcotest Rng Splitmix64 String Xoshiro256 Zipf
