test/test_brahms.mli:
