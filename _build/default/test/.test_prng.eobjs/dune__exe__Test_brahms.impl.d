test/test_brahms.ml: Alcotest Array Basalt_brahms Basalt_prng Basalt_proto Brahms Brahms_config List QCheck QCheck_alcotest
