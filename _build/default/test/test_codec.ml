(* Tests for basalt.codec: the binary wire format. *)

module Wire = Basalt_codec.Wire
module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let id = Node_id.of_int

let msg_equal a b =
  match (a, b) with
  | Message.Pull_request, Message.Pull_request -> true
  | Message.Pull_reply x, Message.Pull_reply y | Message.Push x, Message.Push y
    ->
      Array.length x = Array.length y
      && Array.for_all2 Node_id.equal x y
  | Message.Push_id x, Message.Push_id y -> Node_id.equal x y
  | _ -> false

let round_trip msg =
  match Wire.decode (Wire.encode msg) with
  | Ok decoded -> check_bool "round trip" true (msg_equal msg decoded)
  | Error e -> Alcotest.failf "decode error: %a" Wire.pp_error e

let codec_round_trips () =
  round_trip Message.Pull_request;
  round_trip (Message.Pull_reply [||]);
  round_trip (Message.Pull_reply [| id 1; id 2; id 3 |]);
  round_trip (Message.Push (Array.init 200 id));
  round_trip (Message.Push_id (id 0));
  round_trip (Message.Push_id (id ((1 lsl 48) - 1)))

let codec_size () =
  check_int "pull is header only" 6
    (Bytes.length (Wire.encode Message.Pull_request));
  let m = Message.Push (Array.init 5 id) in
  check_int "push size" (6 + 40) (Bytes.length (Wire.encode m));
  check_int "encoded_size agrees" (Bytes.length (Wire.encode m))
    (Wire.encoded_size m)

let expect_error name buf expected =
  match Wire.decode buf with
  | Ok _ -> Alcotest.failf "%s: expected error" name
  | Error e -> check_bool name true (e = expected)

let codec_rejects_garbage () =
  expect_error "empty" (Bytes.create 0) Wire.Truncated;
  expect_error "short header" (Bytes.create 3) Wire.Truncated;
  let good = Wire.encode (Message.Push [| id 1 |]) in
  let bad_magic = Bytes.copy good in
  Bytes.set_uint8 bad_magic 0 0x00;
  expect_error "bad magic" bad_magic (Wire.Bad_magic 0);
  let bad_version = Bytes.copy good in
  Bytes.set_uint8 bad_version 1 9;
  expect_error "bad version" bad_version (Wire.Bad_version 9);
  let bad_tag = Bytes.copy good in
  Bytes.set_uint8 bad_tag 2 7;
  expect_error "bad tag" bad_tag (Wire.Bad_tag 7);
  let truncated = Bytes.sub good 0 (Bytes.length good - 1) in
  expect_error "truncated payload" truncated Wire.Truncated;
  let trailing = Bytes.cat good (Bytes.make 2 'x') in
  expect_error "trailing" trailing (Wire.Trailing_garbage 2)

let codec_rejects_negative_id () =
  let buf = Wire.encode (Message.Push_id (id 1)) in
  Bytes.set_int64_be buf 6 (-1L);
  expect_error "negative id" buf Wire.Id_out_of_range

let codec_decode_sub () =
  let msg = Message.Push [| id 42 |] in
  let encoded = Wire.encode msg in
  let padded = Bytes.cat (Bytes.make 3 'p') encoded in
  (match Wire.decode_sub padded ~off:3 ~len:(Bytes.length encoded) with
  | Ok decoded -> check_bool "offset decode" true (msg_equal msg decoded)
  | Error e -> Alcotest.failf "decode error: %a" Wire.pp_error e);
  Alcotest.check_raises "bad slice"
    (Invalid_argument "Wire.decode_sub: slice out of bounds") (fun () ->
      ignore (Wire.decode_sub padded ~off:3 ~len:(Bytes.length padded)))

let codec_too_many_ids () =
  Alcotest.check_raises "too many"
    (Invalid_argument "Wire.encode: too many identifiers") (fun () ->
      ignore (Wire.encode (Message.Push (Array.make (Wire.max_ids + 1) (id 0)))))

(* Fuzz: decoding arbitrary bytes must never raise. *)
let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises" ~count:2000
    QCheck.(string_of_size (Gen.int_range 0 64))
    (fun s ->
      match Wire.decode (Bytes.of_string s) with
      | Ok _ | Error _ -> true)

let prop_round_trip =
  QCheck.Test.make ~name:"encode/decode round trip" ~count:500
    QCheck.(list_of_size (Gen.int_range 0 50) (int_bound ((1 lsl 30) - 1)))
    (fun ids ->
      let msg = Message.Push (Array.of_list (List.map Node_id.of_int ids)) in
      match Wire.decode (Wire.encode msg) with
      | Ok decoded -> msg_equal msg decoded
      | Error _ -> false)

(* Flipping any single byte of a valid datagram must either fail to
   decode or decode to a (possibly different) message — never raise. *)
let prop_bitflip_safe =
  QCheck.Test.make ~name:"bit flips never raise" ~count:500
    QCheck.(pair (int_bound 1000) (int_bound 255))
    (fun (pos, value) ->
      let buf = Wire.encode (Message.Push (Array.init 20 Node_id.of_int)) in
      let pos = pos mod Bytes.length buf in
      Bytes.set_uint8 buf pos value;
      match Wire.decode buf with Ok _ | Error _ -> true)

let () =
  Alcotest.run "codec"
    [
      ( "wire",
        [
          Alcotest.test_case "round trips" `Quick codec_round_trips;
          Alcotest.test_case "sizes" `Quick codec_size;
          Alcotest.test_case "rejects garbage" `Quick codec_rejects_garbage;
          Alcotest.test_case "rejects negative id" `Quick
            codec_rejects_negative_id;
          Alcotest.test_case "decode_sub" `Quick codec_decode_sub;
          Alcotest.test_case "too many ids" `Quick codec_too_many_ids;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_decode_total; prop_round_trip; prop_bitflip_safe ] );
    ]
