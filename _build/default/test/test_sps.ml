(* Tests for basalt.sps: indegree statistics, the classical RPS, SPS. *)

open Basalt_sps
module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module View_ops = Basalt_proto.View_ops

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let id = Node_id.of_int
let rng () = Basalt_prng.Rng.create ~seed:77

(* --- Indegree_stats --- *)

let stats_record_count () =
  let s = Indegree_stats.create () in
  check_float "unseen" 0.0 (Indegree_stats.count s (id 1));
  Indegree_stats.record s (id 1);
  Indegree_stats.record s (id 1);
  check_float "two" 2.0 (Indegree_stats.count s (id 1));
  check_int "observed" 1 (Indegree_stats.observed s)

let stats_decay () =
  let s = Indegree_stats.create ~decay:0.5 () in
  Indegree_stats.record s (id 1);
  Indegree_stats.tick s;
  check_float "halved" 0.5 (Indegree_stats.count s (id 1));
  (* Decay below the pruning threshold removes the entry. *)
  for _ = 1 to 10 do
    Indegree_stats.tick s
  done;
  check_float "pruned" 0.0 (Indegree_stats.count s (id 1));
  check_int "table emptied" 0 (Indegree_stats.observed s)

let stats_moments () =
  let s = Indegree_stats.create () in
  for i = 1 to 4 do
    for _ = 1 to i do
      Indegree_stats.record s (id i)
    done
  done;
  Indegree_stats.tick s;
  (* counts after decay 0.9: 0.9, 1.8, 2.7, 3.6 -> mean 2.25 *)
  check_bool "mean" true (Float.abs (Indegree_stats.mean s -. 2.25) < 1e-9);
  check_bool "std positive" true (Indegree_stats.std s > 0.0)

let stats_invalid () =
  Alcotest.check_raises "decay 0"
    (Invalid_argument "Indegree_stats.create: decay out of (0, 1]") (fun () ->
      ignore (Indegree_stats.create ~decay:0.0 ()))

let stats_outlier_needs_population () =
  let s = Indegree_stats.create () in
  for _ = 1 to 100 do
    Indegree_stats.record s (id 1)
  done;
  Indegree_stats.tick s;
  (* Only one identifier tracked: no population baseline, no outliers. *)
  check_bool "no outlier with tiny population" false
    (Indegree_stats.is_outlier s ~z:1.0 (id 1))

let stats_outlier_detects_heavy_hitter () =
  let s = Indegree_stats.create () in
  for i = 1 to 20 do
    Indegree_stats.record s (id i)
  done;
  for _ = 1 to 50 do
    Indegree_stats.record s (id 999)
  done;
  Indegree_stats.tick s;
  check_bool "heavy hitter flagged" true
    (Indegree_stats.is_outlier s ~z:3.0 (id 999));
  check_bool "normal id not flagged" false
    (Indegree_stats.is_outlier s ~z:3.0 (id 1))

(* --- Classic --- *)

let capture () =
  let sent = ref [] in
  let send ~dst msg = sent := (dst, msg) :: !sent in
  (sent, send)

let classic_config_invalid () =
  Alcotest.check_raises "l=0" (Invalid_argument "Classic.config: l must be positive")
    (fun () -> ignore (Classic.config ~l:0 ()))

let make_classic ?(l = 4) ?filter ?(bootstrap = Array.init 6 (fun i -> id (i + 1)))
    () =
  let sent, send = capture () in
  let t =
    Classic.create
      ~config:(Classic.config ~l ())
      ?filter ~id:(id 0) ~bootstrap ~rng:(rng ()) ~send ()
  in
  (t, sent)

let classic_bootstrap () =
  let t, _ = make_classic () in
  check_int "view capped at l" 4 (Array.length (Classic.view t));
  Array.iter
    (fun p -> check_bool "no self" false (Node_id.equal p (id 0)))
    (Classic.view t)

let classic_round_sends () =
  let t, sent = make_classic () in
  Classic.on_round t;
  let kinds = List.map (fun (_, m) -> Message.kind m) !sent in
  check_bool "push" true (List.mem "push" kinds);
  check_bool "pull" true (List.mem "pull" kinds)

let classic_pull_reply () =
  let t, sent = make_classic () in
  Classic.on_message t ~from:(id 9) Message.Pull_request;
  match !sent with
  | [ (dst, Message.Pull_reply _) ] -> check_int "to requester" 9 (Node_id.to_int dst)
  | _ -> Alcotest.fail "expected pull reply"

let classic_rebuild_from_received () =
  let t, _ = make_classic ~l:2 ~bootstrap:[| id 1 |] () in
  Classic.on_message t ~from:(id 1) (Message.Pull_reply [| id 10; id 11; id 12 |]);
  Classic.on_round t;
  let view = Classic.view t in
  check_int "view refilled to l" 2 (Array.length view);
  Array.iter
    (fun p ->
      check_bool "from pool" true
        (List.mem (Node_id.to_int p) [ 1; 10; 11; 12 ]))
    view

let classic_filter () =
  let reject p = Node_id.to_int p < 100 in
  let t, _ =
    make_classic ~l:4 ~filter:(fun p -> not (reject p))
      ~bootstrap:[| id 1; id 200; id 201 |] ()
  in
  Array.iter
    (fun p -> check_bool "filtered bootstrap" true (Node_id.to_int p >= 100))
    (Classic.view t);
  Classic.on_message t ~from:(id 202) (Message.Pull_reply [| id 2; id 203 |]);
  Classic.on_round t;
  Array.iter
    (fun p -> check_bool "filtered receipts" true (Node_id.to_int p >= 100))
    (Classic.view t)

let classic_evict () =
  let t, _ = make_classic () in
  Classic.evict t (fun _ -> true);
  check_int "all evicted" 0 (Array.length (Classic.view t))

let classic_sample () =
  let t, _ = make_classic () in
  let s = Classic.sample t 3 in
  check_int "three samples" 3 (List.length s);
  List.iter
    (fun p ->
      check_bool "sample from view" true (View_ops.contains (Classic.view t) p))
    s;
  Classic.evict t (fun _ -> true);
  check_bool "no samples from empty view" true (Classic.sample t 3 = [])

(* --- SPS --- *)

let sps_config_invalid () =
  Alcotest.check_raises "ttl" (Invalid_argument "Sps.config: blacklist_ttl <= 0")
    (fun () -> ignore (Sps.config ~blacklist_ttl:0 ()));
  Alcotest.check_raises "warmup"
    (Invalid_argument "Sps.config: warmup_rounds < 0") (fun () ->
      ignore (Sps.config ~warmup_rounds:(-1) ()))

let make_sps ?(warmup_rounds = 0) ?(l = 8) () =
  let sent, send = capture () in
  let t =
    Sps.create
      ~config:(Sps.config ~l ~warmup_rounds ~z:2.0 ())
      ~id:(id 0)
      ~bootstrap:(Array.init 6 (fun i -> id (i + 1)))
      ~rng:(rng ()) ~send ()
  in
  (t, sent)

(* Drive enough traffic that one identifier becomes a statistical
   outlier. *)
let flood_with_heavy_hitter t =
  for round = 1 to 5 do
    ignore round;
    Sps.on_round t;
    (* a normal-looking background of ids *)
    Sps.on_message t ~from:(id 1)
      (Message.Pull_reply (Array.init 15 (fun i -> id (i + 2))));
    (* ...and a heavily repeated one *)
    for _ = 1 to 10 do
      Sps.on_message t ~from:(id 999) (Message.Push [| id 999 |])
    done
  done

let sps_blacklists_heavy_hitter () =
  let t, _ = make_sps () in
  flood_with_heavy_hitter t;
  check_bool "flagged" true (Sps.blacklisted t (id 999));
  check_bool "blacklist non-empty" true (Sps.blacklist_size t > 0);
  check_bool "evicted from view" false
    (View_ops.contains (Sps.view t) (id 999))

let sps_warmup_delays_blacklisting () =
  let t, _ = make_sps ~warmup_rounds:1000 () in
  flood_with_heavy_hitter t;
  check_bool "not flagged during warmup" false (Sps.blacklisted t (id 999))

let sps_blacklist_expires () =
  let sent, send = capture () in
  ignore sent;
  let t =
    Sps.create
      ~config:(Sps.config ~l:8 ~warmup_rounds:0 ~z:2.0 ~blacklist_ttl:2 ())
      ~id:(id 0)
      ~bootstrap:(Array.init 6 (fun i -> id (i + 1)))
      ~rng:(rng ()) ~send ()
  in
  flood_with_heavy_hitter t;
  check_bool "flagged" true (Sps.blacklisted t (id 999));
  (* Advance rounds without traffic: the entry must expire after ttl. *)
  for _ = 1 to 3 do
    Sps.on_round t
  done;
  check_bool "expired" false (Sps.blacklisted t (id 999))

let sps_sampler_interface () =
  let maker = Sps.sampler ~config:(Sps.config ~l:8 ()) () in
  let s =
    maker ~id:(id 0)
      ~bootstrap:(Array.init 4 (fun i -> id (i + 1)))
      ~rng:(rng ())
      ~send:(fun ~dst:_ _ -> ())
  in
  Alcotest.(check string) "protocol" "sps" s.Basalt_proto.Rps.protocol;
  s.Basalt_proto.Rps.on_round ();
  check_bool "emits samples" true (List.length (s.Basalt_proto.Rps.sample_tick ()) <= 1)

let () =
  Alcotest.run "sps"
    [
      ( "indegree_stats",
        [
          Alcotest.test_case "record/count" `Quick stats_record_count;
          Alcotest.test_case "decay+prune" `Quick stats_decay;
          Alcotest.test_case "moments" `Quick stats_moments;
          Alcotest.test_case "invalid" `Quick stats_invalid;
          Alcotest.test_case "outlier needs population" `Quick
            stats_outlier_needs_population;
          Alcotest.test_case "outlier detection" `Quick
            stats_outlier_detects_heavy_hitter;
        ] );
      ( "classic",
        [
          Alcotest.test_case "config invalid" `Quick classic_config_invalid;
          Alcotest.test_case "bootstrap" `Quick classic_bootstrap;
          Alcotest.test_case "round sends" `Quick classic_round_sends;
          Alcotest.test_case "pull reply" `Quick classic_pull_reply;
          Alcotest.test_case "rebuild from received" `Quick
            classic_rebuild_from_received;
          Alcotest.test_case "filter" `Quick classic_filter;
          Alcotest.test_case "evict" `Quick classic_evict;
          Alcotest.test_case "sample" `Quick classic_sample;
        ] );
      ( "sps",
        [
          Alcotest.test_case "config invalid" `Quick sps_config_invalid;
          Alcotest.test_case "blacklists heavy hitter" `Quick
            sps_blacklists_heavy_hitter;
          Alcotest.test_case "warmup delays blacklisting" `Quick
            sps_warmup_delays_blacklisting;
          Alcotest.test_case "blacklist expires" `Quick sps_blacklist_expires;
          Alcotest.test_case "sampler interface" `Quick sps_sampler_interface;
        ] );
    ]
