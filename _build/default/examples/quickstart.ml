(* Quickstart: assemble a small Basalt network by hand on the simulation
   engine and consume the sampling service's output stream.

   Run with:  dune exec examples/quickstart.exe

   This example uses the library's lowest-level public API directly —
   engine, Basalt nodes, timers — rather than the pre-packaged
   [Basalt_sim.Runner], to show what embedding the peer sampler in an
   application looks like. *)

module Engine = Basalt_engine.Engine
module Node_id = Basalt_proto.Node_id
module Basalt = Basalt_core.Basalt
module Config = Basalt_core.Config
module Sample_stream = Basalt_core.Sample_stream
module Rng = Basalt_prng.Rng

let n = 100

let () =
  let rng = Rng.create ~seed:7 in
  let engine : Basalt_proto.Message.t Engine.t = Engine.create ~rng ~n () in
  let config = Config.make ~v:16 ~k:4 () in

  (* Every node starts knowing ten random bootstrap peers. *)
  let bootstrap () =
    Array.init 10 (fun _ -> Node_id.of_int (Rng.int rng n))
  in

  (* Create one Basalt instance per node and register its message
     handler with the engine. *)
  let nodes =
    Array.init n (fun i ->
        let id = Node_id.of_int i in
        let send ~dst msg =
          Engine.send engine ~src:i ~dst:(Node_id.to_int dst) msg
        in
        Basalt.create ~config ~id ~bootstrap:(bootstrap ()) ~rng ~send ())
  in
  Array.iteri
    (fun i node ->
      Engine.register engine i (fun ~from msg ->
          Basalt.on_message node ~from:(Node_id.of_int from) msg))
    nodes;

  (* Drive the protocol: one exchange round per time unit per node, and a
     sampling tick every k/rho time units.  Node 0's samples are collected
     in a stream the application reads. *)
  let stream = Sample_stream.create ~capacity:64 in
  Array.iteri
    (fun i node ->
      let phase = Rng.float rng 1.0 in
      Engine.every engine ~phase ~interval:1.0 (fun () -> Basalt.on_round node);
      Engine.every engine ~phase:(phase +. 0.5)
        ~interval:(Config.refresh_interval config) (fun () ->
          let samples = Basalt.sample_tick node in
          if i = 0 then Sample_stream.push_list stream samples))
    nodes;

  Engine.run_until engine 50.0;

  (* The service output: a continuous stream of (approximately) uniform
     random peers. *)
  Printf.printf "node 0 emitted %d samples in 50 time units\n"
    (Sample_stream.total stream);
  Printf.printf "most recent ten: %s\n"
    (String.concat ", "
       (List.map
          (fun p -> string_of_int (Node_id.to_int p))
          (Sample_stream.recent stream 10)));

  (* Sanity: samples should cover the id space roughly uniformly. *)
  let distinct =
    List.sort_uniq Int.compare
      (List.map Node_id.to_int
         (Sample_stream.recent stream (Sample_stream.retained stream)))
  in
  Printf.printf "distinct peers among the retained window: %d\n"
    (List.length distinct);
  Printf.printf "node 0's current view: %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun p -> string_of_int (Node_id.to_int p))
             (Basalt.view nodes.(0)))));
  let stats = Engine.stats engine in
  Printf.printf "transport: %d messages sent, %d delivered\n"
    stats.Engine.sent stats.Engine.delivered
