(* Epidemic rumor dissemination over the overlay an RPS maintains — the
   motivating workload of gossip-based systems (paper §1): information
   spreads in O(log n) rounds as long as correct nodes' views contain
   enough correct peers.

   Run with:  dune exec examples/gossip_broadcast.exe

   A rumor starts at node 0 after the sampler has warmed up; each
   infected correct node forwards it to [fanout] peers drawn from its
   current view every round.  Malicious nodes absorb rumors silently
   (worst case for dissemination) while running the usual RPS-level
   flooding attack.  We compare how far and fast the rumor spreads when
   views are maintained by Basalt vs the classical non-tolerant RPS. *)

module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Node_id = Basalt_proto.Node_id
module View_ops = Basalt_proto.View_ops
module Rng = Basalt_prng.Rng

let n = 400
let f = 0.2
let force = 10.0
let fanout = 3
let warmup = 40.0
let steps = 80.0

(* Simulate dissemination over frozen view snapshots: at each recorded
   measurement instant past the warm-up we have the live views; between
   instants, infected nodes forward to [fanout] random view members. *)
let dissemination protocol_name protocol =
  let scenario =
    Scenario.make ~name:"gossip" ~n ~f ~force ~protocol ~steps
      ~measure_every:1.0 ()
  in
  let q = Scenario.num_correct scenario in
  let infected = Array.make n false in
  let rng = Rng.create ~seed:99 in
  let coverage_series = ref [] in
  let observer ~time ~views =
    if time >= warmup then begin
      if not infected.(0) then infected.(0) <- true;
      (* One round of forwarding over the current views. *)
      let newly = ref [] in
      for u = 0 to q - 1 do
        if infected.(u) then begin
          let view = views u in
          for _ = 1 to fanout do
            match View_ops.random_member rng view with
            | Some peer ->
                let p = Node_id.to_int peer in
                (* Malicious nodes absorb the rumor without forwarding. *)
                if p < q && not infected.(p) then newly := p :: !newly
            | None -> ()
          done
        end
      done;
      List.iter (fun p -> infected.(p) <- true) !newly;
      let covered =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
          (Array.sub infected 0 q)
      in
      coverage_series :=
        (time, float_of_int covered /. float_of_int q) :: !coverage_series
    end
  in
  ignore (Runner.run_with_observer ~observer scenario);
  (protocol_name, List.rev !coverage_series)

let () =
  Printf.printf
    "Rumor dissemination over RPS views (n=%d, f=%.0f%%, F=%g, fanout=%d)\n\n"
    n (100.0 *. f) force fanout;
  let results =
    [
      dissemination "basalt" (Scenario.Basalt (Basalt_core.Config.make ~v:24 ~k:6 ()));
      dissemination "classic" (Scenario.Classic (Basalt_sps.Classic.config ~l:24 ()));
    ]
  in
  Printf.printf "%-8s  %s\n" "round" (String.concat "  " (List.map fst results));
  let rounds =
    match results with (_, series) :: _ -> List.length series | [] -> 0
  in
  for i = 0 to rounds - 1 do
    if i mod 4 = 0 || i = rounds - 1 then begin
      let t, _ = List.nth (snd (List.hd results)) i in
      Printf.printf "t=%-6.0f" t;
      List.iter
        (fun (_, series) ->
          let _, c = List.nth series i in
          Printf.printf "  %5.1f%%" (100.0 *. c))
        results;
      print_newline ()
    end
  done;
  List.iter
    (fun (name, series) ->
      let reach_time threshold =
        match List.find_opt (fun (_, c) -> c >= threshold) series with
        | Some (t, _) -> Printf.sprintf "%.0f" (t -. warmup)
        | None -> "never"
      in
      Printf.printf
        "\n%s: rounds to reach 50%% of correct nodes: %s; 99%%: %s\n" name
        (reach_time 0.5) (reach_time 0.99))
    results
