(* Sampling-based consensus fed by a secure RPS — the paper's target use
   case (§1, §5): Avalanche-style metastable consensus draws its query
   committees from the peer sampling service, so committee quality (and
   therefore safety and liveness) is only as good as the sampler.

   Run with:  dune exec examples/consensus_sampling.exe

   All correct nodes run Snowball over a binary decision with a 70% Red
   initial majority; Byzantine nodes (15%) vote against every querier's
   preference and flood the RPS.  We compare three committee sources:
   an idealised full-knowledge uniform sampler, Basalt, and the
   classical non-tolerant RPS. *)

module Network = Basalt_avalanche.Network
module Snowball = Basalt_avalanche.Snowball
module Scenario = Basalt_sim.Scenario

let run name sampling =
  let config =
    Network.config ~n:300 ~f:0.15 ~force:10.0 ~sampling
      ~snowball:(Snowball.config ~sample_size:10 ~alpha:7 ~beta:12 ())
      ~initial_red:0.7 ~warmup:30.0 ~query_interval:1.0 ~steps:220.0 ()
  in
  (name, Network.run config)

let () =
  print_endline
    "Snowball consensus (k=10, alpha=7, beta=12) over different peer \
     samplers\n(n=300, f=15%, F=10, initial majority 70% Red)\n";
  let results =
    [
      run "full-knowledge" Network.Full_knowledge;
      run "basalt"
        (Network.Service (Scenario.Basalt (Basalt_core.Config.make ~v:40 ~k:10 ())));
      run "classic"
        (Network.Service (Scenario.Classic (Basalt_sps.Classic.config ~l:40 ())));
    ]
  in
  Printf.printf "%-15s %-9s %-7s %-9s %-11s %-14s\n" "sampler" "decided"
    "agree" "red-share" "mean-time" "committee-byz";
  List.iter
    (fun (name, r) ->
      Printf.printf "%-15s %-9.2f %-7b %-9.2f %-11.1f %-14.3f\n" name
        r.Network.decided_fraction r.Network.agreement
        r.Network.decided_red_fraction r.Network.mean_decision_time
        r.Network.committee_byz)
    results;
  print_newline ();
  print_endline
    "committee-byz is the mean Byzantine share of query committees: the\n\
     closer it stays to the true fraction (0.15), the less the adversary\n\
     can slow or derail the metastable decision.  Basalt tracks the\n\
     full-knowledge ideal; the classical RPS lets the attacker inflate\n\
     its committee presence."
