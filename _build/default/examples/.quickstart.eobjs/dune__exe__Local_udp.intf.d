examples/local_udp.mli:
