examples/consensus_sampling.ml: Basalt_avalanche Basalt_core Basalt_sim Basalt_sps List Printf
