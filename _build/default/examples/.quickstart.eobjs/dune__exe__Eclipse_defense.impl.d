examples/eclipse_defense.ml: Array Basalt_adversary Basalt_brahms Basalt_core Basalt_proto Basalt_sim Basalt_sps List Printf
