examples/gossip_broadcast.ml: Array Basalt_core Basalt_prng Basalt_proto Basalt_sim Basalt_sps List Printf String
