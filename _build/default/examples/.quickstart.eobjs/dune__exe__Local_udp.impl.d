examples/local_udp.ml: Array Basalt_core Basalt_net Basalt_proto Hashtbl List Printf String
