examples/consensus_sampling.mli:
