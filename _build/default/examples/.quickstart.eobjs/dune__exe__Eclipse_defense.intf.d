examples/eclipse_defense.mli:
