examples/quickstart.mli:
