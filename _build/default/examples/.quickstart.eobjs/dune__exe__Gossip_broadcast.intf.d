examples/gossip_broadcast.mli:
