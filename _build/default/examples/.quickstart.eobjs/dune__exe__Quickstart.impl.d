examples/quickstart.ml: Array Basalt_core Basalt_engine Basalt_prng Basalt_proto Int List Printf String
