(* Eclipse attack on a single victim: classical RPS vs Basalt.

   Run with:  dune exec examples/eclipse_defense.exe

   The whole Byzantine coalition (20% of the network) concentrates its
   push traffic on node 0 — the Eclipse strategy of §5 — while still
   answering every pull with forged all-malicious views.  With a
   classical shuffling RPS, the victim's view fills up with attacker
   identifiers and the node ends up eclipsed; Basalt's stubborn chaotic
   search caps the attacker's representation near its fair share. *)

module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Measurements = Basalt_sim.Measurements
module Adversary = Basalt_adversary.Adversary
module Node_id = Basalt_proto.Node_id

let n = 300
let f = 0.2
let force = 20.0
let steps = 100.0
let victim = Node_id.of_int 0

let run name protocol =
  let scenario =
    Scenario.make ~name ~n ~f ~force ~strategy:(Adversary.Eclipse victim)
      ~protocol ~steps ()
  in
  let r = Runner.run scenario in
  let outcome = r.Runner.per_node.(0) in
  (name, r, outcome)

let () =
  Printf.printf
    "Eclipse attack on node 0 (n=%d, f=%.0f%%, F=%g: every adversarial push \
     targets the victim)\n\n"
    n (100.0 *. f) force;
  let results =
    [
      run "basalt" (Scenario.Basalt (Basalt_core.Config.make ~v:24 ~k:6 ()));
      run "classic" (Scenario.Classic (Basalt_sps.Classic.config ~l:24 ()));
      run "brahms" (Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:24 ~k:6 ()));
    ]
  in
  Printf.printf "%-8s  %-18s  %-18s  %s\n" "protocol" "victim view byz"
    "victim sample byz" "eclipsed?";
  List.iter
    (fun (name, _, o) ->
      Printf.printf "%-8s  %-18.3f  %-18.3f  %b\n" name
        o.Runner.node_view_byz o.Runner.node_sample_byz o.Runner.node_isolated)
    results;
  print_newline ();
  (* Time evolution of the victim's exposure under each protocol: the
     network-wide isolated fraction is ~victim-only here because the rest
     of the network is barely attacked. *)
  Printf.printf "network-wide view pollution over time:\n";
  Printf.printf "%-8s" "t";
  List.iter (fun (name, _, _) -> Printf.printf "  %8s" name) results;
  print_newline ();
  let points (_, r, _) = Array.of_list (Measurements.points r.Runner.series) in
  let series = List.map points results in
  let len = Array.length (List.hd series) in
  for i = 0 to len - 1 do
    if i mod 10 = 0 || i = len - 1 then begin
      Printf.printf "%-8.0f" (List.hd series).(i).Measurements.time;
      List.iter
        (fun s -> Printf.printf "  %8.3f" s.(i).Measurements.view_byz)
        series;
      print_newline ()
    end
  done;
  print_newline ();
  Printf.printf
    "Fair share for the attacker is %.2f: Basalt keeps the victim's view \
     near it,\nwhile the classical RPS lets the attacker monopolise the \
     victim.\n"
    f
