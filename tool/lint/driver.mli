(** Whole-tree driver: orchestrates the untyped tier ({!Lint}), the
    typed tier ({!Typed}), suppression accounting, and the D11
    stale-suppression audit.

    Parsing stays on the calling domain (compiler-libs lexer state is
    global); the pure analysis passes fan out over an optional
    [Basalt_parallel.Pool] with results collected in deterministic path
    order, so the report is bit-identical at any parallelism degree. *)

type report = {
  findings : Lint.finding list;
      (** Final findings — suppressed, rule-filtered, sorted by file /
          line / rule, D11 audit results included. *)
  files_scanned : int;  (** Source files the untyped tier covered. *)
  typed_covered : int;
      (** Source files the typed tier covered (a matching [.cmt] was
          found and readable); [0] when the typed tier was off. *)
}

val run :
  ?typed:bool ->
  ?rules:Lint.rule list ->
  ?build_dir:string ->
  ?pool:Basalt_parallel.Pool.t ->
  root:string ->
  allow:Lint.allowlist ->
  unit ->
  report
(** [run ~root ~allow ()] lints the tree under [root].

    [typed] (default [false]) enables the typed tier: [.cmt] files are
    discovered under [build_dir] (default [root/_build/default] — run
    [dune build @check] first to refresh them) and matched to sources by
    their recorded source path; files without a readable [.cmt] fall
    back to untyped-only coverage.

    [rules] (default all) filters which rules report; it also scopes the
    D11 audit — a suppression is only stale with respect to rules that
    actually ran on its file, so e.g. D9 pragmas are never reported
    stale by an untyped run.  Omitting [D11] from [rules] disables the
    audit entirely.

    @raise Lint.Parse_error on the first unparseable source file. *)
