(** [basalt-lint] core: rule vocabulary, findings, suppression machinery
    (allowlist + pragmas), and the fast untyped tier (parsetree-only
    rules D1–D8).

    The linter is two-tier (DESIGN.md §6):

    - the {e untyped tier} (this module) parses each source file with
      [compiler-libs] and runs the syntactic, path-scoped rules D1–D8;
    - the {e typed tier} ({!Typed}) loads the [.cmt] files that
      [dune build @check] produces and runs the dataflow rules D9–D10
      on the typedtree, where identifiers resolve to real paths and
      expressions carry their types;
    - D11 (stale suppressions) is computed by the {!Driver} from the
      suppression-usage accounting both tiers report.

    Rules:

    - {b D1} — no [Random] module references outside [lib/prng]: all
      randomness must flow from seeded [Basalt_prng.Rng] streams.
    - {b D2} — no wall-clock reads ([Unix.gettimeofday], [Unix.time],
      [Sys.time]) outside the checked-in allowlist.
    - {b D3} — no [Hashtbl.hash] / [Hashtbl.seeded_hash] anywhere: the
      polymorphic hash is not a stable protocol primitive.
    - {b D4} — no polymorphic compare/equality ([=], [<>], [compare],
      [min], [max], orderings, [List.mem]/[List.assoc]-style helpers)
      in [lib/proto], [lib/basalt_core], [lib/brahms], [lib/sps],
      unless one operand is manifestly primitive.
    - {b D5} — every [lib/] module has an [.mli], and every exported
      [val] carries a doc comment.
    - {b D6} — no direct console output in protocol libraries ([lib/]
      minus [lib/experiments]).
    - {b D7} — no concurrency primitives ([Domain], [Mutex],
      [Condition], [Atomic], [Semaphore]) outside [lib/parallel].
    - {b D8} — no [Basalt_obs] references outside [lib/obs] and the
      allowlisted instrumentation boundaries.
    - {b D9} {e (typed)} — no PRNG draw, trace emit, or accumulation
      that later feeds a PRNG/trace inside an unordered-iteration
      callback ([Hashtbl.fold]/[iter]); hash-bucket order must never
      become draw order (the PR 5 [run_eviction] bug class).
    - {b D10} {e (typed)} — a [Basalt_prng.Rng.t] value handed to two
      or more callees, or captured by a second closure, without an
      intervening [Rng.split]: every consumer owns its own stream.
    - {b D11} {e (driver)} — every [(* lint: allow *)] pragma and
      allowlist entry must suppress at least one finding per whole-tree
      run; stale suppressions are findings themselves.

    Suppression: a comment containing [lint: allow D<k>] silences rule
    [D<k>] on the comment's lines and the line directly below;
    [tool/lint/allowlist.txt] lists [<rule> <path-or-dir/>] pairs for
    whole-file or whole-subtree exemptions.  D11 findings cannot be
    suppressed. *)

type rule = D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8 | D9 | D10 | D11

val all_rules : rule list
(** All rules, in order. *)

val rule_name : rule -> string
(** [rule_name r] is ["D1"] … ["D11"]. *)

val rule_of_string : string -> rule option
(** [rule_of_string s] parses ["D1"] … ["D11"] (case-sensitive). *)

val rule_summary : rule -> string
(** One-line description, used in SARIF rule metadata and CLI usage. *)

val untyped_rules : rule list
(** The parsetree-tier rules (D1–D8). *)

val typed_rules : rule list
(** The typed-tree-tier rules (D9–D10).  D11 belongs to neither tier:
    the driver derives it from suppression accounting. *)

type finding = {
  file : string;  (** Repo-relative path using [/] separators. *)
  line : int;  (** 1-based line of the offending node. *)
  rule : rule;  (** The rule violated. *)
  message : string;  (** Human-readable explanation. *)
}

val pp_finding : Format.formatter -> finding -> unit
(** [pp_finding ppf f] prints [file:line:rule: message] (the format
    asserted by the fixture tests and consumed by CI). *)

val sort_findings : finding list -> finding list
(** Deterministic order: file, then line, then rule name, then
    message. *)

type allowlist
(** Positional [(rule, path-prefix)] exemptions from
    [tool/lint/allowlist.txt]. *)

val empty_allowlist : allowlist

val allow_entries : allowlist -> (rule * string * int) list
(** [(rule, normalized path, 1-based source line)] per entry, in file
    order — the D11 audit keys entries by their position here. *)

val allowlist_of_lines : string list -> allowlist
(** [allowlist_of_lines lines] parses allowlist syntax: blank lines and
    [#] comments are skipped; every other line is [<rule> <path>] where
    a [<path>] ending in [/] exempts the whole subtree.  Paths are
    normalized (leading [./], duplicate [/] collapsed) before matching.
    @raise Failure on a malformed line, unknown rule, or duplicate
    entry. *)

val load_allowlist : string -> allowlist
(** [load_allowlist path] reads and parses the file at [path]; a
    missing file yields {!empty_allowlist}.  @raise Failure as
    {!allowlist_of_lines}. *)

val normalize_path : string -> string
(** Drops [.] and empty segments ([./lib//sim/] → [lib/sim/]),
    preserving a trailing [/]. *)

val allowlisted : allowlist -> rule -> string -> bool
(** Whether some entry exempts [rule] at the given repo-relative
    path. *)

type pragma = { p_rule : rule; p_start : int; p_end : int }
(** A [lint: allow D<k>] comment: rule plus the comment's line span. *)

exception Parse_error of string * int * string
(** [Parse_error (file, line, msg)]: the source could not be parsed. *)

val collect_pragmas : rel_path:string -> string -> pragma list
(** Lexes [source] and extracts suppression pragmas from its comments
    (a pragma-shaped string literal is not a suppression). *)

val pragma_covers : pragma -> rule -> int -> bool
(** Whether the pragma silences [rule] at the given line (its own lines
    and the line directly below). *)

val suppress :
  allow:allowlist ->
  pragmas:pragma list ->
  finding list ->
  finding list * (int * rule) list * int list
(** [suppress ~allow ~pragmas findings] filters suppressed findings and
    reports which suppressions fired: the kept findings, the used
    pragmas as [(p_start, rule)] pairs, and the used allowlist entries
    as indices into {!allow_entries} (both sorted, deduplicated).  Both
    suppression kinds are consulted for every finding so neither is
    reported stale when shadowed by the other.  D11 findings pass
    through unsuppressed. *)

(** {2 Untyped tier} *)

type parsed
(** A parsed compilation unit (implementation or interface).  Parsing
    touches [compiler-libs] global state and must stay on one domain;
    a [parsed] value is inert and may be analyzed from any domain. *)

val parse_source : rel_path:string -> string -> parsed * pragma list
(** Parses one unit and collects its pragmas.  [rel_path] selects
    [.ml] vs [.mli] syntax.  @raise Parse_error on a syntax error. *)

val analyze_parsed : rel_path:string -> parsed -> finding list
(** Raw (unsuppressed) D1–D8 findings; pure, domain-safe, sorted. *)

val read_file : string -> string
(** Reads a whole file as bytes. *)

val lint_source : rel_path:string -> allow:allowlist -> string -> finding list
(** [lint_source ~rel_path ~allow source] parses, analyzes, and
    suppresses one unit (untyped tier only) — the single-file
    convenience used by fixture tests and [--as].
    @raise Parse_error on a syntax error. *)

val lint_file : root:string -> rel_path:string -> allow:allowlist -> finding list
(** As {!lint_source}, reading [root/rel_path]. *)

val source_files : root:string -> string list
(** Every [.ml]/[.mli] under [lib/], [bin/], [bench/], [test/] below
    [root], as sorted repo-relative paths; [_build] and dotdirs are
    skipped. *)

val missing_mli_findings : string list -> finding list
(** Raw D5 findings for [lib/] modules without an [.mli], given the
    {!source_files} listing. *)

val in_dir : string -> string -> bool
(** [in_dir dir path] is true when [path] lies under [dir/]. *)
