(** [basalt-lint]: a determinism & interface linter over the repo's
    OCaml sources, built on [compiler-libs] (parsetree only — no type
    information, so every rule is syntactic and scoped by path).

    Rules (see DESIGN.md, "Determinism policy & lint rules"):

    - {b D1} — no [Random] module references outside [lib/prng]: all
      randomness must flow from seeded [Basalt_prng.Rng] streams.
    - {b D2} — no wall-clock reads ([Unix.gettimeofday], [Unix.time],
      [Sys.time]) outside the checked-in allowlist.
    - {b D3} — no [Hashtbl.hash] / [Hashtbl.seeded_hash] anywhere: the
      polymorphic hash is not a stable protocol primitive.
    - {b D4} — no polymorphic compare/equality ([=], [<>], [compare],
      [min], [max], orderings, [List.mem]/[List.assoc]-style helpers)
      in [lib/proto], [lib/basalt_core], [lib/brahms], [lib/sps],
      unless one operand is manifestly primitive (a literal constant,
      a constant constructor, or an arithmetic/length/[M.compare]
      expression).  Use [Node_id.equal]/[Node_id.compare] or
      [Int.compare] instead.
    - {b D5} — every [lib/] module has an [.mli], and every exported
      [val] carries a doc comment.
    - {b D6} — no direct console output ([Printf.printf],
      [print_endline], [Format.printf], …) in protocol libraries
      ([lib/] minus [lib/experiments]); reporting flows through the
      experiment layer.
    - {b D7} — no concurrency primitives ([Domain], [Mutex],
      [Condition], [Atomic], [Semaphore]) outside [lib/parallel]:
      parallelism flows through the one audited pool
      ([Basalt_parallel.Pool]), which is the only place the
      determinism argument has to be made.
    - {b D8} — no [Basalt_obs] references outside [lib/obs] and the
      allowlisted instrumentation boundaries: instrument creation,
      mutation, and telemetry output stay behind the one observability
      layer (DESIGN.md §8); code that wants metrics takes an [Obs.t]
      argument rather than reaching for the module.

    Suppression: a source line (or the line just above it) containing
    [lint: allow D<k>] inside a comment silences rule [D<k>] for that
    line; [tool/lint/allowlist.txt] lists [<rule> <path-or-dir/>]
    pairs for whole-file or whole-subtree exemptions. *)

type rule = D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8

val rule_name : rule -> string
(** [rule_name r] is ["D1"] … ["D8"]. *)

val rule_of_string : string -> rule option
(** [rule_of_string s] parses ["D1"] … ["D8"] (case-sensitive). *)

type finding = {
  file : string;  (** Repo-relative path using [/] separators. *)
  line : int;  (** 1-based line of the offending node. *)
  rule : rule;  (** The rule violated. *)
  message : string;  (** Human-readable explanation. *)
}

val pp_finding : Format.formatter -> finding -> unit
(** [pp_finding ppf f] prints [file:line:rule: message] (the format
    asserted by the fixture tests and consumed by CI). *)

type allowlist
(** A set of [(rule, path-prefix)] exemptions. *)

val empty_allowlist : allowlist

val allowlist_of_lines : string list -> allowlist
(** [allowlist_of_lines lines] parses allowlist syntax: blank lines and
    [#] comments are skipped; every other line is [<rule> <path>] where
    a [<path>] ending in [/] exempts the whole subtree.
    @raise Failure on a malformed line. *)

val load_allowlist : string -> allowlist
(** [load_allowlist path] reads and parses the file at [path]; a
    missing file yields {!empty_allowlist}. *)

exception Parse_error of string * int * string
(** [Parse_error (file, line, msg)]: the source could not be parsed. *)

val lint_source : rel_path:string -> allow:allowlist -> string -> finding list
(** [lint_source ~rel_path ~allow source] lints one compilation unit
    given as a string.  [rel_path] determines both the [.ml]/[.mli]
    syntax and the path-scoped rules that apply; findings come back
    sorted by line.  @raise Parse_error on a syntax error. *)

val lint_file : root:string -> rel_path:string -> allow:allowlist -> finding list
(** [lint_file ~root ~rel_path ~allow] reads [root/rel_path] and lints
    it as {!lint_source} does.  @raise Parse_error on a syntax error. *)

val lint_tree : root:string -> allow:allowlist -> finding list
(** [lint_tree ~root ~allow] lints every [.ml]/[.mli] under
    [lib/], [bin/], [bench/], and [test/] below [root], plus the
    D5 missing-[.mli] check for [lib/] modules.  Findings are sorted
    by file then line.  @raise Parse_error on the first syntax error. *)
