(* Typed tier of basalt-lint: rules that need identifiers resolved to
   their real paths and expressions to their real types, run over the
   typedtree recovered from dune's [.cmt] files (produced by any build;
   [dune build @check] is the cheapest way to refresh them).

   Interfaces and files whose [.cmt] is missing simply don't get this
   tier (the driver records that D9/D10 were not checked there, which
   also keeps the D11 audit honest). *)

module L = Lint
open Typedtree

(* ------------------------------------------------------------------ *)
(* Path normalisation                                                  *)

(* Dune-mangled compilation unit names ([Basalt_prng__Rng]) flatten to
   their real module path. *)
let split_mangled s =
  let n = String.length s in
  let rec go start i acc =
    if i + 1 < n && s.[i] = '_' && s.[i + 1] = '_' then
      go (i + 2) (i + 2) (String.sub s start (i - start) :: acc)
    else if i >= n then List.rev (String.sub s start (n - start) :: acc)
    else go start (i + 1) acc
  in
  List.filter (fun p -> p <> "") (go 0 0 [])

let rec flatten_path (p : Path.t) =
  match p with
  | Path.Pident id -> split_mangled (Ident.name id)
  | Path.Pdot (p, s) -> flatten_path p @ [ s ]
  | Path.Papply (p, _) -> flatten_path p
  | Path.Pextra_ty (p, _) -> flatten_path p

(* ------------------------------------------------------------------ *)
(* Analysis context                                                    *)

type ctx = {
  rel_path : string;
  mutable findings : L.finding list;
  (* File-local module aliases ([module Rng = Basalt_prng.Rng]), mapped
     to their fully resolved paths; instances of [Hashtbl.Make] map to
     ["Hashtbl"] so [H.fold] classifies like [Hashtbl.fold]. *)
  aliases : (string, string list) Hashtbl.t;
  (* Top-level functions of this file whose body touches a PRNG stream /
     emits telemetry (interprocedural summaries, file-local). *)
  rng_fns : (string, unit) Hashtbl.t;
  obs_fns : (string, unit) Hashtbl.t;
  (* Idents bound to an unordered-iteration result (D9 accumulation
     taint), keyed by [Ident.unique_name]. *)
  tainted : (string, unit) Hashtbl.t;
  (* Innermost enclosing unordered-iteration callback, if any. *)
  mutable unordered : string option;
}

let report ctx rule line message =
  ctx.findings <- { L.file = ctx.rel_path; line; rule; message } :: ctx.findings

let resolve ctx p =
  let parts = flatten_path p in
  let parts =
    match parts with
    | head :: rest -> (
        match Hashtbl.find_opt ctx.aliases head with
        | Some full -> full @ rest
        | None -> parts)
    | [] -> []
  in
  match parts with "Stdlib" :: rest -> rest | parts -> parts

let head_path ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (resolve ctx p)
  | _ -> None

let rec type_head ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> Some p
  | Tpoly (t, _) -> type_head t
  | _ -> None

let is_rng_type ctx ty =
  match type_head ty with
  | Some p -> (
      match resolve ctx p with
      | [ "Basalt_prng"; "Rng"; "t" ] -> true
      | _ -> false)
  | None -> false

let primitive_type ty =
  match type_head ty with
  | Some p -> (
      match flatten_path p with
      | [ ("int" | "float" | "bool" | "unit" | "char") ] -> true
      | _ -> false)
  | None -> false

let is_rng_fn = function "Basalt_prng" :: "Rng" :: _ -> true | _ -> false
let is_obs_path = function "Basalt_obs" :: _ -> true | _ -> false

(* Iteration constructs whose visit order is the hash table's bucket
   layout, not a function of the protocol history. *)
let unordered_construct = function
  | [ "Hashtbl"; ("fold" | "iter" | "filter_map_inplace") as f ] ->
      Some ("Hashtbl." ^ f)
  | _ -> None

(* Applications whose result inherits hash-table iteration order. *)
let unordered_source = function
  | [ "Hashtbl";
      ("fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ] ->
      true
  | _ -> false

(* Order-preserving transforms propagate D9 taint; sorts cleanse it. *)
let sort_fn = function
  | [ ("List" | "Array"); ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ]
    -> true
  | _ -> false

let order_preserving = function
  | ("List" | "Array" | "Seq") :: _ -> true
  | _ -> false

let plain_args args =
  List.filter_map
    (fun (lbl, a) ->
      match (lbl, a) with
      | Asttypes.Nolabel, Some a -> Some a
      | _, Some a -> Some a
      | _, None -> None)
    args

(* ------------------------------------------------------------------ *)
(* Pass 0: module aliases                                              *)

let collect_aliases ctx str =
  let default = Tast_iterator.default_iterator in
  let module_binding sub (mb : module_binding) =
    (match (mb.mb_id, mb.mb_expr.mod_desc) with
    | Some id, Tmod_ident (p, _) ->
        Hashtbl.replace ctx.aliases (Ident.name id) (resolve ctx p)
    | Some id, Tmod_apply ({ mod_desc = Tmod_ident (f, _); _ }, _, _)
      when resolve ctx f = [ "Hashtbl"; "Make" ] ->
        Hashtbl.replace ctx.aliases (Ident.name id) [ "Hashtbl" ]
    | _ -> ());
    default.module_binding sub mb
  in
  let it = { default with module_binding } in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* Pass 1: file-local function summaries                               *)

(* Whether [e] touches a PRNG stream: mentions a value of type
   [Basalt_prng.Rng.t] (a draw, a split, a handoff, a stored stream) or
   calls a file-local function already known to. *)
let touches ctx ~rng (e : expression) =
  let found = ref false in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (if rng then begin
       if is_rng_type ctx e.exp_type then found := true
     end);
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        let path = resolve ctx p in
        if rng && is_rng_fn path then found := true;
        if (not rng) && is_obs_path path then found := true;
        match p with
        | Path.Pident id ->
            let tbl = if rng then ctx.rng_fns else ctx.obs_fns in
            if Hashtbl.mem tbl (Ident.unique_name id) then found := true
        | _ -> ())
    | _ -> ());
    if not !found then default.expr sub e
  in
  let it = { default with expr } in
  it.expr it e;
  !found

let collect_summaries ctx str =
  let scan_binding (vb : value_binding) =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) ->
        if touches ctx ~rng:true vb.vb_expr then
          Hashtbl.replace ctx.rng_fns (Ident.unique_name id) ();
        if touches ctx ~rng:false vb.vb_expr then
          Hashtbl.replace ctx.obs_fns (Ident.unique_name id) ()
    | _ -> ()
  in
  let default = Tast_iterator.default_iterator in
  let structure_item sub (si : structure_item) =
    (match si.str_desc with
    | Tstr_value (_, vbs) -> List.iter scan_binding vbs
    | _ -> ());
    default.structure_item sub si
  in
  let it = { default with structure_item } in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* D9: iteration-order taint                                           *)

let rec derived ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      Hashtbl.mem ctx.tainted (Ident.unique_name id)
  | Texp_apply (head, args) -> (
      match head_path ctx head with
      | Some p when unordered_source p -> true
      | Some p when sort_fn p -> false
      | Some p when order_preserving p ->
          List.exists (fun a -> derived ctx a) (plain_args args)
      | _ -> false)
  | _ -> false

let local_summary tbl (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      Hashtbl.mem tbl (Ident.unique_name id)
  | _ -> false

(* One D9 verdict for an application node. *)
let check_d9_apply ctx (e : expression) head args =
  let line = e.exp_loc.Location.loc_start.pos_lnum in
  let hp = head_path ctx head in
  let plain = plain_args args in
  (match ctx.unordered with
  | Some construct ->
      let rng_reason =
        if (match hp with Some p -> is_rng_fn p | None -> false) then
          Some "PRNG draw"
        else if List.exists (fun a -> is_rng_type ctx a.exp_type) plain then
          Some "call handing over a Basalt_prng.Rng.t stream"
        else if local_summary ctx.rng_fns head then Some "call to a PRNG-consuming function"
        else None
      in
      (match rng_reason with
      | Some what ->
          report ctx L.D9 line
            (Printf.sprintf
               "%s inside a %s callback: iteration order would feed the \
                PRNG stream; iterate in sorted key order instead \
                (the PR 5 run_eviction bug class)"
               what construct)
      | None -> ());
      if
        (match hp with Some p -> is_obs_path p | None -> false)
        || local_summary ctx.obs_fns head
      then
        report ctx L.D9 line
          (Printf.sprintf
             "trace/metric emission inside a %s callback: iteration order \
              would leak into the observability stream; snapshot and sort \
              before emitting"
             construct)
  | None -> ());
  (* Accumulation taint: an unordered-iteration result feeding a PRNG
     consumer, e.g. [List.iter (fun p -> evict p (* draws *)) expired]
     where [expired] came straight out of [Hashtbl.fold]. *)
  if List.exists (fun a -> derived ctx a) plain then begin
    let feeds_rng =
      (match hp with Some p -> is_rng_fn p | None -> false)
      || List.exists (fun a -> is_rng_type ctx a.exp_type) plain
      || local_summary ctx.rng_fns head
      || List.exists
           (fun a ->
             match a.exp_desc with
             | Texp_function _ -> touches ctx ~rng:true a
             | _ -> false)
           plain
    in
    let feeds_obs =
      (match hp with Some p -> is_obs_path p | None -> false)
      || local_summary ctx.obs_fns head
      || List.exists
           (fun a ->
             match a.exp_desc with
             | Texp_function _ -> touches ctx ~rng:false a
             | _ -> false)
           plain
    in
    if feeds_rng then
      report ctx L.D9 line
        "hash-iteration-ordered value feeds a PRNG consumer; sort it \
         (List.sort) before the draws so executions are a pure function \
         of the protocol history (the PR 5 run_eviction bug class)";
    if feeds_obs && not feeds_rng then
      report ctx L.D9 line
        "hash-iteration-ordered value feeds a trace/metric emitter; sort \
         it (List.sort) before emitting"
  end

let maybe_taint ctx (vb : value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) ->
      if derived ctx vb.vb_expr && not (primitive_type vb.vb_expr.exp_type)
      then Hashtbl.replace ctx.tainted (Ident.unique_name id) ()
  | _ -> ()

let run_d9 ctx str =
  let default = Tast_iterator.default_iterator in
  let expr (sub : Tast_iterator.iterator) (e : expression) =
    match e.exp_desc with
    | Texp_apply (head, args) ->
        check_d9_apply ctx e head args;
        let saved = ctx.unordered in
        (match head_path ctx head with
        | Some p -> (
            match unordered_construct p with
            | Some c -> ctx.unordered <- Some c
            | None -> ())
        | None -> ());
        default.expr sub e;
        ctx.unordered <- saved
    | Texp_let (_, vbs, body) ->
        List.iter (fun vb -> sub.value_binding sub vb) vbs;
        List.iter (maybe_taint ctx) vbs;
        sub.expr sub body
    | _ -> default.expr sub e
  in
  let structure_item (sub : Tast_iterator.iterator) (si : structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter (fun vb -> sub.value_binding sub vb) vbs;
        List.iter (maybe_taint ctx) vbs
    | _ -> default.structure_item sub si
  in
  let it = { default with expr; structure_item } in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* D10: RNG stream aliasing                                            *)

(* Ownership model: within one owning context (a function body, or a
   closure), a [Basalt_prng.Rng.t] value may be handed to at most one
   module-qualified callee and drawn from freely ([Basalt_prng.Rng.*]
   applications are the owner consuming its own stream); handing it to a
   second callee — or to a second closure — aliases the stream: the two
   consumers' draw orders entangle, and an intervening [Rng.split] is
   required.  Stores into records/arrays and plain returns transfer
   ownership and do not count.  Local function values (combinator
   plumbing, HOF arguments) do not count either: the rule targets named
   library entry points, where the entanglement crosses an abstraction
   boundary. *)

(* lib/prng implements the streams; lib/check's generators deliberately
   compose sequential draws on one stream (replay determinism comes from
   the fixed generation order, DESIGN.md §9). *)
let d10_scope path =
  L.in_dir "lib" path
  && (not (L.in_dir "lib/prng" path))
  && not (L.in_dir "lib/check" path)

type d10_state = {
  (* tracked rng ident -> the context (lambda id) that owns it *)
  owners : (string, int) Hashtbl.t;
  names : (string, string) Hashtbl.t;  (* unique name -> source name *)
  (* (ident, context) -> callee key -> first use line *)
  uses : (string * int, (string, int) Hashtbl.t) Hashtbl.t;
  mutable next_ctx : int;
}

let record_use dst (id, c) key line =
  let tbl =
    match Hashtbl.find_opt dst.uses (id, c) with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace dst.uses (id, c) tbl;
        tbl
  in
  if not (Hashtbl.mem tbl key) then Hashtbl.replace tbl key line

let run_d10 ctx str =
  let st =
    {
      owners = Hashtbl.create 16;
      names = Hashtbl.create 16;
      uses = Hashtbl.create 16;
      next_ctx = 0;
    }
  in
  (* Stack of enclosing closure contexts: (ctx id, first line). *)
  let stack = ref [ (0, 0) ] in
  let cur_ctx () = fst (List.hd !stack) in
  let rec track_pat ctx_id (p : pattern) =
    match p.pat_desc with
    | Tpat_var (id, _) ->
        if is_rng_type ctx p.pat_type then begin
          Hashtbl.replace st.owners (Ident.unique_name id) ctx_id;
          Hashtbl.replace st.names (Ident.unique_name id) (Ident.name id)
        end
    | Tpat_alias (sub, id, _) ->
        if is_rng_type ctx p.pat_type then begin
          Hashtbl.replace st.owners (Ident.unique_name id) ctx_id;
          Hashtbl.replace st.names (Ident.unique_name id) (Ident.name id)
        end;
        track_pat ctx_id sub
    | _ -> ()
  in
  (* An occurrence of a tracked ident from inside a deeper closure is a
     capture: charge the owning context with a handoff to the outermost
     intervening closure. *)
  let charge_capture uid =
    match Hashtbl.find_opt st.owners uid with
    | None -> ()
    | Some owner ->
        if cur_ctx () <> owner then begin
          (* Walking outermost-in, the frame right after the owner's is
             the closure that captured the stream. *)
          let rec after_owner = function
            | (c, _) :: rest when c = owner -> (
                match rest with frame :: _ -> Some frame | [] -> None)
            | _ :: rest -> after_owner rest
            | [] -> None
          in
          match after_owner (List.rev !stack) with
          | Some (c, line) ->
              record_use st (uid, owner)
                (Printf.sprintf "closure at line %d (#%d)" line c)
                line
          | None -> ()
        end
  in
  let default = Tast_iterator.default_iterator in
  let rec expr sub (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        charge_capture (Ident.unique_name id)
    | Texp_apply (head, args) ->
        let hp = head_path ctx head in
        let callee_key =
          match hp with
          | Some p when is_rng_fn p -> None (* owner draw/split *)
          | Some p when List.length p >= 2 -> Some (String.concat "." p)
          | _ -> None
        in
        (match callee_key with
        | Some key ->
            List.iter
              (fun a ->
                match a.exp_desc with
                | Texp_ident (Path.Pident id, _, _) ->
                    let uid = Ident.unique_name id in
                    if Hashtbl.mem st.owners uid then
                      record_use st (uid, cur_ctx ()) key
                        e.exp_loc.Location.loc_start.pos_lnum
                | _ -> ())
              (plain_args args)
        | None -> ());
        default.expr sub e
    | Texp_function { cases; _ } ->
        (* Collapse curried chains ([fun a b -> e]) into one context. *)
        st.next_ctx <- st.next_ctx + 1;
        let c = st.next_ctx in
        let line = e.exp_loc.Location.loc_start.pos_lnum in
        stack := (c, line) :: !stack;
        let rec enter (e : expression) =
          match e.exp_desc with
          | Texp_function { cases; _ } ->
              List.iter
                (fun case ->
                  track_pat c case.c_lhs;
                  Option.iter (expr sub) case.c_guard;
                  enter case.c_rhs)
                cases
          | _ -> expr sub e
        in
        List.iter
          (fun case ->
            track_pat c case.c_lhs;
            Option.iter (expr sub) case.c_guard;
            enter case.c_rhs)
          cases;
        stack := List.tl !stack
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            expr sub vb.vb_expr;
            track_pat (cur_ctx ()) vb.vb_pat)
          vbs;
        expr sub body
    | _ -> default.expr sub e
  in
  let it =
    {
      default with
      expr = (fun sub e -> expr sub e);
      value_binding =
        (fun sub vb ->
          default.value_binding sub vb;
          track_pat (cur_ctx ()) vb.vb_pat);
    }
  in
  it.structure it str;
  (* Report: any (ident, context) handed to two or more distinct
     consumers, at the line of the second handoff. *)
  Hashtbl.iter
    (fun (uid, _) tbl ->
      if Hashtbl.length tbl >= 2 then begin
        let entries =
          List.sort
            (fun (_, l1) (_, l2) -> Int.compare l1 l2)
            (Hashtbl.fold (fun k l acc -> (k, l) :: acc) tbl [])
        in
        let names = String.concat ", " (List.map fst entries) in
        let line = match entries with _ :: (_, l) :: _ -> l | _ -> 0 in
        let name =
          match Hashtbl.find_opt st.names uid with Some n -> n | None -> uid
        in
        report ctx L.D10 line
          (Printf.sprintf
             "Rng.t stream %s is handed to multiple consumers (%s) without \
              an intervening Rng.split; each consumer must own its own \
              stream"
             name names)
      end)
    st.uses

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

exception Cmt_error of string * string

let lint_structure ~rel_path str =
  let ctx =
    {
      rel_path;
      findings = [];
      aliases = Hashtbl.create 8;
      rng_fns = Hashtbl.create 16;
      obs_fns = Hashtbl.create 16;
      tainted = Hashtbl.create 8;
      unordered = None;
    }
  in
  collect_aliases ctx str;
  collect_summaries ctx str;
  run_d9 ctx str;
  if d10_scope rel_path then run_d10 ctx str;
  L.sort_findings ctx.findings

let lint_cmt ~rel_path cmt_path =
  let cmt =
    try Cmt_format.read_cmt cmt_path
    with e -> raise (Cmt_error (cmt_path, Printexc.to_string e))
  in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str -> lint_structure ~rel_path str
  | _ -> []
