(* D10 negative: each consumer gets its own stream split off the parent,
   so the parent is only ever handed to Rng.split (owner draws/splits
   are free) and each child has exactly one consumer. *)

module Rng = Basalt_prng.Rng

module Shuffle = struct
  let run rng arr = Rng.shuffle_in_place rng arr
end

module Pick = struct
  let run rng arr = Rng.pick rng arr
end

let fair rng arr =
  let r1 = Rng.split rng in
  Shuffle.run r1 arr;
  let r2 = Rng.split rng in
  ignore (Pick.run r2 arr)
