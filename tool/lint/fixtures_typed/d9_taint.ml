(* D9 positive (accumulation taint): the fold itself is draw-free, but
   its hash-ordered result is never sorted before feeding the evictions
   — the entanglement just moved one binding downstream. *)

module Rng = Basalt_prng.Rng

type t = {
  rng : Rng.t;
  timers : (int, int) Hashtbl.t;
  mutable view : int;
}

let evict t peer = t.view <- t.view + peer + Rng.int t.rng 8

let run_eviction t now =
  let expired =
    Hashtbl.fold
      (fun peer deadline acc -> if deadline <= now then peer :: acc else acc)
      t.timers []
  in
  List.iter (fun peer -> evict t peer) expired
