(* D9 positive (telemetry): per-entry counter updates inside Hashtbl.fold
   make the emission order — and any trace built from it — depend on
   bucket layout instead of protocol history. *)

module Obs = Basalt_obs.Obs

let tally c tbl =
  Hashtbl.fold
    (fun _peer bytes acc ->
      Obs.Counter.add c bytes;
      acc + bytes)
    tbl 0
