(* D10 pragma-suppressed: the d10_alias shape with a justified pragma on
   the reported (second-handoff) line. *)

module Rng = Basalt_prng.Rng

module Shuffle = struct
  let run rng arr = Rng.shuffle_in_place rng arr
end

module Pick = struct
  let run rng arr = Rng.pick rng arr
end

let biased rng arr =
  Shuffle.run rng arr;
  (* lint: allow D10 — fixture: deliberate suppression under test *)
  ignore (Pick.run rng arr)
