(* D9 negative: the fixed run_eviction shape — expirations are collected
   under the fold (no draws there), sorted, and only then evicted, so
   draw order is a pure function of the key set. *)

module Rng = Basalt_prng.Rng

type t = {
  rng : Rng.t;
  timers : (int, int) Hashtbl.t;
  mutable view : int;
}

let evict t peer = t.view <- t.view + peer + Rng.int t.rng 8

let run_eviction t now =
  let expired =
    List.sort Int.compare
      (Hashtbl.fold
         (fun peer deadline acc ->
           if deadline <= now then peer :: acc else acc)
         t.timers [])
  in
  List.iter
    (fun peer ->
      Hashtbl.remove t.timers peer;
      evict t peer)
    expired
