(* D10 positive (escape): the stream is captured by the per-job closure
   and then handed to a second consumer, so the closure's draws and the
   finisher's draws interleave on one stream. *)

module Rng = Basalt_prng.Rng

module Job = struct
  let run rng j = j + Rng.int rng 4
end

module Report = struct
  let finish rng total = total + Rng.int rng 2
end

let entangled rng jobs =
  let total = List.fold_left (fun acc j -> acc + Job.run rng j) 0 jobs in
  Report.finish rng total
