(* D9 positive: the PR 5 run_eviction bug, verbatim in shape — eviction
   happens inside the Hashtbl.fold callback, so hash-bucket order
   decides the order of the PRNG draws each eviction performs.
   test/test_lint.ml pins the finding to the [evict t peer] line. *)

module Rng = Basalt_prng.Rng

type t = {
  rng : Rng.t;
  timers : (int, int) Hashtbl.t;
  mutable view : int;
}

let evict t peer = t.view <- t.view + peer + Rng.int t.rng 8

let run_eviction t now =
  Hashtbl.fold
    (fun peer deadline () ->
      if deadline <= now then begin
        Hashtbl.remove t.timers peer;
        evict t peer
      end)
    t.timers ()
