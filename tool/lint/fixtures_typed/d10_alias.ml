(* D10 positive: one stream handed to two sibling consumers with no
   split in between — their draw orders entangle through the shared
   state.  The finding lands on the second handoff. *)

module Rng = Basalt_prng.Rng

module Shuffle = struct
  let run rng arr = Rng.shuffle_in_place rng arr
end

module Pick = struct
  let run rng arr = Rng.pick rng arr
end

let biased rng arr =
  Shuffle.run rng arr;
  ignore (Pick.run rng arr)
