(* D9 pragma-suppressed: same draw-under-iteration shape as
   d9_fold_evict, silenced by a justified pragma on the line above. *)

module Rng = Basalt_prng.Rng

let jitter rng tbl =
  Hashtbl.iter
    (fun key ttl ->
      if ttl = 0 then begin
        (* lint: allow D9 — fixture: deliberate suppression under test *)
        ignore (Rng.int rng (key + 1))
      end)
    tbl
