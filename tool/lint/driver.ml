(* Whole-tree driver for basalt-lint: runs the untyped tier over every
   source file, the typed tier over every [.cmt] the build left behind,
   merges the findings through the suppression machinery, and turns
   unused suppressions into D11 findings.

   Phasing is determinism-driven: parsing and comment lexing use
   compiler-libs global state and stay on the submitting domain; the
   pure analysis passes (parsetree walks, [.cmt] unmarshalling and
   typedtree walks) fan out over a [Basalt_parallel.Pool], whose [map]
   collects results in input order — so findings come back in path order
   no matter how many domains run. *)

module L = Lint
module Pool = Basalt_parallel.Pool

type report = {
  findings : L.finding list;
  files_scanned : int;
  typed_covered : int;
}

(* ------------------------------------------------------------------ *)
(* .cmt discovery                                                      *)

let rec walk_cmts dir acc =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        let full = Filename.concat dir entry in
        if Sys.is_directory full then walk_cmts full acc
        else if Filename.check_suffix entry ".cmt" then full :: acc
        else acc)
      acc
      (let entries = Sys.readdir dir in
       Array.sort String.compare entries;
       entries)

let find_cmts build_dir = List.sort String.compare (walk_cmts build_dir [])

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)

let run ?(typed = false) ?(rules = L.all_rules) ?build_dir ?pool ~root ~allow
    () =
  let requested r = List.mem r rules in
  let files = L.source_files ~root in
  let file_set = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace file_set f ()) files;
  (* Phase 1 (sequential): read + parse + pragma lexing. *)
  let parsed =
    List.map
      (fun f ->
        let source = L.read_file (Filename.concat root f) in
        let p, pragmas = L.parse_source ~rel_path:f source in
        (f, p, pragmas))
      files
  in
  (* Phase 2 (parallel): untyped analysis. *)
  let untyped_wanted = List.exists requested L.untyped_rules in
  let untyped_by_file = Hashtbl.create 256 in
  if untyped_wanted then
    List.iter
      (fun (f, fs) -> Hashtbl.replace untyped_by_file f fs)
      (Pool.map ?pool
         (fun (f, p, _) -> (f, L.analyze_parsed ~rel_path:f p))
         parsed);
  (* Phase 3 (parallel): typed analysis over discovered .cmt files.
     Each .cmt names its source; only units inside the scanned tree
     participate.  Unreadable .cmt files are skipped — the tier degrades
     to "not checked here", which the D11 audit respects. *)
  let typed_wanted = typed && List.exists requested L.typed_rules in
  let typed_by_file = Hashtbl.create 64 in
  if typed_wanted then begin
    let bdir =
      match build_dir with
      | Some d -> d
      | None -> Filename.concat root "_build/default"
    in
    let results =
      Pool.map ?pool
        (fun cmt_path ->
          match Cmt_format.read_cmt cmt_path with
          | exception _ -> None
          | cmt -> (
              match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile)
              with
              | Cmt_format.Implementation str, Some src ->
                  let src = L.normalize_path src in
                  if Hashtbl.mem file_set src then
                    Some (src, Typed.lint_structure ~rel_path:src str)
                  else None
              | _ -> None))
        (find_cmts bdir)
    in
    List.iter
      (function
        | Some (f, fs) ->
            if not (Hashtbl.mem typed_by_file f) then
              Hashtbl.add typed_by_file f fs
        | None -> ())
      results
  end;
  (* D5 missing-.mli findings, grouped per .ml file so they flow through
     that file's suppressions. *)
  let missing_by_file = Hashtbl.create 16 in
  if requested L.D5 then
    List.iter
      (fun (fd : L.finding) -> Hashtbl.replace missing_by_file fd.L.file
          (fd :: (Option.value ~default:[]
                    (Hashtbl.find_opt missing_by_file fd.L.file))))
      (L.missing_mli_findings files);
  (* Phase 4 (sequential, path order): suppression + usage accounting. *)
  let audit = requested L.D11 in
  let all_used_entries = Hashtbl.create 16 in
  let acc_findings = ref [] in
  List.iter
    (fun (f, _, pragmas) ->
      let typed_avail = Hashtbl.mem typed_by_file f in
      let raw =
        Option.value ~default:[] (Hashtbl.find_opt untyped_by_file f)
        @ Option.value ~default:[] (Hashtbl.find_opt typed_by_file f)
        @ Option.value ~default:[] (Hashtbl.find_opt missing_by_file f)
      in
      let raw = List.filter (fun (fd : L.finding) -> requested fd.L.rule) raw in
      let kept, used_pragmas, used_entries =
        L.suppress ~allow ~pragmas raw
      in
      List.iter (fun i -> Hashtbl.replace all_used_entries i ()) used_entries;
      acc_findings := kept :: !acc_findings;
      if audit then begin
        (* A pragma is auditable only for rules that actually ran on
           this file: a D9 pragma is not stale in an untyped run, nor in
           a typed run where this file's .cmt was missing. *)
        let checked r =
          requested r
          && ((List.mem r L.untyped_rules && untyped_wanted)
             || (List.mem r L.typed_rules && typed_wanted && typed_avail)
             || r = L.D5)
        in
        let seen = Hashtbl.create 8 in
        let stale =
          List.filter_map
            (fun (p : L.pragma) ->
              let key = (p.L.p_start, p.L.p_rule) in
              if Hashtbl.mem seen key then None
              else begin
                Hashtbl.replace seen key ();
                if checked p.L.p_rule && not (List.mem key used_pragmas)
                then
                  Some
                    {
                      L.file = f;
                      line = p.L.p_start;
                      rule = L.D11;
                      message =
                        Printf.sprintf
                          "stale pragma 'lint: allow %s': it suppressed \
                           nothing this run; remove it"
                          (L.rule_name p.L.p_rule);
                    }
                else None
              end)
            pragmas
        in
        acc_findings := stale :: !acc_findings
      end)
    parsed;
  (* Allowlist entries that fired for no file at all are stale.  Typed
     rules are only auditable when the typed tier ran; D11 entries can
     never fire (D11 is unsuppressible) and are always stale. *)
  if audit then begin
    let stale_entries =
      List.filter_map
        (fun (i, (rule, path, line)) ->
          let auditable =
            requested rule
            && ((List.mem rule L.untyped_rules && List.exists requested L.untyped_rules)
               || (List.mem rule L.typed_rules && typed_wanted)
               || rule = L.D11)
          in
          if auditable && not (Hashtbl.mem all_used_entries i) then
            Some
              {
                L.file = "tool/lint/allowlist.txt";
                line;
                rule = L.D11;
                message =
                  Printf.sprintf
                    "stale allowlist entry '%s %s': it suppressed nothing \
                     this run; remove it"
                    (L.rule_name rule) path;
              }
          else None)
        (List.mapi (fun i e -> (i, e)) (L.allow_entries allow))
    in
    acc_findings := stale_entries :: !acc_findings
  end;
  {
    findings = L.sort_findings (List.concat !acc_findings);
    files_scanned = List.length files;
    typed_covered = Hashtbl.length typed_by_file;
  }
