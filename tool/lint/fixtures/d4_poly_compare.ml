(* D4 fixture: node ids must use Node_id.equal / Node_id.compare.
   Lint with:  main.exe --as lib/basalt_core/d4_poly_compare.ml <this file> *)
let same a b = a = b
let order xs = List.sort compare xs
let member x xs = List.mem x xs
