(* D7 fixture: concurrency primitives live only in lib/parallel. *)
let spawn () = Domain.spawn (fun () -> ())
let guard = Mutex.create ()
let signal = Condition.create ()
let counter = Atomic.make 0
