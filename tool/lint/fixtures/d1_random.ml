(* D1 fixture: protocol code must not reach for [Random]. *)
let roll () = Random.int 6
