(* D6 fixture: protocol libraries must not write to the console.
   Lint with:  main.exe --as lib/proto/d6_printf.ml <this file> *)
let log msg = print_endline msg
let debug () = Printf.printf "round done\n"
