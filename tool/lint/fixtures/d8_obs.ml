(* D8 fixture: Basalt_obs references outside lib/obs / the allowlist. *)
module Obs = Basalt_obs.Obs

let t = Basalt_obs.Obs.create ()
let c = Basalt_obs.Obs.counter t "sneaky"

open Basalt_obs
