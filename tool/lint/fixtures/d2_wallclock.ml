(* D2 fixture: wall-clock reads belong to allowlisted boundaries only. *)
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
