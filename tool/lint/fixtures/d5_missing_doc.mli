(* D5 fixture: exported vals must carry doc comments.
   Lint with:  main.exe --as lib/basalt_core/d5_missing_doc.mli <this file> *)

val documented : int
(** This one is fine. *)

val undocumented : int
