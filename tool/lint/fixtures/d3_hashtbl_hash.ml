(* D3 fixture: the polymorphic hash is not a protocol primitive. *)
let bucket x = Hashtbl.hash x mod 16
