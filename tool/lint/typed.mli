(** Typed tier of [basalt-lint]: the dataflow rules D9 (iteration-order
    taint) and D10 (RNG stream aliasing), run over the typedtree read
    back from the [.cmt] files a build leaves in [_build] (refresh them
    with [dune build @check]).

    On the typedtree, identifiers are resolved [Path.t]s and every
    expression carries its type, so [Basalt_prng.Rng.t] values are
    recognized however they are named — through local module aliases
    ([module Rng = Basalt_prng.Rng]), dune-mangled unit names
    ([Basalt_prng__Rng]), and [Hashtbl.Make] functor instances.

    Files whose [.cmt] is missing are simply not covered by this tier;
    the driver records that D9/D10 went unchecked there, which keeps the
    D11 stale-suppression audit from flagging their pragmas. *)

exception Cmt_error of string * string
(** [Cmt_error (cmt_path, msg)]: the [.cmt] file could not be read. *)

val lint_cmt : rel_path:string -> string -> Lint.finding list
(** [lint_cmt ~rel_path cmt_path] reads the [.cmt] at [cmt_path] and
    returns the raw (unsuppressed) D9/D10 findings for the unit,
    attributed to [rel_path] and sorted.  A [.cmt] holding anything but
    an implementation (e.g. an interface [.cmti]) yields no findings.
    @raise Cmt_error when the file cannot be read. *)

val lint_structure : rel_path:string -> Typedtree.structure -> Lint.finding list
(** As {!lint_cmt}, over an already-loaded typedtree structure. *)
