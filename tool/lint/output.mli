(** Finding renderers for the basalt-lint CLI: plain text
    ([file:line:rule: message]), a stable machine-readable JSON schema
    (pinned by [test/test_cli.ml]), and SARIF 2.1.0 for GitHub code
    scanning annotations. *)

type format = Text | Json | Sarif

val format_of_string : string -> format option
(** Parses ["text"] / ["json"] / ["sarif"]. *)

val print : Format.formatter -> format -> Lint.finding list -> unit
(** [print ppf fmt findings] renders the findings.  Text emits one line
    per finding; JSON emits [{"version": 1, "findings": [...]}] with
    fixed key order; SARIF emits one run with per-rule metadata and one
    [error]-level result per finding. *)
