type rule = D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8 | D9 | D10 | D11

let all_rules = [ D1; D2; D3; D4; D5; D6; D7; D8; D9; D10; D11 ]

let rule_name = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"
  | D7 -> "D7"
  | D8 -> "D8"
  | D9 -> "D9"
  | D10 -> "D10"
  | D11 -> "D11"

let rule_of_string s =
  List.find_opt (fun r -> rule_name r = s) all_rules

(* One-line summaries, used by --format sarif rule metadata and the
   CLI usage text.  The authoritative prose lives in DESIGN.md §6. *)
let rule_summary = function
  | D1 -> "no Random outside lib/prng; randomness flows from seeded \
           Basalt_prng.Rng streams"
  | D2 -> "no wall-clock reads outside allowlisted process boundaries"
  | D3 -> "no polymorphic Hashtbl.hash / seeded_hash / hash_param"
  | D4 -> "no polymorphic compare/equality in protocol libraries"
  | D5 -> "every lib module has an .mli and every exported val a doc \
           comment"
  | D6 -> "no direct console output in protocol libraries"
  | D7 -> "concurrency primitives confined to lib/parallel"
  | D8 -> "Basalt_obs references confined to lib/obs and allowlisted \
           instrumentation boundaries"
  | D9 -> "no PRNG draw, trace emit, or PRNG-feeding accumulation under \
           unordered Hashtbl iteration"
  | D10 -> "a Basalt_prng.Rng.t stream is owned by one callee at a time; \
            split before handing it to a second one"
  | D11 -> "every suppression (pragma or allowlist entry) must suppress \
            at least one finding per run"

(* The tier each rule runs on: D1-D8 need only the parsetree; D9 and D10
   resolve identifiers and types on the typed tree (.cmt files); D11 is
   computed by the driver from suppression-usage accounting. *)
let untyped_rules = [ D1; D2; D3; D4; D5; D6; D7; D8 ]
let typed_rules = [ D9; D10 ]

type finding = { file : string; line : int; rule : rule; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%s: %s" f.file f.line (rule_name f.rule) f.message

let sort_findings fs =
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> (
              match String.compare (rule_name a.rule) (rule_name b.rule) with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
    fs

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)

type allow_entry = { a_rule : rule; a_path : string; a_line : int }
type allowlist = allow_entry list

let empty_allowlist = []
let allow_entries a = List.map (fun e -> (e.a_rule, e.a_path, e.a_line)) a

(* Normalises a repo-relative path so that `./lib//sim/` and `lib/sim/`
   compare equal: drops `.` segments and empty segments (duplicated or
   leading slashes), preserving the trailing `/` that marks a subtree
   prefix. *)
let normalize_path p =
  let subtree = String.length p > 0 && p.[String.length p - 1] = '/' in
  let parts =
    List.filter
      (fun s -> s <> "" && s <> ".")
      (String.split_on_char '/' p)
  in
  String.concat "/" parts ^ if subtree then "/" else ""

let allowlist_of_lines lines =
  let entries =
    List.concat
      (List.mapi
         (fun i line ->
           let lineno = i + 1 in
           let line =
             match String.index_opt line '#' with
             | Some j -> String.sub line 0 j
             | None -> line
           in
           let line = String.trim line in
           if line = "" then []
           else
             match String.index_opt line ' ' with
             | None -> failwith ("allowlist: malformed line: " ^ line)
             | Some j ->
                 let r = String.sub line 0 j in
                 let path =
                   String.trim (String.sub line j (String.length line - j))
                 in
                 let rule =
                   match rule_of_string r with
                   | Some rule -> rule
                   | None -> failwith ("allowlist: unknown rule: " ^ r)
                 in
                 [ { a_rule = rule; a_path = normalize_path path;
                     a_line = lineno } ])
         lines)
  in
  (* Duplicate entries can only hide a stale line, so they are rejected
     at load time rather than silently tolerated. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key = rule_name e.a_rule ^ " " ^ e.a_path in
      if Hashtbl.mem seen key then
        failwith ("allowlist: duplicate entry: " ^ key);
      Hashtbl.replace seen key ())
    entries;
  entries

let load_allowlist path =
  if not (Sys.file_exists path) then empty_allowlist
  else
    let ic = open_in path in
    let rec read acc =
      match input_line ic with
      | line -> read (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = read [] in
    close_in ic;
    allowlist_of_lines lines

(* Index of the first entry exempting [rule] at [path], if any. *)
let allow_match allow rule path =
  let path = normalize_path path in
  let rec go i = function
    | [] -> None
    | e :: rest ->
        if
          e.a_rule = rule
          &&
          if String.length e.a_path > 0
             && e.a_path.[String.length e.a_path - 1] = '/'
          then String.starts_with ~prefix:e.a_path path
          else String.equal e.a_path path
        then Some i
        else go (i + 1) rest
  in
  go 0 allow

let allowlisted allow rule path = allow_match allow rule path <> None

(* ------------------------------------------------------------------ *)
(* Suppression pragmas                                                 *)

type pragma = { p_rule : rule; p_start : int; p_end : int }

exception Parse_error of string * int * string

(* Extracts `lint: allow D<k>` pragmas from one comment body. *)
let pragmas_of_comment text (loc : Location.t) =
  let tag = "lint: allow D" in
  let tl = String.length tag and n = String.length text in
  let rec digits j = if j < n && text.[j] >= '0' && text.[j] <= '9' then digits (j + 1) else j in
  let rec scan i acc =
    if i + tl > n then List.rev acc
    else if String.sub text i tl = tag then begin
      let stop = digits (i + tl) in
      let name = "D" ^ String.sub text (i + tl) (stop - (i + tl)) in
      let acc =
        match rule_of_string name with
        | Some rule ->
            { p_rule = rule;
              p_start = loc.loc_start.pos_lnum;
              p_end = loc.loc_end.pos_lnum }
            :: acc
        | None -> acc
      in
      scan stop acc
    end
    else scan (i + 1) acc
  in
  scan 0 []

(* Pragmas are comments, found by lexing: a pragma-shaped string literal
   (as in the lint test fixtures) is not a suppression.  The source is
   assumed to lex — callers parse it first. *)
let collect_pragmas ~rel_path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf rel_path;
  Lexer.init ();
  (try
     let rec drain () =
       match Lexer.token lexbuf with Parser.EOF -> () | _ -> drain ()
     in
     drain ()
   with _ -> ());
  List.concat_map
    (fun (text, loc) -> pragmas_of_comment text loc)
    (Lexer.comments ())

(* A pragma covers findings on the comment's own lines and the line
   directly below it. *)
let pragma_covers p rule line =
  p.p_rule = rule && p.p_start <= line && line <= p.p_end + 1

(* Applies the allowlist and pragma suppressions to raw findings of one
   file, also reporting which suppressions fired (for the D11 audit).
   Both kinds are consulted for every finding so that a pragma shadowed
   by an allowlist entry still counts as used.  D11 findings are not
   suppressible: the suppression surface must only shrink. *)
let suppress ~allow ~pragmas findings =
  let used_pragmas = ref [] and used_entries = ref [] in
  let kept =
    List.filter
      (fun f ->
        if f.rule = D11 then true
        else begin
          let entry = allow_match allow f.rule f.file in
          let ps = List.filter (fun p -> pragma_covers p f.rule f.line) pragmas in
          (match entry with
          | Some i -> used_entries := i :: !used_entries
          | None -> ());
          List.iter
            (fun p -> used_pragmas := (p.p_start, p.p_rule) :: !used_pragmas)
            ps;
          entry = None && ps = []
        end)
      findings
  in
  ( kept,
    List.sort_uniq compare !used_pragmas,
    List.sort_uniq compare !used_entries )

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

let in_dir dir path = String.starts_with ~prefix:(dir ^ "/") path
let d1_exempt path = in_dir "lib/prng" path

let d4_scope path =
  List.exists
    (fun d -> in_dir d path)
    [ "lib/proto"; "lib/basalt_core"; "lib/brahms"; "lib/sps" ]

let d5_scope path = in_dir "lib" path
let d6_scope path = in_dir "lib" path && not (in_dir "lib/experiments" path)
let d7_exempt path = in_dir "lib/parallel" path
let d8_exempt path = in_dir "lib/obs" path

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)

(* Flattened [Longident.t] with any leading [Stdlib.] stripped, so that
   [Stdlib.compare] and [compare] classify identically. *)
let path_of_lid lid =
  match Longident.flatten lid with "Stdlib" :: rest -> rest | p -> p

let path_string p = String.concat "." p

let wall_clock_paths =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ] ]

(* [Hashtbl.hash] and friends, however the module is reached. *)
let is_poly_hash = function
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] -> true
  | _ -> false

let poly_operators =
  [ "="; "<>"; "=="; "!="; "<"; ">"; "<="; ">="; "compare"; "min"; "max" ]

(* Container helpers whose semantics embed polymorphic equality. *)
let poly_eq_helpers =
  [
    [ "List"; "mem" ];
    [ "List"; "memq" ];
    [ "List"; "assoc" ];
    [ "List"; "assoc_opt" ];
    [ "List"; "mem_assoc" ];
    [ "List"; "remove_assoc" ];
    [ "Array"; "mem" ];
    [ "Array"; "memq" ];
  ]

(* Concurrency primitives quarantined in lib/parallel (D7).  [Semaphore]
   rides along: it is sugar over the same primitives. *)
let concurrency_roots = [ "Domain"; "Mutex"; "Condition"; "Atomic"; "Semaphore" ]

let console_output_paths =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "print_char" ];
    [ "print_bytes" ];
    [ "prerr_endline" ];
    [ "prerr_string" ];
    [ "prerr_newline" ];
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_newline" ];
  ]

let arith_operators =
  [
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "+."; "-."; "*."; "/."; "**"; "~-"; "~-."; "abs"; "abs_float";
    "float_of_int"; "int_of_float"; "succ"; "pred"; "not"; "!";
  ]

(* An operand whose type is manifestly a primitive (int/float/bool/…),
   making a polymorphic comparison monomorphic and deterministic:
   literals, constant constructors, arithmetic expressions, and
   [M.length]/[M.compare]/[M.to_int]-shaped calls.  [!] is included
   because in this codebase refs under comparison are round/size
   counters; a ref holding an abstract value still trips the rule via
   the other operand. *)
let rec manifestly_primitive (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_variant (_, None) -> true
  | Pexp_constraint (e, _) -> manifestly_primitive e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match path_of_lid txt with
      | [ op ] -> List.mem op arith_operators
      | p -> (
          match List.rev p with
          | ("length" | "compare" | "to_int") :: _ -> true
          | _ -> false))
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-file lint state (raw findings; suppression is applied after)    *)

type state = {
  rel_path : string;
  mutable findings : finding list;
  (* Operator idents already judged as part of an enclosing application
     (keyed by position), so the bare-ident check does not re-flag them. *)
  handled_ops : (int * int, unit) Hashtbl.t;
}

let report st rule line message =
  st.findings <- { file = st.rel_path; line; rule; message } :: st.findings

(* ------------------------------------------------------------------ *)
(* Identifier checks (shared by expressions, module refs, opens)       *)

let check_path st (loc : Location.t) p =
  let line = loc.loc_start.pos_lnum in
  (match p with
  | "Random" :: _ when not (d1_exempt st.rel_path) ->
      report st D1 line
        (Printf.sprintf
           "reference to %s; all randomness must come from seeded \
            Basalt_prng.Rng streams (lib/prng is the only exemption)"
           (path_string p))
  | _ -> ());
  if List.mem p wall_clock_paths then
    report st D2 line
      (Printf.sprintf
         "wall-clock read %s; inject a clock function or allowlist this \
          process boundary in tool/lint/allowlist.txt"
         (path_string p));
  if is_poly_hash p then
    report st D3 line
      (Printf.sprintf
         "%s is the polymorphic hash and is banned; use Basalt_hashing or a \
          dedicated hash function"
         (path_string p));
  if d4_scope st.rel_path && List.mem p poly_eq_helpers then
    report st D4 line
      (Printf.sprintf
         "%s uses polymorphic equality; use an explicit equal function \
          (e.g. Node_id.equal)"
         (path_string p));
  if d6_scope st.rel_path && List.mem p console_output_paths then
    report st D6 line
      (Printf.sprintf
         "direct console output %s in a protocol library; route output \
          through the experiment/report layer"
         (path_string p));
  (match p with
  | root :: _
    when List.mem root concurrency_roots && not (d7_exempt st.rel_path) ->
      report st D7 line
        (Printf.sprintf
           "reference to %s; concurrency primitives are confined to \
            lib/parallel — fan work out through Basalt_parallel.Pool"
           (path_string p))
  | _ -> ());
  match p with
  | "Basalt_obs" :: _ when not (d8_exempt st.rel_path) ->
      report st D8 line
        (Printf.sprintf
           "reference to %s; instruments and telemetry are confined to \
            lib/obs and the allowlisted instrumentation boundaries \
            (tool/lint/allowlist.txt) — thread an Obs.t in, don't reach \
            for the module"
           (path_string p))
  | _ -> ()

let pos_key (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum)

(* D4: polymorphic comparison operators in protocol libraries. *)
let check_poly_operator st (e : Parsetree.expression) =
  if d4_scope st.rel_path then
    match e.pexp_desc with
    | Pexp_apply
        (({ pexp_desc = Pexp_ident { txt; loc }; _ } as fn), args)
      when (match path_of_lid txt with
           | [ op ] -> List.mem op poly_operators
           | _ -> false) ->
        let op = match path_of_lid txt with [ op ] -> op | _ -> "" in
        let plain =
          List.filter_map
            (fun (lbl, a) ->
              match lbl with Asttypes.Nolabel -> Some a | _ -> None)
            args
        in
        Hashtbl.replace st.handled_ops (pos_key fn.pexp_loc) ();
        (match plain with
        | a :: b :: _ ->
            if not (manifestly_primitive a || manifestly_primitive b) then
              report st D4 loc.loc_start.pos_lnum
                (Printf.sprintf
                   "polymorphic %s on non-primitive operands; use a \
                    dedicated comparison (Node_id.equal/compare, \
                    Int.compare, …)"
                   op)
        | _ ->
            report st D4 loc.loc_start.pos_lnum
              (Printf.sprintf
                 "polymorphic %s partially applied; pass a dedicated \
                  comparison instead"
                 op))
    | Pexp_ident { txt; loc }
      when (match path_of_lid txt with
           | [ op ] -> List.mem op poly_operators
           | _ -> false)
           && not (Hashtbl.mem st.handled_ops (pos_key e.pexp_loc)) ->
        let op = match path_of_lid txt with [ op ] -> op | _ -> "" in
        report st D4 loc.loc_start.pos_lnum
          (Printf.sprintf
             "polymorphic %s used as a function value; pass a dedicated \
              comparison (Node_id.compare, Int.compare, …)"
             op)
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* AST traversal                                                       *)

let make_iterator st =
  let default = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_path st loc (path_of_lid txt)
    | _ -> ());
    check_poly_operator st e;
    default.expr it e
  in
  let module_expr it (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_path st loc (path_of_lid txt)
    | _ -> ());
    default.module_expr it m
  in
  let open_description it (o : Parsetree.open_description) =
    check_path st o.popen_expr.loc (path_of_lid o.popen_expr.txt);
    default.open_description it o
  in
  let doc_attr (a : Parsetree.attribute) =
    a.attr_name.txt = "ocaml.doc" || a.attr_name.txt = "doc"
  in
  let signature_item it (s : Parsetree.signature_item) =
    (match s.psig_desc with
    | Psig_value vd
      when d5_scope st.rel_path
           && Filename.check_suffix st.rel_path ".mli"
           && not (List.exists doc_attr vd.pval_attributes) ->
        report st D5 vd.pval_name.loc.loc_start.pos_lnum
          (Printf.sprintf "val %s has no doc comment" vd.pval_name.txt)
    | _ -> ());
    default.signature_item it s
  in
  { default with expr; module_expr; open_description; signature_item }

(* ------------------------------------------------------------------ *)
(* Untyped tier entry points                                           *)

(* Parsing and comment lexing use compiler-libs global state (the lexer's
   comment buffer, [Location.input_name]), so they must stay on a single
   domain; [parsed] values are inert data that later analysis phases may
   consume from any domain (the driver fans them over a Pool). *)
type parsed =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

let parse_source ~rel_path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf rel_path;
  Location.input_name := rel_path;
  let parsed =
    try
      if Filename.check_suffix rel_path ".mli" then
        Intf (Parse.interface lexbuf)
      else Impl (Parse.implementation lexbuf)
    with e ->
      let line =
        match e with
        | Syntaxerr.Error err ->
            (Syntaxerr.location_of_error err).loc_start.pos_lnum
        | _ -> 0
      in
      raise (Parse_error (rel_path, line, Printexc.to_string e))
  in
  (parsed, collect_pragmas ~rel_path source)

(* Raw (unsuppressed) findings of the untyped tier; pure. *)
let analyze_parsed ~rel_path parsed =
  let st = { rel_path; findings = []; handled_ops = Hashtbl.create 16 } in
  let it = make_iterator st in
  (match parsed with
  | Impl str -> it.structure it str
  | Intf sg -> it.signature it sg);
  sort_findings st.findings

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_source ~rel_path ~allow source =
  let parsed, pragmas = parse_source ~rel_path source in
  let raw = analyze_parsed ~rel_path parsed in
  let kept, _, _ = suppress ~allow ~pragmas raw in
  kept

let lint_file ~root ~rel_path ~allow =
  let path =
    if Filename.is_relative rel_path then Filename.concat root rel_path
    else rel_path
  in
  lint_source ~rel_path ~allow (read_file path)

let scanned_dirs = [ "lib"; "bin"; "bench"; "test" ]

let rec walk root rel acc =
  let full = Filename.concat root rel in
  if Sys.is_directory full then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || String.starts_with ~prefix:"." entry then acc
        else walk root (rel ^ "/" ^ entry) acc)
      acc
      (let entries = Sys.readdir full in
       Array.sort String.compare entries;
       entries)
  else if
    Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
  then rel :: acc
  else acc

let source_files ~root =
  List.sort String.compare
    (List.fold_left
       (fun acc dir ->
         if Sys.file_exists (Filename.concat root dir) then walk root dir acc
         else acc)
       [] scanned_dirs)

(* Raw D5 findings for lib modules without an [.mli]; file-level, so the
   driver routes them through the same suppression machinery. *)
let missing_mli_findings files =
  let files_set = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace files_set f ()) files;
  List.filter_map
    (fun f ->
      if
        in_dir "lib" f
        && Filename.check_suffix f ".ml"
        && not (Hashtbl.mem files_set (f ^ "i"))
      then
        Some
          {
            file = f;
            line = 1;
            rule = D5;
            message =
              Printf.sprintf
                "lib module %s has no .mli interface"
                (Filename.remove_extension (Filename.basename f));
          }
      else None)
    files
