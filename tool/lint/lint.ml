type rule = D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8

let rule_name = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"
  | D7 -> "D7"
  | D8 -> "D8"

let rule_of_string = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | "D5" -> Some D5
  | "D6" -> Some D6
  | "D7" -> Some D7
  | "D8" -> Some D8
  | _ -> None

type finding = { file : string; line : int; rule : rule; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%s: %s" f.file f.line (rule_name f.rule) f.message

type allowlist = (rule * string) list

let empty_allowlist = []

let allowlist_of_lines lines =
  List.concat_map
    (fun line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line = "" then []
      else
        match String.index_opt line ' ' with
        | None -> failwith ("allowlist: malformed line: " ^ line)
        | Some i ->
            let r = String.sub line 0 i in
            let path =
              String.trim (String.sub line i (String.length line - i))
            in
            let rule =
              match rule_of_string r with
              | Some rule -> rule
              | None -> failwith ("allowlist: unknown rule: " ^ r)
            in
            [ (rule, path) ])
    lines

let load_allowlist path =
  if not (Sys.file_exists path) then empty_allowlist
  else
    let ic = open_in path in
    let rec read acc =
      match input_line ic with
      | line -> read (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = read [] in
    close_in ic;
    allowlist_of_lines lines

let allowlisted allow rule path =
  List.exists
    (fun (r, prefix) ->
      r = rule
      &&
      if String.length prefix > 0 && prefix.[String.length prefix - 1] = '/'
      then String.starts_with ~prefix path
      else String.equal prefix path)
    allow

exception Parse_error of string * int * string

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

let in_dir dir path = String.starts_with ~prefix:(dir ^ "/") path
let d1_exempt path = in_dir "lib/prng" path

let d4_scope path =
  List.exists
    (fun d -> in_dir d path)
    [ "lib/proto"; "lib/basalt_core"; "lib/brahms"; "lib/sps" ]

let d5_scope path = in_dir "lib" path
let d6_scope path = in_dir "lib" path && not (in_dir "lib/experiments" path)
let d7_exempt path = in_dir "lib/parallel" path
let d8_exempt path = in_dir "lib/obs" path

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)

(* Flattened [Longident.t] with any leading [Stdlib.] stripped, so that
   [Stdlib.compare] and [compare] classify identically. *)
let path_of_lid lid =
  match Longident.flatten lid with "Stdlib" :: rest -> rest | p -> p

let path_string p = String.concat "." p

let wall_clock_paths =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ] ]

(* [Hashtbl.hash] and friends, however the module is reached. *)
let is_poly_hash = function
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] -> true
  | _ -> false

let poly_operators =
  [ "="; "<>"; "=="; "!="; "<"; ">"; "<="; ">="; "compare"; "min"; "max" ]

(* Container helpers whose semantics embed polymorphic equality. *)
let poly_eq_helpers =
  [
    [ "List"; "mem" ];
    [ "List"; "memq" ];
    [ "List"; "assoc" ];
    [ "List"; "assoc_opt" ];
    [ "List"; "mem_assoc" ];
    [ "List"; "remove_assoc" ];
    [ "Array"; "mem" ];
    [ "Array"; "memq" ];
  ]

(* Concurrency primitives quarantined in lib/parallel (D7).  [Semaphore]
   rides along: it is sugar over the same primitives. *)
let concurrency_roots = [ "Domain"; "Mutex"; "Condition"; "Atomic"; "Semaphore" ]

let console_output_paths =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "print_char" ];
    [ "print_bytes" ];
    [ "prerr_endline" ];
    [ "prerr_string" ];
    [ "prerr_newline" ];
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_newline" ];
  ]

let arith_operators =
  [
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "+."; "-."; "*."; "/."; "**"; "~-"; "~-."; "abs"; "abs_float";
    "float_of_int"; "int_of_float"; "succ"; "pred"; "not"; "!";
  ]

(* An operand whose type is manifestly a primitive (int/float/bool/…),
   making a polymorphic comparison monomorphic and deterministic:
   literals, constant constructors, arithmetic expressions, and
   [M.length]/[M.compare]/[M.to_int]-shaped calls.  [!] is included
   because in this codebase refs under comparison are round/size
   counters; a ref holding an abstract value still trips the rule via
   the other operand. *)
let rec manifestly_primitive (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_variant (_, None) -> true
  | Pexp_constraint (e, _) -> manifestly_primitive e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match path_of_lid txt with
      | [ op ] -> List.mem op arith_operators
      | p -> (
          match List.rev p with
          | ("length" | "compare" | "to_int") :: _ -> true
          | _ -> false))
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-file lint state                                                 *)

type state = {
  rel_path : string;
  lines : string array;  (** 1-based via [line_text]. *)
  allow : allowlist;
  mutable findings : finding list;
  (* Operator idents already judged as part of an enclosing application
     (keyed by position), so the bare-ident check does not re-flag them. *)
  handled_ops : (int * int, unit) Hashtbl.t;
}

let line_text st n =
  if n >= 1 && n <= Array.length st.lines then st.lines.(n - 1) else ""

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let pragma_allows st rule line =
  let tag = "lint: allow " ^ rule_name rule in
  contains ~sub:tag (line_text st line)
  || contains ~sub:tag (line_text st (line - 1))

let report st rule line message =
  if
    (not (allowlisted st.allow rule st.rel_path))
    && not (pragma_allows st rule line)
  then
    st.findings <- { file = st.rel_path; line; rule; message } :: st.findings

(* ------------------------------------------------------------------ *)
(* Identifier checks (shared by expressions, module refs, opens)       *)

let check_path st (loc : Location.t) p =
  let line = loc.loc_start.pos_lnum in
  (match p with
  | "Random" :: _ when not (d1_exempt st.rel_path) ->
      report st D1 line
        (Printf.sprintf
           "reference to %s; all randomness must come from seeded \
            Basalt_prng.Rng streams (lib/prng is the only exemption)"
           (path_string p))
  | _ -> ());
  if List.mem p wall_clock_paths then
    report st D2 line
      (Printf.sprintf
         "wall-clock read %s; inject a clock function or allowlist this \
          process boundary in tool/lint/allowlist.txt"
         (path_string p));
  if is_poly_hash p then
    report st D3 line
      (Printf.sprintf
         "%s is the polymorphic hash and is banned; use Basalt_hashing or a \
          dedicated hash function"
         (path_string p));
  if d4_scope st.rel_path && List.mem p poly_eq_helpers then
    report st D4 line
      (Printf.sprintf
         "%s uses polymorphic equality; use an explicit equal function \
          (e.g. Node_id.equal)"
         (path_string p));
  if d6_scope st.rel_path && List.mem p console_output_paths then
    report st D6 line
      (Printf.sprintf
         "direct console output %s in a protocol library; route output \
          through the experiment/report layer"
         (path_string p));
  (match p with
  | root :: _
    when List.mem root concurrency_roots && not (d7_exempt st.rel_path) ->
      report st D7 line
        (Printf.sprintf
           "reference to %s; concurrency primitives are confined to \
            lib/parallel — fan work out through Basalt_parallel.Pool"
           (path_string p))
  | _ -> ());
  match p with
  | "Basalt_obs" :: _ when not (d8_exempt st.rel_path) ->
      report st D8 line
        (Printf.sprintf
           "reference to %s; instruments and telemetry are confined to \
            lib/obs and the allowlisted instrumentation boundaries \
            (tool/lint/allowlist.txt) — thread an Obs.t in, don't reach \
            for the module"
           (path_string p))
  | _ -> ()

let pos_key (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum)

(* D4: polymorphic comparison operators in protocol libraries. *)
let check_poly_operator st (e : Parsetree.expression) =
  if d4_scope st.rel_path then
    match e.pexp_desc with
    | Pexp_apply
        (({ pexp_desc = Pexp_ident { txt; loc }; _ } as fn), args)
      when (match path_of_lid txt with
           | [ op ] -> List.mem op poly_operators
           | _ -> false) ->
        let op = match path_of_lid txt with [ op ] -> op | _ -> "" in
        let plain =
          List.filter_map
            (fun (lbl, a) ->
              match lbl with Asttypes.Nolabel -> Some a | _ -> None)
            args
        in
        Hashtbl.replace st.handled_ops (pos_key fn.pexp_loc) ();
        (match plain with
        | a :: b :: _ ->
            if not (manifestly_primitive a || manifestly_primitive b) then
              report st D4 loc.loc_start.pos_lnum
                (Printf.sprintf
                   "polymorphic %s on non-primitive operands; use a \
                    dedicated comparison (Node_id.equal/compare, \
                    Int.compare, …)"
                   op)
        | _ ->
            report st D4 loc.loc_start.pos_lnum
              (Printf.sprintf
                 "polymorphic %s partially applied; pass a dedicated \
                  comparison instead"
                 op))
    | Pexp_ident { txt; loc }
      when (match path_of_lid txt with
           | [ op ] -> List.mem op poly_operators
           | _ -> false)
           && not (Hashtbl.mem st.handled_ops (pos_key e.pexp_loc)) ->
        let op = match path_of_lid txt with [ op ] -> op | _ -> "" in
        report st D4 loc.loc_start.pos_lnum
          (Printf.sprintf
             "polymorphic %s used as a function value; pass a dedicated \
              comparison (Node_id.compare, Int.compare, …)"
             op)
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* AST traversal                                                       *)

let make_iterator st =
  let default = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_path st loc (path_of_lid txt)
    | _ -> ());
    check_poly_operator st e;
    default.expr it e
  in
  let module_expr it (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_path st loc (path_of_lid txt)
    | _ -> ());
    default.module_expr it m
  in
  let open_description it (o : Parsetree.open_description) =
    check_path st o.popen_expr.loc (path_of_lid o.popen_expr.txt);
    default.open_description it o
  in
  let doc_attr (a : Parsetree.attribute) =
    a.attr_name.txt = "ocaml.doc" || a.attr_name.txt = "doc"
  in
  let signature_item it (s : Parsetree.signature_item) =
    (match s.psig_desc with
    | Psig_value vd
      when d5_scope st.rel_path
           && Filename.check_suffix st.rel_path ".mli"
           && not (List.exists doc_attr vd.pval_attributes) ->
        report st D5 vd.pval_name.loc.loc_start.pos_lnum
          (Printf.sprintf "val %s has no doc comment" vd.pval_name.txt)
    | _ -> ());
    default.signature_item it s
  in
  { default with expr; module_expr; open_description; signature_item }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let sort_findings fs =
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> String.compare (rule_name a.rule) (rule_name b.rule)
          | c -> c)
      | c -> c)
    fs

let lint_source ~rel_path ~allow source =
  let st =
    {
      rel_path;
      lines = Array.of_list (String.split_on_char '\n' source);
      allow;
      findings = [];
      handled_ops = Hashtbl.create 16;
    }
  in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf rel_path;
  Location.input_name := rel_path;
  let it = make_iterator st in
  (try
     if Filename.check_suffix rel_path ".mli" then
       it.signature it (Parse.interface lexbuf)
     else it.structure it (Parse.implementation lexbuf)
   with e ->
     let line =
       match e with
       | Syntaxerr.Error err ->
           (Syntaxerr.location_of_error err).loc_start.pos_lnum
       | _ -> 0
     in
     raise (Parse_error (rel_path, line, Printexc.to_string e)));
  sort_findings st.findings

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file ~root ~rel_path ~allow =
  let path =
    if Filename.is_relative rel_path then Filename.concat root rel_path
    else rel_path
  in
  lint_source ~rel_path ~allow (read_file path)

let scanned_dirs = [ "lib"; "bin"; "bench"; "test" ]

let rec walk root rel acc =
  let full = Filename.concat root rel in
  if Sys.is_directory full then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || String.starts_with ~prefix:"." entry then acc
        else walk root (rel ^ "/" ^ entry) acc)
      acc
      (let entries = Sys.readdir full in
       Array.sort String.compare entries;
       entries)
  else if
    Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
  then rel :: acc
  else acc

let missing_mli_findings ~allow files =
  let files_set = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace files_set f ()) files;
  List.filter_map
    (fun f ->
      if
        in_dir "lib" f
        && Filename.check_suffix f ".ml"
        && (not (Hashtbl.mem files_set (f ^ "i")))
        && not (allowlisted allow D5 f)
      then
        Some
          {
            file = f;
            line = 1;
            rule = D5;
            message =
              Printf.sprintf
                "lib module %s has no .mli interface"
                (Filename.remove_extension (Filename.basename f));
          }
      else None)
    files

let lint_tree ~root ~allow =
  let files =
    List.fold_left
      (fun acc dir ->
        if Sys.file_exists (Filename.concat root dir) then walk root dir acc
        else acc)
      [] scanned_dirs
  in
  let findings =
    List.concat_map (fun rel -> lint_file ~root ~rel_path:rel ~allow) files
  in
  sort_findings (missing_mli_findings ~allow files @ findings)
