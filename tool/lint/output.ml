(* Output formats for basalt-lint findings.  JSON is hand-rolled (the
   schema is a dozen lines; a dependency would cost more than it saves)
   and emitted with sorted, fixed key order so the bytes are stable —
   test/test_cli.ml pins the schema. *)

type format = Text | Json | Sarif

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Minimal JSON emission                                               *)

let escape_json s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape_json s ^ "\""

(* ------------------------------------------------------------------ *)
(* Formats                                                             *)

let print_text ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." Lint.pp_finding f) findings

(* {"version":1,"findings":[{"file":…,"line":…,"rule":…,"message":…}]}
   — key order and field set are part of the CLI contract. *)
let print_json ppf findings =
  let item (f : Lint.finding) =
    Printf.sprintf {|    {"file": %s, "line": %d, "rule": %s, "message": %s}|}
      (jstr f.Lint.file) f.Lint.line
      (jstr (Lint.rule_name f.Lint.rule))
      (jstr f.Lint.message)
  in
  Format.fprintf ppf "{@\n";
  Format.fprintf ppf "  \"version\": 1,@\n";
  Format.fprintf ppf "  \"findings\": [";
  (match findings with
  | [] -> Format.fprintf ppf "]@\n"
  | fs ->
      Format.fprintf ppf "@\n%s@\n  ]@\n"
        (String.concat ",\n" (List.map item fs)));
  Format.fprintf ppf "}@."

(* SARIF 2.1.0, the minimal subset GitHub code scanning ingests:
   tool.driver.rules metadata plus one result per finding with a
   physical location. *)
let print_sarif ppf findings =
  let rule_meta r =
    Printf.sprintf
      {|        {"id": %s, "shortDescription": {"text": %s}}|}
      (jstr (Lint.rule_name r))
      (jstr (Lint.rule_summary r))
  in
  let result (f : Lint.finding) =
    String.concat "\n"
      [
        "      {";
        Printf.sprintf {|        "ruleId": %s,|}
          (jstr (Lint.rule_name f.Lint.rule));
        {|        "level": "error",|};
        Printf.sprintf {|        "message": {"text": %s},|}
          (jstr f.Lint.message);
        {|        "locations": [{"physicalLocation": {|};
        Printf.sprintf {|          "artifactLocation": {"uri": %s},|}
          (jstr f.Lint.file);
        Printf.sprintf {|          "region": {"startLine": %d}}}]|}
          f.Lint.line;
        "      }";
      ]
  in
  Format.fprintf ppf "{@\n";
  Format.fprintf ppf
    "  \"$schema\": \
     \"https://json.schemastore.org/sarif-2.1.0.json\",@\n";
  Format.fprintf ppf "  \"version\": \"2.1.0\",@\n";
  Format.fprintf ppf "  \"runs\": [{@\n";
  Format.fprintf ppf "    \"tool\": {\"driver\": {@\n";
  Format.fprintf ppf "      \"name\": \"basalt-lint\",@\n";
  Format.fprintf ppf
    "      \"informationUri\": \
     \"https://github.com/basalt-repro/basalt\",@\n";
  Format.fprintf ppf "      \"rules\": [@\n%s@\n      ]@\n"
    (String.concat ",\n" (List.map rule_meta Lint.all_rules));
  Format.fprintf ppf "    }},@\n";
  Format.fprintf ppf "    \"results\": [";
  (match findings with
  | [] -> Format.fprintf ppf "]@\n"
  | fs ->
      Format.fprintf ppf "@\n%s@\n    ]@\n"
        (String.concat ",\n" (List.map result fs)));
  Format.fprintf ppf "  }]@\n";
  Format.fprintf ppf "}@."

let print ppf format findings =
  match format with
  | Text -> print_text ppf findings
  | Json -> print_json ppf findings
  | Sarif -> print_sarif ppf findings
