(* basalt-lint CLI: scans the repo (or explicit files) and prints
   [file:line:rule: message] diagnostics.  Exit codes: 0 = clean,
   1 = findings, 2 = usage or parse error. *)

module Lint = Basalt_lint.Lint

let usage =
  "basalt-lint: determinism & interface linter (rules D1-D6, see DESIGN.md)\n\
   usage: main.exe [--root DIR] [--allowlist FILE] [--as PATH] [FILE...]\n\
   With no FILE arguments, scans lib/ bin/ bench/ test/ under --root."

let () =
  let root = ref "." in
  let vpath = ref "" in
  let allowfile = ref "" in
  let files = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan (default: .)");
      ( "--as",
        Arg.Set_string vpath,
        "PATH treat the single FILE argument as repo-relative PATH for \
         rule scoping (fixture testing)" );
      ( "--allowlist",
        Arg.Set_string allowfile,
        "FILE allowlist (default: ROOT/tool/lint/allowlist.txt)" );
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  let allow =
    try
      Lint.load_allowlist
        (if !allowfile <> "" then !allowfile
         else Filename.concat !root "tool/lint/allowlist.txt")
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  let findings =
    try
      match List.rev !files with
      | [] ->
          if not (Sys.file_exists !root && Sys.is_directory !root) then begin
            prerr_endline ("basalt-lint: not a directory: " ^ !root);
            exit 2
          end;
          Lint.lint_tree ~root:!root ~allow
      | [ f ] when !vpath <> "" ->
          let source =
            let ic = open_in_bin f in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          Lint.lint_source ~rel_path:!vpath ~allow source
      | _ :: _ :: _ when !vpath <> "" ->
          prerr_endline "basalt-lint: --as requires exactly one FILE";
          exit 2
      | fs ->
          List.concat_map
            (fun f -> Lint.lint_file ~root:!root ~rel_path:f ~allow)
            fs
    with
    | Lint.Parse_error (file, line, msg) ->
        Printf.eprintf "%s:%d: parse error: %s\n" file line msg;
        exit 2
    | Sys_error msg ->
        prerr_endline ("basalt-lint: " ^ msg);
        exit 2
  in
  List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) findings;
  if findings <> [] then exit 1
