(* basalt-lint CLI.  Exit codes: 0 = clean, 1 = findings, 2 = usage or
   parse error.

   Tree mode (no FILE arguments) scans lib/ bin/ bench/ test/ under
   --root through Driver.run: untyped tier always, typed tier with
   --typed (reading .cmt files from --build-dir, default
   ROOT/_build/default — run `dune build @check` first), D11
   stale-suppression audit whenever D11 is among the requested rules.

   Single-file mode (FILE arguments) is the fixture harness: each file
   runs the untyped tier; with --as the single FILE is attributed to a
   repo-relative path for rule scoping, and --cmt adds the typed tier
   for that unit. *)

module Lint = Basalt_lint.Lint
module Typed = Basalt_lint.Typed
module Driver = Basalt_lint.Driver
module Output = Basalt_lint.Output

let usage =
  "basalt-lint: determinism & interface linter (rules D1-D11, see \
   DESIGN.md §6)\n\
   usage: main.exe [--root DIR] [--typed] [--format text|json|sarif]\n\
  \       [--rules D1,D9,...] [--allowlist FILE] [--build-dir DIR]\n\
  \       [-j N] [--as PATH] [--cmt FILE] [FILE...]\n\
   With no FILE arguments, scans lib/ bin/ bench/ test/ under --root."

let fail_usage msg =
  prerr_endline ("basalt-lint: " ^ msg);
  exit 2

let () =
  let root = ref "." in
  let vpath = ref "" in
  let allowfile = ref "" in
  let cmtfile = ref "" in
  let build_dir = ref "" in
  let typed = ref false in
  let format = ref Output.Text in
  let rules = ref Lint.all_rules in
  let jobs = ref 1 in
  let files = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan (default: .)");
      ("--typed", Arg.Set typed, " enable the typed tier (D9/D10, needs .cmt files)");
      ( "--format",
        Arg.String
          (fun s ->
            match Output.format_of_string s with
            | Some f -> format := f
            | None -> fail_usage ("unknown format: " ^ s)),
        "FMT output format: text (default), json, sarif" );
      ( "--rules",
        Arg.String
          (fun s ->
            rules :=
              List.map
                (fun r ->
                  match Lint.rule_of_string (String.trim r) with
                  | Some rule -> rule
                  | None -> fail_usage ("unknown rule: " ^ r))
                (String.split_on_char ',' s)),
        "D1,D9,... restrict to these rules (D11 enables the stale-\
         suppression audit)" );
      ( "--allowlist",
        Arg.Set_string allowfile,
        "FILE allowlist (default: ROOT/tool/lint/allowlist.txt)" );
      ( "--build-dir",
        Arg.Set_string build_dir,
        "DIR where to look for .cmt files (default: ROOT/_build/default)" );
      ( "-j",
        Arg.Set_int jobs,
        "N fan analysis over N domains (0 = all cores; default 1)" );
      ( "--as",
        Arg.Set_string vpath,
        "PATH treat the single FILE argument as repo-relative PATH for \
         rule scoping (fixture testing)" );
      ( "--cmt",
        Arg.Set_string cmtfile,
        "FILE also run the typed tier over this .cmt (single-file mode, \
         with --as)" );
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  let allow =
    try
      Lint.load_allowlist
        (if !allowfile <> "" then !allowfile
         else Filename.concat !root "tool/lint/allowlist.txt")
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  let requested r = List.mem r !rules in
  let findings =
    try
      match List.rev !files with
      | [] ->
          if !vpath <> "" || !cmtfile <> "" then
            fail_usage "--as/--cmt require a FILE argument";
          if not (Sys.file_exists !root && Sys.is_directory !root) then
            fail_usage ("not a directory: " ^ !root);
          let run pool =
            (Driver.run ~typed:!typed ~rules:!rules
               ?build_dir:(if !build_dir = "" then None else Some !build_dir)
               ?pool ~root:!root ~allow ())
              .Driver.findings
          in
          if !jobs = 1 then run None
          else
            Basalt_parallel.Pool.with_pool
              ?domains:(if !jobs = 0 then None else Some !jobs)
              (fun pool -> run (Some pool))
      | [ f ] when !vpath <> "" ->
          let rel_path = !vpath in
          let parsed, pragmas =
            Lint.parse_source ~rel_path (Lint.read_file f)
          in
          let raw = Lint.analyze_parsed ~rel_path parsed in
          let raw =
            if !cmtfile <> "" then
              raw @ Typed.lint_cmt ~rel_path !cmtfile
            else raw
          in
          let raw = List.filter (fun fd -> requested fd.Lint.rule) raw in
          let kept, _, _ = Lint.suppress ~allow ~pragmas raw in
          Lint.sort_findings kept
      | _ :: _ :: _ when !vpath <> "" ->
          fail_usage "--as requires exactly one FILE"
      | fs ->
          if !cmtfile <> "" then fail_usage "--cmt requires --as";
          List.concat_map
            (fun f ->
              List.filter
                (fun fd -> requested fd.Lint.rule)
                (Lint.lint_file ~root:!root ~rel_path:f ~allow))
            fs
    with
    | Lint.Parse_error (file, line, msg) ->
        Printf.eprintf "%s:%d: parse error: %s\n" file line msg;
        exit 2
    | Typed.Cmt_error (file, msg) ->
        Printf.eprintf "%s: cmt error: %s\n" file msg;
        exit 2
    | Sys_error msg -> fail_usage msg
  in
  Output.print Format.std_formatter !format findings;
  if findings <> [] then exit 1
