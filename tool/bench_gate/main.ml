(* bench_gate: benchmark regression gate and append-only perf history.

   Usage:
     bench_gate gate   --baseline FILE --current FILE [--tolerance X]
     bench_gate append --history FILE --current FILE --label STR
     bench_gate report --history FILE [--tolerance X]

   (a legacy spelling without a subcommand dispatches to `gate`, so
   existing CI lines keep working).

   Benchmark files use the schema `bench/main.exe --json` writes:

     { "unit": "ns/run", "groups": { GROUP: { TEST: NS, ... }, ... } }

   `gate` fails (exit 1) when any benchmark present in the baseline is
   more than X times slower in the current run, or has disappeared from
   it (a rename silently shrinking the gate is itself a failure).  The
   default tolerance of 3x is deliberately loose: shared CI runners are
   noisy, and the gate exists to catch order-of-magnitude regressions —
   an accidentally quadratic hot path — not single-digit drift.  The
   serious before/after comparisons live in BENCH_*.json notes and are
   made by hand on a quiet host (CLAUDE.md).

   `append` adds one labelled record to a JSONL history file
   (BENCH_history.jsonl in the repo root is the committed seed; the
   bench-smoke CI job appends its run and uploads the file as an
   artifact):

     {"version":1,"label":L,"unit":U,"groups":{GROUP:{TEST:NS,...},...}}

   `report` renders per-benchmark trends over such a history — first,
   best, previous and last measurement plus last/best — flagging
   entries whose last run exceeds tolerance x their best as REGR.  The
   report is informational (exit 0; exit 2 on unreadable or malformed
   history): the hard failure stays with `gate`, which compares against
   a reviewed baseline rather than a moving history. *)

(* --- Minimal JSON reader (no external dependencies) ------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let len = String.length lit in
    if !pos + len <= n && String.sub s !pos len = lit then begin
      pos := !pos + len;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* Benchmark names are ASCII; anything else degrades
                 harmlessly for display purposes. *)
              Buffer.add_char b (if code < 0x80 then Char.chr code else '?')
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if start = !pos then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- Minimal JSON writer (append needs to emit records) -------------- *)

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec write_json b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
      (* Integers print bare so records stay compact and diff-friendly. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | Str s -> Buffer.add_string b (escape_string s)
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write_json b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (escape_string k);
          Buffer.add_char b ':';
          write_json b v)
        fields;
      Buffer.add_char b '}'

let json_to_string v =
  let b = Buffer.create 256 in
  write_json b v;
  Buffer.contents b

(* --- Shared readers --------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

(* Flatten a bench JSON file into [((group, test), ns)] rows; [null]
   measurements (Bechamel produced no estimate) are skipped. *)
let rows_of path =
  let die msg =
    prerr_endline ("bench_gate: " ^ path ^ ": " ^ msg);
    exit 2
  in
  match parse (read_file path) with
  | exception Parse_error msg -> die msg
  | exception Sys_error msg -> die msg
  | Obj fields -> (
      match List.assoc_opt "groups" fields with
      | Some (Obj groups) ->
          List.concat_map
            (fun (group, v) ->
              match v with
              | Obj rows ->
                  List.filter_map
                    (fun (test, v) ->
                      match v with
                      | Num ns -> Some ((group, test), ns)
                      | _ -> None)
                    rows
              | _ -> [])
            groups
      | _ -> die "missing \"groups\" object")
  | _ -> die "top level is not an object"

let usage =
  "usage: bench_gate gate --baseline FILE --current FILE [--tolerance X]\n\
  \       bench_gate append --history FILE --current FILE --label STR\n\
  \       bench_gate report --history FILE [--tolerance X]"

let usage_error msg =
  prerr_endline ("bench_gate: " ^ msg);
  prerr_endline usage;
  exit 2

let tolerance_of x =
  match float_of_string_opt x with
  | Some f when f >= 1.0 -> f
  | _ ->
      prerr_endline "bench_gate: --tolerance must be a float >= 1";
      exit 2

(* --- gate ------------------------------------------------------------- *)

let gate args =
  let baseline = ref "" in
  let current = ref "" in
  let tolerance = ref 3.0 in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: path :: rest ->
        baseline := path;
        parse_args rest
    | "--current" :: path :: rest ->
        current := path;
        parse_args rest
    | "--tolerance" :: x :: rest ->
        tolerance := tolerance_of x;
        parse_args rest
    | arg :: _ -> usage_error ("unknown argument " ^ arg)
  in
  parse_args args;
  if !baseline = "" || !current = "" then usage_error "gate needs --baseline and --current";
  let base = rows_of !baseline in
  let cur = rows_of !current in
  let compared = ref 0 in
  let regressions = ref 0 in
  let missing = ref 0 in
  List.iter
    (fun (((_, test) as key), base_ns) ->
      match List.assoc_opt key cur with
      | None ->
          incr missing;
          Printf.printf "MISS %-64s baseline %12.1f, absent from current run\n"
            test base_ns
      | Some cur_ns when base_ns > 0.0 ->
          incr compared;
          let ratio = cur_ns /. base_ns in
          let status =
            if ratio > !tolerance then begin
              incr regressions;
              "FAIL"
            end
            else "ok"
          in
          Printf.printf "%-4s %-64s %12.1f -> %12.1f ns/run (%.2fx)\n" status
            test base_ns cur_ns ratio
      | Some _ -> ())
    base;
  Printf.printf "bench_gate: %d compared, %d regressions (> %.1fx), %d missing\n"
    !compared !regressions !tolerance !missing;
  if !compared = 0 then begin
    prerr_endline "bench_gate: nothing compared; baseline/current mismatch?";
    exit 1
  end;
  exit (if !regressions > 0 || !missing > 0 then 1 else 0)

(* --- append ----------------------------------------------------------- *)

(* Re-read the current file structurally (rather than via [rows_of]) so
   the record keeps the group nesting; only numeric measurements are
   carried over, mirroring the [rows_of] null-skipping rule. *)
let record_of path ~label =
  let die msg =
    prerr_endline ("bench_gate: " ^ path ^ ": " ^ msg);
    exit 2
  in
  match parse (read_file path) with
  | exception Parse_error msg -> die msg
  | exception Sys_error msg -> die msg
  | Obj fields ->
      let unit_ =
        match List.assoc_opt "unit" fields with
        | Some (Str u) -> u
        | _ -> "ns/run"
      in
      let groups =
        match List.assoc_opt "groups" fields with
        | Some (Obj groups) ->
            List.filter_map
              (fun (group, v) ->
                match v with
                | Obj rows ->
                    let rows =
                      List.filter
                        (fun (_, v) -> match v with Num _ -> true | _ -> false)
                        rows
                    in
                    if rows = [] then None else Some (group, Obj rows)
                | _ -> None)
              groups
        | _ -> die "missing \"groups\" object"
      in
      Obj
        [
          ("version", Num 1.);
          ("label", Str label);
          ("unit", Str unit_);
          ("groups", Obj groups);
        ]
  | _ -> die "top level is not an object"

let append args =
  let history = ref "" in
  let current = ref "" in
  let label = ref "" in
  let rec parse_args = function
    | [] -> ()
    | "--history" :: path :: rest ->
        history := path;
        parse_args rest
    | "--current" :: path :: rest ->
        current := path;
        parse_args rest
    | "--label" :: l :: rest ->
        label := l;
        parse_args rest
    | arg :: _ -> usage_error ("unknown argument " ^ arg)
  in
  parse_args args;
  if !history = "" || !current = "" || !label = "" then
    usage_error "append needs --history, --current and --label";
  let record = record_of !current ~label:!label in
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 !history
  in
  output_string oc (json_to_string record);
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench_gate: appended %S to %s\n" !label !history

(* --- report ----------------------------------------------------------- *)

let report args =
  let history = ref "" in
  let tolerance = ref 3.0 in
  let rec parse_args = function
    | [] -> ()
    | "--history" :: path :: rest ->
        history := path;
        parse_args rest
    | "--tolerance" :: x :: rest ->
        tolerance := tolerance_of x;
        parse_args rest
    | arg :: _ -> usage_error ("unknown argument " ^ arg)
  in
  parse_args args;
  if !history = "" then usage_error "report needs --history";
  let content =
    match read_file !history with
    | content -> content
    | exception Sys_error msg ->
        prerr_endline ("bench_gate: " ^ msg);
        exit 2
  in
  let die line msg =
    prerr_endline
      (Printf.sprintf "bench_gate: %s:%d: %s" !history line msg);
    exit 2
  in
  (* Per (group, test): measurements in history order, as (label, ns). *)
  let series : ((string * string) * (string * float) list ref) list ref =
    ref []
  in
  let order : (string * string) list ref = ref [] in
  let labels = ref [] in
  let lines =
    String.split_on_char '\n' content
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  List.iter
    (fun (lineno, line) ->
      match parse line with
      | exception Parse_error msg -> die lineno msg
      | Obj fields ->
          (match List.assoc_opt "version" fields with
          | Some (Num 1.) -> ()
          | _ -> die lineno "missing or unsupported \"version\"");
          let label =
            match List.assoc_opt "label" fields with
            | Some (Str l) -> l
            | _ -> die lineno "missing \"label\""
          in
          labels := label :: !labels;
          let groups =
            match List.assoc_opt "groups" fields with
            | Some (Obj groups) -> groups
            | _ -> die lineno "missing \"groups\" object"
          in
          List.iter
            (fun (group, v) ->
              match v with
              | Obj rows ->
                  List.iter
                    (fun (test, v) ->
                      match v with
                      | Num ns ->
                          let key = (group, test) in
                          let cell =
                            match List.assoc_opt key !series with
                            | Some cell -> cell
                            | None ->
                                let cell = ref [] in
                                series := (key, cell) :: !series;
                                order := key :: !order;
                                cell
                          in
                          cell := (label, ns) :: !cell
                      | _ -> die lineno ("non-numeric measurement " ^ test))
                    rows
              | _ -> die lineno ("group " ^ group ^ " is not an object"))
            groups
      | _ -> die lineno "record is not an object")
    lines;
  if !order = [] then begin
    prerr_endline ("bench_gate: " ^ !history ^ ": empty history");
    exit 2
  end;
  Printf.printf "bench_gate report: %d runs (%s), tolerance %.1fx\n"
    (List.length !labels)
    (String.concat ", " (List.rev !labels))
    !tolerance;
  Printf.printf "%-20s %-40s %4s %12s %12s %12s %12s %10s\n" "group" "test"
    "runs" "first" "best" "prev" "last" "last/best";
  let regressions = ref 0 in
  List.iter
    (fun ((group, test) as key) ->
      let ms = List.rev !(List.assoc key !series) in
      let ns = List.map snd ms in
      let count = List.length ns in
      let first = List.hd ns in
      let best = List.fold_left min first ns in
      let last = List.nth ns (count - 1) in
      let prev = if count >= 2 then List.nth ns (count - 2) else first in
      let ratio = if best > 0.0 then last /. best else 1.0 in
      let flag =
        if ratio > !tolerance then begin
          incr regressions;
          " REGR"
        end
        else ""
      in
      Printf.printf "%-20s %-40s %4d %12.1f %12.1f %12.1f %12.1f %9.2fx%s\n"
        group test count first best prev last ratio flag)
    (List.rev !order);
  Printf.printf "bench_gate: %d benchmarks, %d over tolerance\n"
    (List.length !order) !regressions

(* --- dispatch ---------------------------------------------------------- *)

let () =
  match Array.to_list Sys.argv with
  | _ :: "gate" :: args -> gate args
  | _ :: "append" :: args -> append args
  | _ :: "report" :: args -> report args
  | _ :: (arg :: _ as args) when String.length arg >= 2 && String.sub arg 0 2 = "--"
    ->
      (* Legacy spelling: flags with no subcommand mean `gate`. *)
      gate args
  | _ :: arg :: _ -> usage_error ("unknown subcommand " ^ arg)
  | _ -> usage_error "missing subcommand"
