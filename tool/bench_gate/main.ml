(* bench_gate: compare a `bench --json` run against a committed baseline.

   Usage: bench_gate --baseline FILE --current FILE [--tolerance X]

   Both files use the schema `bench/main.exe --json` writes:

     { "unit": "ns/run", "groups": { GROUP: { TEST: NS, ... }, ... } }

   The gate fails (exit 1) when any benchmark present in the baseline is
   more than X times slower in the current run, or has disappeared from
   it (a rename silently shrinking the gate is itself a failure).  The
   default tolerance of 3x is deliberately loose: shared CI runners are
   noisy, and the gate exists to catch order-of-magnitude regressions —
   an accidentally quadratic hot path — not single-digit drift.  The
   serious before/after comparisons live in BENCH_*.json notes and are
   made by hand on a quiet host (CLAUDE.md). *)

(* --- Minimal JSON reader (no external dependencies) ------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let len = String.length lit in
    if !pos + len <= n && String.sub s !pos len = lit then begin
      pos := !pos + len;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* Benchmark names are ASCII; anything else degrades
                 harmlessly for display purposes. *)
              Buffer.add_char b (if code < 0x80 then Char.chr code else '?')
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if start = !pos then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- Gate ------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

(* Flatten a bench JSON file into [((group, test), ns)] rows; [null]
   measurements (Bechamel produced no estimate) are skipped. *)
let rows_of path =
  let die msg =
    prerr_endline ("bench_gate: " ^ path ^ ": " ^ msg);
    exit 2
  in
  match parse (read_file path) with
  | exception Parse_error msg -> die msg
  | exception Sys_error msg -> die msg
  | Obj fields -> (
      match List.assoc_opt "groups" fields with
      | Some (Obj groups) ->
          List.concat_map
            (fun (group, v) ->
              match v with
              | Obj rows ->
                  List.filter_map
                    (fun (test, v) ->
                      match v with
                      | Num ns -> Some ((group, test), ns)
                      | _ -> None)
                    rows
              | _ -> [])
            groups
      | _ -> die "missing \"groups\" object")
  | _ -> die "top level is not an object"

let () =
  let baseline = ref "" in
  let current = ref "" in
  let tolerance = ref 3.0 in
  let usage =
    "usage: bench_gate --baseline FILE --current FILE [--tolerance X]"
  in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: path :: rest ->
        baseline := path;
        parse_args rest
    | "--current" :: path :: rest ->
        current := path;
        parse_args rest
    | "--tolerance" :: x :: rest ->
        (match float_of_string_opt x with
        | Some f when f >= 1.0 -> tolerance := f
        | _ ->
            prerr_endline "bench_gate: --tolerance must be a float >= 1";
            exit 2);
        parse_args rest
    | arg :: _ ->
        prerr_endline ("bench_gate: unknown argument " ^ arg);
        prerr_endline usage;
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !baseline = "" || !current = "" then begin
    prerr_endline usage;
    exit 2
  end;
  let base = rows_of !baseline in
  let cur = rows_of !current in
  let compared = ref 0 in
  let regressions = ref 0 in
  let missing = ref 0 in
  List.iter
    (fun (((_, test) as key), base_ns) ->
      match List.assoc_opt key cur with
      | None ->
          incr missing;
          Printf.printf "MISS %-64s baseline %12.1f, absent from current run\n"
            test base_ns
      | Some cur_ns when base_ns > 0.0 ->
          incr compared;
          let ratio = cur_ns /. base_ns in
          let status =
            if ratio > !tolerance then begin
              incr regressions;
              "FAIL"
            end
            else "ok"
          in
          Printf.printf "%-4s %-64s %12.1f -> %12.1f ns/run (%.2fx)\n" status
            test base_ns cur_ns ratio
      | Some _ -> ())
    base;
  Printf.printf "bench_gate: %d compared, %d regressions (> %.1fx), %d missing\n"
    !compared !regressions !tolerance !missing;
  if !compared = 0 then begin
    prerr_endline "bench_gate: nothing compared; baseline/current mismatch?";
    exit 1
  end;
  exit (if !regressions > 0 || !missing > 0 then 1 else 0)
