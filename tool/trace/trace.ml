(* Offline analyzer for the JSONL traces written by `repro --trace`
   (DESIGN.md §8).  Every function is a pure map from parsed events to a
   report string: no clocks, no randomness, stable sort orders and
   fixed-format floats, so a report is byte-identical for byte-identical
   traces — which the CI determinism matrix checks across -j levels. *)

module Obs = Basalt_obs.Obs

type format = Text | Csv | Json

let format_of_string = function
  | "text" -> Some Text
  | "csv" -> Some Csv
  | "json" -> Some Json
  | _ -> None

(* Fixed-format floats, mirroring the registry's rendering. *)
let fstr x =
  let s = Printf.sprintf "%.12g" x in
  if
    String.exists
      (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'a')
      s
  then s
  else s ^ ".0"

(* --- Parsing --- *)

exception Parse_error of { line : int; text : string }

let parse_lines lines =
  let events = ref [] in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match Obs.event_of_json line with
        | Some e -> events := e :: !events
        | None -> raise (Parse_error { line = i + 1; text = line }))
    lines;
  List.rev !events

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse_lines (List.rev !lines))

(* --- Small helpers --- *)

let field_str e k =
  match List.assoc_opt k e.Obs.fields with Some (Obs.Str s) -> Some s | _ -> None

let field_num e k =
  match List.assoc_opt k e.Obs.fields with
  | Some (Obs.Float x) -> Some x
  | Some (Obs.Int n) -> Some (float_of_int n)
  | _ -> None

(* Exact nearest-rank quantile over a sorted array: rank ceil(q * n),
   clamped to [1, n]. *)
let quantile_sorted arr q =
  let n = Array.length arr in
  if n = 0 then 0.0
  else
    let r = int_of_float (Float.ceil (q *. float_of_int n)) in
    let r = if r < 1 then 1 else if r > n then n else r in
    arr.(r - 1)

let group_by_name sel events =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match sel e with
      | None -> ()
      | Some v ->
          let prev = try Hashtbl.find tbl e.Obs.name with Not_found -> [] in
          Hashtbl.replace tbl e.Obs.name (v :: prev))
    events;
  Hashtbl.fold (fun name vs acc -> (name, List.rev vs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ escape_json s ^ "\""

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) fields)
  ^ "}"

let json_array items = "[" ^ String.concat "," items ^ "]"

let lines ls = String.concat "\n" ls ^ "\n"

(* --- summarize: per-event-name counts and time extents --- *)

let summarize ?(format = Text) events =
  let rows = group_by_name (fun e -> Some e.Obs.time) events in
  let total = List.length events in
  let trace_ids = Hashtbl.create 32 in
  let traced = ref 0 in
  List.iter
    (fun e ->
      match field_str e "trace" with
      | Some id ->
          incr traced;
          Hashtbl.replace trace_ids id ()
      | None -> ())
    events;
  let row_stats (name, times) =
    let first = List.fold_left Float.min Float.infinity times in
    let last = List.fold_left Float.max Float.neg_infinity times in
    (name, List.length times, first, last)
  in
  let stats = List.map row_stats rows in
  match format with
  | Text ->
      lines
        (Printf.sprintf "events %d  names %d  trace_ids %d  traced_events %d"
           total (List.length stats) (Hashtbl.length trace_ids) !traced
        :: Printf.sprintf "%-32s %10s %14s %14s" "name" "count" "first" "last"
        :: List.map
             (fun (name, count, first, last) ->
               Printf.sprintf "%-32s %10d %14s %14s" name count (fstr first)
                 (fstr last))
             stats)
  | Csv ->
      lines
        ("name,count,first,last"
        :: List.map
             (fun (name, count, first, last) ->
               Printf.sprintf "%s,%d,%s,%s" name count (fstr first) (fstr last))
             stats)
  | Json ->
      json_obj
        [
          ("events", string_of_int total);
          ("trace_ids", string_of_int (Hashtbl.length trace_ids));
          ("traced_events", string_of_int !traced);
          ( "names",
            json_array
              (List.map
                 (fun (name, count, first, last) ->
                   json_obj
                     [
                       ("name", json_str name);
                       ("count", string_of_int count);
                       ("first", fstr first);
                       ("last", fstr last);
                     ])
                 stats) );
        ]
      ^ "\n"

(* --- spans: duration percentiles of span-end events --- *)

let span_dur e =
  match (field_num e "sid", field_num e "t0", field_num e "dur") with
  | Some _, Some _, Some d -> Some d
  | _ -> None

let spans ?(format = Text) events =
  let rows = group_by_name span_dur events in
  let stats =
    List.map
      (fun (name, durs) ->
        let arr = Array.of_list durs in
        Array.sort compare arr;
        ( name,
          Array.length arr,
          quantile_sorted arr 0.5,
          quantile_sorted arr 0.9,
          quantile_sorted arr 0.99,
          (if Array.length arr = 0 then 0.0 else arr.(Array.length arr - 1)) ))
      rows
  in
  match format with
  | Text ->
      lines
        (Printf.sprintf "%-32s %10s %12s %12s %12s %12s" "span" "count" "p50"
           "p90" "p99" "max"
        :: List.map
             (fun (name, count, p50, p90, p99, mx) ->
               Printf.sprintf "%-32s %10d %12s %12s %12s %12s" name count
                 (fstr p50) (fstr p90) (fstr p99) (fstr mx))
             stats)
  | Csv ->
      lines
        ("span,count,p50,p90,p99,max"
        :: List.map
             (fun (name, count, p50, p90, p99, mx) ->
               Printf.sprintf "%s,%d,%s,%s,%s,%s" name count (fstr p50)
                 (fstr p90) (fstr p99) (fstr mx))
             stats)
  | Json ->
      json_array
        (List.map
           (fun (name, count, p50, p90, p99, mx) ->
             json_obj
               [
                 ("span", json_str name);
                 ("count", string_of_int count);
                 ("p50", fstr p50);
                 ("p90", fstr p90);
                 ("p99", fstr p99);
                 ("max", fstr mx);
               ])
           stats)
      ^ "\n"

(* --- curve: time-binned (or latency-binned) event counts --- *)

(* With [ttd] set, each matching event's x-coordinate is its latency
   since the first event in the file carrying the same [trace] id (for
   gossip, the publish) — the time-to-delivery distribution; events with
   no trace id, or whose id never appeared before, are dropped.
   Otherwise x is absolute virtual time.  Counts are binned into
   [bucket]-wide cells; only populated cells are printed, with a
   cumulative column so dissemination curves read directly. *)
let curve ?(format = Text) ?(bucket = 1.0) ?(ttd = false) ~ev events =
  if bucket <= 0.0 then invalid_arg "Trace.curve: bucket must be > 0";
  let xs =
    if not ttd then
      List.filter_map
        (fun e -> if e.Obs.name = ev then Some e.Obs.time else None)
        events
    else begin
      let t0 = Hashtbl.create 32 in
      let out = ref [] in
      List.iter
        (fun e ->
          match field_str e "trace" with
          | None -> ()
          | Some id ->
              (match Hashtbl.find_opt t0 id with
              | None -> Hashtbl.add t0 id e.Obs.time
              | Some start ->
                  if e.Obs.name = ev then out := (e.Obs.time -. start) :: !out))
        events;
      List.rev !out
    end
  in
  let cells = Hashtbl.create 64 in
  List.iter
    (fun x ->
      let i = int_of_float (Float.floor (x /. bucket)) in
      Hashtbl.replace cells i
        (1 + try Hashtbl.find cells i with Not_found -> 0))
    xs;
  let sorted =
    Hashtbl.fold (fun i c acc -> (i, c) :: acc) cells []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let rows =
    let cum = ref 0 in
    List.map
      (fun (i, c) ->
        cum := !cum + c;
        (float_of_int i *. bucket, c, !cum))
      sorted
  in
  let x_label = if ttd then "latency" else "t" in
  match format with
  | Text ->
      lines
        (Printf.sprintf "%-14s %10s %10s" x_label "count" "cum"
        :: List.map
             (fun (x, c, cum) ->
               Printf.sprintf "%-14s %10d %10d" (fstr x) c cum)
             rows)
  | Csv ->
      lines
        (Printf.sprintf "%s,count,cum" x_label
        :: List.map
             (fun (x, c, cum) -> Printf.sprintf "%s,%d,%d" (fstr x) c cum)
             rows)
  | Json ->
      json_array
        (List.map
           (fun (x, c, cum) ->
             json_obj
               [
                 (x_label, fstr x);
                 ("count", string_of_int c);
                 ("cum", string_of_int cum);
               ])
           rows)
      ^ "\n"

(* --- diff: A/B comparison of per-name counts and span medians --- *)

let diff ?(format = Text) events_a events_b =
  let count_map events =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun e ->
        Hashtbl.replace tbl e.Obs.name
          (1 + try Hashtbl.find tbl e.Obs.name with Not_found -> 0))
      events;
    tbl
  in
  let p50_map events =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (name, durs) ->
        let arr = Array.of_list durs in
        Array.sort compare arr;
        Hashtbl.replace tbl name (quantile_sorted arr 0.5))
      (group_by_name span_dur events);
    tbl
  in
  let ca = count_map events_a and cb = count_map events_b in
  let pa = p50_map events_a and pb = p50_map events_b in
  let names = Hashtbl.create 32 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) ca;
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) cb;
  let sorted =
    Hashtbl.fold (fun k () acc -> k :: acc) names [] |> List.sort String.compare
  in
  let get tbl k = try Hashtbl.find tbl k with Not_found -> 0 in
  let rows =
    List.map
      (fun name ->
        let a = get ca name and b = get cb name in
        ( name,
          a,
          b,
          b - a,
          Hashtbl.find_opt pa name,
          Hashtbl.find_opt pb name ))
      sorted
  in
  let opt_f = function Some x -> fstr x | None -> "-" in
  match format with
  | Text ->
      lines
        (Printf.sprintf "%-32s %10s %10s %10s %12s %12s" "name" "a" "b"
           "delta" "p50_a" "p50_b"
        :: List.map
             (fun (name, a, b, d, qa, qb) ->
               Printf.sprintf "%-32s %10d %10d %+10d %12s %12s" name a b d
                 (opt_f qa) (opt_f qb))
             rows)
  | Csv ->
      lines
        ("name,count_a,count_b,delta,p50_a,p50_b"
        :: List.map
             (fun (name, a, b, d, qa, qb) ->
               Printf.sprintf "%s,%d,%d,%d,%s,%s" name a b d (opt_f qa)
                 (opt_f qb))
             rows)
  | Json ->
      json_array
        (List.map
           (fun (name, a, b, d, qa, qb) ->
             json_obj
               ([
                  ("name", json_str name);
                  ("count_a", string_of_int a);
                  ("count_b", string_of_int b);
                  ("delta", string_of_int d);
                ]
               @ (match qa with Some x -> [ ("p50_a", fstr x) ] | None -> [])
               @ match qb with Some x -> [ ("p50_b", fstr x) ] | None -> []))
           rows)
      ^ "\n"
