(* basalt-trace CLI: offline reports over `repro --trace` JSONL dumps
   (DESIGN.md §8).  Exit codes: 0 = report written, 2 = usage or parse
   error.

   usage: main.exe summarize [--format F] FILE
          main.exe spans     [--format F] FILE
          main.exe curve     --ev NAME [--bucket W] [--ttd] [--format F] FILE
          main.exe diff      [--format F] FILE_A FILE_B *)

module Trace = Basalt_trace.Trace

let usage =
  "basalt-trace: offline analyzer for repro --trace JSONL dumps\n\
   usage: main.exe <summarize|spans|curve|diff> [options] FILE [FILE_B]\n\
   subcommands:\n\
  \  summarize   per-event-name counts and time extents\n\
  \  spans       span duration percentiles (exact, from span-end events)\n\
  \  curve       time-binned counts of one event (--ev), cumulative;\n\
  \              --ttd switches x to per-trace-id time-to-delivery\n\
  \  diff        A/B comparison of counts and span medians (two FILEs)"

let fail_usage msg =
  prerr_endline ("basalt-trace: " ^ msg);
  prerr_endline usage;
  exit 2

let () =
  let format = ref Trace.Text in
  let ev = ref "" in
  let bucket = ref 1.0 in
  let ttd = ref false in
  let files = ref [] in
  let spec =
    [
      ( "--format",
        Arg.String
          (fun s ->
            match Trace.format_of_string s with
            | Some f -> format := f
            | None -> fail_usage ("unknown format: " ^ s)),
        "FMT output format: text (default), csv, json" );
      ("--ev", Arg.Set_string ev, "NAME event name for curve (required)");
      ( "--bucket",
        Arg.Set_float bucket,
        "W bucket width in virtual seconds for curve (default 1.0)" );
      ( "--ttd",
        Arg.Set ttd,
        " curve over per-trace-id time-to-delivery instead of absolute \
         time" );
    ]
  in
  let cmd = ref "" in
  Arg.parse spec
    (fun a -> if !cmd = "" then cmd := a else files := a :: !files)
    usage;
  let read path =
    try Trace.read_file path with
    | Trace.Parse_error { line; text } ->
        Printf.eprintf "basalt-trace: %s:%d: not a trace event: %s\n" path
          line text;
        exit 2
    | Sys_error msg -> fail_usage msg
  in
  let one () =
    match List.rev !files with
    | [ f ] -> read f
    | _ -> fail_usage (!cmd ^ " takes exactly one FILE")
  in
  let report =
    match !cmd with
    | "summarize" -> Trace.summarize ~format:!format (one ())
    | "spans" -> Trace.spans ~format:!format (one ())
    | "curve" ->
        if !ev = "" then fail_usage "curve requires --ev NAME";
        if !bucket <= 0.0 then fail_usage "--bucket must be > 0";
        Trace.curve ~format:!format ~bucket:!bucket ~ttd:!ttd ~ev:!ev (one ())
    | "diff" -> (
        match List.rev !files with
        | [ a; b ] -> Trace.diff ~format:!format (read a) (read b)
        | _ -> fail_usage "diff takes exactly two FILEs")
    | "" -> fail_usage "missing subcommand"
    | other -> fail_usage ("unknown subcommand: " ^ other)
  in
  print_string report
