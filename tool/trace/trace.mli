(** Offline analyzer for the JSONL event traces written by
    [repro --trace] (DESIGN.md §8).

    Every report is a pure function of the parsed event list — no
    clocks, no randomness, stable sort orders, fixed-format floats —
    so byte-identical traces yield byte-identical reports regardless
    of [-j] level, which the CI determinism matrix asserts. *)

type format = Text | Csv | Json

val format_of_string : string -> format option
(** [format_of_string s] parses ["text"], ["csv"], ["json"]. *)

exception Parse_error of { line : int; text : string }
(** Raised by the parsers on a non-blank line that is not a valid
    trace event ([line] is 1-based). *)

val parse_lines : string list -> Basalt_obs.Obs.event list
(** [parse_lines ls] decodes one event per non-blank line.
    @raise Parse_error on the first malformed line. *)

val read_file : string -> Basalt_obs.Obs.event list
(** [read_file path] reads and parses a JSONL trace dump.
    @raise Parse_error on the first malformed line
    @raise Sys_error if the file cannot be opened. *)

val summarize : ?format:format -> Basalt_obs.Obs.event list -> string
(** [summarize events] reports per-event-name counts and first/last
    virtual-time extents (names sorted), plus totals for distinct
    [trace] correlation ids. *)

val spans : ?format:format -> Basalt_obs.Obs.event list -> string
(** [spans events] reports duration percentiles per span name over the
    span-end events (those carrying [sid]/[t0]/[dur] fields).
    Percentiles are exact nearest-rank over the sorted durations —
    offline reports need no sketch approximation. *)

val curve :
  ?format:format ->
  ?bucket:float ->
  ?ttd:bool ->
  ev:string ->
  Basalt_obs.Obs.event list ->
  string
(** [curve ~ev events] bins occurrences of event [ev] into
    [bucket]-wide virtual-time cells (default 1.0) and reports
    per-cell and cumulative counts — e.g. [~ev:"gossip.deliver"] is a
    dissemination curve.  With [~ttd:true] the x-coordinate becomes
    each event's latency since the first event in the trace carrying
    the same [trace] id (the publish), i.e. the time-to-delivery
    distribution; untraced events are dropped.  Only populated cells
    are printed.
    @raise Invalid_argument if [bucket <= 0]. *)

val diff :
  ?format:format ->
  Basalt_obs.Obs.event list ->
  Basalt_obs.Obs.event list ->
  string
(** [diff a b] compares two traces (e.g. an A/B protocol pair):
    per-event-name counts with deltas, and span duration medians where
    a name has span-end events on either side ([-] when absent). *)
