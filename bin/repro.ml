(* Reproduction driver: one subcommand per paper figure/table.
   See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
   paper-vs-measured outcomes. *)

open Cmdliner
open Basalt_experiments
module Pool = Basalt_parallel.Pool

let scale_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Scale.of_string s) in
  let print ppf s = Format.fprintf ppf "%s" (Scale.to_string s) in
  let scale_conv = Arg.conv ~docv:"SCALE" (parse, print) in
  let doc =
    "Experiment scale: $(b,quick) (seconds), $(b,standard) (minutes, n=1000) \
     or $(b,full) (paper scale, n=10000; hours for the complete suite)."
  in
  Arg.(value & opt scale_conv Scale.Standard & info [ "s"; "scale" ] ~doc)

let csv_arg =
  let doc =
    "Also write each experiment's rows as CSV files under $(docv) (created \
     if missing)."
  in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Write a deterministic JSONL event trace (lib/obs, DESIGN.md \xc2\xa78) to \
     $(docv).  Supported by $(b,cost), $(b,timeline), \
     $(b,robustness-net) and $(b,broadcast), whose tables then also report \
     instrument-sourced metrics; other targets warn and ignore the flag \
     (sweeps would record millions of events)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Fan Monte-Carlo runs out over $(docv) domains (1 = sequential, today's \
     default; 0 = one domain per core).  Results are bit-identical at any \
     setting (DESIGN.md \xc2\xa77)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let csv_path csv_dir name =
  Option.map
    (fun dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Filename.concat dir (name ^ ".csv"))
    csv_dir

(* Fail fast, with the failing path and a distinct exit code, before
   spending minutes on an experiment whose output cannot be written
   (exit 5; test_cli.ml pins it). *)
let exit_unwritable = 5

let fail_unwritable kind path msg =
  Printf.eprintf "repro: cannot write %s %s: %s\n%!" kind path msg;
  exit exit_unwritable

(* The append-without-truncate probe leaves pre-existing contents
   intact; a file it creates is immediately rewritten by the run. *)
let validate_trace = function
  | None -> ()
  | Some path -> (
      try close_out (open_out_gen [ Open_wronly; Open_creat ] 0o644 path)
      with Sys_error msg -> fail_unwritable "trace file" path msg)

let validate_csv_dir = function
  | None -> ()
  | Some dir -> (
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let probe = Filename.concat dir ".repro_probe" in
        close_out (open_out_gen [ Open_wronly; Open_creat ] 0o644 probe);
        Sys.remove probe
      with Sys_error msg -> fail_unwritable "csv directory" dir msg)

let warn_no_trace cmd_name = function
  | None -> ()
  | Some _ ->
      Printf.eprintf
        "repro %s: --trace is only supported by cost, timeline, \
         robustness-net and broadcast; ignoring\n\
         %!"
        cmd_name

(* jobs = 1 avoids the pool entirely (no domains are ever spawned), so
   the default matches the pre-parallelism driver exactly. *)
let with_jobs jobs f =
  match jobs with
  | 1 -> f None
  | 0 -> Pool.with_pool (fun pool -> f (Some pool))
  | j when j > 1 -> Pool.with_pool ~domains:j (fun pool -> f (Some pool))
  | _ ->
      prerr_endline "repro: -j must be >= 0";
      exit 1

let timed cmd_name f scale csv_dir trace jobs =
  validate_csv_dir csv_dir;
  validate_trace trace;
  let t0 = Unix.gettimeofday () in
  with_jobs jobs (fun pool -> f ~scale ~csv_dir ~trace ~pool ());
  Printf.printf "[%s done in %.1fs]\n\n%!" cmd_name (Unix.gettimeofday () -. t0)

let cmd cmd_name ~doc f =
  Cmd.v (Cmd.info cmd_name ~doc)
    Term.(const (timed cmd_name f) $ scale_arg $ csv_arg $ trace_arg $ jobs_arg)

(* Adapter for the targets that do not support tracing: warn, drop the
   flag, and keep the original signature. *)
let untraced cmd_name f ~scale ~csv_dir ~trace ~pool () =
  warn_no_trace cmd_name trace;
  f ~scale ~csv_dir ~pool ()

let fig2_panel tag panel ~scale ~csv_dir ~pool () =
  Fig2.print ~scale ?csv:(csv_path csv_dir tag) ?pool panel

let fig2_all ~scale ~csv_dir ~pool () =
  List.iter2
    (fun tag panel -> fig2_panel tag panel ~scale ~csv_dir ~pool ())
    [ "fig2a"; "fig2b"; "fig2c"; "fig2d" ]
    Fig2.all_panels

let fig3 ~scale ~csv_dir ~pool () =
  Fig3.print ~scale ?csv:(csv_path csv_dir "fig3") ?pool ()

let fig4 ~scale ~csv_dir ~pool () =
  Fig4.print ~scale ?csv:(csv_path csv_dir "fig4") ?pool ()

let fig5 ~scale ~csv_dir ~pool () =
  Fig5.print ~scale ?csv:(csv_path csv_dir "fig5") ?pool ()

let sps_failure ~scale ~csv_dir ~pool () =
  Sps_failure.print ~scale ?csv:(csv_path csv_dir "sps_failure") ?pool ()

let live ~scale ~csv_dir ~pool:_ () =
  Live.print ~scale ?csv:(csv_path csv_dir "live") ()

let theory ~scale ~csv_dir:_ ~pool () = Theory.print ~scale ?pool ()
let params ~scale ~csv_dir:_ ~pool:_ () = Params.print ~scale ()

let cost ~scale ~csv_dir ~trace ~pool:_ () =
  Cost.print ~scale ?csv:(csv_path csv_dir "cost") ?trace ()

let churn ~scale ~csv_dir ~pool () =
  Churn_exp.print ~scale ?csv:(csv_path csv_dir "churn") ?pool ()

let sybil ~scale ~csv_dir ~pool () =
  Sybil.print ~scale ?csv:(csv_path csv_dir "sybil") ?pool ()

let robustness ~scale ~csv_dir ~pool () =
  Robustness.print ~scale ?csv:(csv_path csv_dir "robustness") ?pool ()

let robustness_net ~scale ~csv_dir ~trace ~pool () =
  Robustness_net.print ~scale
    ?csv:(csv_path csv_dir "robustness_net")
    ?trace ?pool ()

let broadcast ~scale ~csv_dir ~trace ~pool () =
  Broadcast.print ~scale ?csv:(csv_path csv_dir "broadcast") ?trace ?pool ()

let uniformity ~scale ~csv_dir ~pool () =
  Uniformity.print ~scale ?csv:(csv_path csv_dir "uniformity") ?pool ()

let dag ~scale ~csv_dir ~pool:_ () =
  Dag_exp.print ~scale ?csv:(csv_path csv_dir "dag") ()

let all ~scale ~csv_dir ~trace ~pool () =
  params ~scale ~csv_dir ~pool ();
  theory ~scale ~csv_dir ~pool ();
  fig2_all ~scale ~csv_dir ~pool ();
  fig3 ~scale ~csv_dir ~pool ();
  fig4 ~scale ~csv_dir ~pool ();
  fig5 ~scale ~csv_dir ~pool ();
  sps_failure ~scale ~csv_dir ~pool ();
  live ~scale ~csv_dir ~pool ();
  (* cost is the one target in the sequence that understands --trace. *)
  cost ~scale ~csv_dir ~trace ~pool ()

let extensions ~scale ~csv_dir ~pool () =
  churn ~scale ~csv_dir ~pool ();
  sybil ~scale ~csv_dir ~pool ();
  robustness ~scale ~csv_dir ~pool ();
  robustness_net ~scale ~csv_dir ~trace:None ~pool ();
  uniformity ~scale ~csv_dir ~pool ();
  dag ~scale ~csv_dir ~pool ();
  broadcast ~scale ~csv_dir ~trace:None ~pool ()

let cmds =
  [
    cmd "fig2a" ~doc:"Byzantine samples vs fraction f (Fig. 2a)"
      (untraced "fig2a" (fig2_panel "fig2a" Fig2.F_byzantine));
    cmd "fig2b" ~doc:"Byzantine samples vs attack force F (Fig. 2b)"
      (untraced "fig2b" (fig2_panel "fig2b" Fig2.Force));
    cmd "fig2c" ~doc:"Byzantine samples vs sampling rate rho (Fig. 2c)"
      (untraced "fig2c" (fig2_panel "fig2c" Fig2.Rho));
    cmd "fig2d" ~doc:"Byzantine samples vs view size v (Fig. 2d)"
      (untraced "fig2d" (fig2_panel "fig2d" Fig2.View_size));
    cmd "fig2" ~doc:"All four panels of Fig. 2" (untraced "fig2" fig2_all);
    cmd "fig3" ~doc:"Convergence time vs f (Fig. 3)" (untraced "fig3" fig3);
    cmd "fig4" ~doc:"Graph metric convergence over time (Fig. 4)"
      (untraced "fig4" fig4);
    cmd "fig5" ~doc:"Max sampling rate without isolation vs v (Fig. 5)"
      (untraced "fig5" fig5);
    cmd "sps-failure" ~doc:"SPS isolation at f=30%, F=0 (Section 4.3)"
      (untraced "sps-failure" sps_failure);
    cmd "live" ~doc:"Simulated live-deployment measurement (Section 5)"
      (untraced "live" live);
    cmd "theory" ~doc:"Section 3 bounds, equilibria and model validation"
      (untraced "theory" theory);
    cmd "params" ~doc:"Table 1 parameter envelope and stability checks"
      (untraced "params" params);
    cmd "cost" ~doc:"Communication-cost accounting (Section 4.3 budget)" cost;
    cmd "churn" ~doc:"Extension: sample quality under continuous churn"
      (untraced "churn" churn);
    cmd "sybil"
      ~doc:"Extension: institutional Sybil attack vs prefix-diverse ranking"
      (untraced "sybil" sybil);
    cmd "robustness"
      ~doc:"Extension: resilience to message loss and latency jitter"
      (untraced "robustness" robustness);
    cmd "robustness-net"
      ~doc:
        "Extension: convergence under fault plans (burst loss, partitions, \
         duplication/reordering)"
      robustness_net;
    cmd "broadcast"
      ~doc:
        "Extension: epidemic broadcast (lib/gossip) over each sampler under \
         flooding and network faults"
      broadcast;
    cmd "uniformity" ~doc:"Extension: sample-stream diversity statistics"
      (untraced "uniformity" uniformity);
    cmd "dag" ~doc:"Extension: Avalanche DAG consensus with a double-spend"
      (untraced "dag" dag);
    cmd "all" ~doc:"Run every paper experiment in sequence" all;
    cmd "extensions"
      ~doc:"Run the extension experiments (churn, sybil, robustness, uniformity, dag)"
      (untraced "extensions" extensions);
  ]

(* timeline has its own flag set (free-form scenario parameters). *)
let timeline_cmd =
  let protocol =
    Arg.(
      value & opt string "basalt"
      & info [ "protocol" ] ~docv:"NAME" ~doc:"basalt|brahms|sps|classic")
  in
  let n = Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Network size.") in
  let f =
    Arg.(value & opt float 0.1 & info [ "f" ] ~doc:"Byzantine fraction.")
  in
  let force = Arg.(value & opt float 10.0 & info [ "F" ] ~doc:"Attack force.") in
  let v = Arg.(value & opt int 100 & info [ "v" ] ~doc:"View size.") in
  let rho = Arg.(value & opt float 1.0 & info [ "rho" ] ~doc:"Sampling rate.") in
  let steps = Arg.(value & opt float 200.0 & info [ "steps" ] ~doc:"Duration.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let graph =
    Arg.(value & flag & info [ "graph-metrics" ] ~doc:"Record Fig. 4 metrics.")
  in
  let run protocol n f force v rho steps seed graph csv_dir trace =
    validate_csv_dir csv_dir;
    validate_trace trace;
    match
      Timeline.spec ~protocol ~n ~f ~force ~v ~rho ~steps ~seed
        ~graph_metrics:graph ()
    with
    | Ok s -> Timeline.print ?csv:(csv_path csv_dir "timeline") ?trace s
    | Error msg ->
        prerr_endline ("timeline: " ^ msg);
        exit 1
  in
  Cmd.v
    (Cmd.info "timeline" ~doc:"Time series for one free-form scenario")
    Term.(
      const run $ protocol $ n $ f $ force $ v $ rho $ steps $ seed $ graph
      $ csv_arg $ trace_arg)

(* matrix runs a declarative scenario file (DESIGN.md §12).  Distinct
   exit codes, pinned in test_cli.ml: 3 = unreadable scenario file,
   4 = parse/validation error (reported as file:line:col), 5 = shared
   unwritable-output failure. *)
let matrix_cmd =
  let file_arg =
    let doc = "Scenario matrix file (s-expression, DESIGN.md \xc2\xa712)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file scale csv_dir trace jobs =
    validate_csv_dir csv_dir;
    validate_trace trace;
    match Basalt_scenario.Spec.load file with
    | Error (`Unreadable msg) ->
        Printf.eprintf "repro matrix: cannot read %s: %s\n%!" file msg;
        exit 3
    | Error (`Invalid msg) ->
        Printf.eprintf "%s\n%!" msg;
        exit 4
    | Ok spec ->
        let t0 = Unix.gettimeofday () in
        with_jobs jobs (fun pool ->
            Basalt_scenario.Matrix.print ~scale
              ?csv:(csv_path csv_dir (Basalt_scenario.Spec.slug spec))
              ?trace ?pool spec);
        Printf.printf "[matrix done in %.1fs]\n\n%!"
          (Unix.gettimeofday () -. t0)
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Run a declarative scenario matrix from FILE (see scenarios/ for \
          committed examples)")
    Term.(const run $ file_arg $ scale_arg $ csv_arg $ trace_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "basalt-repro" ~version:"1.0.0"
      ~doc:"Reproduce the evaluation of the Basalt paper (Middleware 2023)"
  in
  exit (Cmd.eval (Cmd.group info (timeline_cmd :: matrix_cmd :: cmds)))
