(* basalt-node: a stand-alone Basalt peer over UDP.

   Run a small overlay on one machine:

     basalt-node --listen 127.0.0.1:4001 --peer 127.0.0.1:4002 &
     basalt-node --listen 127.0.0.1:4002 --peer 127.0.0.1:4001 &
     basalt-node --listen 127.0.0.1:4003 --peer 127.0.0.1:4001 --duration 30

   Each node prints its view and fresh samples periodically.  Endpoints
   are the node identifiers, so the view is directly a routing table. *)

open Cmdliner
module Endpoint = Basalt_net.Endpoint
module Event_loop = Basalt_net.Event_loop
module Udp_node = Basalt_net.Udp_node

let endpoint_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Endpoint.of_string s) in
  Arg.conv ~docv:"HOST:PORT" (parse, Endpoint.pp)

let listen_arg =
  Arg.(
    required
    & opt (some endpoint_conv) None
    & info [ "l"; "listen" ] ~docv:"HOST:PORT" ~doc:"Address to bind.")

let peers_arg =
  Arg.(
    value & opt_all endpoint_conv []
    & info [ "p"; "peer" ] ~docv:"HOST:PORT"
        ~doc:"Bootstrap peer (repeatable).")

let view_size_arg =
  Arg.(value & opt int 16 & info [ "v"; "view-size" ] ~doc:"View size v.")

let tau_arg =
  Arg.(
    value & opt float 1.0
    & info [ "tau" ] ~doc:"Exchange interval in seconds.")

let rho_arg =
  Arg.(
    value & opt float 1.0
    & info [ "rho" ] ~doc:"Samples per second the service should emit.")

let duration_arg =
  Arg.(
    value & opt float 60.0
    & info [ "d"; "duration" ] ~doc:"How long to run, in seconds.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed (0 = from time).")

let report_arg =
  Arg.(
    value & opt float 5.0
    & info [ "report-every" ] ~doc:"Status print interval in seconds.")

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P"
        ~doc:
          "Self-inject outgoing datagram loss with probability $(docv) (0 to \
           1): soak a localhost cluster under packet loss without root or \
           $(b,tc).")

let delay_arg =
  Arg.(
    value & opt float 0.0
    & info [ "delay" ] ~docv:"SECONDS"
        ~doc:
          "Self-inject a uniform outgoing delay in [0, $(docv)) seconds on \
           every datagram that survives $(b,--loss).")

let evict_arg =
  Arg.(
    value & opt int 0
    & info [ "evict-after" ] ~docv:"ROUNDS"
        ~doc:
          "Evict peers whose pulls stay unanswered for more than $(docv) \
           rounds (0 disables eviction).  Retransmissions re-record the \
           probe, so eviction and the retry policy stay coupled.")

let publish_every_arg =
  Arg.(
    value & opt float 0.0
    & info [ "publish-every" ] ~docv:"SECONDS"
        ~doc:
          "Publish a broadcast message through the gossip layer every \
           $(docv) seconds (0 = never publish; the node still relays and \
           delivers other nodes' messages).")

let payload_size_arg =
  Arg.(
    value & opt int 32
    & info [ "payload-size" ] ~docv:"BYTES"
        ~doc:"Payload size of each published broadcast message.")

let metrics_arg =
  Arg.(
    value & opt float 0.0
    & info [ "metrics-every" ]
        ~doc:
          "Dump the lib/obs instrument registry every $(docv) seconds (0 = \
           only on SIGUSR1 and at exit).")

let metrics_addr_arg =
  Arg.(
    value
    & opt (some endpoint_conv) None
    & info [ "metrics-addr" ] ~docv:"HOST:PORT"
        ~doc:
          "Serve the instrument registry as Prometheus text over HTTP at \
           $(docv) (port 0 = OS-assigned; the bound address is printed at \
           startup).  Scrape it with $(b,curl) or Prometheus while the node \
           runs.")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-file" ] ~docv:"PATH"
        ~doc:
          "Atomically rewrite $(docv) with the registry's Prometheus text at \
           every $(b,--metrics-every) tick and at exit (written to a \
           temporary file, then renamed) — the no-open-port variant of \
           $(b,--metrics-addr) for file-based collectors.")

let write_metrics_file path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc text;
  close_out oc;
  Sys.rename tmp path

let main listen peers v tau rho duration seed loss delay evict_after
    publish_every payload_size report_every metrics_every metrics_addr
    metrics_file =
  let seed =
    if seed = 0 then int_of_float (Unix.gettimeofday () *. 1000.0) land 0xFFFFFF
    else seed
  in
  let config =
    Basalt_core.Config.make ~v ~tau ~rho
      ?evict_after_rounds:(if evict_after > 0 then Some evict_after else None)
      ()
  in
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  (* The daemon is the allowlisted real-clock boundary (lint D2/D8): the
     registry's trace clock is the event loop's wall clock. *)
  let obs = Basalt_obs.Obs.create ~clock:(fun () -> Event_loop.now loop) () in
  let deliver mid payload =
    Printf.printf "[recv] broadcast %s#%d (%d bytes)\n%!"
      (Endpoint.to_string (Endpoint.of_node_id mid.Basalt_proto.Message.origin))
      mid.Basalt_proto.Message.seqno (Bytes.length payload)
  in
  let node =
    Udp_node.create ~config ~obs ~inject_loss:loss ~inject_delay:delay
      ~gossip:Basalt_gossip.Config.default ~deliver ~loop ~listen
      ~bootstrap:peers ~seed ()
  in
  if publish_every > 0.0 then begin
    let published = ref 0 in
    (* Phase-shift the first publish a full interval in, so the mesh has
       had sampler output to graft from. *)
    Event_loop.every loop ~phase:publish_every ~interval:publish_every
      (fun () ->
        let payload =
          Bytes.make payload_size (Char.chr (65 + (!published mod 26)))
        in
        incr published;
        ignore (Udp_node.publish node payload))
  end;
  let dump_metrics () =
    Printf.printf "-- metrics @ %.3f\n%s%!" (Event_loop.now loop)
      (Basalt_obs.Obs.render obs);
    match metrics_file with
    | Some path -> write_metrics_file path (Basalt_obs.Obs.render_prometheus obs)
    | None -> ()
  in
  ignore
    (Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> dump_metrics ())));
  if metrics_every > 0.0 then
    Event_loop.every loop ~interval:metrics_every (fun () -> dump_metrics ());
  let metrics_server =
    Option.map
      (fun addr ->
        let srv =
          Basalt_net.Metrics_server.serve ~loop ~listen:addr
            ~render:(fun () -> Basalt_obs.Obs.render_prometheus obs)
            ()
        in
        Printf.printf "metrics exposition on http://%s/metrics\n%!"
          (Endpoint.to_string (Basalt_net.Metrics_server.endpoint srv));
        srv)
      metrics_addr
  in
  Printf.printf
    "basalt-node listening on %s (v=%d tau=%gs rho=%g seed=%d loss=%g \
     delay=%gs)\n\
     %!"
    (Endpoint.to_string (Udp_node.endpoint node))
    v tau rho seed loss delay;
  Event_loop.every loop ~interval:report_every (fun () ->
      let stats = Udp_node.stats node in
      let view = Udp_node.view node in
      let distinct =
        List.sort_uniq compare (List.map Endpoint.to_string view)
      in
      Printf.printf "[%s] view: %d slots, %d distinct peers; io: %d in / %d out\n"
        (Endpoint.to_string (Udp_node.endpoint node))
        (List.length view) (List.length distinct)
        stats.Udp_node.datagrams_in stats.Udp_node.datagrams_out;
      (match Udp_node.gossip_stats node with
      | Some g when g.Basalt_gossip.Gossip.published > 0 || g.delivered > 0 ->
          Printf.printf
            "  gossip: %d published, %d delivered, %d duplicates, mesh \
             grafts/prunes %d/%d\n"
            g.Basalt_gossip.Gossip.published g.delivered g.duplicates
            g.grafts_sent g.prunes_sent
      | Some _ | None -> ());
      let recent =
        Basalt_core.Sample_stream.recent (Udp_node.samples node) 5
      in
      if recent <> [] then
        Printf.printf "  recent samples: %s\n"
          (String.concat ", "
             (List.map
                (fun id -> Endpoint.to_string (Endpoint.of_node_id id))
                recent));
      flush stdout);
  Event_loop.run_for loop duration;
  let stats = Udp_node.stats node in
  Printf.printf "done: %d datagrams in, %d out, %d decode errors, %d retries\n"
    stats.Udp_node.datagrams_in stats.Udp_node.datagrams_out
    stats.Udp_node.decode_errors stats.Udp_node.retries;
  (match Udp_node.gossip_stats node with
  | Some g ->
      Printf.printf "gossip: %d published, %d delivered, %d duplicates\n"
        g.Basalt_gossip.Gossip.published g.delivered g.duplicates
  | None -> ());
  dump_metrics ();
  Option.iter Basalt_net.Metrics_server.close metrics_server;
  Udp_node.close node

let cmd =
  let info =
    Cmd.info "basalt-node" ~version:"1.0.0"
      ~doc:"Run a Basalt random-peer-sampling node over UDP"
  in
  Cmd.v info
    Term.(
      const main $ listen_arg $ peers_arg $ view_size_arg $ tau_arg $ rho_arg
      $ duration_arg $ seed_arg $ loss_arg $ delay_arg $ evict_arg
      $ publish_every_arg $ payload_size_arg $ report_arg $ metrics_arg
      $ metrics_addr_arg $ metrics_file_arg)

let () = exit (Cmd.eval cmd)
