(* Benchmark harness.

   Two parts:

   1. Regeneration of every table/figure of the paper's evaluation at
      quick scale — the same code paths as [bin/repro.exe], producing the
      rows/series the paper reports (§4 Figs. 2-5, the §4.3 SPS result,
      the §5 deployment, Table 1, and the §3 theory numbers).

   2. Bechamel micro-benchmarks of the hot operations behind those
      experiments (one group per figure plus core-op and ablation
      groups, per DESIGN.md §4). *)

open Bechamel
open Toolkit
module Scale = Basalt_experiments.Scale
module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Rank = Basalt_hashing.Rank
module Rng = Basalt_prng.Rng
module Pool = Basalt_parallel.Pool
module Sweep = Basalt_sim.Sweep

let scale = Scale.Quick

(* --- CLI -------------------------------------------------------------- *)

(* [--only G1,G2] runs just the micro-benchmark groups whose names start
   with one of the given prefixes (and skips the part-1 figure
   regeneration); [--json FILE] additionally writes the measured ns/run
   numbers in the machine-readable form `tool/bench_gate` consumes. *)

let only : string list option ref = ref None
let json_path : string option ref = ref None
let json_acc : (string * (string * float) list) list ref = ref []

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--only" :: spec :: rest ->
        only := Some (List.map String.trim (String.split_on_char ',' spec));
        go rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        go rest
    | arg :: _ ->
        Printf.eprintf
          "bench: unknown argument %s\n\
           usage: bench [--only GROUP,GROUP,...] [--json FILE]\n"
          arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let group_selected name =
  match !only with
  | None -> true
  | Some sels ->
      List.exists
        (fun sel ->
          sel <> ""
          && String.length name >= String.length sel
          && String.sub name 0 (String.length sel) = sel)
        sels

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"unit\": \"ns/run\",\n  \"groups\": {\n";
  let groups = List.rev !json_acc in
  List.iteri
    (fun gi (group, rows) ->
      Printf.fprintf oc "    \"%s\": {\n" (json_escape group);
      List.iteri
        (fun ri (test_name, ns) ->
          Printf.fprintf oc "      \"%s\": %s%s\n" (json_escape test_name)
            (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
            (if ri = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "    }%s\n"
        (if gi = List.length groups - 1 then "" else ","))
    groups;
  Printf.fprintf oc "  }\n}\n";
  close_out oc

(* --- Part 1: paper series ------------------------------------------- *)

let regenerate_figures () =
  print_endline "=== Part 1: paper tables and figures (quick scale) ===";
  print_endline
    "(run `basalt-repro all --scale standard` or `--scale full` for larger\n\
    \ networks; see EXPERIMENTS.md for recorded paper-vs-measured results)\n";
  Basalt_experiments.Params.print ~scale ();
  Basalt_experiments.Theory.print ~scale ();
  List.iter (Basalt_experiments.Fig2.print ~scale) Basalt_experiments.Fig2.all_panels;
  Basalt_experiments.Fig3.print ~scale ();
  Basalt_experiments.Fig4.print ~scale ();
  Basalt_experiments.Fig5.print ~scale ();
  Basalt_experiments.Sps_failure.print ~scale ();
  Basalt_experiments.Live.print ~scale ();
  Basalt_experiments.Cost.print ~scale ();
  Basalt_experiments.Uniformity.print ~scale ()

(* --- Part 2: micro-benchmarks ---------------------------------------- *)

let ns_of_run = function Some (e :: _) -> e | Some [] | None -> Float.nan

let run_group_now ~name tests =
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name ols acc ->
        (test_name, ns_of_run (Analyze.OLS.estimates ols)) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "-- %s\n" name;
  List.iter
    (fun (test_name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.2f ns" ns
      in
      Printf.printf "   %-48s %s/run\n" test_name human)
    rows;
  json_acc := (name, rows) :: !json_acc;
  print_newline ()

let run_group ~name tests =
  if group_selected name then run_group_now ~name tests

(* Micro run: a small but complete simulated experiment (the unit of work
   behind every figure). *)
let micro_scenario ?(protocol = Scenario.Basalt (Basalt_core.Config.make ~v:16 ~k:4 ()))
    ?(f = 0.1) ?(force = 10.0) ?(graph_metrics = false) () =
  Scenario.make ~name:"bench" ~n:120 ~f ~force ~protocol ~steps:20.0
    ~graph_metrics ()

let sim_test name scenario =
  Test.make ~name (Staged.stage (fun () -> ignore (Runner.run scenario)))

(* One group per figure: the benchmarked unit is one Monte-Carlo run with
   that figure's distinguishing configuration. *)
let fig_groups () =
  run_group ~name:"fig2 (per-point run: basalt vs brahms, F=10)"
    [
      sim_test "basalt" (micro_scenario ());
      sim_test "brahms"
        (micro_scenario
           ~protocol:(Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:16 ~k:4 ()))
           ());
    ];
  run_group ~name:"fig3 (convergence measurement run)"
    [
      Test.make ~name:"run+convergence"
        (Staged.stage (fun () ->
             let r = Runner.run (micro_scenario ()) in
             ignore
               (Basalt_sim.Measurements.convergence_time ~optimal:0.1
                  ~within:0.25 r.Runner.series)));
    ];
  run_group ~name:"fig4 (run with graph metrics)"
    [
      sim_test "basalt+metrics" (micro_scenario ~graph_metrics:true ~force:1.0 ());
    ];
  run_group ~name:"fig5 (isolation probe at one (v, rho) point)"
    [
      Test.make ~name:"probe"
        (Staged.stage (fun () ->
             let r =
               Runner.run
                 (micro_scenario
                    ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:16 ~k:4 ~rho:2.0 ()))
                    ())
             in
             ignore r.Runner.ever_isolated_after_half));
    ];
  run_group ~name:"sps-failure (f=0.3, F=0 run)"
    [
      sim_test "sps"
        (Scenario.make ~name:"bench" ~n:120 ~f:0.3 ~force:0.0
           ~strategy:Basalt_adversary.Adversary.Silent
           ~protocol:(Scenario.Sps (Basalt_sps.Sps.config ~l:16 ()))
           ~steps:20.0 ());
    ];
  run_group ~name:"live (deployment measurement)"
    [
      Test.make ~name:"deployment"
        (Staged.stage (fun () ->
             ignore
               (Basalt_avalanche.Deployment.run
                  (Basalt_avalanche.Deployment.config ~n:120 ~adversarial:24
                     ~v:16 ~steps:20.0 ()))));
    ];
  run_group ~name:"theory (Section 3 computations)"
    [
      Test.make ~name:"ode-trajectory"
        (Staged.stage (fun () ->
             ignore
               (Basalt_analysis.Model.trajectory
                  (Basalt_analysis.Model.env ())
                  ~b0:0.5 ~t1:100.0 ~dt:0.1)));
      Test.make ~name:"equilibria"
        (Staged.stage (fun () ->
             ignore
               (Basalt_analysis.Model.equilibria (Basalt_analysis.Model.env ()))));
      Test.make ~name:"isolation-bounds"
        (Staged.stage (fun () ->
             ignore (Basalt_experiments.Theory.worked_examples ())));
    ]

(* Core operations: the simulator's hot paths. *)
let core_ops () =
  let rng = Rng.create ~seed:1 in
  let ids = Array.init 161 Basalt_proto.Node_id.of_int in
  let basalt =
    Basalt_core.Basalt.create
      ~config:(Basalt_core.Config.make ~v:160 ())
      ~id:(Basalt_proto.Node_id.of_int 9999)
      ~bootstrap:ids ~rng
      ~send:(fun ~dst:_ _ -> ())
      ()
  in
  let siphash_key = Basalt_hashing.Siphash.key_of_rng rng in
  let cheap_seed = Rank.of_int Rank.Cheap 42 in
  let keyed_seed = Rank.of_int (Rank.Keyed_cheap 0x2545F4914F6CDD1D) 42 in
  let sip_seed = Rank.of_int (Rank.Siphash siphash_key) 42 in
  run_group ~name:"core ops"
    [
      (* Steady state: the same candidates re-offered to unchanged seeds,
         so the batch pass reduces to its seen-cache intake — the shape of
         a node re-digesting pull replies between slot resets. *)
      Test.make ~name:"update_sample (v=160, 161 ids)"
        (Staged.stage (fun () -> Basalt_core.Basalt.update_sample basalt ids));
      Test.make ~name:"sample_tick (v=160, k=80)"
        (Staged.stage (fun () -> ignore (Basalt_core.Basalt.sample_tick basalt)));
      Test.make ~name:"rank (cheap mixer)"
        (Staged.stage (fun () -> ignore (Rank.rank cheap_seed 123456)));
      Test.make ~name:"rank (keyed-cheap mixer)"
        (Staged.stage (fun () -> ignore (Rank.rank keyed_seed 123456)));
      (* Midstate-resumed: the key + seed block is absorbed at seed-draw
         time, each evaluation finishes only the identifier block. *)
      Test.make ~name:"rank (siphash-2-4)"
        (Staged.stage (fun () -> ignore (Rank.rank sip_seed 123456)));
      Test.make ~name:"rank (siphash-2-4, no midstate)"
        (Staged.stage (fun () ->
             ignore
               (Basalt_hashing.Siphash.hash_int64_pair siphash_key 42L 123456L)));
      Test.make ~name:"rng int"
        (Staged.stage (fun () -> ignore (Rng.int rng 1000)));
    ]

let graph_ops () =
  let rng = Rng.create ~seed:2 in
  (* A random 200-vertex, out-degree-16 snapshot. *)
  let g =
    Basalt_graph.Digraph.of_views ~n:200 (fun _ ->
        Array.init 16 (fun _ -> Basalt_proto.Node_id.of_int (Rng.int rng 200)))
  in
  let is_malicious u = u >= 180 in
  run_group ~name:"graph metrics (n=200, d=16 snapshot)"
    [
      Test.make ~name:"clustering"
        (Staged.stage (fun () ->
             ignore
               (Basalt_graph.Metrics.clustering_coefficient ~rng ~is_malicious g)));
      Test.make ~name:"mean path length"
        (Staged.stage (fun () ->
             ignore (Basalt_graph.Metrics.mean_path_length ~rng ~is_malicious g)));
      Test.make ~name:"indegree decile spread"
        (Staged.stage (fun () ->
             ignore (Basalt_graph.Metrics.indegree_decile_spread ~is_malicious g)));
      Test.make ~name:"weak components"
        (Staged.stage (fun () ->
             ignore (Basalt_graph.Components.weakly_connected g)));
    ]

let codec_ops () =
  let msg = Basalt_proto.Message.Push (Array.init 160 Basalt_proto.Node_id.of_int) in
  let encoded = Basalt_codec.Wire.encode msg in
  let sender = Basalt_proto.Node_id.of_int 77 in
  let frame = Basalt_net.Frame.encode ~sender msg in
  run_group ~name:"wire codec (160-id view)"
    [
      Test.make ~name:"encode" (Staged.stage (fun () -> ignore (Basalt_codec.Wire.encode msg)));
      Test.make ~name:"decode"
        (Staged.stage (fun () -> ignore (Basalt_codec.Wire.decode encoded)));
      Test.make ~name:"frame encode"
        (Staged.stage (fun () -> ignore (Basalt_net.Frame.encode ~sender msg)));
      Test.make ~name:"frame decode"
        (Staged.stage (fun () ->
             let d = Basalt_net.Frame.Decoder.create () in
             ignore
               (Basalt_net.Frame.Decoder.feed d frame ~off:0
                  ~len:(Bytes.length frame))));
    ]

(* Multi-seed fan-out through the domain pool (DESIGN.md §7).  The
   benchmarked unit is an 8-seed batch of the micro scenario — the same
   shape `Sweep` hands the pool under `repro -j N`.  On a single-core
   host j=4 is expected to match j=1 (the pool adds little overhead but
   no parallelism); the speedup target lives on multi-core CI. *)
let sweep_throughput () =
  (* Guarded as a whole so a filtered run never spawns domains. *)
  if group_selected "sweep throughput (8-seed batch)" then begin
    let scenario = micro_scenario () in
    let seeds = List.init 8 (fun i -> i + 1) in
    let pool = Pool.create ~domains:4 () in
    run_group ~name:"sweep throughput (8-seed batch)"
      [
        Test.make ~name:"j=1"
          (Staged.stage (fun () -> ignore (Sweep.run_seeds scenario ~seeds)));
        Test.make ~name:"j=4"
          (Staged.stage (fun () ->
               ignore (Sweep.run_seeds ~pool scenario ~seeds)));
      ];
    Pool.shutdown pool
  end

(* The broadcast layer's hot path (DESIGN.md §11): publishing (mid
   allocation, cache insert, local delivery, one eager push per mesh
   peer), receiving a fresh data frame (dedup miss, cache insert,
   forward), and rejecting a duplicate (dedup hit — the per-frame cost
   every relay pays under redundancy). *)
let gossip_ops () =
  let peers = Array.init 64 Basalt_proto.Node_id.of_int in
  let make seed =
    Basalt_gossip.Gossip.create
      ~node:(Basalt_proto.Node_id.of_int 9999)
      ~view:(fun () -> peers)
      ~rng:(Rng.create ~seed)
      ~send:(fun ~dst:_ _ -> ())
      ~deliver:(fun _ _ -> ())
      ()
  in
  let publisher = make 1 in
  let receiver = make 2 in
  let dup_receiver = make 3 in
  (* Fill the meshes the way the protocol does. *)
  List.iter
    (fun g ->
      Basalt_gossip.Gossip.on_samples g (Array.to_list peers);
      Basalt_gossip.Gossip.heartbeat g)
    [ publisher; receiver; dup_receiver ];
  let payload = Bytes.make 32 'x' in
  let fresh_seqno = ref 0 in
  let origin = Basalt_proto.Node_id.of_int 17 in
  let dup_frame =
    Basalt_proto.Message.Gossip
      { mid = { origin; seqno = 0 }; hops = 1; payload }
  in
  ignore
    (Basalt_gossip.Gossip.on_message dup_receiver ~from:origin dup_frame);
  run_group ~name:"gossip ops"
    [
      Test.make ~name:"publish (mesh=4, 32-byte payload)"
        (Staged.stage (fun () ->
             ignore (Basalt_gossip.Gossip.publish publisher payload)));
      Test.make ~name:"on_message fresh data"
        (Staged.stage (fun () ->
             incr fresh_seqno;
             ignore
               (Basalt_gossip.Gossip.on_message receiver ~from:origin
                  (Basalt_proto.Message.Gossip
                     { mid = { origin; seqno = !fresh_seqno }; hops = 1; payload }))));
      Test.make ~name:"on_message duplicate data"
        (Staged.stage (fun () ->
             ignore
               (Basalt_gossip.Gossip.on_message dup_receiver ~from:origin
                  dup_frame)));
      Test.make ~name:"heartbeat (64-peer view)"
        (Staged.stage (fun () -> Basalt_gossip.Gossip.heartbeat receiver));
    ]

(* Observability overhead (DESIGN.md §8): the same update_sample unit as
   "core ops", once against the disabled sink (the default — instrument
   mutations are dead stores into unregistered dummies) and once against
   an enabled registry (shared per-run counters).  The pre-PR baseline
   and the recorded disabled-vs-enabled numbers live in
   BENCH_obs_overhead.json; the acceptance bar is < 2% regression for
   the disabled sink. *)
let obs_overhead () =
  let ids = Array.init 161 Basalt_proto.Node_id.of_int in
  let make obs =
    Basalt_core.Basalt.create
      ~config:(Basalt_core.Config.make ~v:160 ())
      ~obs
      ~id:(Basalt_proto.Node_id.of_int 9999)
      ~bootstrap:ids
      ~rng:(Rng.create ~seed:1)
      ~send:(fun ~dst:_ _ -> ())
      ()
  in
  let disabled = make Basalt_obs.Obs.disabled in
  let enabled = make (Basalt_obs.Obs.create ()) in
  run_group ~name:"obs overhead (update_sample, v=160, 161 ids)"
    [
      Test.make ~name:"sink disabled"
        (Staged.stage (fun () -> Basalt_core.Basalt.update_sample disabled ids));
      Test.make ~name:"sink enabled"
        (Staged.stage (fun () -> Basalt_core.Basalt.update_sample enabled ids));
    ]

(* Ablations called out in DESIGN.md §4. *)
let ablations () =
  run_group ~name:"ablation: replacement count k"
    [
      sim_test "k=1"
        (micro_scenario ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:16 ~k:1 ())) ());
      sim_test "k=v/2"
        (micro_scenario ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:16 ~k:8 ())) ());
    ];
  run_group ~name:"ablation: push payload (full view vs own id)"
    [
      sim_test "full-view"
        (micro_scenario
           ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:16 ~k:4 ()))
           ());
      sim_test "own-id-only"
        (micro_scenario
           ~protocol:
             (Scenario.Basalt
                (Basalt_core.Config.make ~v:16 ~k:4 ~push_own_id_only:true ()))
           ());
    ];
  let sip = Rank.Siphash (Basalt_hashing.Siphash.key_of_ints 1L 2L) in
  run_group ~name:"ablation: rank backend"
    [
      sim_test "cheap-mixer"
        (micro_scenario
           ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:16 ~k:4 ()))
           ());
      sim_test "siphash-2-4"
        (micro_scenario
           ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:16 ~k:4 ~backend:sip ()))
           ());
    ];
  run_group ~name:"ablation: slot selection strategy"
    [
      sim_test "uniform"
        (micro_scenario
           ~protocol:
             (Scenario.Basalt
                (Basalt_core.Config.make ~v:16 ~k:4 ~select:Basalt_core.Config.Uniform_slot ()))
           ());
      sim_test "rotating"
        (micro_scenario
           ~protocol:
             (Scenario.Basalt
                (Basalt_core.Config.make ~v:16 ~k:4 ~select:Basalt_core.Config.Rotating_slot ()))
           ());
      sim_test "least-used"
        (micro_scenario
           ~protocol:
             (Scenario.Basalt
                (Basalt_core.Config.make ~v:16 ~k:4
                   ~select:Basalt_core.Config.Least_used_slot ()))
           ());
    ]

let () =
  parse_args ();
  if !only = None then begin
    regenerate_figures ();
    print_endline "=== Part 2: micro-benchmarks (Bechamel, OLS ns/run) ==="
  end;
  fig_groups ();
  core_ops ();
  graph_ops ();
  codec_ops ();
  sweep_throughput ();
  gossip_ops ();
  obs_overhead ();
  ablations ();
  (match !json_path with Some path -> write_json path | None -> ());
  print_endline "bench: done"
