module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module View_ops = Basalt_proto.View_ops
module Rng = Basalt_prng.Rng
module Slot = Basalt_core.Slot
module Obs = Basalt_obs.Obs

type t = {
  config : Brahms_config.t;
  id : Node_id.t;
  rng : Rng.t;
  send : Rps.send;
  mutable view : Node_id.t array;
  samplers : Slot.t array;
  mutable pending_push : Node_id.t list;
  mutable pending_push_count : int;  (* push messages, for the limit *)
  mutable pending_pull : Node_id.t list;
  mutable got_pull_reply : bool;
  mutable next_reset : int;
  mutable blocked : int;
  mutable emitted : int;
  (* Run-wide instruments, shared across nodes by name (DESIGN.md §8). *)
  c_rank_evals : Obs.Counter.t;
  c_rounds : Obs.Counter.t;
  c_pulls : Obs.Counter.t;
  c_pushes : Obs.Counter.t;
  c_samples : Obs.Counter.t;
  c_slot_resets : Obs.Counter.t;
  c_view_rebuilds : Obs.Counter.t;
  (* Pull-exchange lifecycle, feeding the run-wide "brahms.pull_rtt"
     sketch (DESIGN.md §8). *)
  rtt : Obs.rtt;
}

let config t = t.config
let id t = t.id

let feed_samplers t ids =
  let skip_self = t.config.Brahms_config.exclude_self in
  let backend = t.config.Brahms_config.backend in
  List.iter
    (fun id ->
      if not (skip_self && Node_id.equal id t.id) then begin
        let prepared = Basalt_hashing.Rank.prepare backend (Node_id.to_int id) in
        Obs.Counter.add t.c_rank_evals (Array.length t.samplers);
        Array.iter (fun s -> ignore (Slot.offer_prepared s id prepared)) t.samplers
      end)
    ids

let create ?(config = Brahms_config.default) ?(obs = Obs.disabled) ~id
    ~bootstrap ~rng ~send () =
  let rng = Rng.split rng in
  let send = Basalt_codec.Metered.send obs ~proto:"brahms" send in
  let samplers =
    Array.init config.Brahms_config.l (fun _ ->
        Slot.create config.Brahms_config.backend rng)
  in
  let initial_view =
    let candidates =
      Array.of_list
        (List.filter
           (fun p -> not (Node_id.equal p id))
           (Array.to_list bootstrap))
    in
    (* lint: allow D10 — bootstrap-time entanglement: samplers and the
       initial view consume the one creation stream in a fixed order that
       the pinned Brahms outcomes depend on; a split would change them. *)
    View_ops.random_subset rng ~k:config.Brahms_config.l candidates
  in
  let t =
    {
      config;
      id;
      rng;
      send;
      view = initial_view;
      samplers;
      pending_push = [];
      pending_push_count = 0;
      pending_pull = [];
      got_pull_reply = false;
      next_reset = 0;
      blocked = 0;
      emitted = 0;
      c_rank_evals = Obs.counter obs "brahms.rank_evals";
      c_rounds = Obs.counter obs "brahms.rounds";
      c_pulls = Obs.counter obs "brahms.pulls_sent";
      c_pushes = Obs.counter obs "brahms.pushes_sent";
      c_samples = Obs.counter obs "brahms.samples_emitted";
      c_slot_resets = Obs.counter obs "brahms.slot_resets";
      c_view_rebuilds = Obs.counter obs "brahms.view_rebuilds";
      rtt = Obs.rtt obs ~name:"brahms.pull";
    }
  in
  feed_samplers t (Array.to_list bootstrap);
  t

let sampler_outputs t =
  let out = ref [] in
  for i = Array.length t.samplers - 1 downto 0 do
    match Slot.peer t.samplers.(i) with
    | Some p -> out := p :: !out
    | None -> ()
  done;
  Array.of_list !out

(* Rebuild the view per Eq. (2):
   rand(alpha*l, pushed) ∪ rand(beta*l, pulled) ∪ rand(gamma*l, samplers). *)
let rebuild_view t =
  let cfg = t.config in
  let l = float_of_int cfg.Brahms_config.l in
  let over_limit =
    match cfg.Brahms_config.push_limit with
    | Some limit -> Int.compare t.pending_push_count limit > 0
    | None -> false
  in
  if over_limit then begin
    t.blocked <- t.blocked + 1;
    false
  end
  else if t.pending_push = [] || not t.got_pull_reply then
    (* Original Brahms only rebuilds when the round yielded both pushed
       and pulled identifiers; otherwise the previous view persists.
       This gating is part of Brahms's resilience: the push channel is
       honest-dominated (Byzantine pushes are what the deactivatable
       limit counts), so a round fed only by pull replies cannot replace
       the view. *)
    false
  else begin
    let pushed = View_ops.distinct (Array.of_list t.pending_push) in
    let pulled = View_ops.distinct (Array.of_list t.pending_pull) in
    let sampled = View_ops.distinct (sampler_outputs t) in
    let take frac arr =
      let k = int_of_float (Float.round (frac *. l)) in
      View_ops.random_subset t.rng ~k arr
    in
    let candidates =
      Array.concat
        [
          take cfg.Brahms_config.alpha pushed;
          take cfg.Brahms_config.beta pulled;
          take cfg.Brahms_config.gamma sampled;
        ]
    in
    if Array.length candidates > 0 then begin
      t.view <- candidates;
      Obs.Counter.incr t.c_view_rebuilds;
      true
    end
    else false
  end

let on_round t =
  Obs.Counter.incr t.c_rounds;
  ignore (rebuild_view t);
  t.pending_push <- [];
  t.pending_push_count <- 0;
  t.pending_pull <- [];
  t.got_pull_reply <- false;
  for _ = 1 to t.config.Brahms_config.pushes_per_round do
    match View_ops.random_member t.rng t.view with
    | Some p ->
        Obs.Counter.incr t.c_pushes;
        t.send ~dst:p (Message.Push_id t.id)
    | None -> ()
  done;
  for _ = 1 to t.config.Brahms_config.pulls_per_round do
    match View_ops.random_member t.rng t.view with
    | Some q ->
        Obs.Counter.incr t.c_pulls;
        Obs.rtt_start t.rtt ~node:(Node_id.to_int t.id)
          ~peer:(Node_id.to_int q);
        t.send ~dst:q Message.Pull_request
    | None -> ()
  done

let on_message t ~from msg =
  match msg with
  | Message.Pull_request -> t.send ~dst:from (Message.Pull_reply t.view)
  | Message.Push_id id ->
      t.pending_push <- id :: t.pending_push;
      t.pending_push_count <- t.pending_push_count + 1;
      feed_samplers t [ id ]
  | Message.Push ids ->
      (* Brahms pushes carry exactly the sender's identifier (§4.3: "limit
         pushed IDs to a peer's own ID").  A multi-identifier push — the
         generic adversary payload — is therefore parsed per protocol
         syntax as a single push from its sender; the extra payload is
         ignored. *)
      ignore ids;
      t.pending_push <- from :: t.pending_push;
      t.pending_push_count <- t.pending_push_count + 1;
      feed_samplers t [ from ]
  | Message.Pull_reply ids ->
      Obs.rtt_finish t.rtt ~peer:(Node_id.to_int from);
      t.pending_pull <- List.rev_append (Array.to_list ids) t.pending_pull;
      t.got_pull_reply <- true;
      feed_samplers t (Array.to_list ids)
  (* Broadcast frames are the lib/gossip layer's; samplers ignore them. *)
  | Message.Gossip _ | Message.Ihave _ | Message.Iwant _ | Message.Graft
  | Message.Prune ->
      ()

let sample_tick t =
  let l = Array.length t.samplers in
  let samples = ref [] in
  for _ = 1 to t.config.Brahms_config.k do
    let i = t.next_reset in
    t.next_reset <- (t.next_reset + 1) mod l;
    (match Slot.peer t.samplers.(i) with
    | Some p ->
        samples := p :: !samples;
        t.emitted <- t.emitted + 1;
        Obs.Counter.incr t.c_samples
    | None -> ());
    Slot.reset t.config.Brahms_config.backend t.rng t.samplers.(i);
    Obs.Counter.incr t.c_slot_resets
  done;
  List.rev !samples

let view t = t.view
let blocked_rounds t = t.blocked

let sampler ?config ?obs () : Rps.maker =
 fun ~id ~bootstrap ~rng ~send ->
  let t = create ?config ?obs ~id ~bootstrap ~rng ~send () in
  {
    Rps.protocol = "brahms";
    node = id;
    on_message = (fun ~from msg -> on_message t ~from msg);
    on_round = (fun () -> on_round t);
    sample_tick = (fun () -> sample_tick t);
    current_view = (fun () -> view t);
  }
