module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module View_ops = Basalt_proto.View_ops
module Rng = Basalt_prng.Rng
module Slot = Basalt_core.Slot

type t = {
  config : Brahms_config.t;
  id : Node_id.t;
  rng : Rng.t;
  send : Rps.send;
  mutable view : Node_id.t array;
  samplers : Slot.t array;
  mutable pending_push : Node_id.t list;
  mutable pending_push_count : int;  (* push messages, for the limit *)
  mutable pending_pull : Node_id.t list;
  mutable got_pull_reply : bool;
  mutable next_reset : int;
  mutable blocked : int;
  mutable emitted : int;
}

let config t = t.config
let id t = t.id

let feed_samplers t ids =
  let skip_self = t.config.Brahms_config.exclude_self in
  let backend = t.config.Brahms_config.backend in
  List.iter
    (fun id ->
      if not (skip_self && Node_id.equal id t.id) then begin
        let prepared = Basalt_hashing.Rank.prepare backend (Node_id.to_int id) in
        Array.iter (fun s -> ignore (Slot.offer_prepared s id prepared)) t.samplers
      end)
    ids

let create ?(config = Brahms_config.default) ~id ~bootstrap ~rng ~send () =
  let rng = Rng.split rng in
  let samplers =
    Array.init config.Brahms_config.l (fun _ ->
        Slot.create config.Brahms_config.backend rng)
  in
  let initial_view =
    let candidates =
      Array.of_list
        (List.filter
           (fun p -> not (Node_id.equal p id))
           (Array.to_list bootstrap))
    in
    View_ops.random_subset rng ~k:config.Brahms_config.l candidates
  in
  let t =
    {
      config;
      id;
      rng;
      send;
      view = initial_view;
      samplers;
      pending_push = [];
      pending_push_count = 0;
      pending_pull = [];
      got_pull_reply = false;
      next_reset = 0;
      blocked = 0;
      emitted = 0;
    }
  in
  feed_samplers t (Array.to_list bootstrap);
  t

let sampler_outputs t =
  let out = ref [] in
  for i = Array.length t.samplers - 1 downto 0 do
    match Slot.peer t.samplers.(i) with
    | Some p -> out := p :: !out
    | None -> ()
  done;
  Array.of_list !out

(* Rebuild the view per Eq. (2):
   rand(alpha*l, pushed) ∪ rand(beta*l, pulled) ∪ rand(gamma*l, samplers). *)
let rebuild_view t =
  let cfg = t.config in
  let l = float_of_int cfg.Brahms_config.l in
  let over_limit =
    match cfg.Brahms_config.push_limit with
    | Some limit -> Int.compare t.pending_push_count limit > 0
    | None -> false
  in
  if over_limit then begin
    t.blocked <- t.blocked + 1;
    false
  end
  else if t.pending_push = [] || not t.got_pull_reply then
    (* Original Brahms only rebuilds when the round yielded both pushed
       and pulled identifiers; otherwise the previous view persists.
       This gating is part of Brahms's resilience: the push channel is
       honest-dominated (Byzantine pushes are what the deactivatable
       limit counts), so a round fed only by pull replies cannot replace
       the view. *)
    false
  else begin
    let pushed = View_ops.distinct (Array.of_list t.pending_push) in
    let pulled = View_ops.distinct (Array.of_list t.pending_pull) in
    let sampled = View_ops.distinct (sampler_outputs t) in
    let take frac arr =
      let k = int_of_float (Float.round (frac *. l)) in
      View_ops.random_subset t.rng ~k arr
    in
    let candidates =
      Array.concat
        [
          take cfg.Brahms_config.alpha pushed;
          take cfg.Brahms_config.beta pulled;
          take cfg.Brahms_config.gamma sampled;
        ]
    in
    if Array.length candidates > 0 then begin
      t.view <- candidates;
      true
    end
    else false
  end

let on_round t =
  ignore (rebuild_view t);
  t.pending_push <- [];
  t.pending_push_count <- 0;
  t.pending_pull <- [];
  t.got_pull_reply <- false;
  for _ = 1 to t.config.Brahms_config.pushes_per_round do
    match View_ops.random_member t.rng t.view with
    | Some p -> t.send ~dst:p (Message.Push_id t.id)
    | None -> ()
  done;
  for _ = 1 to t.config.Brahms_config.pulls_per_round do
    match View_ops.random_member t.rng t.view with
    | Some q -> t.send ~dst:q Message.Pull_request
    | None -> ()
  done

let on_message t ~from msg =
  match msg with
  | Message.Pull_request -> t.send ~dst:from (Message.Pull_reply t.view)
  | Message.Push_id id ->
      t.pending_push <- id :: t.pending_push;
      t.pending_push_count <- t.pending_push_count + 1;
      feed_samplers t [ id ]
  | Message.Push ids ->
      (* Brahms pushes carry exactly the sender's identifier (§4.3: "limit
         pushed IDs to a peer's own ID").  A multi-identifier push — the
         generic adversary payload — is therefore parsed per protocol
         syntax as a single push from its sender; the extra payload is
         ignored. *)
      ignore ids;
      t.pending_push <- from :: t.pending_push;
      t.pending_push_count <- t.pending_push_count + 1;
      feed_samplers t [ from ]
  | Message.Pull_reply ids ->
      t.pending_pull <- List.rev_append (Array.to_list ids) t.pending_pull;
      t.got_pull_reply <- true;
      feed_samplers t (Array.to_list ids)

let sample_tick t =
  let l = Array.length t.samplers in
  let samples = ref [] in
  for _ = 1 to t.config.Brahms_config.k do
    let i = t.next_reset in
    t.next_reset <- (t.next_reset + 1) mod l;
    (match Slot.peer t.samplers.(i) with
    | Some p ->
        samples := p :: !samples;
        t.emitted <- t.emitted + 1
    | None -> ());
    Slot.reset t.config.Brahms_config.backend t.rng t.samplers.(i)
  done;
  List.rev !samples

let view t = t.view
let blocked_rounds t = t.blocked

let sampler ?config () : Rps.maker =
 fun ~id ~bootstrap ~rng ~send ->
  let t = create ?config ~id ~bootstrap ~rng ~send () in
  {
    Rps.protocol = "brahms";
    node = id;
    on_message = (fun ~from msg -> on_message t ~from msg);
    on_round = (fun () -> on_round t);
    sample_tick = (fun () -> sample_tick t);
    current_view = (fun () -> view t);
  }
