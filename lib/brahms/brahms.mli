(** The Brahms Byzantine-resilient membership sampler (Bortnikov et al.,
    2009), as configured by the Basalt paper's evaluation (§2.2, §4.3).

    Brahms maintains two structures: a gossip view 𝒱 rebuilt each round
    from push/pull exchanges and re-injected sampler outputs (Eq. (2)),
    and a vector 𝒮 of min-wise samplers fed with every identifier that
    passes through the view exchanges.  Unlike Basalt, the chaotic search
    (the samplers) gives only limited feedback to the gossip view — the
    separation the paper identifies as Brahms's weakness.

    Two modifications from the original algorithm, both prescribed by the
    Basalt paper's evaluation so the protocols are comparable:
    - {e multi-shot extension}: every [k/rho] time units, [k] samplers are
      emitted and reset in round-robin order (the analogue of Alg. 1
      lines 14–18, with line 18 replaced by [S_p[i].init()]);
    - {e blocking deactivated} by default ([push_limit = None]).

    Per the communication budget of §4.3, each round sends one [PUSH-ID]
    (Brahms pushes only its own identifier) and one [PULL] request. *)

type t
(** One node's Brahms state. *)

val create :
  ?config:Brahms_config.t ->
  ?obs:Basalt_obs.Obs.t ->
  id:Basalt_proto.Node_id.t ->
  bootstrap:Basalt_proto.Node_id.t array ->
  rng:Basalt_prng.Rng.t ->
  send:Basalt_proto.Rps.send ->
  unit ->
  t
(** [obs] (default disabled) records counters [brahms.rank_evals],
    [brahms.rounds], [brahms.pulls_sent], [brahms.pushes_sent],
    [brahms.samples_emitted], [brahms.slot_resets] and
    [brahms.view_rebuilds], and meters outgoing messages through
    {!Basalt_codec.Metered.send}; instruments aggregate across all nodes
    sharing the sink.

    [create ~id ~bootstrap ~rng ~send ()] initialises the view with (up
    to) [l] bootstrap peers and feeds the bootstrap list to the
    samplers. *)

val config : t -> Brahms_config.t
(** [config t] is the node's configuration. *)

val id : t -> Basalt_proto.Node_id.t
(** [id t] is the node's own identifier. *)

val on_round : t -> unit
(** [on_round t] closes the previous round — rebuilding 𝒱 from the
    pushed ids, pulled ids and sampler outputs per Eq. (2), unless the
    blocking mechanism vetoes it — then sends this round's [PUSH-ID] and
    [PULL]. *)

val on_message : t -> from:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> unit
(** [on_message t ~from msg] accumulates pushed/pulled identifiers for the
    current round and feeds them to the samplers. *)

val sample_tick : t -> Basalt_proto.Node_id.t list
(** [sample_tick t] emits and resets the next [k] samplers (multi-shot
    extension). *)

val view : t -> Basalt_proto.Node_id.t array
(** [view t] is the current gossip view 𝒱. *)

val sampler_outputs : t -> Basalt_proto.Node_id.t array
(** [sampler_outputs t] is the current contents of the sampler vector 𝒮
    (non-empty samplers only) — what the service would return as samples. *)

val blocked_rounds : t -> int
(** [blocked_rounds t] counts rounds where the push limit vetoed the view
    update (always 0 when blocking is deactivated). *)

val sampler :
  ?config:Brahms_config.t ->
  ?obs:Basalt_obs.Obs.t ->
  unit ->
  Basalt_proto.Rps.maker
(** [sampler ?config ()] packages the protocol for the simulation runner
    ([obs] is threaded to {!create}).
    The service's [current_view] is 𝒱 and its emitted samples come from
    the sampler vector 𝒮, matching the paper's measurement methodology. *)
