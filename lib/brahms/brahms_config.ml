type t = {
  l : int;
  alpha : float;
  beta : float;
  gamma : float;
  push_limit : int option;
  tau : float;
  rho : float;
  k : int;
  backend : Basalt_hashing.Rank.backend;
  exclude_self : bool;
  pushes_per_round : int;
  pulls_per_round : int;
}

let third = 1.0 /. 3.0

let make ?(l = 160) ?(alpha = third) ?(beta = third) ?(gamma = third)
    ?push_limit ?(tau = 1.0) ?(rho = 1.0) ?k
    ?(backend = Basalt_hashing.Rank.Cheap) ?(exclude_self = true)
    ?(pushes_per_round = 1) ?(pulls_per_round = 1) () =
  let k = Option.value k ~default:(max 1 (l / 2)) in
  if l <= 0 then invalid_arg "Brahms_config.make: l must be positive";
  if alpha < 0.0 || beta < 0.0 || gamma < 0.0 then
    invalid_arg "Brahms_config.make: negative weight";
  if Float.abs (alpha +. beta +. gamma -. 1.0) > 1e-9 then
    invalid_arg "Brahms_config.make: weights must sum to 1";
  if k < 1 || Int.compare k l > 0 then
    invalid_arg "Brahms_config.make: k must be in [1, l]";
  if tau <= 0.0 then invalid_arg "Brahms_config.make: tau must be positive";
  if rho <= 0.0 then invalid_arg "Brahms_config.make: rho must be positive";
  if pushes_per_round < 0 || pulls_per_round < 0 then
    invalid_arg "Brahms_config.make: negative per-round message count";
  {
    l;
    alpha;
    beta;
    gamma;
    push_limit;
    tau;
    rho;
    k;
    backend;
    exclude_self;
    pushes_per_round;
    pulls_per_round;
  }

let default = make ()
let refresh_interval c = float_of_int c.k /. c.rho

let pp ppf c =
  Format.fprintf ppf
    "brahms{l=%d; alpha=%g; beta=%g; gamma=%g; blocking=%s; rho=%g; k=%d}" c.l
    c.alpha c.beta c.gamma
    (match c.push_limit with None -> "off" | Some n -> string_of_int n)
    c.rho c.k
