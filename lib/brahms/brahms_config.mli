(** Brahms algorithm parameters (paper §2.2 and §4.3).

    - [l]: size of both the gossip view 𝒱 and the sampler vector 𝒮 (the
      evaluation sets [l = v], Basalt's view size);
    - [alpha], [beta], [gamma]: relative contributions of pushed ids,
      pulled ids, and sampler outputs when rebuilding the view (Eq. (2));
      the evaluation uses 1/3 each;
    - [push_limit]: Brahms's blocking mechanism — if more than this many
      push messages arrive in one round, the view update is skipped.  The
      paper's evaluation {e deactivates} it (§4.3) because varying the
      attack force [F] pushes Brahms beyond its design envelope and the
      blocking would stall the protocol entirely; [None] (default) means
      deactivated;
    - [k], [rho], [tau]: multi-shot extension and round pacing, matching
      Basalt's parameters so the two are comparable. *)

type t = private {
  l : int;
  alpha : float;
  beta : float;
  gamma : float;
  push_limit : int option;
  tau : float;
  rho : float;
  k : int;
  backend : Basalt_hashing.Rank.backend;
  exclude_self : bool;
  pushes_per_round : int;
      (** How many [PUSH-ID] messages a node sends per round.  The Basalt
          paper's communication budget uses 1; the original Brahms sends
          [alpha * l]. *)
  pulls_per_round : int;  (** Pull requests per round (budget: 1). *)
}

val make :
  ?l:int ->
  ?alpha:float ->
  ?beta:float ->
  ?gamma:float ->
  ?push_limit:int ->
  ?tau:float ->
  ?rho:float ->
  ?k:int ->
  ?backend:Basalt_hashing.Rank.backend ->
  ?exclude_self:bool ->
  ?pushes_per_round:int ->
  ?pulls_per_round:int ->
  unit ->
  t
(** [make ()] is the evaluation's configuration: [l = 160],
    [alpha = beta = gamma = 1/3], blocking deactivated, [tau = 1],
    [rho = 1], [k = l/2].
    @raise Invalid_argument if [l <= 0], the weights are negative or do
    not sum to 1 (within 1e-9), [k] is not in [\[1, l\]], or [tau]/[rho]
    are not positive. *)

val default : t
(** [default] is [make ()]. *)

val refresh_interval : t -> float
(** [refresh_interval c] is [k / rho]. *)

val pp : Format.formatter -> t -> unit
(** Formatter for configurations. *)
