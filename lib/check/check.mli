(** Deterministic property-based testing with integrated shrinking
    (DESIGN.md §9).

    A from-scratch property layer built directly on {!Basalt_prng.Rng} so
    that machine-generated test cases obey the repository's determinism
    policy: every property owns a pinned generator stream derived from
    [(suite, property, seed)], so a failure reported by one run is
    replayed exactly — same case, same shrink path, same minimal
    counterexample — by any later run with the same seed.

    Generators ({!Gen}) carry their shrinker {e inside} the generated
    value (a lazily-evaluated rose tree, in the Hedgehog style), so
    shrinking respects every invariant established through {!Gen.map} /
    {!Gen.bind} and never produces values the generator could not have
    produced.  The runner shrinks greedily: it repeatedly descends into
    the first failing shrink candidate until none fails (or the shrink
    budget runs out), which converges to a locally minimal
    counterexample.

    Case budgets: a property runs [count] cases (default
    {!default_count}), raised globally by the [BASALT_CHECK_COUNT]
    environment variable (the effective budget is the {e maximum} of the
    two, so pinned fuzzing budgets never shrink), and divided by 10 —
    with a floor of 10 — when the test binary is invoked with Alcotest's
    [-q]/[--quick-tests] flag.  The base seed comes from
    [BASALT_CHECK_SEED] (decimal or [0x]-hex; default
    {!default_seed_value}).  When [BASALT_CHECK_DIR] names a directory,
    every failure additionally writes its shrunk counterexample report
    there (one file per property), which CI uploads as artifacts. *)

(** Composable generators with integrated shrinking. *)
module Gen : sig
  type 'a t
  (** A generator of ['a] values paired with their shrink candidates. *)

  exception Generation_failure of string
  (** Raised when a generator cannot produce a value (e.g.
      {!such_that} exhausting its retry budget). *)

  val generate : 'a t -> rng:Basalt_prng.Rng.t -> 'a
  (** [generate g ~rng] draws one value (discarding the shrink tree).
      Deterministic in [rng]'s state. *)

  val return : 'a -> 'a t
  (** [return x] always generates [x]; no shrinks. *)

  val map : ('a -> 'b) -> 'a t -> 'b t
  (** [map f g] applies [f] to generated values and to every shrink
      candidate. *)

  val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
  (** [map2 f a b] combines two generators; both sides shrink
      independently. *)

  val bind : 'a t -> ('a -> 'b t) -> 'b t
  (** [bind g f] generates [x] from [g], then from [f x].  Shrinking
      first shrinks [x] (re-running [f] on each candidate with a copy of
      the inner random stream, so shrinks stay deterministic), then the
      inner value. *)

  val pair : 'a t -> 'b t -> ('a * 'b) t
  (** [pair a b] generates both components; each shrinks independently. *)

  val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
  (** Three-way {!pair}. *)

  val int_range : int -> int -> int t
  (** [int_range lo hi] is uniform on [\[lo, hi\]]; shrinks towards the
      point of the range closest to 0.  @raise Invalid_argument if
      [hi < lo]. *)

  val nat : max:int -> int t
  (** [nat ~max] is [int_range 0 max]. *)

  val bool : bool t
  (** Fair coin; [true] shrinks to [false]. *)

  val float_range : float -> float -> float t
  (** [float_range lo hi] is uniform on [\[lo, hi)]; shrinks towards
      [lo] by halving the distance. *)

  val oneof : 'a t list -> 'a t
  (** [oneof gs] picks one generator uniformly; the choice shrinks
      towards the head of the list.  @raise Invalid_argument on []. *)

  val oneofl : 'a list -> 'a t
  (** [oneofl xs] picks one value uniformly; shrinks towards the head. *)

  val frequency : (int * 'a t) list -> 'a t
  (** [frequency ws] picks a generator with probability proportional to
      its weight; the choice shrinks towards the first entry.
      @raise Invalid_argument on an empty list or non-positive total. *)

  val such_that : ?retries:int -> ('a -> bool) -> 'a t -> 'a t
  (** [such_that p g] regenerates until [p] holds ([retries] attempts,
      default 100) and prunes shrink candidates violating [p].
      @raise Generation_failure when the retry budget is exhausted. *)

  val list : ?min_len:int -> max_len:int -> 'a t -> 'a list t
  (** [list ~min_len ~max_len g] generates a list whose length is
      uniform on [\[min_len, max_len\]] ([min_len] defaults to 0).
      Shrinks by dropping chunks and single elements (never below
      [min_len]) and by shrinking the elements themselves. *)

  val list_repeat : int -> 'a t -> 'a list t
  (** [list_repeat n g] generates exactly [n] elements; only the
      elements shrink, never the length. *)

  val array : ?min_len:int -> max_len:int -> 'a t -> 'a array t
  (** {!list} producing an array. *)

  val bytes : ?min_len:int -> max_len:int -> unit -> bytes t
  (** [bytes ~max_len ()] generates a uniformly random byte buffer whose
      length is uniform on [\[min_len, max_len\]]; shrinks like {!list}
      with byte values shrinking towards 0. *)
end

(** Generators for the repository's domain types, shared by the test
    suites (wire fuzzing, protocol differential tests, engine schedule
    properties). *)
module Gens : sig
  val node_id : max:int -> Basalt_proto.Node_id.t Gen.t
  (** [node_id ~max] generates identifiers in [\[0, max\]], shrinking
      towards 0. *)

  val view : ?min_len:int -> max_len:int -> max_id:int -> unit -> Basalt_proto.Node_id.t array Gen.t
  (** [view ~max_len ~max_id ()] generates an identifier array
      (duplicates allowed, like real views). *)

  val mid : ?max_id:int -> unit -> Basalt_proto.Message.mid Gen.t
  (** [mid ()] generates a broadcast message identifier with a full-range
      u32 sequence number and an origin of value at most [max_id]
      (default [2^48 - 1]). *)

  val message : ?max_ids:int -> ?max_id:int -> unit -> Basalt_proto.Message.t Gen.t
  (** [message ()] generates any of the nine wire message kinds
      (sampler frames and lib/gossip broadcast frames); payload arrays
      hold up to [max_ids] (default 40) identifiers — or message
      identifiers — of value at most [max_id] (default [2^48 - 1],
      exercising the full on-wire width), and [Gossip] payloads up to
      64 opaque bytes. *)

  val latency : Basalt_engine.Link.Latency.t Gen.t
  (** Any latency model with small parameters ([Uniform] bounds are
      generated ordered). *)

  val loss : Basalt_engine.Link.Loss.t Gen.t
  (** Reliable links or Bernoulli loss with probability in [\[0, 0.9\]]. *)

  type schedule = {
    nodes : int;  (** Number of node slots, [>= 1]. *)
    registered : bool list;  (** Per-node: does it get a handler? *)
    sends : (float * int * int) list;
        (** [(time, src, dst)] messages submitted by timers. *)
    horizon : float;  (** Runs past every send and every delivery. *)
  }
  (** A randomized engine workload for schedule-invariant properties. *)

  val schedule : max_nodes:int -> max_sends:int -> schedule Gen.t
  (** [schedule ~max_nodes ~max_sends] generates a workload with send
      times in [\[0, 100)] and a horizon safely beyond them. *)

  val obs_event : ?max_fields:int -> unit -> Basalt_obs.Obs.event Gen.t
  (** [obs_event ()] generates trace events for JSON round-trip
      properties: full-byte-range names, keys and string values (kept
      off the reserved ["t"]/["ev"] keys), and times/float fields that
      are dyadic rationals so the fixed [%.12g] rendering is lossless
      and parsed events compare structurally equal to their source.
      Up to [max_fields] (default 8) fields per event. *)
end

(** Counterexample printers for failure reports. *)
module Print : sig
  val int : int -> string
  (** Decimal rendering. *)

  val float : float -> string
  (** Fixed [%.17g] rendering (round-trips the float). *)

  val bool : bool -> string
  (** ["true"] / ["false"]. *)

  val string : string -> string
  (** OCaml-escaped, quoted. *)

  val bytes_hex : bytes -> string
  (** Length plus hex dump, e.g. ["7 bytes: b501020000..."] — the
      format the wire-corpus file uses. *)

  val list : ('a -> string) -> 'a list -> string
  (** ["[a; b; c]"]. *)

  val array : ('a -> string) -> 'a array -> string
  (** ["[|a; b; c|]"]. *)

  val pair : ('a -> string) -> ('b -> string) -> 'a * 'b -> string
  (** ["(a, b)"]. *)

  val triple :
    ('a -> string) -> ('b -> string) -> ('c -> string) -> 'a * 'b * 'c -> string
  (** ["(a, b, c)"]. *)
end

type t
(** A named property: a generator plus a law over generated values. *)

val prop : ?count:int -> ?print:('a -> string) -> name:string -> 'a Gen.t -> ('a -> bool) -> t
(** [prop ~name gen law] is the property "for all [x] from [gen],
    [law x] holds".  A law failing by returning [false] or by raising
    (e.g. an [Alcotest] check) triggers shrinking.  [count] (default
    {!default_count}) is the case budget before environment and [-q]
    adjustments; [print] renders counterexamples (default: a
    placeholder). *)

val name : t -> string
(** [name p] is the property's name. *)

type failure = {
  suite : string;  (** Suite the property ran under. *)
  property : string;  (** Property name. *)
  seed : int;  (** Base seed — the replay key. *)
  case : int;  (** 0-based index of the failing case. *)
  shrink_steps : int;  (** Successful shrink descents. *)
  counterexample : string;  (** Printed shrunk counterexample. *)
  reason : string;  (** ["returned false"] or the exception text. *)
}
(** Everything needed to reproduce and understand a failed property. *)

type outcome = Pass of int | Fail of failure
(** [Pass n] ran [n] cases; [Fail f] stopped at a counterexample. *)

val run : ?seed:int -> suite:string -> t -> outcome
(** [run ~suite p] executes the property on its pinned stream.  [seed]
    defaults to {!default_seed}.  The per-property stream is derived
    from [(suite, name p, seed)], so re-running with the same triple
    replays the same cases and the same shrink path.  On failure, the
    report is also written to [BASALT_CHECK_DIR] when that variable
    names a directory. *)

val failure_report : failure -> string
(** [failure_report f] is the multi-line human-readable report,
    including the replay instructions. *)

val default_count : int
(** Case budget when neither [?count] nor [BASALT_CHECK_COUNT] raises
    it (200). *)

val default_seed_value : int
(** The built-in base seed used when [BASALT_CHECK_SEED] is unset. *)

val default_seed : unit -> int
(** [default_seed ()] reads [BASALT_CHECK_SEED] (decimal or [0x]-hex),
    falling back to {!default_seed_value}. *)

val effective_count : int -> int
(** [effective_count count] is the budget {!run} will use for a
    property pinned at [count]: [max count BASALT_CHECK_COUNT], divided
    by 10 (floor 10) under Alcotest's [-q]/[--quick-tests]. *)

val to_alcotest : ?speed:Alcotest.speed_level -> suite:string -> t -> unit Alcotest.test_case
(** [to_alcotest ~suite p] wraps the property as an Alcotest case
    (default speed [`Quick], so properties still run — with the reduced
    budget — under [-q]) that fails with {!failure_report} on a
    counterexample. *)

val suite : string -> t list -> string * unit Alcotest.test_case list
(** [suite name props] is an Alcotest suite entry [(name, cases)] with
    every property adapted via {!to_alcotest ~suite:name}. *)
