module Rng = Basalt_prng.Rng

(* ------------------------------------------------------------------ *)
(* Lazily-evaluated rose trees: a generated value plus its shrink
   candidates, ordered most-aggressive first so the greedy runner tries
   big simplifications before small ones. *)

module Tree = struct
  type 'a t = Node of 'a * 'a t Seq.t

  let root (Node (x, _)) = x
  let children (Node (_, cs)) = cs
  let rec map f (Node (x, cs)) = Node (f x, Seq.map (map f) cs)

  let rec filter p (Node (x, cs)) =
    Node
      ( x,
        Seq.filter_map
          (fun c -> if p (root c) then Some (filter p c) else None)
          cs )
end

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

module Gen = struct
  type 'a t = Rng.t -> 'a Tree.t

  exception Generation_failure of string

  let generate g ~rng = Tree.root (g rng)
  let return x : 'a t = fun _rng -> Tree.Node (x, Seq.empty)
  let map f (g : 'a t) : 'b t = fun rng -> Tree.map f (g rng)

  (* --- integers, towards the origin by halving --- *)

  let rec towards_int ~origin x =
    let candidates =
      if x = origin then Seq.empty
      else
        (* x - d, x - d/2, x - d/4, …: the first candidate is the origin
           itself, later ones close in on x. *)
        let rec halve d () =
          if d = 0 then Seq.Nil else Seq.Cons (x - d, halve (d / 2))
        in
        halve (x - origin)
    in
    Tree.Node (x, Seq.map (towards_int ~origin) candidates)

  let int_range lo hi : int t =
    if hi < lo then invalid_arg "Gen.int_range: hi < lo";
    let origin = if lo > 0 then lo else if hi < 0 then hi else 0 in
    let draw =
      if hi - lo + 1 > 0 then fun rng -> Rng.int_in_range rng ~lo ~hi
      else
        (* The span overflows the int (e.g. [min_int, max_int]), so
           rejection-sample a raw 63-bit draw; the range covers more
           than half the int space, so this takes < 2 tries expected. *)
        fun rng ->
        let rec go () =
          let x = Int64.to_int (Rng.int64 rng) in
          if x >= lo && x <= hi then x else go ()
        in
        go ()
    in
    fun rng -> towards_int ~origin (draw rng)

  let nat ~max = int_range 0 max

  let bool : bool t =
   fun rng ->
    if Rng.bool rng then
      Tree.Node (true, Seq.return (Tree.Node (false, Seq.empty)))
    else Tree.Node (false, Seq.empty)

  (* --- floats, towards lo by halving the gap --- *)

  let float_epsilon = 1e-9

  let rec towards_float ~origin x =
    let candidates =
      if Float.abs (x -. origin) <= float_epsilon then Seq.empty
      else
        let rec halve d () =
          if Float.abs d <= float_epsilon then Seq.Nil
          else Seq.Cons (x -. d, halve (d /. 2.))
        in
        halve (x -. origin)
    in
    Tree.Node (x, Seq.map (towards_float ~origin) candidates)

  let float_range lo hi : float t =
    if hi < lo then invalid_arg "Gen.float_range: hi < lo";
    fun rng ->
      if hi <= lo then Tree.Node (lo, Seq.empty)
      else towards_float ~origin:lo (lo +. Rng.float rng (hi -. lo))

  (* --- products: both sides shrink independently --- *)

  let rec tree_pair (Tree.Node (a, as_) as ta) (Tree.Node (b, bs) as tb) =
    Tree.Node
      ( (a, b),
        Seq.append
          (Seq.map (fun a' -> tree_pair a' tb) as_)
          (Seq.map (fun b' -> tree_pair ta b') bs) )

  let pair (ga : 'a t) (gb : 'b t) : ('a * 'b) t =
   fun rng ->
    let ta = ga rng in
    let tb = gb rng in
    tree_pair ta tb

  let map2 f ga gb = map (fun (a, b) -> f a b) (pair ga gb)

  let triple ga gb gc =
    map (fun (a, (b, c)) -> (a, b, c)) (pair ga (pair gb gc))

  (* --- bind: shrink the outer value first, re-running the inner
     generator on a copy of its stream so every candidate is generated
     deterministically; then shrink the inner value. --- *)

  let bind (g : 'a t) (f : 'a -> 'b t) : 'b t =
   fun rng ->
    let inner_rng = Rng.split rng in
    let outer = g rng in
    let rec expand (Tree.Node (x, xs)) =
      let (Tree.Node (y, ys)) = f x (Rng.copy inner_rng) in
      Tree.Node (y, Seq.append (Seq.map expand xs) ys)
    in
    expand outer

  (* --- choice: the alternative index shrinks towards the head --- *)

  let oneof (gs : 'a t list) : 'a t =
    match gs with
    | [] -> invalid_arg "Gen.oneof: empty list"
    | [ g ] -> g
    | gs ->
        let arr = Array.of_list gs in
        bind (int_range 0 (Array.length arr - 1)) (fun i -> arr.(i))

  let oneofl xs =
    match xs with
    | [] -> invalid_arg "Gen.oneofl: empty list"
    | xs ->
        let arr = Array.of_list xs in
        map (fun i -> arr.(i)) (int_range 0 (Array.length arr - 1))

  let frequency (ws : (int * 'a t) list) : 'a t =
    if ws = [] then invalid_arg "Gen.frequency: empty list";
    let total = List.fold_left (fun acc (w, _) -> acc + w) 0 ws in
    if total <= 0 then invalid_arg "Gen.frequency: non-positive total weight";
    (* Map a ticket to an alternative index, so index shrinking still
       moves towards the first (usually simplest) alternative. *)
    let arr = Array.of_list ws in
    let pick ticket =
      let rec go i remaining =
        let w, g = arr.(i) in
        if remaining < w || i = Array.length arr - 1 then g
        else go (i + 1) (remaining - w)
      in
      go 0 ticket
    in
    bind (int_range 0 (total - 1)) pick

  let such_that ?(retries = 100) p (g : 'a t) : 'a t =
   fun rng ->
    let rec attempt n =
      if n = 0 then
        raise
          (Generation_failure
             (Printf.sprintf "Gen.such_that: no value after %d retries" retries))
      else
        let t = g rng in
        if p (Tree.root t) then Tree.filter p t else attempt (n - 1)
    in
    attempt retries

  (* --- lists: shrink by dropping chunks, then single elements, then
     by shrinking elements in place --- *)

  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl

  let rec drop n = function
    | [] -> []
    | l when n <= 0 -> l
    | _ :: tl -> drop (n - 1) tl

  let remove_at i l = take i l @ drop (i + 1) l

  let replace_at i c l = take i l @ (c :: drop (i + 1) l)

  let list_candidates ~min_len ts =
    let n = List.length ts in
    let drops =
      if n <= min_len then Seq.empty
      else
        let halves =
          (* Dropping half the list first makes shrinking long lists
             logarithmic instead of linear. *)
          if n >= 4 && n - (n / 2) >= min_len then
            List.to_seq [ take (n / 2) ts; drop (n / 2) ts ]
          else Seq.empty
        in
        Seq.append halves (Seq.init n (fun i -> remove_at i ts))
    in
    let elt_shrinks =
      Seq.concat
        (Seq.init n (fun i ->
             let ti = List.nth ts i in
             Seq.map (fun c -> replace_at i c ts) (Tree.children ti)))
    in
    Seq.append drops elt_shrinks

  let rec list_tree ~min_len ts =
    Tree.Node
      ( List.map Tree.root ts,
        Seq.map (list_tree ~min_len) (list_candidates ~min_len ts) )

  let list ?(min_len = 0) ~max_len (g : 'a t) : 'a list t =
    if min_len < 0 || max_len < min_len then
      invalid_arg "Gen.list: need 0 <= min_len <= max_len";
    fun rng ->
      let n = Rng.int_in_range rng ~lo:min_len ~hi:max_len in
      list_tree ~min_len (List.init n (fun _ -> g rng))

  let list_repeat n (g : 'a t) : 'a list t =
    if n < 0 then invalid_arg "Gen.list_repeat: negative length";
    fun rng -> list_tree ~min_len:n (List.init n (fun _ -> g rng))

  let array ?min_len ~max_len g =
    map Array.of_list (list ?min_len ~max_len g)

  let bytes ?min_len ~max_len () : bytes t =
    map
      (fun bs ->
        let b = Bytes.create (List.length bs) in
        List.iteri (fun i v -> Bytes.set_uint8 b i v) bs;
        b)
      (list ?min_len ~max_len (int_range 0 255))
end

(* ------------------------------------------------------------------ *)
(* Domain generators                                                   *)

module Gens = struct
  module Node_id = Basalt_proto.Node_id
  module Message = Basalt_proto.Message
  module Link = Basalt_engine.Link

  let node_id ~max = Gen.map Node_id.of_int (Gen.nat ~max)

  let view ?min_len ~max_len ~max_id () =
    Gen.array ?min_len ~max_len (node_id ~max:max_id)

  let mid ?(max_id = (1 lsl 48) - 1) () =
    Gen.map2
      (fun origin seqno -> { Message.origin; seqno })
      (node_id ~max:max_id)
      (Gen.nat ~max:0xFFFF_FFFF)

  let message ?(max_ids = 40) ?(max_id = (1 lsl 48) - 1) () =
    let ids = view ~max_len:max_ids ~max_id () in
    let mids = Gen.array ~max_len:max_ids (mid ~max_id ()) in
    Gen.oneof
      [
        Gen.return Message.Pull_request;
        Gen.map (fun v -> Message.Pull_reply v) ids;
        Gen.map (fun v -> Message.Push v) ids;
        Gen.map (fun i -> Message.Push_id i) (node_id ~max:max_id);
        Gen.map2
          (fun (m, hops) payload -> Message.Gossip { mid = m; hops; payload })
          (Gen.pair (mid ~max_id ()) (Gen.nat ~max:0xFFFF))
          (Gen.bytes ~max_len:64 ());
        Gen.map (fun ms -> Message.Ihave ms) mids;
        Gen.map (fun ms -> Message.Iwant ms) mids;
        Gen.return Message.Graft;
        Gen.return Message.Prune;
      ]

  let latency =
    Gen.oneof
      [
        Gen.return Link.Latency.Zero;
        Gen.map (fun d -> Link.Latency.Constant d) (Gen.float_range 0. 5.);
        Gen.map2
          (fun a b ->
            let lo = Float.min a b and hi = Float.max a b in
            Link.Latency.Uniform { lo; hi })
          (Gen.float_range 0. 5.) (Gen.float_range 0. 5.);
      ]

  let loss =
    Gen.oneof
      [
        Gen.return Link.Loss.None;
        Gen.map (fun p -> Link.Loss.Bernoulli p) (Gen.float_range 0. 0.9);
      ]

  type schedule = {
    nodes : int;
    registered : bool list;
    sends : (float * int * int) list;
    horizon : float;
  }

  let schedule ~max_nodes ~max_sends =
    Gen.bind (Gen.int_range 1 max_nodes) (fun nodes ->
        let send =
          Gen.triple (Gen.float_range 0. 100.)
            (Gen.nat ~max:(nodes - 1))
            (Gen.nat ~max:(nodes - 1))
        in
        Gen.map2
          (fun registered sends ->
            { nodes; registered; sends; horizon = 10_000. })
          (Gen.list_repeat nodes Gen.bool)
          (Gen.list ~max_len:max_sends send))

  (* --- trace events --- *)

  module Obs = Basalt_obs.Obs

  (* Dyadic rationals (2m+1) / 2^(e+1): at most 12 significant decimal
     digits, so the registry's fixed %.12g rendering is lossless and
     JSON round-trips compare with (=). *)
  let dyadic =
    Gen.map2
      (fun m e -> (float_of_int m +. 0.5) /. float_of_int (1 lsl e))
      (Gen.nat ~max:4096) (Gen.nat ~max:8)

  let obs_string =
    (* Full byte range: escape_json covers control chars and quotes. *)
    Gen.map
      (fun codes ->
        String.init (List.length codes) (fun i -> Char.chr (List.nth codes i)))
      (Gen.list ~max_len:12 (Gen.int_range 0 255))

  let obs_value =
    Gen.oneof
      [
        Gen.map (fun n -> Obs.Int n) (Gen.int_range (-100_000) 100_000);
        Gen.map (fun x -> Obs.Float x) dyadic;
        Gen.map (fun s -> Obs.Str s) obs_string;
      ]

  let obs_event ?(max_fields = 8) () =
    let field =
      Gen.pair
        (* "k" prefix keeps generated keys off the reserved "t"/"ev". *)
        (Gen.map (fun s -> "k" ^ s) obs_string)
        obs_value
    in
    Gen.map2
      (fun (time, name) fields -> { Obs.time; name; fields })
      (Gen.pair dyadic obs_string)
      (Gen.list ~max_len:max_fields field)
end

(* ------------------------------------------------------------------ *)
(* Printers                                                            *)

module Print = struct
  let int = string_of_int
  let float x = Printf.sprintf "%.17g" x
  let bool = string_of_bool
  let string s = Printf.sprintf "%S" s

  let bytes_hex b =
    let buf = Buffer.create ((2 * Bytes.length b) + 16) in
    Buffer.add_string buf (Printf.sprintf "%d bytes: " (Bytes.length b));
    Bytes.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
      b;
    Buffer.contents buf

  let list pe l = "[" ^ String.concat "; " (List.map pe l) ^ "]"

  let array pe a =
    "[|" ^ String.concat "; " (Array.to_list (Array.map pe a)) ^ "|]"

  let pair pa pb (a, b) = Printf.sprintf "(%s, %s)" (pa a) (pb b)

  let triple pa pb pc (a, b, c) =
    Printf.sprintf "(%s, %s, %s)" (pa a) (pb b) (pc c)
end

(* ------------------------------------------------------------------ *)
(* Properties and the runner                                           *)

type 'a cell = {
  prop_name : string;
  gen : 'a Gen.t;
  law : 'a -> bool;
  print : 'a -> string;
  count : int;
}

type t = Prop : 'a cell -> t

let default_count = 200
let default_seed_value = 0xBA5A17

let prop ?(count = default_count) ?print ~name gen law =
  if count <= 0 then invalid_arg "Check.prop: count must be positive";
  let print =
    match print with
    | Some p -> p
    | None -> fun _ -> "<counterexample not printable; pass ~print>"
  in
  Prop { prop_name = name; gen; law; print; count }

let name (Prop c) = c.prop_name

type failure = {
  suite : string;
  property : string;
  seed : int;
  case : int;
  shrink_steps : int;
  counterexample : string;
  reason : string;
}

type outcome = Pass of int | Fail of failure

let parse_int_env var =
  match Sys.getenv_opt var with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n -> Some n
    | None -> None)

let default_seed () =
  match parse_int_env "BASALT_CHECK_SEED" with
  | Some s -> s
  | None -> default_seed_value

(* Alcotest's -q / --quick-tests flag reaches us through the test
   binary's argv; a property stays `Quick (so it still runs) but cuts
   its case budget by 10x. *)
let quick_mode =
  lazy
    (Array.exists
       (fun a -> String.equal a "-q" || String.equal a "--quick-tests")
       Sys.argv)

let effective_count count =
  let count =
    match parse_int_env "BASALT_CHECK_COUNT" with
    | Some n when n > count -> n
    | _ -> count
  in
  if Lazy.force quick_mode then max 10 (count / 10) else count

(* FNV-1a over the (suite, property) pair, mixed with the base seed:
   every property owns an independent pinned stream, and renaming a
   property or moving it between suites re-rolls its cases instead of
   silently shifting its neighbours'. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  String.fold_left
    (fun h c -> Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime)
    0xcbf29ce484222325L s

let derive_seed ~seed ~suite ~prop_name =
  let h = fnv1a64 (suite ^ "/" ^ prop_name) in
  let mixed = Basalt_prng.Splitmix64.mix (Int64.logxor h (Int64.of_int seed)) in
  Int64.to_int mixed land max_int

let failure_report f =
  String.concat "\n"
    [
      "property failed";
      Printf.sprintf "  suite:          %s" f.suite;
      Printf.sprintf "  property:       %s" f.property;
      Printf.sprintf "  seed:           %d" f.seed;
      Printf.sprintf "  failing case:   #%d (after %d shrink steps)" f.case
        f.shrink_steps;
      Printf.sprintf "  reason:         %s" f.reason;
      Printf.sprintf "  counterexample: %s" f.counterexample;
      Printf.sprintf "  replay:         BASALT_CHECK_SEED=%d <this test binary>"
        f.seed;
    ]

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    s

(* CI fuzz runs set BASALT_CHECK_DIR to collect shrunk counterexamples
   as build artifacts; outside CI the variable is unset and this is a
   no-op. *)
let dump_failure f =
  match Sys.getenv_opt "BASALT_CHECK_DIR" with
  | None -> ()
  | Some dir when Sys.file_exists dir && Sys.is_directory dir ->
      let file =
        Printf.sprintf "%s.%s.seed%d.txt" (slug f.suite) (slug f.property)
          f.seed
      in
      let oc = open_out (Filename.concat dir file) in
      output_string oc (failure_report f);
      output_char oc '\n';
      close_out oc
  | Some _ -> ()

let eval law x =
  match law x with
  | true -> Ok ()
  | false -> Error "returned false"
  | exception e -> Error (Printexc.to_string e)

(* Greedy descent: repeatedly move to the first failing shrink
   candidate.  The fuel bounds the total number of law evaluations spent
   shrinking, so pathological shrink spaces cannot hang a test run. *)
let max_shrink_evals = 2000

let shrink law tree reason0 =
  let fuel = ref max_shrink_evals in
  let rec go t reason steps =
    let rec first_failing s =
      if !fuel <= 0 then None
      else
        match s () with
        | Seq.Nil -> None
        | Seq.Cons (c, tl) -> (
            decr fuel;
            match eval law (Tree.root c) with
            | Error r -> Some (c, r)
            | Ok () -> first_failing tl)
    in
    match first_failing (Tree.children t) with
    | Some (c, r) -> go c r (steps + 1)
    | None -> (Tree.root t, reason, steps)
  in
  go tree reason0 0

let run ?seed ~suite (Prop c) =
  let seed = match seed with Some s -> s | None -> default_seed () in
  let rng =
    Rng.create ~seed:(derive_seed ~seed ~suite ~prop_name:c.prop_name)
  in
  let budget = effective_count c.count in
  let fail ~case ~shrink_steps ~counterexample ~reason =
    let f =
      {
        suite;
        property = c.prop_name;
        seed;
        case;
        shrink_steps;
        counterexample;
        reason;
      }
    in
    dump_failure f;
    Fail f
  in
  let rec loop i =
    if i >= budget then Pass budget
    else
      let case_rng = Rng.split rng in
      match c.gen case_rng with
      | exception e ->
          fail ~case:i ~shrink_steps:0 ~counterexample:"<generator raised>"
            ~reason:(Printexc.to_string e)
      | tree -> (
          match eval c.law (Tree.root tree) with
          | Ok () -> loop (i + 1)
          | Error reason0 ->
              let x, reason, steps = shrink c.law tree reason0 in
              fail ~case:i ~shrink_steps:steps ~counterexample:(c.print x)
                ~reason)
  in
  loop 0

let to_alcotest ?(speed = `Quick) ~suite p =
  Alcotest.test_case (name p) speed (fun () ->
      match run ~suite p with
      | Pass _ -> ()
      | Fail f -> Alcotest.fail (failure_report f))

let suite name props = (name, List.map (to_alcotest ~suite:name) props)
