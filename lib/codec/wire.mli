(** Binary wire format for RPS and broadcast messages.

    A compact, versioned datagram encoding used by the real UDP transport
    ({!Basalt_net}):

    {v
      offset  size  field
      0       1     magic        (0xB5)
      1       1     version      (1)
      2       1     tag          (0 pull, 1 pull-reply, 2 push, 3 push-id,
                                  4 gossip, 5 ihave, 6 iwant,
                                  7 graft, 8 prune)
      3       1     reserved     (0)
      4       2     count        (big-endian u16; see below)
      6       ...   payload      (per tag)
    v}

    For the sampler frames (tags 0–3) [count] is the number of
    identifiers and the payload is [count] big-endian u64 identifiers.
    For the broadcast frames of [lib/gossip] (DESIGN.md §11):

    - tag 4 ([Gossip]): [count] is the opaque payload length; the frame
      body is origin (u64), seqno (u32), hops (u16), then [count]
      payload bytes;
    - tags 5/6 ([Ihave]/[Iwant]): [count] message identifiers of
      12 bytes each — origin (u64) then seqno (u32);
    - tags 7/8 ([Graft]/[Prune]): [count] must be 0 and the frame is
      header-only.

    Identifiers are 64-bit on the wire (the UDP transport packs an IPv4
    address and port into one identifier; simulators use small ints).
    With the paper's maximum view of 200 identifiers a datagram is
    [6 + 1600 = 1606] bytes — above the classical 1500-byte MTU only
    because of the wider 8-byte identifiers; at the paper's 4-byte
    identifiers ({!Message.bytes_on_wire}) the budget argument holds.
    Decoding is total: malformed input yields [Error], never an
    exception. *)

type error =
  | Truncated  (** Shorter than its header or declared payload. *)
  | Bad_magic of int
  | Bad_version of int
  | Bad_tag of int
  | Trailing_garbage of int  (** Extra bytes after the payload. *)
  | Id_out_of_range  (** An identifier exceeding the native-int range. *)

val pp_error : Format.formatter -> error -> unit
(** Formatter for decode errors. *)

val encode : Basalt_proto.Message.t -> bytes
(** [encode msg] serialises a message.
    @raise Invalid_argument on a message the format cannot carry: more
    than {!max_ids} identifiers, a broadcast payload longer than
    {!max_payload}, a sequence number outside [\[0, max_seqno\]], or a
    hop count outside [\[0, max_hops\]]. *)

val decode : bytes -> (Basalt_proto.Message.t, error) result
(** [decode b] parses a whole datagram. *)

val decode_sub : bytes -> off:int -> len:int -> (Basalt_proto.Message.t, error) result
(** [decode_sub b ~off ~len] parses a slice (e.g. a [recvfrom] buffer).
    Within a valid slice, decoding is total — the parser never reads past
    [off + len], even for hostile headers (fuzzed by [test_codec]'s
    lib/check properties and the malformed-input corpus).
    @raise Invalid_argument if the slice is not within [b] (checked
    overflow-proof, so hostile [off]/[len] near [max_int] cannot smuggle
    an out-of-bounds read past the guard). *)

val max_ids : int
(** Maximum identifier count a datagram may carry (65535). *)

val max_payload : int
(** Maximum broadcast payload length in bytes (65535). *)

val max_seqno : int
(** Maximum broadcast sequence number (the u32 range, [2^32 - 1]). *)

val max_hops : int
(** Maximum hop count a [Gossip] frame can carry (65535). *)

val encoded_size : Basalt_proto.Message.t -> int
(** [encoded_size msg] is [Bytes.length (encode msg)] without encoding. *)
