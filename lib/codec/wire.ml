module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id

type error =
  | Truncated
  | Bad_magic of int
  | Bad_version of int
  | Bad_tag of int
  | Trailing_garbage of int
  | Id_out_of_range

let pp_error ppf = function
  | Truncated -> Format.fprintf ppf "truncated datagram"
  | Bad_magic m -> Format.fprintf ppf "bad magic %#x" m
  | Bad_version v -> Format.fprintf ppf "unsupported version %d" v
  | Bad_tag t -> Format.fprintf ppf "unknown message tag %d" t
  | Trailing_garbage n -> Format.fprintf ppf "%d trailing bytes" n
  | Id_out_of_range -> Format.fprintf ppf "identifier out of range"

let magic = 0xB5
let version = 1
let header_size = 6
let max_ids = 0xFFFF
let max_payload = 0xFFFF
let max_seqno = 0xFFFF_FFFF
let max_hops = 0xFFFF

(* Per-mid wire footprint in Ihave/Iwant digests: u64 origin + u32 seqno. *)
let mid_size = 12

(* Fixed part of a Gossip frame after the header: u64 origin + u32 seqno
   + u16 hops. *)
let gossip_fixed = 14

let tag_of = function
  | Message.Pull_request -> 0
  | Message.Pull_reply _ -> 1
  | Message.Push _ -> 2
  | Message.Push_id _ -> 3
  | Message.Gossip _ -> 4
  | Message.Ihave _ -> 5
  | Message.Iwant _ -> 6
  | Message.Graft -> 7
  | Message.Prune -> 8

let ids_of = function
  | Message.Pull_request | Message.Graft | Message.Prune -> [||]
  | Message.Pull_reply ids | Message.Push ids -> ids
  | Message.Push_id id -> [| id |]
  | Message.Gossip _ | Message.Ihave _ | Message.Iwant _ -> [||]

let encoded_size msg =
  match msg with
  | Message.Gossip { payload; _ } ->
      header_size + gossip_fixed + Bytes.length payload
  | Message.Ihave mids | Message.Iwant mids ->
      header_size + (mid_size * Array.length mids)
  | _ -> header_size + (8 * Array.length (ids_of msg))

let check_mid (m : Message.mid) =
  if m.Message.seqno < 0 || m.Message.seqno > max_seqno then
    invalid_arg "Wire.encode: sequence number out of u32 range"

let put_mid buf off (m : Message.mid) =
  Bytes.set_int64_be buf off (Int64.of_int (Node_id.to_int m.Message.origin));
  Bytes.set_int32_be buf (off + 8) (Int32.of_int m.Message.seqno)

let encode msg =
  let header ~tag ~count size =
    let buf = Bytes.create size in
    Bytes.set_uint8 buf 0 magic;
    Bytes.set_uint8 buf 1 version;
    Bytes.set_uint8 buf 2 tag;
    Bytes.set_uint8 buf 3 0;
    Bytes.set_uint16_be buf 4 count;
    buf
  in
  match msg with
  | Message.Gossip { mid; hops; payload } ->
      check_mid mid;
      if hops < 0 || hops > max_hops then
        invalid_arg "Wire.encode: hop count out of u16 range";
      let len = Bytes.length payload in
      if len > max_payload then invalid_arg "Wire.encode: payload too large";
      let buf =
        header ~tag:(tag_of msg) ~count:len
          (header_size + gossip_fixed + len)
      in
      put_mid buf header_size mid;
      Bytes.set_uint16_be buf (header_size + 12) hops;
      Bytes.blit payload 0 buf (header_size + gossip_fixed) len;
      buf
  | Message.Ihave mids | Message.Iwant mids ->
      let count = Array.length mids in
      if count > max_ids then invalid_arg "Wire.encode: too many identifiers";
      Array.iter check_mid mids;
      let buf =
        header ~tag:(tag_of msg) ~count (header_size + (mid_size * count))
      in
      Array.iteri
        (fun i m -> put_mid buf (header_size + (mid_size * i)) m)
        mids;
      buf
  | _ ->
      let ids = ids_of msg in
      let count = Array.length ids in
      if count > max_ids then invalid_arg "Wire.encode: too many identifiers";
      let buf = header ~tag:(tag_of msg) ~count (header_size + (8 * count)) in
      Array.iteri
        (fun i id ->
          Bytes.set_int64_be buf
            (header_size + (8 * i))
            (Int64.of_int (Node_id.to_int id)))
        ids;
      buf

let decode_sub buf ~off ~len =
  (* [off > length - len] is the overflow-proof form of
     [off + len > length]: with hostile [off]/[len] near [max_int] the
     addition wraps negative and would let the slice check pass, sending
     out-of-range offsets into the [Bytes] primitives below (found by
     the lib/check fuzzer; pinned in test_codec). *)
  if off < 0 || len < 0 || off > Bytes.length buf - len then
    invalid_arg "Wire.decode_sub: slice out of bounds";
  if len < header_size then Error Truncated
  else begin
    let m = Bytes.get_uint8 buf off in
    if m <> magic then Error (Bad_magic m)
    else begin
      let v = Bytes.get_uint8 buf (off + 1) in
      if v <> version then Error (Bad_version v)
      else begin
        let tag = Bytes.get_uint8 buf (off + 2) in
        let count = Bytes.get_uint16_be buf (off + 4) in
        (* Per-tag payload size implied by the declared count. *)
        let expected =
          header_size
          +
          match tag with
          | 4 -> gossip_fixed + count
          | 5 | 6 -> mid_size * count
          | 7 | 8 -> 0
          | _ -> 8 * count
        in
        if len < expected then Error Truncated
        else if len > expected then Error (Trailing_garbage (len - expected))
        else begin
          let read_id at =
            let raw = Bytes.get_int64_be buf at in
            if raw < 0L || raw > Int64.of_int max_int then Error Id_out_of_range
            else Ok (Node_id.of_int (Int64.to_int raw))
          in
          let read_ids () =
            let out = Array.make count (Node_id.of_int 0) in
            let ok = ref true in
            for i = 0 to count - 1 do
              match read_id (off + header_size + (8 * i)) with
              | Ok id -> out.(i) <- id
              | Error _ -> ok := false
            done;
            if !ok then Ok out else Error Id_out_of_range
          in
          let read_mid at =
            match read_id at with
            | Error e -> Error e
            | Ok origin ->
                let seqno =
                  Int32.to_int (Bytes.get_int32_be buf (at + 8)) land max_seqno
                in
                Ok { Message.origin; seqno }
          in
          let read_mids () =
            let out =
              Array.make count
                { Message.origin = Node_id.of_int 0; seqno = 0 }
            in
            let ok = ref true in
            for i = 0 to count - 1 do
              match read_mid (off + header_size + (mid_size * i)) with
              | Ok m -> out.(i) <- m
              | Error _ -> ok := false
            done;
            if !ok then Ok out else Error Id_out_of_range
          in
          match tag with
          | 0 ->
              if count = 0 then Ok Message.Pull_request
              else Error (Trailing_garbage (8 * count))
          | 1 -> Result.map (fun ids -> Message.Pull_reply ids) (read_ids ())
          | 2 -> Result.map (fun ids -> Message.Push ids) (read_ids ())
          | 3 -> (
              match read_ids () with
              | Ok [| id |] -> Ok (Message.Push_id id)
              | Ok _ -> Error (Bad_tag tag)
              | Error e -> Error e)
          | 4 -> (
              match read_mid (off + header_size) with
              | Error e -> Error e
              | Ok mid ->
                  let hops = Bytes.get_uint16_be buf (off + header_size + 12) in
                  let payload =
                    Bytes.sub buf (off + header_size + gossip_fixed) count
                  in
                  Ok (Message.Gossip { mid; hops; payload }))
          | 5 -> Result.map (fun mids -> Message.Ihave mids) (read_mids ())
          | 6 -> Result.map (fun mids -> Message.Iwant mids) (read_mids ())
          | 7 | 8 ->
              if count <> 0 then Error (Trailing_garbage count)
              else if tag = 7 then Ok Message.Graft
              else Ok Message.Prune
          | t -> Error (Bad_tag t)
        end
      end
    end
  end

let decode buf = decode_sub buf ~off:0 ~len:(Bytes.length buf)
