module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id

type error =
  | Truncated
  | Bad_magic of int
  | Bad_version of int
  | Bad_tag of int
  | Trailing_garbage of int
  | Id_out_of_range

let pp_error ppf = function
  | Truncated -> Format.fprintf ppf "truncated datagram"
  | Bad_magic m -> Format.fprintf ppf "bad magic %#x" m
  | Bad_version v -> Format.fprintf ppf "unsupported version %d" v
  | Bad_tag t -> Format.fprintf ppf "unknown message tag %d" t
  | Trailing_garbage n -> Format.fprintf ppf "%d trailing bytes" n
  | Id_out_of_range -> Format.fprintf ppf "identifier out of range"

let magic = 0xB5
let version = 1
let header_size = 6
let max_ids = 0xFFFF

let tag_of = function
  | Message.Pull_request -> 0
  | Message.Pull_reply _ -> 1
  | Message.Push _ -> 2
  | Message.Push_id _ -> 3

let ids_of = function
  | Message.Pull_request -> [||]
  | Message.Pull_reply ids | Message.Push ids -> ids
  | Message.Push_id id -> [| id |]

let encoded_size msg = header_size + (8 * Array.length (ids_of msg))

let encode msg =
  let ids = ids_of msg in
  let count = Array.length ids in
  if count > max_ids then invalid_arg "Wire.encode: too many identifiers";
  let buf = Bytes.create (header_size + (8 * count)) in
  Bytes.set_uint8 buf 0 magic;
  Bytes.set_uint8 buf 1 version;
  Bytes.set_uint8 buf 2 (tag_of msg);
  Bytes.set_uint8 buf 3 0;
  Bytes.set_uint16_be buf 4 count;
  Array.iteri
    (fun i id ->
      Bytes.set_int64_be buf
        (header_size + (8 * i))
        (Int64.of_int (Node_id.to_int id)))
    ids;
  buf

let decode_sub buf ~off ~len =
  (* [off > length - len] is the overflow-proof form of
     [off + len > length]: with hostile [off]/[len] near [max_int] the
     addition wraps negative and would let the slice check pass, sending
     out-of-range offsets into the [Bytes] primitives below (found by
     the lib/check fuzzer; pinned in test_codec). *)
  if off < 0 || len < 0 || off > Bytes.length buf - len then
    invalid_arg "Wire.decode_sub: slice out of bounds";
  if len < header_size then Error Truncated
  else begin
    let m = Bytes.get_uint8 buf off in
    if m <> magic then Error (Bad_magic m)
    else begin
      let v = Bytes.get_uint8 buf (off + 1) in
      if v <> version then Error (Bad_version v)
      else begin
        let tag = Bytes.get_uint8 buf (off + 2) in
        let count = Bytes.get_uint16_be buf (off + 4) in
        let expected = header_size + (8 * count) in
        if len < expected then Error Truncated
        else if len > expected then Error (Trailing_garbage (len - expected))
        else begin
          let read_ids () =
            let out = Array.make count (Node_id.of_int 0) in
            let ok = ref true in
            for i = 0 to count - 1 do
              let raw = Bytes.get_int64_be buf (off + header_size + (8 * i)) in
              if raw < 0L || raw > Int64.of_int max_int then ok := false
              else out.(i) <- Node_id.of_int (Int64.to_int raw)
            done;
            if !ok then Ok out else Error Id_out_of_range
          in
          match tag with
          | 0 ->
              if count = 0 then Ok Message.Pull_request
              else Error (Trailing_garbage (8 * count))
          | 1 -> Result.map (fun ids -> Message.Pull_reply ids) (read_ids ())
          | 2 -> Result.map (fun ids -> Message.Push ids) (read_ids ())
          | 3 -> (
              match read_ids () with
              | Ok [| id |] -> Ok (Message.Push_id id)
              | Ok _ -> Error (Bad_tag tag)
              | Error e -> Error e)
          | t -> Error (Bad_tag t)
        end
      end
    end
  end

let decode buf = decode_sub buf ~off:0 ~len:(Bytes.length buf)
