(** Byte metering for protocol send paths (DESIGN.md §8).

    Every protocol wraps its outgoing {!Basalt_proto.Rps.send} with
    {!send} so the §4.4 communication cost is a measured artifact: each
    message is costed with {!Wire.encoded_size} — the real wire format,
    not the simulation's abstract 4-byte-id model. *)

val send :
  Basalt_obs.Obs.t ->
  proto:string ->
  Basalt_proto.Rps.send ->
  Basalt_proto.Rps.send
(** [send obs ~proto f] is [f] instrumented with counters
    [<proto>.msgs_sent] and [<proto>.bytes_sent], histogram
    [<proto>.msg_bytes] and gauge [<proto>.max_msg_bytes] (wire-encoded
    datagram bytes).  When [obs] is disabled this is [f] itself — zero
    overhead. *)
