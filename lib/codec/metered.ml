module Obs = Basalt_obs.Obs

let send obs ~proto (send : Basalt_proto.Rps.send) : Basalt_proto.Rps.send =
  if not (Obs.enabled obs) then send
  else begin
    let msgs = Obs.counter obs (proto ^ ".msgs_sent") in
    let bytes = Obs.counter obs (proto ^ ".bytes_sent") in
    let sizes = Obs.histogram obs (proto ^ ".msg_bytes") in
    let largest = Obs.gauge obs (proto ^ ".max_msg_bytes") in
    fun ~dst msg ->
      let sz = Wire.encoded_size msg in
      Obs.Counter.incr msgs;
      Obs.Counter.add bytes sz;
      Obs.Histogram.observe sizes (float_of_int sz);
      Obs.Gauge.set_max largest (float_of_int sz);
      send ~dst msg
  end
