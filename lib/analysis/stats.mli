(** Descriptive statistics for experiment reporting.

    Plain helpers over float arrays plus an online (Welford) accumulator
    used when averaging across seeds or across nodes without materialising
    all values. *)

val mean : float array -> float
(** [mean xs] is the arithmetic mean; [nan] when empty. *)

val variance : float array -> float
(** [variance xs] is the population variance; [nan] when empty. *)

val stddev : float array -> float
(** [stddev xs] is [sqrt (variance xs)]. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the linearly interpolated [p]-quantile
    ([0 <= p <= 1]) of [xs]; [nan] when empty.  [xs] need not be
    sorted. @raise Invalid_argument if [p] is out of range. *)

val median : float array -> float
(** [median xs] is [percentile xs 0.5]. *)

val min_max : float array -> float * float
(** [min_max xs] is [(min, max)]; [(nan, nan)] when empty. *)

val confidence95 : float array -> float
(** [confidence95 xs] is the 95% normal-approximation half-width of the
    mean's confidence interval: [1.96 * stddev / sqrt n]. *)

module Online : sig
  (** Welford's online mean/variance accumulator. *)

  type t

  val create : unit -> t
  (** [create ()] is an accumulator with no observations. *)

  val add : t -> float -> unit
  (** [add t x] folds one observation into the running moments. *)

  val count : t -> int
  (** [count t] is the number of observations so far. *)

  val mean : t -> float
  (** [mean t] is the running mean ([nan] when empty). *)

  val variance : t -> float
  (** [variance t] is the population variance ([nan] when empty). *)

  val stddev : t -> float
  (** [stddev t] is [sqrt (variance t)]. *)

end
