module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module View_ops = Basalt_proto.View_ops
module Rng = Basalt_prng.Rng
module Obs = Basalt_obs.Obs

type config = { l : int; keep_old : bool }

let config ?(l = 160) ?(keep_old = true) () =
  if l <= 0 then invalid_arg "Classic.config: l must be positive";
  { l; keep_old }

type t = {
  config : config;
  id : Node_id.t;
  rng : Rng.t;
  send : Rps.send;
  filter : Node_id.t -> bool;
  mutable view : Node_id.t array;
  mutable received : Node_id.t list;
  mutable got_any : bool;
  (* Run-wide instruments, shared across nodes by name (DESIGN.md §8);
     the label distinguishes the bare shuffler from its {!Sps} wrap. *)
  c_rounds : Obs.Counter.t;
  c_pulls : Obs.Counter.t;
  c_pushes : Obs.Counter.t;
  c_samples : Obs.Counter.t;
  c_view_rebuilds : Obs.Counter.t;
}

let default_config = config ()

let create ?(config = default_config) ?(filter = fun _ -> true)
    ?(obs = Obs.disabled) ?(label = "classic") ~id ~bootstrap ~rng ~send () =
  let rng = Rng.split rng in
  let send = Basalt_codec.Metered.send obs ~proto:label send in
  let candidates =
    Array.of_list
      (List.filter
         (fun p -> (not (Node_id.equal p id)) && filter p)
         (Array.to_list bootstrap))
  in
  {
    config;
    id;
    rng;
    send;
    filter;
    view = View_ops.random_subset rng ~k:config.l candidates;
    received = [];
    got_any = false;
    c_rounds = Obs.counter obs (label ^ ".rounds");
    c_pulls = Obs.counter obs (label ^ ".pulls_sent");
    c_pushes = Obs.counter obs (label ^ ".pushes_sent");
    c_samples = Obs.counter obs (label ^ ".samples_emitted");
    c_view_rebuilds = Obs.counter obs (label ^ ".view_rebuilds");
  }

let id t = t.id
let view t = t.view

let rebuild t =
  if t.got_any then begin
    let pool =
      let received = Array.of_list t.received in
      if t.config.keep_old then Array.append received t.view else received
    in
    let pool =
      View_ops.distinct
        (Array.of_list
           (List.filter
              (fun p -> (not (Node_id.equal p t.id)) && t.filter p)
              (Array.to_list pool)))
    in
    if Array.length pool > 0 then begin
      t.view <- View_ops.random_subset t.rng ~k:t.config.l pool;
      Obs.Counter.incr t.c_view_rebuilds
    end
  end;
  t.received <- [];
  t.got_any <- false

let on_round t =
  Obs.Counter.incr t.c_rounds;
  rebuild t;
  (match View_ops.random_member t.rng t.view with
  | Some p ->
      Obs.Counter.incr t.c_pushes;
      t.send ~dst:p (Message.Push t.view)
  | None -> ());
  match View_ops.random_member t.rng t.view with
  | Some q ->
      Obs.Counter.incr t.c_pulls;
      t.send ~dst:q Message.Pull_request
  | None -> ()

let receive t ids sender =
  t.got_any <- true;
  Array.iter (fun id -> t.received <- id :: t.received) ids;
  match sender with
  | Some s -> t.received <- s :: t.received
  | None -> ()

let on_message t ~from msg =
  match msg with
  | Message.Pull_request -> t.send ~dst:from (Message.Pull_reply t.view)
  | Message.Push ids -> receive t ids (Some from)
  | Message.Pull_reply ids -> receive t ids None
  | Message.Push_id id -> receive t [| id |] (Some from)
  (* Broadcast frames are the lib/gossip layer's; samplers ignore them. *)
  | Message.Gossip _ | Message.Ihave _ | Message.Iwant _ | Message.Graft
  | Message.Prune ->
      ()

let sample t k =
  let rec draw acc remaining =
    if remaining = 0 then acc
    else
      match View_ops.random_member t.rng t.view with
      | Some p ->
          Obs.Counter.incr t.c_samples;
          draw (p :: acc) (remaining - 1)
      | None -> acc
  in
  draw [] k

let evict t p =
  t.view <- Array.of_list (List.filter (fun q -> not (p q)) (Array.to_list t.view))

let sampler ?config ?obs () : Rps.maker =
 fun ~id ~bootstrap ~rng ~send ->
  let t = create ?config ?obs ~id ~bootstrap ~rng ~send () in
  {
    Rps.protocol = "classic";
    node = id;
    on_message = (fun ~from msg -> on_message t ~from msg);
    on_round = (fun () -> on_round t);
    sample_tick = (fun () -> sample t 1);
    current_view = (fun () -> view t);
  }
