(** Classical (non-Byzantine-tolerant) random peer sampling.

    The baseline update rule of paper Eq. (1): each round the node pushes
    its view and pulls a partner's view, then rebuilds its own as a
    uniform selection of [l] identifiers from pushed ∪ pulled ∪ previous
    view.  With no defense, Byzantine flooding quickly saturates the view
    — this is the protocol the eclipse-defense example breaks, and the
    substrate on which {!Sps} adds its statistical filtering. *)

type config = private {
  l : int;  (** View size. *)
  keep_old : bool;
      (** Include the previous view in the selection pool (the common
          variant; [false] gives pure replacement). *)
}

val config : ?l:int -> ?keep_old:bool -> unit -> config
(** [config ()] defaults to [l = 160], [keep_old = true].
    @raise Invalid_argument if [l <= 0]. *)

type t
(** One node's state. *)

val create :
  ?config:config ->
  ?filter:(Basalt_proto.Node_id.t -> bool) ->
  ?obs:Basalt_obs.Obs.t ->
  ?label:string ->
  id:Basalt_proto.Node_id.t ->
  bootstrap:Basalt_proto.Node_id.t array ->
  rng:Basalt_prng.Rng.t ->
  send:Basalt_proto.Rps.send ->
  unit ->
  t
(** [create ~id ~bootstrap ~rng ~send ()] seeds the view with up to [l]
    bootstrap peers.  [filter], if given, rejects identifiers before they
    enter the candidate pool (the hook {!Sps} uses for blacklisting).

    [obs] (default disabled) records counters [<label>.rounds],
    [<label>.pulls_sent], [<label>.pushes_sent],
    [<label>.samples_emitted] and [<label>.view_rebuilds], and meters
    outgoing messages through {!Basalt_codec.Metered.send}; [label]
    (default ["classic"]) prefixes the instrument names so a wrapping
    protocol ({!Sps}) reports under its own name. *)

val on_round : t -> unit
(** Rebuilds the view from the previous round's receipts, then sends one
    [PUSH view] and one [PULL]. *)

val on_message : t -> from:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> unit
(** [on_message t ~from msg] records the round's receipts (pushes and pull
    replies) and answers pulls. *)

val view : t -> Basalt_proto.Node_id.t array
(** [view t] is the current view (at most [l] identifiers). *)

val sample : t -> int -> Basalt_proto.Node_id.t list
(** [sample t k] returns [k] uniform members of the current view (the
    classical service's output stream); fewer if the view is smaller. *)

val evict : t -> (Basalt_proto.Node_id.t -> bool) -> unit
(** [evict t p] removes from the view all identifiers satisfying [p]. *)

val id : t -> Basalt_proto.Node_id.t
(** [id t] is the node's own identifier. *)

val sampler :
  ?config:config -> ?obs:Basalt_obs.Obs.t -> unit -> Basalt_proto.Rps.maker
(** Packaged for the simulation runner; [sample_tick] emits one view
    member per tick ([obs] is threaded to {!create}). *)
