module Node_id = Basalt_proto.Node_id

type t = {
  decay : float;
  counts : (int, float) Hashtbl.t;
  mutable cached_mean : float;
  mutable cached_std : float;
  mutable dirty : bool;
}

let create ?(decay = 0.9) () =
  if decay <= 0.0 || decay > 1.0 then
    invalid_arg "Indegree_stats.create: decay out of (0, 1]";
  {
    decay;
    counts = Hashtbl.create 256;
    cached_mean = 0.0;
    cached_std = 0.0;
    dirty = true;
  }

(* [record] does not invalidate the cached moments: the mean/std snapshot
   is refreshed once per {!tick} (i.e. per protocol round), keeping the
   outlier test O(1) per observed identifier. *)
let record t id =
  let key = Node_id.to_int id in
  let current = Option.value (Hashtbl.find_opt t.counts key) ~default:0.0 in
  Hashtbl.replace t.counts key (current +. 1.0)

let prune_threshold = 0.01

let tick t =
  let stale = ref [] in
  Hashtbl.iter
    (fun key count ->
      let decayed = count *. t.decay in
      if Float.compare decayed prune_threshold < 0 then stale := key :: !stale
      else Hashtbl.replace t.counts key decayed)
    t.counts;
  List.iter (Hashtbl.remove t.counts) !stale;
  t.dirty <- true

let count t id =
  Option.value (Hashtbl.find_opt t.counts (Node_id.to_int id)) ~default:0.0

let observed t = Hashtbl.length t.counts

let refresh t =
  if t.dirty then begin
    let n = Hashtbl.length t.counts in
    if n = 0 then begin
      t.cached_mean <- 0.0;
      t.cached_std <- 0.0
    end
    else begin
      let sum = ref 0.0 and sum_sq = ref 0.0 in
      Hashtbl.iter
        (fun _ c ->
          sum := !sum +. c;
          sum_sq := !sum_sq +. (c *. c))
        t.counts;
      let mean = !sum /. float_of_int n in
      let variance = Float.max 0.0 ((!sum_sq /. float_of_int n) -. (mean *. mean)) in
      t.cached_mean <- mean;
      t.cached_std <- sqrt variance
    end;
    t.dirty <- false
  end

let mean t =
  refresh t;
  t.cached_mean

let std t =
  refresh t;
  t.cached_std

let min_population = 10

let is_outlier t ~z id =
  refresh t;
  Int.compare (observed t) min_population >= 0
  && count t id > t.cached_mean +. (z *. t.cached_std)
