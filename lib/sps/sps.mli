(** SPS — Secure Peer Sampling (Jesi, Montresor & van Steen, 2010).

    SPS extends classical view shuffling with statistical hub detection
    inspired by social-network analysis (paper §2.2): each node gathers
    frequency statistics on the identifiers it encounters; identifiers
    with extreme observed indegree are suspected and blacklisted —
    filtered from incoming views and evicted from the local view.

    The detection needs a warm-up period to accumulate statistics, which
    is exactly the weakness the Basalt paper exploits: under aggressive
    flooding, correct nodes are isolated before the statistics stabilise
    (§4.3 reports 90% of correct nodes isolated at n = 1000, f = 30%,
    even with attack force F = 0).  The [sps-failure] experiment
    reproduces this. *)

type config = private {
  l : int;  (** View size. *)
  z : float;  (** Outlier threshold: blacklist when count > mean + z·std. *)
  decay : float;  (** Per-round decay of the frequency statistics. *)
  blacklist_ttl : int;  (** Rounds a blacklisting lasts. *)
  warmup_rounds : int;
      (** Rounds of statistics gathering before any blacklisting: the
          detector needs a population baseline before it can call an
          indegree "extreme".  During warm-up SPS behaves like the
          classical shuffler — the window the Basalt paper's attack
          exploits. *)
}

val config :
  ?l:int ->
  ?z:float ->
  ?decay:float ->
  ?blacklist_ttl:int ->
  ?warmup_rounds:int ->
  unit ->
  config
(** [config ()] defaults to [l = 160], [z = 3.0], [decay = 0.9],
    [blacklist_ttl = 50], [warmup_rounds = 30]. @raise Invalid_argument on
    non-positive [l] or [blacklist_ttl], negative [warmup_rounds], or
    [z < 0]. *)

type t
(** One node's SPS state. *)

val create :
  ?config:config ->
  ?obs:Basalt_obs.Obs.t ->
  id:Basalt_proto.Node_id.t ->
  bootstrap:Basalt_proto.Node_id.t array ->
  rng:Basalt_prng.Rng.t ->
  send:Basalt_proto.Rps.send ->
  unit ->
  t
(** [create ~id ~bootstrap ~rng ~send ()] wraps a {!Classic} instance with
    indegree tracking and outlier blacklisting.  [obs] (default disabled)
    is threaded to the base shuffler under the [sps.] instrument prefix
    and additionally records [sps.blacklist_adds]. *)

val on_round : t -> unit
(** [on_round t] advances the round counter, decays the indegree statistics,
    and runs the base protocol's round. *)

val on_message : t -> from:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> unit
(** [on_message t ~from msg] screens the carried identifiers through the
    outlier test (blacklisting offenders), then hands the message to the
    base protocol. *)

val view : t -> Basalt_proto.Node_id.t array
(** [view t] is the base protocol's current view. *)

val blacklisted : t -> Basalt_proto.Node_id.t -> bool
(** [blacklisted t id] is [true] while [id] is currently suspected. *)

val blacklist_size : t -> int
(** [blacklist_size t] is the number of currently suspected identifiers. *)

val sample : t -> int -> Basalt_proto.Node_id.t list
(** [sample t k] draws [k] view members uniformly (the service output). *)

val sampler :
  ?config:config -> ?obs:Basalt_obs.Obs.t -> unit -> Basalt_proto.Rps.maker
(** Packaged for the simulation runner, like {!Classic.sampler} but with the
    SPS defenses enabled ([obs] is threaded to {!create}). *)
