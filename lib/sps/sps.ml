module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module Obs = Basalt_obs.Obs

type config = {
  l : int;
  z : float;
  decay : float;
  blacklist_ttl : int;
  warmup_rounds : int;
}

let config ?(l = 160) ?(z = 3.0) ?(decay = 0.9) ?(blacklist_ttl = 50)
    ?(warmup_rounds = 30) () =
  if l <= 0 then invalid_arg "Sps.config: l must be positive";
  if z < 0.0 then invalid_arg "Sps.config: z must be non-negative";
  if decay <= 0.0 || decay > 1.0 then invalid_arg "Sps.config: decay out of (0,1]";
  if blacklist_ttl <= 0 then invalid_arg "Sps.config: blacklist_ttl <= 0";
  if warmup_rounds < 0 then invalid_arg "Sps.config: warmup_rounds < 0";
  { l; z; decay; blacklist_ttl; warmup_rounds }

type t = {
  config : config;
  stats : Indegree_stats.t;
  blacklist : (int, int) Hashtbl.t;  (* id -> expiry round *)
  round : int ref;  (* shared with the base protocol's filter closure *)
  base : Classic.t;
  c_blacklist_adds : Obs.Counter.t;
}

let blacklisted t id =
  match Hashtbl.find_opt t.blacklist (Node_id.to_int id) with
  | Some expiry -> expiry > !(t.round)
  | None -> false

let blacklist_size t =
  Hashtbl.fold
    (fun _ expiry acc -> if expiry > !(t.round) then acc + 1 else acc)
    t.blacklist 0

let default_config = config ()

let create ?(config = default_config) ?(obs = Obs.disabled) ~id ~bootstrap
    ~rng ~send () =
  let stats = Indegree_stats.create ~decay:config.decay () in
  let blacklist = Hashtbl.create 64 in
  let round = ref 0 in
  let accepts node_id =
    match Hashtbl.find_opt blacklist (Node_id.to_int node_id) with
    | Some expiry -> expiry <= !round
    | None -> true
  in
  let base =
    Classic.create
      ~config:(Classic.config ~l:config.l ~keep_old:false ())
      ~filter:accepts ~obs ~label:"sps" ~id ~bootstrap ~rng ~send ()
  in
  {
    config;
    stats;
    blacklist;
    round;
    base;
    c_blacklist_adds = Obs.counter obs "sps.blacklist_adds";
  }

(* Record every identifier carried by an incoming message, run the outlier
   test, and blacklist offenders before the base protocol consumes the
   message. *)
let inspect t ids =
  let armed = !(t.round) > t.config.warmup_rounds in
  Array.iter
    (fun id ->
      Indegree_stats.record t.stats id;
      if armed && Indegree_stats.is_outlier t.stats ~z:t.config.z id then begin
        Hashtbl.replace t.blacklist (Node_id.to_int id)
          (!(t.round) + t.config.blacklist_ttl);
        Obs.Counter.incr t.c_blacklist_adds;
        Classic.evict t.base (Node_id.equal id)
      end)
    ids

let on_message t ~from msg =
  (match msg with
  | Message.Pull_request -> ()
  | Message.Push ids | Message.Pull_reply ids ->
      inspect t (Array.append ids [| from |])
  | Message.Push_id id -> inspect t [| id; from |]
  (* Broadcast frames are the lib/gossip layer's; samplers ignore them. *)
  | Message.Gossip _ | Message.Ihave _ | Message.Iwant _ | Message.Graft
  | Message.Prune ->
      ());
  if not (blacklisted t from) then Classic.on_message t.base ~from msg

let on_round t =
  incr t.round;
  Indegree_stats.tick t.stats;
  Classic.on_round t.base

let view t = Classic.view t.base
let sample t k = Classic.sample t.base k

let sampler ?config ?obs () : Rps.maker =
 fun ~id ~bootstrap ~rng ~send ->
  let t = create ?config ?obs ~id ~bootstrap ~rng ~send () in
  {
    Rps.protocol = "sps";
    node = id;
    on_message = (fun ~from msg -> on_message t ~from msg);
    on_round = (fun () -> on_round t);
    sample_tick = (fun () -> sample t 1);
    current_view = (fun () -> view t);
  }
