(* Positioned s-expressions for the scenario matrix format (DESIGN.md
   §12).  Hand-written on purpose: the repo takes no parser dependency,
   and the matrix grammar only needs atoms, lists, strings and
   comments.  Every node carries the source position it started at so
   Spec can report validation errors as file:line:col. *)

type pos = { line : int; col : int }

type t = { desc : desc; pos : pos }
and desc = Atom of string | List of t list

let no_pos = { line = 0; col = 0 }
let atom s = { desc = Atom s; pos = no_pos }
let list ts = { desc = List ts; pos = no_pos }

let rec equal a b =
  match (a.desc, b.desc) with
  | Atom x, Atom y -> String.equal x y
  | List xs, List ys -> (
      try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | Atom _, List _ | List _, Atom _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let is_delimiter = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
  | _ -> false

(* An atom prints bare when reading it back yields the same atom: no
   delimiters, no control or non-ASCII bytes, non-empty. *)
let bare_atom s =
  s <> ""
  && String.for_all
       (fun c -> (not (is_delimiter c)) && Char.code c > 32 && Char.code c < 127)
       s

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 || Char.code c > 126 ->
          Buffer.add_string b (Printf.sprintf "\\%03d" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec to_string t =
  match t.desc with
  | Atom s -> if bare_atom s then s else quote s
  | List ts -> "(" ^ String.concat " " (List.map to_string ts) ^ ")"

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type error = { error_pos : pos; message : string }

let format_error ~file { error_pos = p; message } =
  Printf.sprintf "%s:%d:%d: %s" file p.line p.col message

exception Err of error

let fail pos fmt =
  Printf.ksprintf (fun message -> raise (Err { error_pos = pos; message })) fmt

let parse_string src =
  let len = String.length src in
  let i = ref 0 and line = ref 1 and col = ref 1 in
  let peek () = if !i < len then Some src.[!i] else None in
  let advance () =
    (match src.[!i] with
    | '\n' ->
        incr line;
        col := 1
    | _ -> incr col);
    incr i
  in
  let here () = { line = !line; col = !col } in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        let rec to_eol () =
          match peek () with
          | Some '\n' | None -> ()
          | Some _ ->
              advance ();
              to_eol ()
        in
        to_eol ();
        skip_ws ()
    | _ -> ()
  in
  let read_bare_atom () =
    let pos = here () in
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some c when not (is_delimiter c) ->
          Buffer.add_char b c;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    { desc = Atom (Buffer.contents b); pos }
  in
  let read_quoted_atom () =
    let pos = here () in
    advance () (* the opening '"' *);
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None ->
          fail (here ())
            "unterminated string (opened at line %d, column %d)" pos.line
            pos.col
      | Some '"' ->
          advance ();
          { desc = Atom (Buffer.contents b); pos }
      | Some '\\' ->
          let esc_pos = here () in
          advance ();
          (match peek () with
          | None ->
              fail (here ())
                "unterminated string (opened at line %d, column %d)" pos.line
                pos.col
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some ('0' .. '9') ->
              (* \DDD decimal byte escape, exactly three digits. *)
              let digit () =
                match peek () with
                | Some ('0' .. '9' as d) ->
                    advance ();
                    Char.code d - Char.code '0'
                | _ -> fail esc_pos "invalid escape: \\ needs three digits"
              in
              let d1 = digit () in
              let d2 = digit () in
              let d3 =
                match peek () with
                | Some ('0' .. '9' as d) -> Char.code d - Char.code '0'
                | _ -> fail esc_pos "invalid escape: \\ needs three digits"
              in
              let code = (d1 * 100) + (d2 * 10) + d3 in
              if code > 255 then fail esc_pos "invalid escape: byte %d > 255" code;
              Buffer.add_char b (Char.chr code)
          | Some c -> fail esc_pos "invalid escape '\\%c'" c);
          advance ();
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let rec read_form () =
    skip_ws ();
    match peek () with
    | None -> None
    | Some ')' -> fail (here ()) "unexpected ')'"
    | Some '(' ->
        let pos = here () in
        advance ();
        let rec items acc =
          skip_ws ();
          match peek () with
          | Some ')' ->
              advance ();
              List.rev acc
          | None ->
              fail (here ()) "unclosed '(' (opened at line %d, column %d)"
                pos.line pos.col
          | Some _ -> (
              match read_form () with
              | Some it -> items (it :: acc)
              | None ->
                  fail (here ()) "unclosed '(' (opened at line %d, column %d)"
                    pos.line pos.col)
        in
        Some { desc = List (items []); pos }
    | Some '"' -> Some (read_quoted_atom ())
    | Some _ -> Some (read_bare_atom ())
  in
  match
    let rec forms acc =
      match read_form () with
      | None -> List.rev acc
      | Some f -> forms (f :: acc)
    in
    forms []
  with
  | forms -> Ok forms
  | exception Err e -> Error e
