(** Positioned s-expressions for the scenario matrix format.

    The concrete syntax of DESIGN.md §12: atoms, quoted strings,
    parenthesised lists, and [;]-to-end-of-line comments.  The parser is
    hand-written (no parser dependency) and records the source position
    each node starts at, so {!Spec} can report validation errors as
    [file:line:col: message].  The printer emits a canonical single-line
    form; [parse ∘ print = id] up to positions, which the round-trip
    property in [test/test_scenario.ml] enforces. *)

type pos = { line : int; col : int }
(** 1-based source position. *)

type t = { desc : desc; pos : pos }
and desc = Atom of string | List of t list

val no_pos : pos
(** The position of synthesised nodes ([line = 0]). *)

val atom : string -> t
(** [atom s] is a synthesised atom (at {!no_pos}). *)

val list : t list -> t
(** [list ts] is a synthesised list (at {!no_pos}). *)

val equal : t -> t -> bool
(** Structural equality, ignoring positions. *)

val to_string : t -> string
(** Canonical single-line rendering.  Atoms print bare when they
    contain only printable non-delimiter ASCII; otherwise they print as
    a double-quoted string with backslash escapes (quote, backslash,
    [n], [t], [r], and [DDD] decimal byte). *)

type error = { error_pos : pos; message : string }

val format_error : file:string -> error -> string
(** [format_error ~file e] is ["file:line:col: message"]. *)

val parse_string : string -> (t list, error) result
(** [parse_string src] parses every top-level form in [src]. *)
