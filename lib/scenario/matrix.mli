(** The generic scenario-matrix driver (DESIGN.md §12).

    Expands a validated {!Spec.t} into the cross product of its axes
    (file order, pivot innermost, seeds innermost of all), resolves
    every cell against the {!Basalt_experiments.Scale} presets into a
    {!Basalt_sim.Scenario.t}, runs the flat task list — through
    {!Basalt_experiments.Gossip_app} when the spec mounts an app —
    over an optional {!Basalt_parallel.Pool}, and renders one table
    row per non-pivot cell with the pivot's entries as metric columns.
    [Pool.map] preserves task order, so tables, CSVs and merged traces
    are bit-identical at any [-j N].

    Aggregation goes through {!Basalt_experiments.Agg}; a matrix file
    that mirrors a hand-written experiment (committed under
    [scenarios/]) therefore reproduces its table byte-for-byte — the
    CLI equivalence test in [test/test_cli.ml] enforces this. *)

type run = {
  result : Basalt_sim.Runner.result;
  gossip : Basalt_experiments.Gossip_app.summary option;
      (** Present exactly when the spec mounts [(app (gossip ...))]. *)
}

type task = {
  labels : (string * string) list;
      (** Matrix coordinates: (axis name, entry label), in axis order. *)
  trace_extra : (string * Basalt_obs.Obs.value) list;
      (** Trace tags from the axes' [trace-key] attributes. *)
  scenario : Basalt_sim.Scenario.t;
}

val tasks : ?scale:Basalt_experiments.Scale.t -> Spec.t -> task list
(** [tasks spec] is the expanded cell × seed list in deterministic
    order: axes nest in file order, seeds innermost. *)

val run_tasks :
  ?scale:Basalt_experiments.Scale.t ->
  ?trace:bool ->
  ?pool:Basalt_parallel.Pool.t ->
  Spec.t ->
  task list * run list
(** [run_tasks spec] executes every task (in task order, whatever the
    pool's parallelism); [trace] enables per-run event collection. *)

type group = {
  g_scenario : Basalt_sim.Scenario.t;
      (** The cell's resolved scenario (first seed) — the source of
          per-cell parameters such as [f] for convergence targets. *)
  g_runs : run list;  (** One run per seed. *)
}

type row = {
  row_labels : (string * string) list;  (** Non-pivot coordinates. *)
  groups : (string * group) list;  (** Per pivot label, in axis order. *)
}

val rows_of :
  ?scale:Basalt_experiments.Scale.t -> Spec.t -> task list -> run list -> row list
(** [rows_of spec ts runs] regroups the flat results into one row per
    non-pivot cell. *)

val run :
  ?scale:Basalt_experiments.Scale.t ->
  ?pool:Basalt_parallel.Pool.t ->
  Spec.t ->
  row list
(** [run spec] is [run_tasks] followed by [rows_of]. *)

val columns : Spec.t -> row list -> int * Basalt_sim.Report.column list
(** [columns spec rows] lays out the table: one column per non-pivot
    axis, then [<pivot-label>_<metric>] columns, metric-major, in the
    spec's metrics order. *)

val print :
  ?scale:Basalt_experiments.Scale.t ->
  ?csv:string ->
  ?trace:string ->
  ?pool:Basalt_parallel.Pool.t ->
  Spec.t ->
  unit
(** [print spec] runs the matrix and prints its table; [csv] also
    writes the rows as CSV, [trace] dumps the merged deterministic
    JSONL event trace of every run, tagged with each axis's
    [trace-key], in task order (byte-identical at any [-j N]). *)
