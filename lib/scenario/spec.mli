(** Typed scenario-matrix specifications (DESIGN.md §12).

    A spec is the parsed, validated form of a [(matrix ...)] file:
    shared base bindings, one or more named axes whose cross product is
    the condition grid, a pivot axis rendered as columns, and the
    metrics to report per pivot entry.  Parsing and validation report
    every diagnostic as [file:line:col: message]; a spec that survives
    {!load} runs without further error handling in {!Matrix}. *)

type protocol = Basalt | Brahms | Sps | Classic

type side =
  | First_half  (** Nodes [i < n / 2] — the classic half-space cut. *)
  | First of int  (** Nodes [i < k]. *)

type link_fault = {
  lf_loss : Basalt_engine.Link.Loss.t option;
  lf_latency : Basalt_engine.Link.Latency.t option;
  lf_dup : float option;
  lf_reorder : float option;
  lf_reorder_window : float option;
}

type fault_form =
  | Link_fault of link_fault
      (** Applied to every directed pair ({!Basalt_engine.Fault.t}
          [base]). *)
  | Partition_fault of { from_frac : float; until_frac : float; side : side }
      (** A timed cut; the window is a fraction of the run so the file
          stays valid at every scale. *)
  | Outage_fault of { node : int; from_frac : float; until_frac : float }
      (** A timed per-node silence. *)

type churn = {
  churn_rate : float;
  churn_start : float option;
  churn_style : Basalt_sim.Churn.style option;
}

type settings = {
  n : int option;
  v : int option;
  f : float option;
  force : float option;
  steps : float option;
  protocol : protocol option;
  strategy : Basalt_adversary.Adversary.strategy option;
  latency : Basalt_engine.Link.Latency.t option;
  loss : Basalt_engine.Link.Loss.t option;
  faults : fault_form list option;
  churn : churn option;
  measure_every : float option;
  sample_window : int option;
}
(** One group of bindings; [None] fields fall back to the enclosing
    scope and ultimately to the {!Basalt_experiments.Scale} preset or
    {!Basalt_sim.Scenario.make} default. *)

val empty_settings : settings
(** All fields unbound. *)

val merge : settings -> settings -> settings
(** [merge base over] overrides [base] field-wise with the bound fields
    of [over]; fault plans and churn models replace wholesale. *)

type entry = { label : string; bindings : settings }

type axis = {
  axis_name : string;  (** Also the report column header. *)
  trace_key : string option;
      (** When set, traces tag each event with [key: label]. *)
  display_float : bool;
      (** Render labels through {!Basalt_sim.Report.float_cell} (and
          tag traces with a float, not a string). *)
  entries : entry list;
}

type metric =
  | Time  (** Median convergence time; ["no-convergence"] cell on a
              non-majority. *)
  | Samples_byz  (** Mean Byzantine fraction of the sample stream. *)
  | Delivered_sent  (** Transport deliveries over sends. *)
  | Delivered  (** Gossip: mean delivered fraction (needs [(app ...)]). *)
  | T99  (** Gossip: median time-to-99%; ["never"] on a non-majority. *)
  | Redundancy  (** Gossip: duplicate frames per delivery. *)

val metric_name : metric -> string
(** The metric's grammar keyword, also its column-header suffix. *)

type t = {
  name : string;  (** {!Basalt_sim.Scenario.t} name and CSV base name. *)
  base : settings;
  seeds : int list option;  (** [None]: the scale preset's seed list. *)
  axes : axis list;  (** In file order; the last one is the pivot. *)
  within : float;  (** Convergence tolerance for {!Time} (default 0.25). *)
  app : Basalt_experiments.Gossip_app.params option;
  metrics : (metric * string list) list;
      (** Per metric, the pivot labels to report ([[]] = all). *)
}

val pivot : t -> axis
(** The pivot axis (validation guarantees it is last). *)

val slug : t -> string
(** [name] with every non-alphanumeric byte replaced by ['_'] — the CSV
    file base name, matching the hand-written experiments'. *)

val of_string : ?file:string -> string -> (t, string) result
(** [of_string src] parses and validates a matrix; errors render as
    ["file:line:col: message"] ([file] defaults to ["<string>"]). *)

val load : string -> (t, [ `Unreadable of string | `Invalid of string ]) result
(** [load path] reads, parses and validates [path].  [`Unreadable]
    carries the I/O error, [`Invalid] the positioned diagnostic. *)
