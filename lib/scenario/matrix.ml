(* The generic matrix driver (DESIGN.md §12): expands a validated Spec
   into the cross product of its axes, resolves every cell against the
   scale presets into a Basalt_sim.Scenario, fans the flat cell × seed
   task list over an optional Pool (order-preserving, so tables and
   traces are bit-identical at any -j N), and renders the pivot axis as
   metric columns.  All aggregation goes through
   Basalt_experiments.Agg and the gossip workload through
   Basalt_experiments.Gossip_app — the same code the hand-written
   experiments run — which is what makes a scenario file mirroring
   robustness-net or broadcast reproduce its table byte-for-byte. *)

module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Measurements = Basalt_sim.Measurements
module Report = Basalt_sim.Report
module Churn = Basalt_sim.Churn
module Fault = Basalt_engine.Fault
module Engine = Basalt_engine.Engine
module Pool = Basalt_parallel.Pool
module Obs = Basalt_obs.Obs
module Scale = Basalt_experiments.Scale
module Agg = Basalt_experiments.Agg
module Gossip_app = Basalt_experiments.Gossip_app
module Output = Basalt_experiments.Output

type run = { result : Runner.result; gossip : Gossip_app.summary option }

type task = {
  labels : (string * string) list;
  trace_extra : (string * Obs.value) list;
  scenario : Scenario.t;
}

(* ------------------------------------------------------------------ *)
(* Resolution: merged settings -> Scenario.t                           *)

let protocol_of ~v = function
  | Spec.Basalt -> Scenario.Basalt (Basalt_core.Config.make ~v ())
  | Spec.Brahms -> Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ())
  | Spec.Sps -> Scenario.Sps (Basalt_sps.Sps.config ~l:v ())
  | Spec.Classic -> Scenario.Classic (Basalt_sps.Classic.config ~l:v ())

let link_of (l : Spec.link_fault) =
  Fault.link ?loss:l.lf_loss ?latency:l.lf_latency ?dup:l.lf_dup
    ?reorder:l.lf_reorder ?reorder_window:l.lf_reorder_window ()

(* Window fractions scale with the run; 1/4- and 1/2-of-run windows
   resolve to the exact floats the hand-written experiments pass. *)
let fault_of ~n ~steps (forms : Spec.fault_form list) =
  let base = ref None and partitions = ref [] and outages = ref [] in
  List.iter
    (fun form ->
      match (form : Spec.fault_form) with
      | Spec.Link_fault l -> base := Some (link_of l)
      | Spec.Partition_fault { from_frac; until_frac; side } ->
          let side =
            match side with
            | Spec.First_half -> fun i -> i < n / 2
            | Spec.First k -> fun i -> i < k
          in
          partitions :=
            Fault.partition ~from_time:(from_frac *. steps)
              ~until_time:(until_frac *. steps) side
            :: !partitions
      | Spec.Outage_fault { node; from_frac; until_frac } ->
          outages :=
            Fault.outage ~node ~from_time:(from_frac *. steps)
              ~until_time:(until_frac *. steps)
            :: !outages)
    forms;
  Fault.make ?base:!base ~partitions:(List.rev !partitions)
    ~outages:(List.rev !outages) ()

let scenario_of (spec : Spec.t) scale (s : Spec.settings) ~seed =
  let n = Option.value s.Spec.n ~default:(Scale.n scale) in
  let v = Option.value s.Spec.v ~default:(Scale.v scale) in
  let steps = Option.value s.Spec.steps ~default:(Scale.steps scale) in
  let protocol =
    match s.Spec.protocol with
    | Some p -> protocol_of ~v p
    | None -> invalid_arg "Matrix: unbound protocol (Spec.load admits none)"
  in
  let fault = Option.map (fault_of ~n ~steps) s.Spec.faults in
  let churn =
    Option.map
      (fun (c : Spec.churn) ->
        Churn.make ?start:c.churn_start ?style:c.churn_style
          ~rate:c.churn_rate ())
      s.Spec.churn
  in
  Scenario.make ~name:spec.Spec.name ~n ?f:s.Spec.f ?force:s.Spec.force
    ?strategy:s.Spec.strategy ~protocol ~steps
    ?measure_every:s.Spec.measure_every ?sample_window:s.Spec.sample_window
    ?churn ?latency:s.Spec.latency ?loss:s.Spec.loss ?fault ~seed ()

(* ------------------------------------------------------------------ *)
(* Expansion                                                           *)

(* Cross product in file order, rightmost (pivot) axis innermost. *)
let cells (spec : Spec.t) =
  let rec go axes labels settings =
    match axes with
    | [] -> [ (List.rev labels, settings) ]
    | (ax : Spec.axis) :: rest ->
        List.concat_map
          (fun (e : Spec.entry) ->
            go rest
              ((ax.Spec.axis_name, e.Spec.label) :: labels)
              (Spec.merge settings e.Spec.bindings))
          ax.Spec.entries
  in
  go spec.Spec.axes [] spec.Spec.base

let trace_extra_of (spec : Spec.t) labels =
  List.filter_map
    (fun (ax : Spec.axis) ->
      Option.map
        (fun key ->
          let label = List.assoc ax.Spec.axis_name labels in
          let value =
            if ax.Spec.display_float then Obs.Float (float_of_string label)
            else Obs.Str label
          in
          (key, value))
        ax.Spec.trace_key)
    spec.Spec.axes

let seeds_of (spec : Spec.t) scale =
  Option.value spec.Spec.seeds ~default:(Scale.seeds scale)

let tasks ?(scale = Scale.Standard) (spec : Spec.t) =
  let seeds = seeds_of spec scale in
  List.concat_map
    (fun (labels, settings) ->
      let trace_extra = trace_extra_of spec labels in
      List.map
        (fun seed ->
          { labels; trace_extra; scenario = scenario_of spec scale settings ~seed })
        seeds)
    (cells spec)

(* ------------------------------------------------------------------ *)
(* Running                                                             *)

let run_tasks ?(scale = Scale.Standard) ?(trace = false) ?pool (spec : Spec.t)
    =
  let ts = tasks ~scale spec in
  let runs =
    Pool.map ?pool
      (fun t ->
        match spec.Spec.app with
        | Some params ->
            let result, summary = Gossip_app.run ~params ~trace t.scenario in
            { result; gossip = Some summary }
        | None ->
            { result = Runner.run ~obs:trace ~trace t.scenario; gossip = None })
      ts
  in
  (ts, runs)

(* ------------------------------------------------------------------ *)
(* Rows and metric columns                                             *)

type group = { g_scenario : Scenario.t; g_runs : run list }

type row = { row_labels : (string * string) list; groups : (string * group) list }

let split_last xs =
  match List.rev xs with
  | last :: rev_init -> (List.rev rev_init, last)
  | [] -> invalid_arg "Matrix.split_last: empty list"

let rows_of ?(scale = Scale.Standard) (spec : Spec.t) ts runs =
  let per_seed = List.length (seeds_of spec scale) in
  let pivot_n = List.length (Spec.pivot spec).Spec.entries in
  let paired = List.combine ts runs in
  Agg.chunks per_seed paired
  |> List.map (fun pairs ->
         let t = fst (List.hd pairs) in
         (t.labels, { g_scenario = t.scenario; g_runs = List.map snd pairs }))
  |> Agg.chunks pivot_n
  |> List.map (fun cell_groups ->
         let row_labels, _ = split_last (fst (List.hd cell_groups)) in
         let groups =
           List.map
             (fun (labels, g) ->
               let _, (_, pivot_label) = split_last labels in
               (pivot_label, g))
             cell_groups
         in
         { row_labels; groups })

let gossip_summary r =
  match r.gossip with
  | Some s -> s
  | None -> invalid_arg "Matrix: gossip metric without (app ...)"

let eval_metric (spec : Spec.t) metric (g : group) =
  let runs = g.g_runs in
  match (metric : Spec.metric) with
  | Spec.Time -> (
      let optimal = g.g_scenario.Scenario.f in
      match
        Agg.median_opt
          (List.map
             (fun r ->
               Measurements.convergence_time ~optimal ~within:spec.Spec.within
                 r.result.Runner.series)
             runs)
      with
      | Some t -> Report.float_cell t
      | None -> "no-convergence")
  | Spec.Samples_byz ->
      Report.float_cell
        (Agg.mean
           (fun r -> r.result.Runner.final.Measurements.sample_byz)
           runs)
  | Spec.Delivered_sent ->
      let sent =
        Agg.sum (fun r -> r.result.Runner.transport.Engine.sent) runs
      in
      let delivered =
        Agg.sum (fun r -> r.result.Runner.transport.Engine.delivered) runs
      in
      Report.float_cell (float_of_int delivered /. float_of_int (max 1 sent))
  | Spec.Delivered ->
      Report.float_cell
        (Agg.mean (fun r -> (gossip_summary r).Gossip_app.delivered) runs)
  | Spec.T99 -> (
      match
        Agg.median_opt
          (List.map (fun r -> (gossip_summary r).Gossip_app.t99) runs)
      with
      | Some t -> Report.float_cell t
      | None -> "never")
  | Spec.Redundancy ->
      let dups =
        Agg.sum (fun r -> (gossip_summary r).Gossip_app.duplicates) runs
      in
      let dels =
        Agg.sum (fun r -> (gossip_summary r).Gossip_app.deliveries) runs
      in
      Report.float_cell (float_of_int dups /. float_of_int (max 1 dels))

let columns (spec : Spec.t) rows =
  let arr = Array.of_list rows in
  let non_pivot, pivot_axis = split_last spec.Spec.axes in
  let axis_cols =
    List.map
      (fun (ax : Spec.axis) ->
        {
          Report.header = ax.Spec.axis_name;
          cell =
            (fun i ->
              let label = List.assoc ax.Spec.axis_name arr.(i).row_labels in
              if ax.Spec.display_float then
                Report.float_cell (float_of_string label)
              else label);
        })
      non_pivot
  in
  let all_pivot_labels =
    List.map (fun e -> e.Spec.label) pivot_axis.Spec.entries
  in
  let metric_cols =
    List.concat_map
      (fun (metric, labels) ->
        let labels = match labels with [] -> all_pivot_labels | ls -> ls in
        List.map
          (fun label ->
            {
              Report.header =
                Printf.sprintf "%s_%s" label (Spec.metric_name metric);
              cell =
                (fun i ->
                  eval_metric spec metric (List.assoc label arr.(i).groups));
            })
          labels)
      spec.Spec.metrics
  in
  (Array.length arr, axis_cols @ metric_cols)

let run ?(scale = Scale.Standard) ?pool (spec : Spec.t) =
  let ts, runs = run_tasks ~scale ?pool spec in
  rows_of ~scale spec ts runs

(* ------------------------------------------------------------------ *)
(* Trace merging and printing                                          *)

let write_trace path ts runs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter2
        (fun t r ->
          match r.result.Runner.obs with
          | Some sink ->
              output_string oc (Obs.events_to_jsonl ~extra:t.trace_extra sink)
          | None -> ())
        ts runs)

let print ?(scale = Scale.Standard) ?csv ?trace ?pool (spec : Spec.t) =
  let cell_count = List.length (cells spec) in
  let seed_count = List.length (seeds_of spec scale) in
  Output.line
    (Printf.sprintf "== matrix %s: %d cells x %d seed%s (scale %s)"
       spec.Spec.name cell_count seed_count
       (if seed_count = 1 then "" else "s")
       (Scale.to_string scale));
  let ts, runs = run_tasks ~scale ~trace:(Option.is_some trace) ?pool spec in
  let rows, cols = columns spec (rows_of ~scale spec ts runs) in
  Output.emit ?csv ~rows cols;
  match trace with
  | None -> ()
  | Some path ->
      write_trace path ts runs;
      Output.line (Printf.sprintf "(trace written to %s)" path)
