(* The typed scenario-matrix specification (DESIGN.md §12): parsing of
   the (matrix ...) grammar out of Sexp trees plus all static
   validation, so Matrix can expand and run a spec without further
   error handling.  Every diagnostic carries the source position of the
   offending form and renders as file:line:col. *)

module Link = Basalt_engine.Link
module Churn = Basalt_sim.Churn
module Adversary = Basalt_adversary.Adversary
module Node_id = Basalt_proto.Node_id
module Gossip_app = Basalt_experiments.Gossip_app

type protocol = Basalt | Brahms | Sps | Classic
type side = First_half | First of int

type link_fault = {
  lf_loss : Link.Loss.t option;
  lf_latency : Link.Latency.t option;
  lf_dup : float option;
  lf_reorder : float option;
  lf_reorder_window : float option;
}

type fault_form =
  | Link_fault of link_fault
  | Partition_fault of { from_frac : float; until_frac : float; side : side }
  | Outage_fault of { node : int; from_frac : float; until_frac : float }

type churn = {
  churn_rate : float;
  churn_start : float option;
  churn_style : Churn.style option;
}

type settings = {
  n : int option;
  v : int option;
  f : float option;
  force : float option;
  steps : float option;
  protocol : protocol option;
  strategy : Adversary.strategy option;
  latency : Link.Latency.t option;
  loss : Link.Loss.t option;
  faults : fault_form list option;
  churn : churn option;
  measure_every : float option;
  sample_window : int option;
}

let empty_settings =
  {
    n = None;
    v = None;
    f = None;
    force = None;
    steps = None;
    protocol = None;
    strategy = None;
    latency = None;
    loss = None;
    faults = None;
    churn = None;
    measure_every = None;
    sample_window = None;
  }

(* Entry bindings override base bindings field-wise; a fault plan or
   churn model replaces the inherited one wholesale. *)
let merge base over =
  let pick o b = match o with Some _ -> o | None -> b in
  {
    n = pick over.n base.n;
    v = pick over.v base.v;
    f = pick over.f base.f;
    force = pick over.force base.force;
    steps = pick over.steps base.steps;
    protocol = pick over.protocol base.protocol;
    strategy = pick over.strategy base.strategy;
    latency = pick over.latency base.latency;
    loss = pick over.loss base.loss;
    faults = pick over.faults base.faults;
    churn = pick over.churn base.churn;
    measure_every = pick over.measure_every base.measure_every;
    sample_window = pick over.sample_window base.sample_window;
  }

type entry = { label : string; bindings : settings }

type axis = {
  axis_name : string;
  trace_key : string option;
  display_float : bool;
  entries : entry list;
}

type metric =
  | Time
  | Samples_byz
  | Delivered_sent
  | Delivered
  | T99
  | Redundancy

let metric_name = function
  | Time -> "time"
  | Samples_byz -> "samples_byz"
  | Delivered_sent -> "delivered/sent"
  | Delivered -> "delivered"
  | T99 -> "t99"
  | Redundancy -> "redundancy"

let metric_of_name = function
  | "time" -> Some Time
  | "samples_byz" -> Some Samples_byz
  | "delivered/sent" -> Some Delivered_sent
  | "delivered" -> Some Delivered
  | "t99" -> Some T99
  | "redundancy" -> Some Redundancy
  | _ -> None

let gossip_metric = function
  | Delivered | T99 | Redundancy -> true
  | Time | Samples_byz | Delivered_sent -> false

type t = {
  name : string;
  base : settings;
  seeds : int list option;
  axes : axis list;
  within : float;
  app : Gossip_app.params option;
  metrics : (metric * string list) list;
}

let pivot spec =
  match List.rev spec.axes with
  | p :: _ -> p
  | [] -> invalid_arg "Spec.pivot: no axes"

let slug spec =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
    spec.name

(* ------------------------------------------------------------------ *)
(* Parsing helpers                                                     *)

exception Fail of Sexp.pos * string

let fail pos fmt = Printf.ksprintf (fun msg -> raise (Fail (pos, msg))) fmt

let atom_of (s : Sexp.t) ~what =
  match s.desc with
  | Atom a -> a
  | List _ -> fail s.pos "expected %s, got a list" what

let float_of (s : Sexp.t) =
  let a = atom_of s ~what:"a number" in
  match float_of_string_opt a with
  | Some x -> x
  | None -> fail s.pos "bad number '%s'" a

let int_of (s : Sexp.t) =
  let a = atom_of s ~what:"an integer" in
  match int_of_string_opt a with
  | Some x -> x
  | None -> fail s.pos "bad integer '%s'" a

let prob_of (s : Sexp.t) =
  let x = float_of s in
  if x < 0.0 || x > 1.0 then
    fail s.pos "probability '%s' out of [0,1]" (atom_of s ~what:"a number");
  x

(* A form is a list whose head is an atom keyword. *)
let form_of (s : Sexp.t) =
  match s.desc with
  | List ({ desc = Atom head; _ } :: args) -> (head, args, s.pos)
  | List _ -> fail s.pos "expected a (keyword ...) form"
  | Atom a -> fail s.pos "expected a (keyword ...) form, got atom '%s'" a

let arity pos head want (args : Sexp.t list) =
  if List.length args <> want then
    fail pos "(%s ...) takes %d argument%s" head want
      (if want = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* Value parsers                                                       *)

let latency_of (s : Sexp.t) =
  match s.desc with
  | Atom "zero" -> Link.Latency.Zero
  | Atom a -> fail s.pos "unknown latency model '%s' (zero|constant|uniform)" a
  | List _ -> (
      let head, args, pos = form_of s in
      match head with
      | "constant" ->
          arity pos head 1 args;
          Link.Latency.Constant (float_of (List.nth args 0))
      | "uniform" ->
          arity pos head 2 args;
          let lo = float_of (List.nth args 0) in
          let hi = float_of (List.nth args 1) in
          Link.Latency.Uniform { lo; hi }
      | _ -> fail pos "unknown latency model '%s' (zero|constant|uniform)" head)

let loss_of (s : Sexp.t) =
  match s.desc with
  | Atom "none" -> Link.Loss.None
  | Atom a -> fail s.pos "unknown loss model '%s' (none|bernoulli|gilbert)" a
  | List _ -> (
      let head, args, pos = form_of s in
      match head with
      | "bernoulli" ->
          arity pos head 1 args;
          Link.Loss.Bernoulli (prob_of (List.nth args 0))
      | "gilbert" ->
          arity pos head 4 args;
          let p = List.map prob_of args in
          Link.Loss.Gilbert_elliott
            {
              p_gb = List.nth p 0;
              p_bg = List.nth p 1;
              good = List.nth p 2;
              bad = List.nth p 3;
            }
      | _ -> fail pos "unknown loss model '%s' (none|bernoulli|gilbert)" head)

let protocol_of (s : Sexp.t) =
  match atom_of s ~what:"a protocol name" with
  | "basalt" -> Basalt
  | "brahms" -> Brahms
  | "sps" -> Sps
  | "classic" -> Classic
  | a -> fail s.pos "unknown protocol '%s' (basalt|brahms|sps|classic)" a

let strategy_of (s : Sexp.t) =
  match s.desc with
  | Atom "flood" -> Adversary.Flood
  | Atom "silent" -> Adversary.Silent
  | Atom a -> fail s.pos "unknown strategy '%s' (flood|silent|eclipse)" a
  | List _ -> (
      let head, args, pos = form_of s in
      match head with
      | "eclipse" ->
          arity pos head 1 args;
          Adversary.Eclipse (Node_id.of_int (int_of (List.nth args 0)))
      | _ -> fail pos "unknown strategy '%s' (flood|silent|eclipse)" head)

let side_of (s : Sexp.t) =
  match s.desc with
  | Atom "first-half" -> First_half
  | Atom a -> fail s.pos "unknown partition side '%s' (first-half|(first K))" a
  | List _ -> (
      let head, args, pos = form_of s in
      match head with
      | "first" ->
          arity pos head 1 args;
          First (int_of (List.nth args 0))
      | _ -> fail pos "unknown partition side '%s' (first-half|(first K))" head)

(* Fractions of the run used by partition/outage windows, so scenario
   files stay valid at every scale. *)
let window_of pos forms =
  let from_frac = ref None and until_frac = ref None in
  let leftover =
    List.filter
      (fun item ->
        let head, args, hpos = form_of item in
        match head with
        | "from-frac" ->
            arity hpos head 1 args;
            from_frac := Some (prob_of (List.nth args 0));
            false
        | "until-frac" ->
            arity hpos head 1 args;
            until_frac := Some (prob_of (List.nth args 0));
            false
        | _ -> true)
      forms
  in
  match (!from_frac, !until_frac) with
  | Some a, Some b ->
      if a >= b then fail pos "empty window: from-frac %g >= until-frac %g" a b;
      (a, b, leftover)
  | _ -> fail pos "a fault window needs (from-frac F) and (until-frac F)"

let fault_form_of (s : Sexp.t) =
  let head, args, pos = form_of s in
  match head with
  | "link" ->
      let lf_loss = ref None
      and lf_latency = ref None
      and lf_dup = ref None
      and lf_reorder = ref None
      and lf_reorder_window = ref None in
      List.iter
        (fun item ->
          let key, kargs, kpos = form_of item in
          match key with
          | "loss" ->
              arity kpos key 1 kargs;
              lf_loss := Some (loss_of (List.nth kargs 0))
          | "latency" ->
              arity kpos key 1 kargs;
              lf_latency := Some (latency_of (List.nth kargs 0))
          | "dup" ->
              arity kpos key 1 kargs;
              lf_dup := Some (prob_of (List.nth kargs 0))
          | "reorder" ->
              arity kpos key 1 kargs;
              lf_reorder := Some (prob_of (List.nth kargs 0))
          | "reorder-window" ->
              arity kpos key 1 kargs;
              lf_reorder_window := Some (float_of (List.nth kargs 0))
          | _ ->
              fail kpos
                "unknown link-fault key '%s' \
                 (loss|latency|dup|reorder|reorder-window)"
                key)
        args;
      Link_fault
        {
          lf_loss = !lf_loss;
          lf_latency = !lf_latency;
          lf_dup = !lf_dup;
          lf_reorder = !lf_reorder;
          lf_reorder_window = !lf_reorder_window;
        }
  | "partition" ->
      let from_frac, until_frac, rest = window_of pos args in
      let side = ref None in
      List.iter
        (fun item ->
          let key, kargs, kpos = form_of item in
          match key with
          | "side" ->
              arity kpos key 1 kargs;
              side := Some (side_of (List.nth kargs 0))
          | _ ->
              fail kpos
                "unknown partition key '%s' (from-frac|until-frac|side)" key)
        rest;
      let side =
        match !side with
        | Some s -> s
        | None -> fail pos "a partition needs (side ...)"
      in
      Partition_fault { from_frac; until_frac; side }
  | "outage" ->
      let from_frac, until_frac, rest = window_of pos args in
      let node = ref None in
      List.iter
        (fun item ->
          let key, kargs, kpos = form_of item in
          match key with
          | "node" ->
              arity kpos key 1 kargs;
              node := Some (int_of (List.nth kargs 0))
          | _ ->
              fail kpos "unknown outage key '%s' (node|from-frac|until-frac)"
                key)
        rest;
      let node =
        match !node with
        | Some n -> n
        | None -> fail pos "an outage needs (node I)"
      in
      Outage_fault { node; from_frac; until_frac }
  | _ -> fail pos "unknown fault form '%s' (link|partition|outage)" head

let churn_of pos (args : Sexp.t list) =
  let rate = ref None and start = ref None and style = ref None in
  List.iter
    (fun item ->
      let key, kargs, kpos = form_of item in
      match key with
      | "rate" ->
          arity kpos key 1 kargs;
          rate := Some (prob_of (List.nth kargs 0))
      | "start" ->
          arity kpos key 1 kargs;
          start := Some (float_of (List.nth kargs 0))
      | "style" -> (
          arity kpos key 1 kargs;
          match atom_of (List.nth kargs 0) ~what:"a churn style" with
          | "replace" -> style := Some Churn.Replace
          | "crash" -> style := Some Churn.Crash
          | a -> fail kpos "unknown churn style '%s' (replace|crash)" a)
      | _ -> fail kpos "unknown churn key '%s' (rate|start|style)" key)
    args;
  match !rate with
  | Some churn_rate ->
      { churn_rate; churn_start = !start; churn_style = !style }
  | None -> fail pos "churn needs (rate F)"

(* ------------------------------------------------------------------ *)
(* Bindings                                                            *)

let set pos what r x =
  match !r with
  | Some _ -> fail pos "duplicate setting '%s'" what
  | None -> r := Some x

let positive_int (s : Sexp.t) ~what =
  let x = int_of s in
  if x <= 0 then fail s.pos "%s must be positive" what;
  x

let positive_float (s : Sexp.t) ~what =
  let x = float_of s in
  if x <= 0.0 then fail s.pos "%s must be positive" what;
  x

(* [allow_seeds]: (seeds ...) may only appear in (base ...), so every
   pivot group averages over the same seed list. *)
let settings_of ~allow_seeds (forms : Sexp.t list) =
  let n = ref None
  and v = ref None
  and f = ref None
  and force = ref None
  and steps = ref None
  and protocol = ref None
  and strategy = ref None
  and latency = ref None
  and loss = ref None
  and faults = ref None
  and churn = ref None
  and measure_every = ref None
  and sample_window = ref None
  and seeds = ref None in
  List.iter
    (fun item ->
      let key, args, pos = form_of item in
      match key with
      | "n" ->
          arity pos key 1 args;
          set pos key n (positive_int (List.nth args 0) ~what:"network size n")
      | "v" ->
          arity pos key 1 args;
          set pos key v (positive_int (List.nth args 0) ~what:"view size v")
      | "f" ->
          arity pos key 1 args;
          let x = prob_of (List.nth args 0) in
          if x >= 1.0 then
            fail pos "byzantine fraction f must be in [0,1)";
          set pos key f x
      | "force" ->
          arity pos key 1 args;
          let x = float_of (List.nth args 0) in
          if x < 0.0 then fail pos "attack force must be >= 0";
          set pos key force x
      | "steps" ->
          arity pos key 1 args;
          set pos key steps (positive_float (List.nth args 0) ~what:"steps")
      | "protocol" ->
          arity pos key 1 args;
          set pos key protocol (protocol_of (List.nth args 0))
      | "strategy" ->
          arity pos key 1 args;
          set pos key strategy (strategy_of (List.nth args 0))
      | "latency" ->
          arity pos key 1 args;
          set pos key latency (latency_of (List.nth args 0))
      | "loss" ->
          arity pos key 1 args;
          set pos key loss (loss_of (List.nth args 0))
      | "fault" ->
          if args = [] then fail pos "(fault ...) needs at least one form";
          set pos key faults (List.map fault_form_of args)
      | "churn" -> set pos key churn (churn_of pos args)
      | "measure-every" ->
          arity pos key 1 args;
          set pos key measure_every
            (positive_float (List.nth args 0) ~what:"measure-every")
      | "sample-window" ->
          arity pos key 1 args;
          set pos key sample_window
            (positive_int (List.nth args 0) ~what:"sample-window")
      | "seeds" ->
          if not allow_seeds then
            fail pos "(seeds ...) is only allowed in (base ...)";
          if args = [] then fail pos "(seeds ...) needs at least one seed";
          set pos key seeds (List.map int_of args)
      | _ -> fail pos "unknown setting '%s'" key)
    forms;
  ( {
      n = !n;
      v = !v;
      f = !f;
      force = !force;
      steps = !steps;
      protocol = !protocol;
      strategy = !strategy;
      latency = !latency;
      loss = !loss;
      faults = !faults;
      churn = !churn;
      measure_every = !measure_every;
      sample_window = !sample_window;
    },
    !seeds )

(* ------------------------------------------------------------------ *)
(* Axes, app, metrics                                                  *)

let axis_of pos (args : Sexp.t list) =
  match args with
  | [] -> fail pos "(axis ...) needs a name"
  | name_s :: items ->
      let axis_name = atom_of name_s ~what:"an axis name" in
      let trace_key = ref None and display_float = ref false in
      let entries =
        List.filter_map
          (fun item ->
            let head, iargs, ipos = form_of item in
            match head with
            | "trace-key" ->
                arity ipos head 1 iargs;
                set ipos head trace_key
                  (atom_of (List.nth iargs 0) ~what:"a trace key");
                None
            | "display" -> (
                arity ipos head 1 iargs;
                match atom_of (List.nth iargs 0) ~what:"a display mode" with
                | "float" ->
                    display_float := true;
                    None
                | a -> fail ipos "unknown display mode '%s' (float)" a)
            | label ->
                let bindings, _ = settings_of ~allow_seeds:false iargs in
                Some ({ label; bindings }, ipos))
          items
      in
      if entries = [] then fail pos "axis '%s' has no entries" axis_name;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun ({ label; _ }, epos) ->
          if Hashtbl.mem seen label then
            fail epos "duplicate entry '%s' in axis '%s'" label axis_name;
          Hashtbl.replace seen label ())
        entries;
      if !display_float then
        List.iter
          (fun ({ label; _ }, epos) ->
            if Option.is_none (float_of_string_opt label) then
              fail epos
                "axis '%s' has (display float) but entry '%s' is not a number"
                axis_name label)
          entries;
      {
        axis_name;
        trace_key = !trace_key;
        display_float = !display_float;
        entries = List.map fst entries;
      }

let app_of pos (args : Sexp.t list) =
  match args with
  | [ one ] -> (
      let head, gargs, gpos = form_of one in
      match head with
      | "gossip" ->
          let publishes = ref None
          and warmup_frac = ref None
          and payload_bytes = ref None in
          List.iter
            (fun item ->
              let key, kargs, kpos = form_of item in
              match key with
              | "publishes" ->
                  arity kpos key 1 kargs;
                  publishes :=
                    Some (positive_int (List.nth kargs 0) ~what:"publishes")
              | "warmup-frac" ->
                  arity kpos key 1 kargs;
                  warmup_frac := Some (prob_of (List.nth kargs 0))
              | "payload-bytes" ->
                  arity kpos key 1 kargs;
                  payload_bytes :=
                    Some
                      (positive_int (List.nth kargs 0) ~what:"payload-bytes")
              | _ ->
                  fail kpos
                    "unknown gossip key '%s' \
                     (publishes|warmup-frac|payload-bytes)"
                    key)
            gargs;
          (try
             Gossip_app.params ?publishes:!publishes
               ?warmup_frac:!warmup_frac ?payload_bytes:!payload_bytes ()
           with Invalid_argument msg -> fail gpos "%s" msg)
      | _ -> fail gpos "unknown app '%s' (gossip)" head)
  | _ -> fail pos "(app ...) takes exactly one (gossip ...) form"

let metrics_of pos (args : Sexp.t list) =
  if args = [] then fail pos "(metrics ...) needs at least one metric";
  List.map
    (fun item ->
      let head, margs, mpos = form_of item in
      match metric_of_name head with
      | Some m ->
          (m, List.map (fun l -> atom_of l ~what:"a pivot label") margs, mpos)
      | None ->
          fail mpos
            "unknown metric '%s' \
             (time|samples_byz|delivered/sent|delivered|t99|redundancy)"
            head)
    args

(* ------------------------------------------------------------------ *)
(* The (matrix ...) form                                               *)

let of_sexp (s : Sexp.t) =
  let head, body, pos = form_of s in
  if head <> "matrix" then fail s.pos "expected a (matrix ...) form";
  let name = ref None
  and base = ref None
  and seeds = ref None
  and axes = ref []
  and pivot_name = ref None
  and within = ref None
  and app = ref None
  and metrics = ref None in
  List.iter
    (fun item ->
      let key, args, kpos = form_of item in
      match key with
      | "name" ->
          arity kpos key 1 args;
          set kpos key name (atom_of (List.nth args 0) ~what:"a matrix name")
      | "base" ->
          if Option.is_some !base then fail kpos "duplicate setting 'base'";
          let bindings, s = settings_of ~allow_seeds:true args in
          base := Some bindings;
          seeds := s
      | "axis" -> axes := axis_of kpos args :: !axes
      | "pivot" ->
          arity kpos key 1 args;
          set kpos key pivot_name
            (atom_of (List.nth args 0) ~what:"an axis name")
      | "within" ->
          arity kpos key 1 args;
          set kpos key within
            (positive_float (List.nth args 0) ~what:"within")
      | "app" -> set kpos key app (app_of kpos args)
      | "metrics" ->
          if Option.is_some !metrics then
            fail kpos "duplicate setting 'metrics'";
          metrics := Some (metrics_of kpos args)
      | _ -> fail kpos "unknown matrix key '%s'" key)
    body;
  let name =
    match !name with Some n -> n | None -> fail pos "missing (name ...)"
  in
  let axes = List.rev !axes in
  if axes = [] then fail pos "a matrix needs at least one (axis ...)";
  let seen = Hashtbl.create 4 in
  List.iter
    (fun ax ->
      if Hashtbl.mem seen ax.axis_name then
        fail pos "duplicate axis '%s'" ax.axis_name;
      Hashtbl.replace seen ax.axis_name ())
    axes;
  let pivot_name =
    match !pivot_name with
    | Some p -> p
    | None -> fail pos "missing (pivot ...)"
  in
  if not (List.exists (fun ax -> ax.axis_name = pivot_name) axes) then
    fail pos "pivot '%s' does not name an axis" pivot_name;
  let last_axis = List.nth axes (List.length axes - 1) in
  if last_axis.axis_name <> pivot_name then
    fail pos "pivot axis '%s' must be the last axis declared" pivot_name;
  let metrics =
    match !metrics with
    | Some ms -> ms
    | None -> fail pos "missing (metrics ...)"
  in
  let pivot_labels = List.map (fun e -> e.label) last_axis.entries in
  List.iter
    (fun (m, labels, mpos) ->
      if gossip_metric m && Option.is_none !app then
        fail mpos "metric '%s' needs (app (gossip ...))" (metric_name m);
      List.iter
        (fun l ->
          if not (List.mem l pivot_labels) then
            fail mpos "metric label '%s' is not an entry of pivot axis '%s'" l
              pivot_name)
        labels)
    metrics;
  let base = Option.value !base ~default:empty_settings in
  (* Every cell must end up with a protocol: either the base binds one,
     or some axis binds one on every entry (merge order makes this
     check exact — see the validation notes in DESIGN.md §12). *)
  let axis_covers ax =
    List.for_all (fun e -> Option.is_some e.bindings.protocol) ax.entries
  in
  if Option.is_none base.protocol && not (List.exists axis_covers axes) then
    fail pos
      "no protocol bound: set (protocol ...) in (base ...) or on every entry \
       of an axis";
  {
    name;
    base;
    seeds = !seeds;
    axes;
    within = Option.value !within ~default:0.25;
    app = !app;
    metrics = List.map (fun (m, labels, _) -> (m, labels)) metrics;
  }

let of_sexps ~file (sexps : Sexp.t list) =
  try
    match sexps with
    | [ s ] -> Ok (of_sexp s)
    | [] ->
        Error
          (Printf.sprintf "%s:1:1: empty file: expected a (matrix ...) form"
             file)
    | _ :: extra :: _ ->
        raise (Fail (extra.pos, "expected a single (matrix ...) form"))
  with Fail (pos, msg) ->
    Error (Printf.sprintf "%s:%d:%d: %s" file pos.Sexp.line pos.Sexp.col msg)

let of_string ?(file = "<string>") src =
  match Sexp.parse_string src with
  | Error e -> Error (Sexp.format_error ~file e)
  | Ok sexps -> of_sexps ~file sexps

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error (`Unreadable msg)
  | src -> (
      match of_string ~file:path src with
      | Ok spec -> Ok spec
      | Error msg -> Error (`Invalid msg))
