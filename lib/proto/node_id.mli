(** Node identifiers.

    In the simulator a node identifier is a dense non-negative integer
    (index into the engine's node table).  The paper's model (§2.1) only
    requires identifiers to be unique and hashable; a real deployment
    would use e.g. a public key fingerprint — the rank functions in
    {!Basalt_hashing.Rank} treat identifiers opaquely either way. *)

type t = private int
(** A node identifier. *)

val of_int : int -> t
(** [of_int i] views [i] as a node identifier.
    @raise Invalid_argument if [i < 0]. *)

val to_int : t -> int
(** [to_int id] is the underlying integer. *)

val equal : t -> t -> bool
(** Equality on identifiers. *)

val compare : t -> t -> int
(** Total order on identifiers. *)

val hash : t -> int
(** [hash id] is the identifier itself — identifiers are already dense non-
    negative integers. *)

val pp : Format.formatter -> t -> unit
(** Prints as [n<i>]. *)

val range : int -> t array
(** [range n] is the array of identifiers [0 .. n-1]. *)
