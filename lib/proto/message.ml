type mid = { origin : Node_id.t; seqno : int }

let mid_equal a b = Node_id.equal a.origin b.origin && Int.equal a.seqno b.seqno

let mid_compare a b =
  let c = Node_id.compare a.origin b.origin in
  if c <> 0 then c else Int.compare a.seqno b.seqno

let pp_mid ppf m = Format.fprintf ppf "%a#%d" Node_id.pp m.origin m.seqno

type t =
  | Pull_request
  | Pull_reply of Node_id.t array
  | Push of Node_id.t array
  | Push_id of Node_id.t
  | Gossip of { mid : mid; hops : int; payload : bytes }
  | Ihave of mid array
  | Iwant of mid array
  | Graft
  | Prune

let kind = function
  | Pull_request -> "pull"
  | Pull_reply _ -> "pull-reply"
  | Push _ -> "push"
  | Push_id _ -> "push-id"
  | Gossip _ -> "gossip"
  | Ihave _ -> "ihave"
  | Iwant _ -> "iwant"
  | Graft -> "graft"
  | Prune -> "prune"

let is_broadcast = function
  | Gossip _ | Ihave _ | Iwant _ | Graft | Prune -> true
  | Pull_request | Pull_reply _ | Push _ | Push_id _ -> false

let payload_ids = function
  | Pull_request -> 0
  | Pull_reply view | Push view -> Array.length view
  | Push_id _ -> 1
  | Gossip _ -> 1
  | Ihave mids | Iwant mids -> Array.length mids
  | Graft | Prune -> 0

(* The §4.3 budget model: a 4-byte header, [id_size] bytes per
   identifier, 4 bytes per sequence number, 2 bytes for the hop
   counter, and the broadcast payload verbatim. *)
let bytes_on_wire ?(id_size = 4) m =
  match m with
  | Pull_request | Pull_reply _ | Push _ | Push_id _ ->
      4 + (id_size * payload_ids m)
  | Gossip { payload; _ } -> 4 + id_size + 4 + 2 + Bytes.length payload
  | Ihave mids | Iwant mids -> 4 + (Array.length mids * (id_size + 4))
  | Graft | Prune -> 4

let pp ppf m =
  match m with
  | Pull_request -> Format.fprintf ppf "PULL"
  | Pull_reply view -> Format.fprintf ppf "PULL-REPLY[%d ids]" (Array.length view)
  | Push view -> Format.fprintf ppf "PUSH[%d ids]" (Array.length view)
  | Push_id id -> Format.fprintf ppf "PUSH-ID[%a]" Node_id.pp id
  | Gossip { mid; hops; payload } ->
      Format.fprintf ppf "GOSSIP[%a hops=%d %dB]" pp_mid mid hops
        (Bytes.length payload)
  | Ihave mids -> Format.fprintf ppf "IHAVE[%d mids]" (Array.length mids)
  | Iwant mids -> Format.fprintf ppf "IWANT[%d mids]" (Array.length mids)
  | Graft -> Format.fprintf ppf "GRAFT"
  | Prune -> Format.fprintf ppf "PRUNE"
