(** The random peer sampling service interface.

    A random peer sampling (RPS) service produces a stream [(p_i)] of node
    identifiers drawn from the nodes present in the network (§2); a
    {e secure} RPS additionally bounds the over-representation of
    Byzantine identifiers in that stream.

    Every protocol in this repository (Basalt, Brahms, SPS, the classical
    non-tolerant baseline) exposes itself as a value of type {!t} so the
    simulation runner, the examples, and the application-facing API are
    protocol-agnostic.  The driver contract is:

    - [on_round] is invoked every exchange interval τ (Alg. 1 lines 7–9);
    - [on_message] is invoked on each message delivery;
    - [sample_tick] is invoked every k/ρ time units and returns the [k]
      fresh samples the service emits (Alg. 1 lines 14–19);
    - [current_view] exposes the node's neighbor set for measurement and
      for overlay-level applications (dissemination, consensus). *)

type send = dst:Node_id.t -> Message.t -> unit
(** Transport callback a sampler uses to emit messages. *)

type t = {
  protocol : string;  (** Human-readable protocol name. *)
  node : Node_id.t;  (** The local node's identifier. *)
  on_message : from:Node_id.t -> Message.t -> unit;
  on_round : unit -> unit;
  sample_tick : unit -> Node_id.t list;
  current_view : unit -> Node_id.t array;
}

type maker =
  id:Node_id.t ->
  bootstrap:Node_id.t array ->
  rng:Basalt_prng.Rng.t ->
  send:send ->
  t
(** A protocol is packaged as a function building one node's sampler. *)

val null : Node_id.t -> t
(** [null id] is a sampler that does nothing and emits nothing — a crashed
    node, useful in churn experiments and tests.  Its [current_view] is
    the empty array and [sample_tick] the empty list, permanently;
    layers built on top of a sampler (e.g. the [basalt.gossip]
    broadcast layer via [Gossip.of_rps]) must tolerate that shape — an empty
    view mutes dissemination but must not raise. *)
