(** Wire messages exchanged by the peer-sampling protocols and the
    epidemic broadcast layer built on top of them.

    The first four message kinds cover every sampler in this repository:
    - Basalt (Alg. 1) uses [Pull_request] and view-carrying pushes/replies;
    - Brahms pushes only the sender's own identifier ([Push_id], its §4.3
      design choice) and pulls full views;
    - SPS and the classical RPS shuffle views both ways.

    The remaining five are the broadcast frames of [lib/gossip]
    (DESIGN.md §11): eager-pushed payloads ([Gossip]), lazy digests
    ([Ihave]) and their repair requests ([Iwant]), and the mesh
    maintenance notifications ([Graft]/[Prune]).  Samplers ignore
    broadcast frames and the broadcast layer ignores sampler frames, so
    both protocols share one datagram socket.

    Payload sizes are what the paper's communication-budget argument
    (§4.3) accounts for: a full view of at most 200 four-byte identifiers
    fits one 1500-byte MTU datagram. *)

type mid = { origin : Node_id.t; seqno : int }
(** A broadcast message identifier: the publisher plus its per-publisher
    sequence number.  On the wire the sequence number is an unsigned
    32-bit integer. *)

val mid_equal : mid -> mid -> bool
(** Structural equality of message identifiers. *)

val mid_compare : mid -> mid -> int
(** Total order ([origin] first, then [seqno]) — the deterministic
    iteration order for identifier sets. *)

val pp_mid : Format.formatter -> mid -> unit
(** Formatter for message identifiers ([origin#seqno]). *)

type t =
  | Pull_request  (** Ask the recipient for its current view. *)
  | Pull_reply of Node_id.t array  (** Reply to a pull: sender's view. *)
  | Push of Node_id.t array  (** Unsolicited view advertisement. *)
  | Push_id of Node_id.t  (** Brahms-style push of a single identifier. *)
  | Gossip of { mid : mid; hops : int; payload : bytes }
      (** Eager push of a broadcast payload; [hops] counts forwarding
          steps from the publisher (capped at 65535 on the wire). *)
  | Ihave of mid array  (** Lazy digest: identifiers the sender holds. *)
  | Iwant of mid array  (** Repair request for missed identifiers. *)
  | Graft  (** Ask the recipient to add the sender to its eager mesh. *)
  | Prune  (** Ask the recipient to stop eager-pushing to the sender. *)

val kind : t -> string
(** [kind m] is a short label ("pull", "pull-reply", "push", "push-id",
    "gossip", "ihave", "iwant", "graft", "prune"). *)

val is_broadcast : t -> bool
(** [is_broadcast m] is [true] exactly for the [lib/gossip] frames —
    the dispatch predicate shared by the simulation driver and the UDP
    node. *)

val payload_ids : t -> int
(** [payload_ids m] is the number of identifiers carried by [m]
    (broadcast digests count one per [mid]). *)

val bytes_on_wire : ?id_size:int -> t -> int
(** [bytes_on_wire ~id_size m] estimates the datagram payload size
    ([id_size] defaults to 4 bytes per identifier plus a 4-byte header;
    broadcast frames add 4 bytes per sequence number, 2 per hop counter,
    and the payload verbatim). *)

val pp : Format.formatter -> t -> unit
(** Formatter for messages. *)
