(** Wire messages exchanged by the peer-sampling protocols.

    The four message kinds cover every protocol in this repository:
    - Basalt (Alg. 1) uses [Pull_request] and view-carrying pushes/replies;
    - Brahms pushes only the sender's own identifier ([Push_id], its §4.3
      design choice) and pulls full views;
    - SPS and the classical RPS shuffle views both ways.

    Payload sizes are what the paper's communication-budget argument
    (§4.3) accounts for: a full view of at most 200 four-byte identifiers
    fits one 1500-byte MTU datagram. *)

type t =
  | Pull_request  (** Ask the recipient for its current view. *)
  | Pull_reply of Node_id.t array  (** Reply to a pull: sender's view. *)
  | Push of Node_id.t array  (** Unsolicited view advertisement. *)
  | Push_id of Node_id.t  (** Brahms-style push of a single identifier. *)

val kind : t -> string
(** [kind m] is a short label ("pull", "pull-reply", "push", "push-id"). *)

val payload_ids : t -> int
(** [payload_ids m] is the number of identifiers carried by [m]. *)

val bytes_on_wire : ?id_size:int -> t -> int
(** [bytes_on_wire ~id_size m] estimates the datagram payload size
    ([id_size] defaults to 4 bytes per identifier plus a 4-byte header). *)

val pp : Format.formatter -> t -> unit
(** Formatter for messages. *)
