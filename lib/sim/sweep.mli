(** Parameter sweeps and multi-seed aggregation.

    The paper's figures vary one parameter at a time around the base
    scenario and average results over runs; these helpers drive
    {!Runner.run} accordingly.  Every driver takes an optional
    [?pool] ({!Basalt_parallel.Pool.t}): runs are independent seeded
    Monte-Carlo simulations, so they fan out over domains with
    bit-identical results (see DESIGN.md §7). *)

type aggregate = {
  mean_view_byz : float;
  mean_sample_byz : float;
  mean_isolated : float;
  isolation_runs : int;  (** Runs with at least one isolation after the
                             half-time mark. *)
  runs : int;
}

val run_seeds :
  ?pool:Basalt_parallel.Pool.t ->
  ?obs:bool ->
  ?trace:bool ->
  Scenario.t ->
  seeds:int list ->
  Runner.result list
(** [run_seeds s ~seeds] runs [s] once per seed, in seed order.
    [obs]/[trace] are forwarded to {!Runner.run}; each run gets its own
    registry, created inside the pooled task, so instrument values and
    traces are bit-identical at any parallelism level. *)

val aggregate : Runner.result list -> aggregate option
(** [aggregate results] averages final measurements across runs.
    [None] on the empty list — an empty result set is data ("no runs
    survived"), not a programming error, now that fan-out can lose tasks
    to failure. *)

val run_grouped :
  ?pool:Basalt_parallel.Pool.t ->
  Scenario.t list ->
  seeds:int list ->
  Runner.result list list
(** [run_grouped scenarios ~seeds] runs every scenario × seed pair as
    one flat task batch (maximising pool utilisation even with a single
    seed) and returns the runs regrouped per scenario, in order: result
    [i] lists [List.length seeds] runs of scenario [i] in seed order.
    @raise Invalid_argument if [seeds] is empty. *)

val run_aggregates :
  ?pool:Basalt_parallel.Pool.t ->
  Scenario.t list ->
  seeds:int list ->
  aggregate list
(** [run_aggregates scenarios ~seeds] is {!run_grouped} with each group
    aggregated.
    @raise Invalid_argument if [seeds] is empty. *)

val run_aggregate :
  ?pool:Basalt_parallel.Pool.t -> Scenario.t -> seeds:int list -> aggregate
(** [run_aggregate s ~seeds] aggregates {!run_seeds}.
    @raise Invalid_argument if [seeds] is empty. *)

val sweep :
  ?pool:Basalt_parallel.Pool.t ->
  make:('a -> Scenario.t) ->
  seeds:int list ->
  'a list ->
  ('a * aggregate) list
(** [sweep ~make ~seeds xs] evaluates [make x] for each parameter value
    [x], averaged over [seeds].  With a pool, the [x] × seed product is
    one flat task batch.
    @raise Invalid_argument if [seeds] is empty. *)

val max_rho :
  ?pool:Basalt_parallel.Pool.t ->
  make:(rho:float -> Scenario.t) ->
  seeds:int list ->
  float list ->
  float option
(** [max_rho ~make ~seeds rhos] tests the candidate rates in increasing
    order and returns the largest [rho] before the first failure, where a
    failure is any run observing an isolated correct node during the
    second half of the simulation — the success criterion of Fig. 5.
    Isolation risk grows with [rho], so the scan stops at the first
    failing rate; an empty result set also counts as a failure.  [None]
    if even the smallest fails. *)
