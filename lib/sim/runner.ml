module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module Engine = Basalt_engine.Engine
module Rng = Basalt_prng.Rng
module Adversary = Basalt_adversary.Adversary
module Sample_stream = Basalt_core.Sample_stream
module Digraph = Basalt_graph.Digraph
module Metrics = Basalt_graph.Metrics
module Isolation = Basalt_graph.Isolation
module Obs = Basalt_obs.Obs

type app_node = {
  app_deliver : from:Node_id.t -> Message.t -> bool;
  app_tick : Node_id.t list -> unit;
  app_round : unit -> unit;
}

type app_ctx = {
  app_q : int;
  app_n : int;
  app_rng : Rng.t;
  app_obs : Obs.t;
  app_now : unit -> float;
  app_send : src:int -> dst:Node_id.t -> Message.t -> unit;
  app_schedule : delay:float -> (unit -> unit) -> unit;
  app_alive : int -> bool;
  app_view : int -> Node_id.t array;
}

type app = app_ctx -> int -> app_node

let null_app_node =
  {
    app_deliver = (fun ~from:_ _ -> false);
    app_tick = (fun _ -> ());
    app_round = (fun () -> ());
  }

type node_outcome = {
  node_view_byz : float;
  node_sample_byz : float;
  node_samples_total : int;
  node_isolated : bool;
}

type bandwidth = {
  correct_messages : int;
  correct_bytes : int;
  adversary_messages : int;
  adversary_bytes : int;
  max_datagram : int;
}

type result = {
  scenario : Scenario.t;
  series : Measurements.t;
  final : Measurements.point;
  per_node : node_outcome array;
  ever_isolated_after_half : bool;
  transport : Engine.stats;
  bandwidth : bandwidth;
  adversary_pushes : int;
  nodes_churned : int;
  sample_histogram : int array;
  obs : Obs.t option;
}

let is_malicious s id = Node_id.to_int id >= Scenario.num_correct s

(* Draw a bootstrap sample of [size] peers with Byzantine fraction [f0],
   excluding [self]. *)
let bootstrap_sample s rng ~self =
  let q = Scenario.num_correct s in
  let num_byz = Scenario.num_byzantine s in
  let size = s.Scenario.bootstrap_size in
  let byz_count =
    min num_byz (int_of_float (Float.round (s.Scenario.bootstrap_f0 *. float_of_int size)))
  in
  let correct_count = min (q - 1) (size - byz_count) in
  let out = ref [] in
  let seen = Hashtbl.create size in
  let draw bound offset count =
    let drawn = ref 0 in
    let attempts = ref 0 in
    while !drawn < count && !attempts < 100 * count do
      incr attempts;
      let candidate = offset + Rng.int rng bound in
      if candidate <> self && not (Hashtbl.mem seen candidate) then begin
        Hashtbl.add seen candidate ();
        out := Node_id.of_int candidate :: !out;
        incr drawn
      end
    done
  in
  if q > 1 then draw q 0 correct_count;
  if num_byz > 0 then draw num_byz q byz_count;
  Array.of_list !out

let run_with_observer ?observer ?app ?(obs = false) ?(trace = false) s =
  let master = Rng.create ~seed:s.Scenario.seed in
  let engine_rng = Rng.split master in
  let node_rng = Rng.split master in
  let adversary_rng = Rng.split master in
  let bootstrap_rng = Rng.split master in
  let metric_rng = Rng.split master in
  (* The application stream is split only when an app is present, so
     app-less runs draw exactly the streams they always did (the pinned
     regression outcomes depend on it). *)
  let app_rng = match app with None -> None | Some _ -> Some (Rng.split master) in
  let n = s.Scenario.n in
  let q = Scenario.num_correct s in
  let num_byz = Scenario.num_byzantine s in
  (* The registry is created inside the run — never shared across the
     scenarios a Pool fans out — so instruments and traces are as
     deterministic as the run itself (DESIGN.md §8). *)
  let sink = if obs || trace then Obs.create ~trace () else Obs.disabled in
  let engine : Message.t Engine.t =
    Engine.create ~latency:s.Scenario.latency ~loss:s.Scenario.loss
      ?fault:s.Scenario.fault ~obs:sink ~kind_of:Message.kind ~rng:engine_rng
      ~n ()
  in
  Obs.set_clock sink (fun () -> Engine.now engine);
  let malicious_pred id = is_malicious s id in
  (* Bandwidth accounting: every send is metered by its estimated wire
     size so experiments can check the §4.3 communication budget. *)
  let correct_messages = ref 0 in
  let correct_bytes = ref 0 in
  let adversary_messages = ref 0 in
  let adversary_bytes = ref 0 in
  let max_datagram = ref 0 in
  let meter ~from_adversary msg =
    let size = Message.bytes_on_wire msg in
    if size > !max_datagram then max_datagram := size;
    if from_adversary then begin
      incr adversary_messages;
      adversary_bytes := !adversary_bytes + size
    end
    else begin
      incr correct_messages;
      correct_bytes := !correct_bytes + size
    end
  in
  (* --- Correct nodes --- *)
  let maker = Scenario.maker ~obs:sink s in
  let samplers = Array.make q (Rps.null (Node_id.of_int 0)) in
  let streams =
    Array.init q (fun _ -> Sample_stream.create ~capacity:s.Scenario.sample_window)
  in
  let sample_histogram = Array.make n 0 in
  let alive = Array.make q true in
  (* --- Application layer (e.g. lib/gossip broadcast) --- *)
  let apps = Array.make q null_app_node in
  let app_make =
    match app with
    | None -> None
    | Some f ->
        let ctx =
          {
            app_q = q;
            app_n = n;
            app_rng = Option.get app_rng;
            app_obs = sink;
            app_now = (fun () -> Engine.now engine);
            app_send =
              (fun ~src ~dst msg ->
                meter ~from_adversary:false msg;
                Engine.send engine ~src ~dst:(Node_id.to_int dst) msg);
            app_schedule = (fun ~delay k -> Engine.schedule engine ~delay k);
            app_alive = (fun i -> i >= 0 && i < q && alive.(i));
            app_view =
              (fun i ->
                if i >= 0 && i < q then samplers.(i).Rps.current_view ()
                else [||]);
          }
        in
        Some (f ctx)
  in
  (* [spawn i] (re)creates node [i]'s protocol instance; handlers and
     timers go through the array so churn can replace instances live. *)
  let spawn i =
    let id = Node_id.of_int i in
    let send ~dst msg =
      meter ~from_adversary:false msg;
      Engine.send engine ~src:i ~dst:(Node_id.to_int dst) msg
    in
    let bootstrap = bootstrap_sample s bootstrap_rng ~self:i in
    samplers.(i) <- maker ~id ~bootstrap ~rng:node_rng ~send;
    match app_make with Some f -> apps.(i) <- f i | None -> ()
  in
  for i = 0 to q - 1 do
    spawn i;
    (* Broadcast frames are consumed by the app layer; everything else
       falls through to the sampler. *)
    Engine.register engine i (fun ~from msg ->
        let from = Node_id.of_int from in
        if not (apps.(i).app_deliver ~from msg) then
          samplers.(i).Rps.on_message ~from msg)
  done;
  (* --- Adversary --- *)
  let adversary =
    if num_byz = 0 then None
    else begin
      let malicious =
        Array.init num_byz (fun i -> Node_id.of_int (q + i))
      in
      let correct = Array.init q Node_id.of_int in
      let send ~src ~dst msg =
        meter ~from_adversary:true msg;
        Engine.send engine ~src:(Node_id.to_int src) ~dst:(Node_id.to_int dst)
          msg
      in
      let adv =
        Adversary.create ~rng:adversary_rng ~malicious ~correct
          ~v:(Scenario.view_size s) ~force:s.Scenario.force
          ~strategy:s.Scenario.strategy ~send ()
      in
      for i = q to n - 1 do
        Engine.register engine i (fun ~from msg ->
            Adversary.on_message adv ~victim_reply:true
              ~from:(Node_id.of_int from) ~to_:(Node_id.of_int i) msg)
      done;
      Some adv
    end
  in
  (* --- Timers --- *)
  let tau = Scenario.tau s in
  let refresh = Scenario.refresh_interval s in
  (* Stagger node rounds uniformly across the exchange interval so rounds
     interleave as in an asynchronous deployment; the adversary fires at
     the interval boundary. *)
  for i = 0 to q - 1 do
    let phase = Rng.float node_rng tau in
    Engine.every engine ~phase ~interval:tau (fun () ->
        samplers.(i).Rps.on_round ();
        apps.(i).app_round ());
    let sample_phase = phase +. Rng.float node_rng refresh in
    Engine.every engine ~phase:sample_phase ~interval:refresh (fun () ->
        let samples = samplers.(i).Rps.sample_tick () in
        List.iter
          (fun p ->
            let idx = Node_id.to_int p in
            if idx < n then
              sample_histogram.(idx) <- sample_histogram.(idx) + 1)
          samples;
        Sample_stream.push_list streams.(i) samples;
        apps.(i).app_tick samples)
  done;
  (match adversary with
  | Some adv -> Engine.every engine ~phase:tau ~interval:tau (fun () ->
      Adversary.on_round adv)
  | None -> ());
  (* --- Churn --- *)
  let churned = ref 0 in
  (match s.Scenario.churn with
  | None -> ()
  | Some churn ->
      let churn_rng = Rng.split master in
      Engine.every engine
        ~phase:(Float.max churn.Churn.start 1.0)
        ~interval:1.0
        (fun () ->
          let count = Churn.replacements churn churn_rng ~correct:q in
          for _ = 1 to count do
            let i = Rng.int churn_rng q in
            if alive.(i) then begin
              (match churn.Churn.style with
              | Churn.Replace ->
                  (* The node loses all state and rejoins with a fresh
                     bootstrap; its sample history dies with it. *)
                  spawn i
              | Churn.Crash ->
                  (* Fail-stop: the node goes silent forever. *)
                  samplers.(i) <- Rps.null (Node_id.of_int i);
                  apps.(i) <- null_app_node;
                  alive.(i) <- false);
              streams.(i) <-
                Sample_stream.create ~capacity:s.Scenario.sample_window;
              incr churned
            end
          done));
  (* --- Measurements --- *)
  let series = Measurements.create () in
  let half = s.Scenario.steps /. 2.0 in
  let ever_isolated_after_half = ref false in
  let views u =
    if u < q then samplers.(u).Rps.current_view () else [||]
  in
  (* Per-round trajectory instruments: one window per measurement
     interval, rolled at the end of each [measure] so any series an app
     layer registers is windowed on the same cadence.  The [sim.round]
     span brackets consecutive measurements in virtual time. *)
  let se_view = Obs.series sink "sim.view_byz" in
  let se_sample = Obs.series sink "sim.sample_byz" in
  let se_isolated = Obs.series sink "sim.isolated" in
  let round_span = ref Obs.no_span in
  let round_idx = ref 0 in
  let measure () =
    let time = Engine.now engine in
    Obs.span_end sink !round_span;
    round_span :=
      (if Obs.tracing sink then
         Obs.span sink ~name:"sim.round" [ ("round", Obs.Int !round_idx) ]
       else Obs.no_span);
    incr round_idx;
    let view_acc = Basalt_analysis.Stats.Online.create () in
    let sample_acc = Basalt_analysis.Stats.Online.create () in
    let isolated = ref 0 in
    let alive_count = ref 0 in
    for i = 0 to q - 1 do
      if alive.(i) then begin
        incr alive_count;
        let view = samplers.(i).Rps.current_view () in
        if Array.length view > 0 then
          Basalt_analysis.Stats.Online.add view_acc
            (Basalt_proto.View_ops.proportion malicious_pred view);
        if Sample_stream.retained streams.(i) > 0 then
          Basalt_analysis.Stats.Online.add sample_acc
            (Sample_stream.proportion malicious_pred streams.(i));
        if Isolation.is_isolated ~is_malicious:malicious_pred view then
          incr isolated
      end
    done;
    let isolated_frac =
      float_of_int !isolated /. float_of_int (max 1 !alive_count)
    in
    if time >= half && !isolated > 0 then ever_isolated_after_half := true;
    let clustering, mean_path, indegree_spread =
      if s.Scenario.graph_metrics then begin
        let g = Digraph.of_views ~n views in
        let is_mal u = u >= q in
        ( Some (Metrics.clustering_coefficient ~rng:metric_rng ~is_malicious:is_mal g),
          (* lint: allow D10 — both graph estimators deliberately share the
             one metric stream; the regression suite pins outcomes under
             this draw order, so a split here would invalidate them. *)
          Some (Metrics.mean_path_length ~rng:metric_rng ~is_malicious:is_mal g),
          Some (Metrics.indegree_decile_spread ~is_malicious:is_mal g) )
      end
      else (None, None, None)
    in
    Measurements.add series
      {
        Measurements.time;
        view_byz = Basalt_analysis.Stats.Online.mean view_acc;
        sample_byz = Basalt_analysis.Stats.Online.mean sample_acc;
        isolated = isolated_frac;
        clustering;
        mean_path;
        indegree_spread;
        metrics = (if Obs.enabled sink then Some (Obs.snapshot sink) else None);
      };
    if Obs.enabled sink then begin
      Obs.Series.observe se_view (Basalt_analysis.Stats.Online.mean view_acc);
      Obs.Series.observe se_sample
        (Basalt_analysis.Stats.Online.mean sample_acc);
      Obs.Series.observe se_isolated isolated_frac;
      Obs.roll_series sink
    end;
    match observer with
    | Some f -> f ~time ~views
    | None -> ()
  in
  Engine.every engine ~phase:s.Scenario.measure_every
    ~interval:s.Scenario.measure_every measure;
  (* --- Run --- *)
  Engine.run_until engine s.Scenario.steps;
  (* Record a final point unless the periodic task already measured at
     the horizon. *)
  (match Measurements.last series with
  | Some p when p.Measurements.time >= Engine.now engine -> ()
  | Some _ | None -> measure ());
  let final =
    match Measurements.last series with
    | Some p -> p
    | None -> assert false
  in
  let per_node =
    Array.init q (fun i ->
        let view = samplers.(i).Rps.current_view () in
        {
          node_view_byz = Basalt_proto.View_ops.proportion malicious_pred view;
          node_sample_byz = Sample_stream.proportion malicious_pred streams.(i);
          node_samples_total = Sample_stream.total streams.(i);
          node_isolated = Isolation.is_isolated ~is_malicious:malicious_pred view;
        })
  in
  {
    scenario = s;
    series;
    final;
    per_node;
    ever_isolated_after_half = !ever_isolated_after_half;
    transport = Engine.stats engine;
    bandwidth =
      {
        correct_messages = !correct_messages;
        correct_bytes = !correct_bytes;
        adversary_messages = !adversary_messages;
        adversary_bytes = !adversary_bytes;
        max_datagram = !max_datagram;
      };
    adversary_pushes =
      (match adversary with Some a -> Adversary.pushes_sent a | None -> 0);
    nodes_churned = !churned;
    sample_histogram;
    obs = (if Obs.enabled sink then Some sink else None);
  }

let run ?app ?obs ?trace s = run_with_observer ?app ?obs ?trace s
