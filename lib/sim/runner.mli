(** Monte-Carlo run driver.

    Wires a {!Scenario.t} into the discrete-event engine: correct nodes
    run the scenario's protocol (rounds every τ, sample ticks every k/ρ),
    Byzantine nodes are impersonated by the collective
    {!Basalt_adversary.Adversary}, and a measurement task records the
    statistics of {!Measurements} at the scenario's cadence.

    Node identifiers are laid out deterministically: correct nodes occupy
    [\[0, Q)], Byzantine nodes [\[Q, n)].  The ranking hash makes the
    numbering irrelevant to the protocols. *)

type app_node = {
  app_deliver : from:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> bool;
      (** Inbound-frame filter, tried {e before} the sampler: return
          [true] to consume the frame (broadcast frames), [false] to
          let it fall through to [Rps.on_message]. *)
  app_tick : Basalt_proto.Node_id.t list -> unit;
      (** Invoked with the fresh output of every [sample_tick]. *)
  app_round : unit -> unit;
      (** Invoked right after the node's [on_round] — the app's
          heartbeat, at the exchange cadence τ. *)
}
(** One correct node's application-layer hooks. *)

type app_ctx = {
  app_q : int;  (** Number of correct nodes. *)
  app_n : int;  (** Total nodes. *)
  app_rng : Basalt_prng.Rng.t;
      (** Stream dedicated to the application, split from the run's
          master only when an app is installed — app-less runs draw
          exactly the streams they always did.  Split it further per
          node (lint rule D10). *)
  app_obs : Basalt_obs.Obs.t;  (** The run's registry (or disabled). *)
  app_now : unit -> float;  (** Virtual time. *)
  app_send : src:int -> dst:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> unit;
      (** Metered transport send (counted in the bandwidth totals). *)
  app_schedule : delay:float -> (unit -> unit) -> unit;
      (** One-shot virtual-time timer (e.g. a publish schedule). *)
  app_alive : int -> bool;  (** Whether a correct node is alive. *)
  app_view : int -> Basalt_proto.Node_id.t array;
      (** A correct node's current view ([[||]] out of range). *)
}
(** What the runner exposes to an application layer. *)

type app = app_ctx -> int -> app_node
(** An application is instantiated once with the run context, then once
    per correct node (and again when churn respawns the node; a crashed
    node's hooks are replaced by inert ones). *)

type node_outcome = {
  node_view_byz : float;  (** Final Byzantine proportion in the view. *)
  node_sample_byz : float;
      (** Byzantine proportion among the node's retained samples. *)
  node_samples_total : int;  (** Samples the node's service emitted. *)
  node_isolated : bool;  (** Whether the node ended isolated. *)
}

type bandwidth = {
  correct_messages : int;  (** Messages sent by correct nodes. *)
  correct_bytes : int;  (** Estimated wire bytes from correct nodes. *)
  adversary_messages : int;
  adversary_bytes : int;
  max_datagram : int;
      (** Largest single message payload observed — the §4.3 budget
          argument requires it to fit one 1500-byte MTU. *)
}

type result = {
  scenario : Scenario.t;
  series : Measurements.t;
  final : Measurements.point;  (** Last measurement. *)
  per_node : node_outcome array;  (** Indexed by correct node id. *)
  ever_isolated_after_half : bool;
      (** Whether any correct node was isolated during the second half of
          the run (Fig. 5's failure criterion). *)
  transport : Basalt_engine.Engine.stats;
  bandwidth : bandwidth;
  adversary_pushes : int;
  nodes_churned : int;  (** Replacements performed by the churn model. *)
  sample_histogram : int array;
      (** How often each node id was emitted as a sample, aggregated over
          all correct nodes' service outputs — the raw data behind
          stream-uniformity statistics (a good RPS draws every node
          equally often). *)
  obs : Basalt_obs.Obs.t option;
      (** The run's instrument registry when observability was requested
          ([None] otherwise): engine and protocol counters, byte
          histograms, and — with [~trace:true] — the event stream. *)
}

val is_malicious : Scenario.t -> Basalt_proto.Node_id.t -> bool
(** [is_malicious s id] under the deterministic layout. *)

val run : ?app:app -> ?obs:bool -> ?trace:bool -> Scenario.t -> result
(** [run s] executes the scenario to completion.

    [app] installs an application layer on every correct node (see
    {!app}) — e.g. the [lib/gossip] broadcast layer driven by the
    [broadcast] experiment.  Installing an app never perturbs the
    sampler-level streams: the app's PRNG stream is split from the
    master only when present, and app hooks piggyback on the existing
    round/sample timers rather than drawing new phases.

    [obs] (default [false]) creates a per-run instrument registry — its
    snapshots appear in each measurement point's [metrics] field and the
    registry itself in the result's [obs] field.  [trace] (default
    [false]) implies [obs] and additionally records structured events
    (engine send/deliver/drop/ignore) stamped with virtual time.  Both
    leave the measured numbers untouched: the registry is created inside
    the run, so results stay bit-identical at any [-j N]. *)

val run_with_observer :
  ?observer:(time:float -> views:(int -> Basalt_proto.Node_id.t array) -> unit) ->
  ?app:app ->
  ?obs:bool ->
  ?trace:bool ->
  Scenario.t ->
  result
(** [run_with_observer ~observer s] additionally invokes [observer] at
    each measurement instant with a view accessor (correct nodes only;
    malicious indices yield [[||]]) — the hook used to export snapshots or
    compute custom metrics.  [obs]/[trace] as in {!run}. *)
