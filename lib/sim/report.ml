type column = { header : string; cell : int -> string }

let float_cell x = if Float.is_nan x then "-" else Printf.sprintf "%.4f" x

let table ~rows cols =
  let widths =
    List.map
      (fun c ->
        let w = ref (String.length c.header) in
        for i = 0 to rows - 1 do
          w := max !w (String.length (c.cell i))
        done;
        !w)
      cols
  in
  let buf = Buffer.create 1024 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row get =
    List.iteri
      (fun j (c, w) ->
        if j > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (get c) w))
      (List.combine cols widths);
    Buffer.add_char buf '\n'
  in
  render_row (fun c -> c.header);
  List.iteri
    (fun j w ->
      if j > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  for i = 0 to rows - 1 do
    render_row (fun c -> c.cell i)
  done;
  Buffer.contents buf

let print_table ~rows cols = print_string (table ~rows cols)

let csv ~rows cols =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map (fun c -> c.header) cols));
  Buffer.add_char buf '\n';
  for i = 0 to rows - 1 do
    Buffer.add_string buf
      (String.concat "," (List.map (fun c -> c.cell i) cols));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let write_csv ~path ~rows cols =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (csv ~rows cols))

let sparkline ?(width = 60) xs =
  let levels = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
  let valid = Array.to_list xs |> List.filter (fun x -> not (Float.is_nan x)) in
  match valid with
  | [] -> ""
  | _ ->
      let lo = List.fold_left Float.min infinity valid in
      let hi = List.fold_left Float.max neg_infinity valid in
      let n = Array.length xs in
      let width = min width n in
      let bucket i =
        (* Average the slice of xs mapped to output cell i. *)
        let first = i * n / width and last = (((i + 1) * n) / width) - 1 in
        let sum = ref 0.0 and count = ref 0 in
        for j = first to max first last do
          if not (Float.is_nan xs.(j)) then begin
            sum := !sum +. xs.(j);
            incr count
          end
        done;
        if !count = 0 then Float.nan else !sum /. float_of_int !count
      in
      let buf = Buffer.create (width * 3) in
      for i = 0 to width - 1 do
        let x = bucket i in
        if Float.is_nan x then Buffer.add_string buf levels.(0)
        else begin
          let scaled =
            if hi = lo then 1.0 else 1.0 +. (7.0 *. (x -. lo) /. (hi -. lo))
          in
          Buffer.add_string buf levels.(int_of_float (Float.round scaled))
        end
      done;
      Buffer.contents buf

let series_columns series =
  let points = Array.of_list (Measurements.points series) in
  let base =
    [
      { header = "time"; cell = (fun i -> float_cell points.(i).Measurements.time) };
      {
        header = "view_byz";
        cell = (fun i -> float_cell points.(i).Measurements.view_byz);
      };
      {
        header = "sample_byz";
        cell = (fun i -> float_cell points.(i).Measurements.sample_byz);
      };
      {
        header = "isolated";
        cell = (fun i -> float_cell points.(i).Measurements.isolated);
      };
    ]
  in
  let optional header field =
    if
      Array.exists (fun p -> Option.is_some (field p)) points
    then
      [
        {
          header;
          cell =
            (fun i ->
              match field points.(i) with
              | Some x -> float_cell x
              | None -> "-");
        };
      ]
    else []
  in
  (* Instrument columns: one per metric name, taken from the last point
     so the header set covers everything registered during the run (the
     snapshot can only grow).  Registration order keeps the column order
     — and thus the rendered table — identical at any -j N. *)
  let metric_cell x =
    if Float.is_nan x then "-"
    else if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%.4f" x
  in
  let metric_names =
    if Array.length points = 0 then []
    else
      match points.(Array.length points - 1).Measurements.metrics with
      | Some m -> List.map fst m
      | None -> []
  in
  let metric_columns =
    List.map
      (fun name ->
        {
          header = name;
          cell =
            (fun i ->
              match points.(i).Measurements.metrics with
              | Some m -> (
                  match List.assoc_opt name m with
                  | Some x -> metric_cell x
                  | None -> "-")
              | None -> "-");
        })
      metric_names
  in
  base
  @ optional "clustering" (fun p -> p.Measurements.clustering)
  @ optional "mean_path" (fun p -> p.Measurements.mean_path)
  @ optional "indeg_spread" (fun p -> p.Measurements.indegree_spread)
  @ metric_columns
