(** Time series recorded during a run and derived statistics.

    One {!point} is appended per measurement instant.  All proportions are
    averages over correct nodes.  Graph metrics are present only when the
    scenario requested them (Fig. 4). *)

type point = {
  time : float;
  view_byz : float;  (** Mean Byzantine proportion in correct views. *)
  sample_byz : float;
      (** Mean Byzantine proportion in recent emitted samples. *)
  isolated : float;  (** Fraction of correct nodes currently isolated. *)
  clustering : float option;
  mean_path : float option;
  indegree_spread : float option;
  metrics : (string * float) list option;
      (** Instrument snapshot ({!Basalt_obs.Obs.snapshot}) at this
          instant, in registration order; present only when the run had
          an enabled observability sink.  Counters are cumulative, so
          per-interval rates are successive differences. *)
}

type t
(** A mutable series. *)

val create : unit -> t
(** [create ()] is an empty series. *)

val add : t -> point -> unit
(** [add t p] appends one point. *)

val points : t -> point list
(** Oldest first. *)

val length : t -> int
(** [length t] is the number of points recorded. *)

val last : t -> point option
(** [last t] is the newest point, if any. *)

val convergence_time :
  ?metric:[ `Samples | `Views ] -> optimal:float -> within:float -> t -> float option
(** [convergence_time ~optimal ~within series] is the earliest measurement
    time from which the chosen metric (default [`Samples]) remains at or
    below [optimal * (1 + within)] for the rest of the series — the
    definition behind Fig. 3 (convergence within 25% of the optimal
    proportion uses [within = 0.25]).  [None] if never. *)

val ever_isolated_after : t -> float -> bool
(** [ever_isolated_after series t0] is whether any measurement at time
    [>= t0] observed at least one isolated correct node (Fig. 5's failure
    criterion uses [t0 = steps / 2]). *)

val mean_after : (point -> float) -> t -> float -> float
(** [mean_after field series t0] averages [field] over points with
    [time >= t0]; [nan] if none. *)
