(** Experiment scenario descriptions.

    A scenario bundles the environment parameters of paper Table 1
    (network size [n], Byzantine fraction [f], attack force [F]) with the
    protocol under test and the run mechanics (duration, bootstrap
    composition, measurement cadence, PRNG seed).  A scenario fully
    determines a run: same scenario, same results. *)

type protocol =
  | Basalt of Basalt_core.Config.t
  | Brahms of Basalt_brahms.Brahms_config.t
  | Sps of Basalt_sps.Sps.config
  | Classic of Basalt_sps.Classic.config

type t = private {
  name : string;
  n : int;  (** Total nodes (correct + Byzantine). *)
  f : float;  (** Fraction of Byzantine nodes. *)
  force : float;  (** Attack force F (§4.1). *)
  strategy : Basalt_adversary.Adversary.strategy;
  protocol : protocol;
  steps : float;  (** Simulated duration in time units. *)
  bootstrap_size : int;  (** Size I of each node's bootstrap sample. *)
  bootstrap_f0 : float;  (** Byzantine fraction f0 within the bootstrap. *)
  seed : int;
  measure_every : float;  (** Measurement cadence (time units). *)
  graph_metrics : bool;  (** Record Fig. 4's expensive graph metrics. *)
  sample_window : int;  (** Ring-buffer size for sample statistics. *)
  churn : Churn.t option;  (** Continuous node replacement, if any. *)
  latency : Basalt_engine.Link.Latency.t;  (** Message delay model. *)
  loss : Basalt_engine.Link.Loss.t;  (** Non-adversarial message loss. *)
  fault : Basalt_engine.Fault.t option;
      (** Richer fault plan — bursty loss, asymmetric links, duplication,
          reordering, partitions, outages (DESIGN.md §10). *)
}

val make :
  ?name:string ->
  ?n:int ->
  ?f:float ->
  ?force:float ->
  ?strategy:Basalt_adversary.Adversary.strategy ->
  ?protocol:protocol ->
  ?steps:float ->
  ?bootstrap_size:int ->
  ?bootstrap_f0:float ->
  ?seed:int ->
  ?measure_every:float ->
  ?graph_metrics:bool ->
  ?sample_window:int ->
  ?churn:Churn.t ->
  ?latency:Basalt_engine.Link.Latency.t ->
  ?loss:Basalt_engine.Link.Loss.t ->
  ?fault:Basalt_engine.Fault.t ->
  unit ->
  t
(** [make ()] is the paper's base scenario at reduced scale: [n = 1000],
    [f = 0.1], [F = 10], Basalt with its default configuration,
    [steps = 200], bootstrap of [n/20] peers with [f0 = f], seed 42,
    one measurement per time unit.
    @raise Invalid_argument on inconsistent parameters (e.g. [f] outside
    [\[0, 1)], non-positive sizes, [bootstrap_f0] outside [\[0, 1\]]). *)

val with_seed : t -> int -> t
(** [with_seed s seed] is [s] with a different PRNG seed (for
    multi-seed averaging). *)

val num_byzantine : t -> int
(** [num_byzantine s] is [round (f * n)]. *)

val num_correct : t -> int
(** [num_correct s] is [n - num_byzantine s]. *)

val tau : t -> float
(** [tau s] is the protocol's exchange interval. *)

val refresh_interval : t -> float
(** [refresh_interval s] is the protocol's [k / rho] sampling period. *)

val view_size : t -> int
(** [view_size s] is the protocol's view size parameter. *)

val maker : ?obs:Basalt_obs.Obs.t -> t -> Basalt_proto.Rps.maker
(** [maker s] instantiates the scenario's protocol; [obs] (default
    disabled) is handed to every node so protocol instruments aggregate
    run-wide. *)

val protocol_name : t -> string
(** [protocol_name s] is the short name used in reports (["basalt"],
    ["brahms"], ["sps"], …). *)

val pp : Format.formatter -> t -> unit
(** Formatter for scenarios. *)
