type point = {
  time : float;
  view_byz : float;
  sample_byz : float;
  isolated : float;
  clustering : float option;
  mean_path : float option;
  indegree_spread : float option;
  metrics : (string * float) list option;
}

type t = { mutable rev_points : point list; mutable count : int }

let create () = { rev_points = []; count = 0 }

let add t p =
  t.rev_points <- p :: t.rev_points;
  t.count <- t.count + 1

let points t = List.rev t.rev_points
let length t = t.count
let last t = match t.rev_points with [] -> None | p :: _ -> Some p

let convergence_time ?(metric = `Samples) ~optimal ~within t =
  let threshold = optimal *. (1.0 +. within) in
  let value p = match metric with `Samples -> p.sample_byz | `Views -> p.view_byz in
  (* Walk from the end backwards: find the suffix where the metric stays
     under the threshold, then report its first time. *)
  let rec scan earliest = function
    | [] -> earliest
    | p :: rest ->
        if value p <= threshold then scan (Some p.time) rest else earliest
  in
  scan None t.rev_points

let ever_isolated_after t t0 =
  List.exists (fun p -> p.time >= t0 && p.isolated > 0.0) t.rev_points

let mean_after field t t0 =
  let selected =
    List.filter_map
      (fun p -> if p.time >= t0 then Some (field p) else None)
      t.rev_points
  in
  match selected with
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
