(** Tabular and CSV reporting of experiment results.

    Each reproduction target prints the series a paper figure plots as an
    aligned text table (one row per x-value or per time point) and can
    also emit CSV for external plotting. *)

type column = { header : string; cell : int -> string }
(** A named column; [cell i] renders row [i]. *)

val table : rows:int -> column list -> string
(** [table ~rows cols] renders an aligned table with a header line and a
    separator. *)

val print_table : rows:int -> column list -> unit
(** [print_table] writes {!table} to stdout. *)

val csv : rows:int -> column list -> string
(** [csv ~rows cols] renders the same data as CSV. *)

val write_csv : path:string -> rows:int -> column list -> unit
(** [write_csv ~path ~rows cols] writes {!csv} to [path]. *)

val float_cell : float -> string
(** Render a float with 4 significant decimals ("-" for nan). *)

val series_columns :
  Measurements.t -> column list
(** Standard columns (time, view_byz, sample_byz, isolated, plus graph
    metrics when present) for a measurement series; row [i] is the [i]-th
    measurement point.  When points carry an instrument snapshot (a run
    with [~obs:true]), one extra column per instrument is appended in
    registration order; integral values render without decimals. *)

val sparkline : ?width:int -> float array -> string
(** [sparkline xs] renders the series as a fixed-width (default 60)
    Unicode block-character strip, downsampling by averaging.  NaN values
    render as spaces; an empty or all-NaN series gives an empty strip.
    Useful for eyeballing convergence directly in a terminal. *)
