module Pool = Basalt_parallel.Pool

type aggregate = {
  mean_view_byz : float;
  mean_sample_byz : float;
  mean_isolated : float;
  isolation_runs : int;
  runs : int;
}

let run_seeds ?pool ?obs ?trace s ~seeds =
  Pool.map ?pool
    (fun seed -> Runner.run ?obs ?trace (Scenario.with_seed s seed))
    seeds

let aggregate results =
  match results with
  | [] -> None
  | _ ->
      let n = List.length results in
      let total field =
        List.fold_left (fun acc r -> acc +. field r.Runner.final) 0.0 results
        /. float_of_int n
      in
      Some
        {
          mean_view_byz = total (fun p -> p.Measurements.view_byz);
          mean_sample_byz = total (fun p -> p.Measurements.sample_byz);
          mean_isolated = total (fun p -> p.Measurements.isolated);
          isolation_runs =
            List.length
              (List.filter (fun r -> r.Runner.ever_isolated_after_half) results);
          runs = n;
        }

let require_seeds fname seeds =
  if seeds = [] then invalid_arg (fname ^ ": no seeds")

(* Fan out over the flat scenario × seed product, then regroup runs per
   scenario in order.  Flattening matters: the scale presets use a single
   seed, so parallelism has to come from the scenario axis as much as
   from the seed axis. *)
let run_grouped ?pool scenarios ~seeds =
  require_seeds "Sweep.run_grouped" seeds;
  let tasks =
    List.concat_map
      (fun s -> List.map (fun seed -> Scenario.with_seed s seed) seeds)
      scenarios
  in
  let runs = Pool.map ?pool Runner.run tasks in
  let per_group = List.length seeds in
  let rec take n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | r :: tl -> take (n - 1) (r :: acc) tl
      | [] -> assert false
  in
  let rec regroup = function
    | [] -> []
    | runs ->
        let group, rest = take per_group [] runs in
        group :: regroup rest
  in
  regroup runs

let aggregate_nonempty group =
  (* Groups produced by [run_grouped] carry one run per seed and the
     seed list was checked non-empty, so [aggregate] cannot fail. *)
  match aggregate group with Some a -> a | None -> assert false

let run_aggregates ?pool scenarios ~seeds =
  require_seeds "Sweep.run_aggregates" seeds;
  List.map aggregate_nonempty (run_grouped ?pool scenarios ~seeds)

let run_aggregate ?pool s ~seeds =
  require_seeds "Sweep.run_aggregate" seeds;
  aggregate_nonempty (run_seeds ?pool s ~seeds)

let sweep ?pool ~make ~seeds xs =
  require_seeds "Sweep.sweep" seeds;
  let groups = run_grouped ?pool (List.map make xs) ~seeds in
  List.map2 (fun x group -> (x, aggregate_nonempty group)) xs groups

let max_rho ?pool ~make ~seeds rhos =
  let sorted = List.sort_uniq Float.compare rhos in
  (* Try candidates in increasing order and stop at the first failure:
     isolation risk grows with rho (Fig. 2c), so once a rate fails, all
     larger ones would too.  An empty result set (no seeds) counts as a
     failure — no evidence of survival — rather than an exception. *)
  let rec scan best = function
    | [] -> best
    | rho :: rest -> (
        match aggregate (run_seeds ?pool (make ~rho) ~seeds) with
        | Some agg when agg.isolation_runs = 0 -> scan (Some rho) rest
        | Some _ | None -> best)
  in
  scan None sorted
