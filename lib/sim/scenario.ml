type protocol =
  | Basalt of Basalt_core.Config.t
  | Brahms of Basalt_brahms.Brahms_config.t
  | Sps of Basalt_sps.Sps.config
  | Classic of Basalt_sps.Classic.config

type t = {
  name : string;
  n : int;
  f : float;
  force : float;
  strategy : Basalt_adversary.Adversary.strategy;
  protocol : protocol;
  steps : float;
  bootstrap_size : int;
  bootstrap_f0 : float;
  seed : int;
  measure_every : float;
  graph_metrics : bool;
  sample_window : int;
  churn : Churn.t option;
  latency : Basalt_engine.Link.Latency.t;
  loss : Basalt_engine.Link.Loss.t;
  fault : Basalt_engine.Fault.t option;
}

let make ?(name = "base") ?(n = 1000) ?(f = 0.1) ?(force = 10.0)
    ?(strategy = Basalt_adversary.Adversary.Flood)
    ?(protocol = Basalt Basalt_core.Config.default) ?(steps = 200.0)
    ?bootstrap_size ?bootstrap_f0 ?(seed = 42) ?(measure_every = 1.0)
    ?(graph_metrics = false) ?(sample_window = 200) ?churn
    ?(latency = Basalt_engine.Link.Latency.Zero)
    ?(loss = Basalt_engine.Link.Loss.None) ?fault () =
  let bootstrap_size = Option.value bootstrap_size ~default:(max 10 (n / 20)) in
  let bootstrap_f0 = Option.value bootstrap_f0 ~default:f in
  if n <= 0 then invalid_arg "Scenario.make: n must be positive";
  if f < 0.0 || f >= 1.0 then invalid_arg "Scenario.make: f out of [0,1)";
  if force < 0.0 then invalid_arg "Scenario.make: negative force";
  if steps <= 0.0 then invalid_arg "Scenario.make: steps must be positive";
  if bootstrap_size <= 0 then
    invalid_arg "Scenario.make: bootstrap_size must be positive";
  if bootstrap_f0 < 0.0 || bootstrap_f0 > 1.0 then
    invalid_arg "Scenario.make: bootstrap_f0 out of [0,1]";
  if measure_every <= 0.0 then
    invalid_arg "Scenario.make: measure_every must be positive";
  if sample_window <= 0 then
    invalid_arg "Scenario.make: sample_window must be positive";
  {
    name;
    n;
    f;
    force;
    strategy;
    protocol;
    steps;
    bootstrap_size;
    bootstrap_f0;
    seed;
    measure_every;
    graph_metrics;
    sample_window;
    churn;
    latency;
    loss;
    fault;
  }

let with_seed s seed = { s with seed }
let num_byzantine s = int_of_float (Float.round (s.f *. float_of_int s.n))
let num_correct s = s.n - num_byzantine s

let tau s =
  match s.protocol with
  | Basalt c -> c.Basalt_core.Config.tau
  | Brahms c -> c.Basalt_brahms.Brahms_config.tau
  | Sps _ | Classic _ -> 1.0

let refresh_interval s =
  match s.protocol with
  | Basalt c -> Basalt_core.Config.refresh_interval c
  | Brahms c -> Basalt_brahms.Brahms_config.refresh_interval c
  | Sps _ | Classic _ -> 1.0

let view_size s =
  match s.protocol with
  | Basalt c -> c.Basalt_core.Config.v
  | Brahms c -> c.Basalt_brahms.Brahms_config.l
  | Sps c -> c.Basalt_sps.Sps.l
  | Classic c -> c.Basalt_sps.Classic.l

let maker ?obs s =
  match s.protocol with
  | Basalt c -> Basalt_core.Basalt.sampler ~config:c ?obs ()
  | Brahms c -> Basalt_brahms.Brahms.sampler ~config:c ?obs ()
  | Sps c -> Basalt_sps.Sps.sampler ~config:c ?obs ()
  | Classic c -> Basalt_sps.Classic.sampler ~config:c ?obs ()

let protocol_name s =
  match s.protocol with
  | Basalt _ -> "basalt"
  | Brahms _ -> "brahms"
  | Sps _ -> "sps"
  | Classic _ -> "classic"

let pp ppf s =
  Format.fprintf ppf
    "%s{proto=%s; n=%d; f=%g; F=%g; v=%d; steps=%g; seed=%d}" s.name
    (protocol_name s) s.n s.f s.force (view_size s) s.steps s.seed
