module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rng = Basalt_prng.Rng

type strategy = Flood | Eclipse of Node_id.t | Silent

type t = {
  rng : Rng.t;
  malicious : Node_id.t array;
  membership : (int, unit) Hashtbl.t;
  correct : Node_id.t array;
  v : int;
  force : float;
  strategy : strategy;
  send : src:Node_id.t -> dst:Node_id.t -> Message.t -> unit;
  mutable pushes : int;
}

let create ~rng ~malicious ~correct ~v ~force ?(strategy = Flood) ~send () =
  if Array.length malicious = 0 then
    invalid_arg "Adversary.create: empty coalition";
  if v <= 0 then invalid_arg "Adversary.create: v must be positive";
  if force < 0.0 then invalid_arg "Adversary.create: negative force";
  let membership = Hashtbl.create (Array.length malicious) in
  Array.iter (fun id -> Hashtbl.replace membership (Node_id.to_int id) ()) malicious;
  {
    rng = Rng.split rng;
    malicious;
    membership;
    correct;
    v;
    force;
    strategy;
    send;
    pushes = 0;
  }

let is_malicious t id = Hashtbl.mem t.membership (Node_id.to_int id)

let malicious_view t =
  Array.init t.v (fun _ -> Rng.pick t.rng t.malicious)

let on_message t ~victim_reply ~from ~to_ msg =
  match msg with
  | Message.Pull_request ->
      if victim_reply then
        t.send ~src:to_ ~dst:from (Message.Pull_reply (malicious_view t))
  | Message.Pull_reply _ | Message.Push _ | Message.Push_id _
  (* Broadcast frames are absorbed silently — the worst case for
     dissemination: a Byzantine mesh member is a black hole that never
     forwards, repairs, or digests (§4-style adversary for lib/gossip). *)
  | Message.Gossip _ | Message.Ihave _ | Message.Iwant _ | Message.Graft
  | Message.Prune ->
      ()

let push_target t =
  match t.strategy with
  | Eclipse victim -> Some victim
  | Flood ->
      if Array.length t.correct = 0 then None
      else Some (Rng.pick t.rng t.correct)
  | Silent -> None

let on_round t =
  match t.strategy with
  | Silent -> ()
  | Flood | Eclipse _ ->
      let expected = t.force *. float_of_int (Array.length t.malicious) in
      let whole = int_of_float expected in
      let frac = expected -. float_of_int whole in
      let count = whole + (if Rng.bernoulli t.rng ~p:frac then 1 else 0) in
      for _ = 1 to count do
        match push_target t with
        | Some dst ->
            let src = Rng.pick t.rng t.malicious in
            t.send ~src ~dst (Message.Push (malicious_view t));
            t.pushes <- t.pushes + 1
        | None -> ()
      done

let pushes_sent t = t.pushes
let strategy t = t.strategy
