(** The Byzantine adversary of the paper's evaluation (§4.1).

    All malicious nodes are modelled collectively: they collude, know each
    other's identifiers, and implement the worst-case strategy the paper
    simulates —

    - a malicious node that receives a pull request replies with a view of
      [v] identifiers drawn uniformly among the malicious nodes;
    - every round, the coalition sends push messages to correct peers,
      each containing [v] uniformly random malicious identifiers; the
      {e attack force} [F] scales how many such pushes are sent per
      malicious node per round relative to a correct node's single push.

    Strategies vary only the targeting of pushes:
    - {!Flood}: pushes spread uniformly over all correct nodes (the
      evaluation's default);
    - {!Eclipse}: all pushes concentrate on one victim (the §5 scenario);
    - {!Silent}: no pushes at all (SPS's favorable [F = 0] case — the
      adversary still answers pulls). *)

type strategy = Flood | Eclipse of Basalt_proto.Node_id.t | Silent

type t
(** The (collective) adversary state. *)

val create :
  rng:Basalt_prng.Rng.t ->
  malicious:Basalt_proto.Node_id.t array ->
  correct:Basalt_proto.Node_id.t array ->
  v:int ->
  force:float ->
  ?strategy:strategy ->
  send:(src:Basalt_proto.Node_id.t -> dst:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> unit) ->
  unit ->
  t
(** [create ~rng ~malicious ~correct ~v ~force ~send ()] prepares the
    coalition.  [v] is the view size used in forged messages; [force] is
    [F] (may be fractional — the expected number of pushes is
    [F * |malicious|] per round).
    @raise Invalid_argument if [malicious] is empty (use no adversary
    instead), [v <= 0], or [force < 0]. *)

val is_malicious : t -> Basalt_proto.Node_id.t -> bool
(** [is_malicious t id] tests coalition membership in O(1). *)

val malicious_view : t -> Basalt_proto.Node_id.t array
(** [malicious_view t] is a fresh forged view: [v] uniformly random
    malicious identifiers. *)

val on_message :
  t -> victim_reply:bool -> from:Basalt_proto.Node_id.t ->
  to_:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> unit
(** [on_message t ~victim_reply ~from ~to_ msg] processes a message
    delivered to malicious node [to_]: pull requests are answered with a
    forged view (unless [victim_reply] is [false], modelling an adversary
    that also censors by silence). Other messages are absorbed. *)

val on_round : t -> unit
(** [on_round t] sends this round's push volley according to the strategy
    and force. *)

val pushes_sent : t -> int
(** [pushes_sent t] is the total number of forged pushes so far. *)

val strategy : t -> strategy
(** [strategy t] is the configured attack strategy. *)
