(** Tracker of announced-but-missing messages.

    When an [IHave] digest advertises a message we have not received,
    the identifier is tracked here together with every peer that
    advertised it.  Each heartbeat ages the entries; an entry older
    than the configured timeout triggers a recovery attempt — the
    caller grafts towards the next advertiser and re-requests — until
    the message arrives or the retry budget is exhausted.

    Entries are kept in arrival order and advertisers in announcement
    order, so recovery is deterministic. *)

type t

val create : timeout:int -> retries:int -> unit -> t
(** [create ~timeout ~retries ()] tracks nothing yet.
    @raise Invalid_argument if [timeout < 1] or [retries < 0]. *)

val note : t -> Basalt_proto.Message.mid -> holder:Basalt_proto.Node_id.t -> bool
(** [note t mid ~holder] records that [holder] advertised [mid].
    [true] when [mid] was not yet tracked (the caller should request it
    from [holder] right away); [false] adds [holder] as a backup
    advertiser. *)

val received : t -> Basalt_proto.Message.mid -> unit
(** [received t mid] stops tracking [mid] (the message arrived). *)

val tick : t -> (Basalt_proto.Message.mid * Basalt_proto.Node_id.t) list
(** [tick t] ages every entry by one heartbeat and returns the
    recovery actions due: for each entry past its timeout, the
    identifier and the advertiser to graft towards (advertisers
    rotate, so consecutive attempts target different peers when
    possible).  Entries out of retries are dropped. *)

val pending : t -> int
(** [pending t] is the number of tracked identifiers. *)
