module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id

type record = {
  mutable publish_time : float option;
  times : float option array;  (* per node, delivery instant *)
}

type t = {
  n : int;
  table : (int * int, record) Hashtbl.t;
  order : (int * int) Queue.t;  (* first-recorded order *)
  mutable dups : int;
}

let key (m : Message.mid) = (Node_id.to_int m.Message.origin, m.Message.seqno)

let create ~n () =
  if n < 1 then invalid_arg "Delivery.create: n < 1";
  { n; table = Hashtbl.create 64; order = Queue.create (); dups = 0 }

let record t mid =
  let k = key mid in
  match Hashtbl.find_opt t.table k with
  | Some r -> r
  | None ->
      let r = { publish_time = None; times = Array.make t.n None } in
      Hashtbl.replace t.table k r;
      Queue.push k t.order;
      r

let published t mid ~time = (record t mid).publish_time <- Some time

let delivered t mid ~node ~time =
  if node >= 0 && node < t.n then begin
    let r = record t mid in
    match r.times.(node) with
    | Some _ -> t.dups <- t.dups + 1
    | None -> r.times.(node) <- Some time
  end

let messages t = Queue.length t.order
let duplicate_deliveries t = t.dups

let fold t f acc =
  Queue.fold (fun acc k -> f acc (Hashtbl.find t.table k)) acc t.order

let fraction ?(only = fun _ -> true) t =
  let delivered, eligible =
    fold t
      (fun (d, e) r ->
        let d = ref d and e = ref e in
        for i = 0 to t.n - 1 do
          if only i then begin
            incr e;
            match r.times.(i) with Some _ -> incr d | None -> ()
          end
        done;
        (!d, !e))
      (0, 0)
  in
  if eligible = 0 then 0.0 else float_of_int delivered /. float_of_int eligible

let time_to_fraction ?(only = fun _ -> true) t ~frac r =
  match r.publish_time with
  | None -> None
  | Some t0 ->
      let latencies = ref [] in
      let eligible = ref 0 in
      for i = 0 to t.n - 1 do
        if only i then begin
          incr eligible;
          match r.times.(i) with
          | Some ti -> latencies := (ti -. t0) :: !latencies
          | None -> ()
        end
      done;
      if !eligible = 0 then None
      else begin
        let need =
          int_of_float (Float.ceil (frac *. float_of_int !eligible))
        in
        let sorted = List.sort Float.compare !latencies in
        if need = 0 then Some 0.0
        else if List.length sorted < need then None
        else Some (List.nth sorted (need - 1))
      end

let median_time_to_fraction ?only t ~frac =
  let times = fold t (fun acc r -> time_to_fraction ?only t ~frac r :: acc) [] in
  let times = List.rev times in
  let reached = List.filter_map Fun.id times in
  if 2 * List.length reached < List.length times + 1 then None
  else begin
    let sorted = List.sort Float.compare reached in
    Some (List.nth sorted (List.length sorted / 2))
  end
