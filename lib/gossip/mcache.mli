(** Bounded message cache: deduplication plus the [IHave] window.

    Stores the last [capacity] messages seen (payload and hop count),
    evicting oldest-first, and keeps a ring of [history] advertisement
    windows: a message entered in one of the last [history] heartbeats
    appears in {!window} and is advertised in [IHave] digests;
    {!shift} closes the current window at each heartbeat.

    Deduplication is bounded by construction: once a message falls out
    of the cache the layer may accept it again.  With the default
    capacity this horizon is far beyond the [history * heartbeat]
    interval during which duplicates actually circulate.

    The cache never iterates its hash table (insertion order lives in an
    explicit queue), so no behaviour depends on hash-bucket layout. *)

type t

val create : capacity:int -> history:int -> t
(** [create ~capacity ~history] is an empty cache.
    @raise Invalid_argument if [capacity < 1] or [history < 1]. *)

val seen : t -> Basalt_proto.Message.mid -> bool
(** [seen t mid] is whether [mid] is currently cached. *)

val add : t -> Basalt_proto.Message.mid -> hops:int -> bytes -> unit
(** [add t mid ~hops payload] inserts a message into the cache and the
    current advertisement window; a no-op when [mid] is already
    cached.  Evicts the oldest entry beyond capacity. *)

val find : t -> Basalt_proto.Message.mid -> (bytes * int) option
(** [find t mid] is the cached [(payload, hops)], if still retained —
    how [IWant] requests are served. *)

val shift : t -> unit
(** [shift t] closes the current advertisement window (called once per
    heartbeat): the oldest window's identifiers stop being advertised
    (they remain cached until evicted by capacity). *)

val window : t -> Basalt_proto.Message.mid list
(** [window t] is the identifiers to advertise: every message added
    within the last [history] windows, most recent window first,
    newest-first within a window.  Deterministic insertion order. *)

val size : t -> int
(** [size t] is the number of cached messages. *)
