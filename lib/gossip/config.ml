type t = {
  degree : int;
  degree_lo : int;
  degree_hi : int;
  lazy_fanout : int;
  history : int;
  cache_capacity : int;
  iwant_timeout : int;
  iwant_retries : int;
}

let make ?(degree = 4) ?(degree_lo = 2) ?(degree_hi = 8) ?(lazy_fanout = 6)
    ?(history = 3) ?(cache_capacity = 512) ?(iwant_timeout = 1)
    ?(iwant_retries = 3) () =
  if degree_lo <= 0 || degree < degree_lo || degree_hi < degree then
    invalid_arg "Gossip.Config.make: need 0 < degree_lo <= degree <= degree_hi";
  if lazy_fanout < 0 then invalid_arg "Gossip.Config.make: lazy_fanout < 0";
  if history < 1 then invalid_arg "Gossip.Config.make: history < 1";
  if cache_capacity < 1 then
    invalid_arg "Gossip.Config.make: cache_capacity < 1";
  if iwant_timeout < 1 then invalid_arg "Gossip.Config.make: iwant_timeout < 1";
  if iwant_retries < 0 then invalid_arg "Gossip.Config.make: iwant_retries < 0";
  {
    degree;
    degree_lo;
    degree_hi;
    lazy_fanout;
    history;
    cache_capacity;
    iwant_timeout;
    iwant_retries;
  }

let default = make ()
