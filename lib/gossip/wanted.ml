module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id

type entry = {
  mid : Message.mid;
  mutable holders : Node_id.t list;  (* announcement order *)
  mutable age : int;
  mutable attempts : int;
}

type t = {
  timeout : int;
  retries : int;
  mutable entries : entry list;  (* arrival order *)
}

let create ~timeout ~retries () =
  if timeout < 1 then invalid_arg "Wanted.create: timeout < 1";
  if retries < 0 then invalid_arg "Wanted.create: retries < 0";
  { timeout; retries; entries = [] }

let find t mid =
  List.find_opt (fun e -> Message.mid_equal e.mid mid) t.entries

let note t mid ~holder =
  match find t mid with
  | Some e ->
      if not (List.exists (Node_id.equal holder) e.holders) then
        e.holders <- e.holders @ [ holder ];
      false
  | None ->
      t.entries <-
        t.entries @ [ { mid; holders = [ holder ]; age = 0; attempts = 0 } ];
      true

let received t mid =
  t.entries <-
    List.filter (fun e -> not (Message.mid_equal e.mid mid)) t.entries

let tick t =
  let due = ref [] in
  let keep =
    List.filter
      (fun e ->
        e.age <- e.age + 1;
        if e.age < t.timeout then true
        else
          match e.holders with
          | [] -> false
          | h :: rest ->
              if e.attempts >= t.retries then false
              else begin
                (* Rotate so the retry targets the next advertiser. *)
                (match rest with
                | [] -> ()
                | _ :: _ -> e.holders <- rest @ [ h ]);
                let target = List.hd e.holders in
                e.age <- 0;
                e.attempts <- e.attempts + 1;
                due := (e.mid, target) :: !due;
                true
              end)
      t.entries
  in
  t.entries <- keep;
  List.rev !due

let pending t = List.length t.entries
