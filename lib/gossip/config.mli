(** Parameters of the epidemic broadcast layer (DESIGN.md §11).

    The protocol keeps an {e eager} mesh of [degree] peers receiving
    full messages immediately, bounded within [\[degree_lo, degree_hi\]]
    by graft/prune repair, and serves everyone else lazily through
    [IHave] digests — the Plumtree / gossipsub split between the
    spanning-tree payload path and the gossip repair path. *)

type t = private {
  degree : int;  (** Target eager-push degree D. *)
  degree_lo : int;
      (** Lower mesh bound — the churn floor: the heartbeat's
          mesh rotation never demotes below it, and the top-up grafts
          back towards [degree]. *)
  degree_hi : int;
      (** Upper mesh bound: incoming grafts beyond it are refused and
          the heartbeat prunes back down to it. *)
  lazy_fanout : int;
      (** Non-mesh peers receiving an [IHave] digest each heartbeat. *)
  history : int;
      (** Heartbeats a message identifier stays advertised in digests. *)
  cache_capacity : int;
      (** Messages retained for deduplication and for serving [IWant]
          requests; the oldest entry is evicted first. *)
  iwant_timeout : int;
      (** Heartbeats to wait for an announced-but-missing message
          before grafting towards another advertiser and re-requesting. *)
  iwant_retries : int;
      (** Recovery attempts per missing message before giving up. *)
}

val make :
  ?degree:int ->
  ?degree_lo:int ->
  ?degree_hi:int ->
  ?lazy_fanout:int ->
  ?history:int ->
  ?cache_capacity:int ->
  ?iwant_timeout:int ->
  ?iwant_retries:int ->
  unit ->
  t
(** [make ()] is the default configuration: [degree = 4] within
    [\[2, 8\]], [lazy_fanout = 6], [history = 3], [cache_capacity =
    512], one-heartbeat recovery timeout with 3 retries.
    @raise Invalid_argument unless
    [0 < degree_lo <= degree <= degree_hi], [lazy_fanout >= 0],
    [history >= 1], [cache_capacity >= 1], [iwant_timeout >= 1] and
    [iwant_retries >= 0]. *)

val default : t
(** [default] is [make ()]. *)
