(** Run-wide delivery bookkeeping for broadcast experiments and tests.

    One tracker per simulated run records, in virtual time, when each
    message was published and when each node delivered it; the queries
    derive the §-style dissemination metrics — delivery fraction,
    time-to-99% — without touching the protocol state.  Iteration
    follows explicit publish order (never hash-table order), so every
    aggregate is deterministic. *)

type t

val create : n:int -> unit -> t
(** [create ~n ()] tracks deliveries for nodes [0 .. n-1].
    @raise Invalid_argument if [n < 1]. *)

val published : t -> Basalt_proto.Message.mid -> time:float -> unit
(** [published t mid ~time] records the publish instant.  May be called
    after the publisher's own {!delivered} (the local delivery fires
    inside [publish]); the publish time always wins. *)

val delivered : t -> Basalt_proto.Message.mid -> node:int -> time:float -> unit
(** [delivered t mid ~node ~time] records a delivery callback.  A
    second delivery of the same message by the same node is counted in
    {!duplicate_deliveries} (the exactly-once property asserts it never
    happens); nodes outside [0 .. n-1] are ignored. *)

val messages : t -> int
(** [messages t] is the number of distinct messages recorded. *)

val duplicate_deliveries : t -> int
(** [duplicate_deliveries t] counts re-deliveries — 0 when the
    broadcast layer honours exactly-once delivery. *)

val fraction : ?only:(int -> bool) -> t -> float
(** [fraction t] is delivered (message, node) pairs over all such
    pairs — 1.0 means every node got every message.  [only] restricts
    the node population (e.g. to nodes alive at the end); default:
    everyone.  0 when nothing was published or the population is
    empty. *)

val median_time_to_fraction : ?only:(int -> bool) -> t -> frac:float -> float option
(** [median_time_to_fraction t ~frac] is, per message, the delay from
    publish until a [frac] fraction of the ([only]-restricted)
    population had delivered it, medianed over messages; [None] when a
    majority of messages never reached the threshold. *)
