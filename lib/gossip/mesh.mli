(** The eager-push peer set.

    A small insertion-ordered set (degree is bounded by
    [Config.degree_hi], so linear operations are fine) of the peers
    that receive full messages immediately.  Insertion order is the
    only order the protocol ever observes, keeping mesh behaviour
    independent of identifier values. *)

type t

val create : unit -> t
(** [create ()] is an empty mesh. *)

val mem : t -> Basalt_proto.Node_id.t -> bool
(** [mem t p] is whether [p] is an eager peer. *)

val add : t -> Basalt_proto.Node_id.t -> bool
(** [add t p] appends [p]; [false] (and no change) when already
    present. *)

val remove : t -> Basalt_proto.Node_id.t -> unit
(** [remove t p] demotes [p]; a no-op when absent. *)

val degree : t -> int
(** [degree t] is the number of eager peers. *)

val peers : t -> Basalt_proto.Node_id.t list
(** [peers t] in insertion order. *)
