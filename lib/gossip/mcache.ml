module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id

type entry = { payload : bytes; hops : int }

(* Keys are plain int pairs so the generic [Hashtbl] hashes only
   structural integers; the table is never iterated — insertion order
   lives in [order]. *)
type key = int * int

type t = {
  capacity : int;
  history : int;
  table : (key, entry) Hashtbl.t;
  order : key Queue.t;
  windows : Message.mid list array;  (* ring; [head] is current *)
  mutable head : int;
}

let key (m : Message.mid) = (Node_id.to_int m.Message.origin, m.Message.seqno)

let create ~capacity ~history =
  if capacity < 1 then invalid_arg "Mcache.create: capacity < 1";
  if history < 1 then invalid_arg "Mcache.create: history < 1";
  {
    capacity;
    history;
    table = Hashtbl.create (2 * capacity);
    order = Queue.create ();
    windows = Array.make history [];
    head = 0;
  }

let seen t mid = Hashtbl.mem t.table (key mid)

let add t mid ~hops payload =
  let k = key mid in
  if not (Hashtbl.mem t.table k) then begin
    Hashtbl.replace t.table k { payload; hops };
    Queue.push k t.order;
    t.windows.(t.head) <- mid :: t.windows.(t.head);
    while Hashtbl.length t.table > t.capacity do
      let oldest = Queue.pop t.order in
      Hashtbl.remove t.table oldest
    done
  end

let find t mid =
  match Hashtbl.find_opt t.table (key mid) with
  | Some e -> Some (e.payload, e.hops)
  | None -> None

let shift t =
  t.head <- (t.head + 1) mod t.history;
  t.windows.(t.head) <- []

(* Most recent window first: walk the ring backwards from [head]. *)
let window t =
  let out = ref [] in
  for i = t.history - 1 downto 0 do
    let slot = (t.head - i + t.history) mod t.history in
    out := t.windows.(slot) :: !out
  done;
  List.concat !out

let size t = Hashtbl.length t.table
