(** The epidemic broadcast node (DESIGN.md §11).

    An eager/lazy-push dissemination layer in the Plumtree / gossipsub
    family, running {e on top of} any random peer sampling service:
    full messages are pushed immediately along a small eager mesh
    (degree kept within the {!Config.t} bounds by graft/prune repair),
    while every other known peer receives periodic [IHave] digests and
    pulls missing messages with [IWant].  The mesh is replenished from
    the sampler's output, so a sampler that bounds Byzantine
    over-representation (Basalt) keeps the dissemination tree mostly
    correct even under attack — the application-level payoff measured
    by the [broadcast] experiment.

    The layer shares the sampler's transport: its five wire frames
    ([Gossip]/[IHave]/[IWant]/[Graft]/[Prune],
    {!Basalt_proto.Message.is_broadcast}) ride the same
    {!Basalt_proto.Rps.send} callback, and the host (simulation runner
    or UDP event loop) routes inbound broadcast frames here via
    {!on_message} and everything else to the sampler.

    Determinism: all randomness is drawn from the [rng] handed to
    {!create} — split it from the per-concern master stream, never
    share it with another consumer (lint rule D10).  Telemetry goes
    through the optional [obs] registry and observes only
    deterministic quantities (counts and hop distances). *)

type t

type stats = {
  published : int;  (** Messages published locally. *)
  delivered : int;
      (** [deliver] callbacks fired (one per unique message, local
          publishes included). *)
  duplicates : int;  (** Redundant data frames received. *)
  ihave_sent : int;  (** [IHave] digest frames sent. *)
  iwant_sent : int;  (** [IWant] request frames sent. *)
  grafts_sent : int;  (** [Graft] frames sent. *)
  prunes_sent : int;  (** [Prune] frames sent. *)
}
(** Plain counters mirroring the [gossip.*] instruments, readable
    without an enabled registry. *)

val create :
  ?config:Config.t ->
  ?obs:Basalt_obs.Obs.t ->
  node:Basalt_proto.Node_id.t ->
  view:(unit -> Basalt_proto.Node_id.t array) ->
  rng:Basalt_prng.Rng.t ->
  send:Basalt_proto.Rps.send ->
  deliver:(Basalt_proto.Message.mid -> bytes -> unit) ->
  unit ->
  t
(** [create ~node ~view ~rng ~send ~deliver ()] builds one node's
    broadcast layer.  [view] exposes the sampler's current neighbour
    set (the lazy-digest audience; an empty view — e.g.
    {!Basalt_proto.Rps.null} — is tolerated and simply mutes the
    layer).  [deliver] is invoked exactly once per message the node
    receives (or publishes), in receipt order.  [obs] (default
    disabled, free) registers the [gossip.published / delivered /
    duplicates / ihave / iwant / grafts / prunes] counters and the
    [gossip.hops] histogram of hop distances at delivery.  Under
    tracing, every publish and delivery additionally emits a
    [gossip.publish] / [gossip.deliver] event whose [trace] field is
    the broadcast's ["origin#seqno"] identity, so per-message
    dissemination curves (hop latency, time-to-delivery) are derivable
    offline with [tool/trace] (DESIGN.md §8). *)

val of_rps :
  ?config:Config.t ->
  ?obs:Basalt_obs.Obs.t ->
  rps:Basalt_proto.Rps.t ->
  rng:Basalt_prng.Rng.t ->
  send:Basalt_proto.Rps.send ->
  deliver:(Basalt_proto.Message.mid -> bytes -> unit) ->
  unit ->
  t
(** [of_rps ~rps …] is {!create} over the sampler's own identifier and
    view. *)

val node : t -> Basalt_proto.Node_id.t
(** [node t] is the local identifier (the origin of published
    messages). *)

val publish : t -> bytes -> Basalt_proto.Message.mid
(** [publish t payload] originates a message: assigns the next
    sequence number, delivers it locally, and eager-pushes it to the
    mesh.  Returns the message identifier.
    @raise Invalid_argument if the payload exceeds
    {!Basalt_codec.Wire.max_payload} bytes. *)

val on_message : t -> from:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> bool
(** [on_message t ~from msg] processes one inbound frame.  Returns
    [true] when the frame was a broadcast frame (consumed here),
    [false] for sampler frames the host should route to the RPS
    layer. *)

val on_samples : t -> Basalt_proto.Node_id.t list -> unit
(** [on_samples t ps] feeds fresh sampler output; the most recent
    identifiers are kept as mesh replenishment candidates (preferred
    over the raw view, since the secure sample stream is what bounds
    Byzantine mesh membership). *)

val heartbeat : t -> unit
(** [heartbeat t] runs one maintenance round: retries missing
    messages (graft + re-request towards the next advertiser), rotates
    the oldest eager peer out (never below [degree_lo], so the mesh
    keeps tracking the {e current} sample stream quality), tops the
    mesh back up to the target degree, prunes it down to [degree_hi]
    when grafts overshot, and sends the [IHave] digest of the recent
    windows to [lazy_fanout] non-mesh peers.  Call it at the sampler's
    round cadence. *)

val eager_peers : t -> Basalt_proto.Node_id.t list
(** [eager_peers t] is the current mesh, in insertion order. *)

val eager_degree : t -> int
(** [eager_degree t] is [List.length (eager_peers t)]. *)

val stats : t -> stats
(** [stats t] reads the plain counters. *)
