module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id
module Rps = Basalt_proto.Rps
module Rng = Basalt_prng.Rng
module Wire = Basalt_codec.Wire
module Obs = Basalt_obs.Obs

(* Sampler outputs retained as mesh replenishment candidates. *)
let sample_buffer_cap = 32

type stats = {
  published : int;
  delivered : int;
  duplicates : int;
  ihave_sent : int;
  iwant_sent : int;
  grafts_sent : int;
  prunes_sent : int;
}

type t = {
  config : Config.t;
  node : Node_id.t;
  view : unit -> Node_id.t array;
  rng : Rng.t;
  send : Rps.send;
  obs : Obs.t;
  deliver : Message.mid -> bytes -> unit;
  cache : Mcache.t;
  mesh : Mesh.t;
  wanted : Wanted.t;
  mutable seqno : int;
  mutable samples : Node_id.t list;  (* newest first, no self, no dups *)
  (* plain mirrors of the obs counters *)
  mutable published : int;
  mutable delivered : int;
  mutable duplicates : int;
  mutable ihave_sent : int;
  mutable iwant_sent : int;
  mutable grafts_sent : int;
  mutable prunes_sent : int;
  c_published : Obs.Counter.t;
  c_delivered : Obs.Counter.t;
  c_duplicates : Obs.Counter.t;
  c_ihave : Obs.Counter.t;
  c_iwant : Obs.Counter.t;
  c_grafts : Obs.Counter.t;
  c_prunes : Obs.Counter.t;
  h_hops : Obs.Histogram.t;
}

let hop_edges = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 8.0; 10.0; 12.0; 16.0; 24.0 |]

let create ?(config = Config.default) ?(obs = Obs.disabled) ~node ~view ~rng
    ~send ~deliver () =
  {
    config;
    node;
    view;
    rng;
    send;
    obs;
    deliver;
    cache =
      Mcache.create ~capacity:config.Config.cache_capacity
        ~history:config.Config.history;
    mesh = Mesh.create ();
    wanted =
      Wanted.create ~timeout:config.Config.iwant_timeout
        ~retries:config.Config.iwant_retries ();
    seqno = 0;
    samples = [];
    published = 0;
    delivered = 0;
    duplicates = 0;
    ihave_sent = 0;
    iwant_sent = 0;
    grafts_sent = 0;
    prunes_sent = 0;
    c_published = Obs.counter obs "gossip.published";
    c_delivered = Obs.counter obs "gossip.delivered";
    c_duplicates = Obs.counter obs "gossip.duplicates";
    c_ihave = Obs.counter obs "gossip.ihave";
    c_iwant = Obs.counter obs "gossip.iwant";
    c_grafts = Obs.counter obs "gossip.grafts";
    c_prunes = Obs.counter obs "gossip.prunes";
    h_hops = Obs.histogram ~edges:hop_edges obs "gossip.hops";
  }

let of_rps ?config ?obs ~rps ~rng ~send ~deliver () =
  create ?config ?obs ~node:rps.Rps.node ~view:rps.Rps.current_view ~rng ~send
    ~deliver ()

let node t = t.node
let eager_peers t = Mesh.peers t.mesh
let eager_degree t = Mesh.degree t.mesh

let stats t =
  {
    published = t.published;
    delivered = t.delivered;
    duplicates = t.duplicates;
    ihave_sent = t.ihave_sent;
    iwant_sent = t.iwant_sent;
    grafts_sent = t.grafts_sent;
    prunes_sent = t.prunes_sent;
  }

let send_prune t ~dst =
  t.prunes_sent <- t.prunes_sent + 1;
  Obs.Counter.incr t.c_prunes;
  t.send ~dst Message.Prune

let send_graft t ~dst =
  t.grafts_sent <- t.grafts_sent + 1;
  Obs.Counter.incr t.c_grafts;
  t.send ~dst Message.Graft

let send_iwant t ~dst mids =
  t.iwant_sent <- t.iwant_sent + 1;
  Obs.Counter.incr t.c_iwant;
  t.send ~dst (Message.Iwant mids)

(* A broadcast's identity doubles as its trace id: every event of one
   dissemination carries the same "origin#seqno" string, so the offline
   analyzer can reconstruct per-message hop counts and time-to-delivery
   without protocol knowledge (DESIGN.md §8). *)
let trace_id mid =
  Printf.sprintf "%d#%d"
    (Node_id.to_int mid.Message.origin)
    mid.Message.seqno

let deliver t mid ~hops payload =
  t.delivered <- t.delivered + 1;
  Obs.Counter.incr t.c_delivered;
  Obs.Histogram.observe t.h_hops (float_of_int hops);
  if Obs.tracing t.obs then
    Obs.trace t.obs ~name:"gossip.deliver"
      [
        ("trace", Obs.Str (trace_id mid));
        ("node", Obs.Int (Node_id.to_int t.node));
        ("hops", Obs.Int hops);
      ];
  t.deliver mid payload

let eager_push t ~mid ~hops ~payload ~skip =
  let frame = Message.Gossip { mid; hops; payload } in
  List.iter
    (fun p ->
      if
        (not (Node_id.equal p t.node))
        && (not (Node_id.equal p mid.Message.origin))
        && not (List.exists (Node_id.equal p) skip)
      then t.send ~dst:p frame)
    (Mesh.peers t.mesh)

let publish t payload =
  if Bytes.length payload > Wire.max_payload then
    invalid_arg "Gossip.publish: payload too large";
  let mid = { Message.origin = t.node; seqno = t.seqno } in
  t.seqno <- t.seqno + 1;
  t.published <- t.published + 1;
  Obs.Counter.incr t.c_published;
  if Obs.tracing t.obs then
    Obs.trace t.obs ~name:"gossip.publish"
      [
        ("trace", Obs.Str (trace_id mid));
        ("node", Obs.Int (Node_id.to_int t.node));
        ("bytes", Obs.Int (Bytes.length payload));
      ];
  Mcache.add t.cache mid ~hops:0 payload;
  deliver t mid ~hops:0 payload;
  (* The frame carries the hop distance at receipt: direct mesh peers
     receive it one hop away. *)
  eager_push t ~mid ~hops:1 ~payload ~skip:[];
  mid

let on_data t ~from mid hops payload =
  if Mcache.seen t.cache mid then begin
    t.duplicates <- t.duplicates + 1;
    Obs.Counter.incr t.c_duplicates;
    (* Plumtree: a redundant eager link is demoted to lazy — but never
       below the target degree, so loss cannot collapse the mesh. *)
    if Mesh.mem t.mesh from && Mesh.degree t.mesh > t.config.Config.degree
    then begin
      Mesh.remove t.mesh from;
      send_prune t ~dst:from
    end
  end
  else begin
    Mcache.add t.cache mid ~hops payload;
    Wanted.received t.wanted mid;
    deliver t mid ~hops payload;
    (* The peer that got a new message to us first is a good eager
       neighbour. *)
    if Mesh.degree t.mesh < t.config.Config.degree_hi then
      ignore (Mesh.add t.mesh from);
    let hops' = min (hops + 1) Wire.max_hops in
    eager_push t ~mid ~hops:hops' ~payload ~skip:[ from ]
  end

let on_ihave t ~from mids =
  let fresh =
    Array.to_list mids
    |> List.filter (fun mid ->
           (not (Mcache.seen t.cache mid))
           && Wanted.note t.wanted mid ~holder:from)
  in
  match fresh with
  | [] -> ()
  | _ :: _ -> send_iwant t ~dst:from (Array.of_list fresh)

let on_iwant t ~from mids =
  Array.iter
    (fun mid ->
      match Mcache.find t.cache mid with
      | None -> ()
      | Some (payload, hops) ->
          let hops' = min (hops + 1) Wire.max_hops in
          t.send ~dst:from (Message.Gossip { mid; hops = hops'; payload }))
    mids

let on_graft t ~from =
  if not (Mesh.mem t.mesh from) then begin
    if Mesh.degree t.mesh < t.config.Config.degree_hi then
      ignore (Mesh.add t.mesh from)
    else send_prune t ~dst:from
  end

let on_message t ~from msg =
  match msg with
  | Message.Gossip { mid; hops; payload } ->
      on_data t ~from mid hops payload;
      true
  | Message.Ihave mids ->
      on_ihave t ~from mids;
      true
  | Message.Iwant mids ->
      on_iwant t ~from mids;
      true
  | Message.Graft ->
      on_graft t ~from;
      true
  | Message.Prune ->
      Mesh.remove t.mesh from;
      true
  | Message.Pull_request | Message.Pull_reply _ | Message.Push _
  | Message.Push_id _ ->
      false

let on_samples t ps =
  List.iter
    (fun p ->
      if not (Node_id.equal p t.node) then begin
        let without = List.filter (fun q -> not (Node_id.equal p q)) t.samples in
        t.samples <- p :: without
      end)
    ps;
  let rec truncate n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: truncate (n - 1) tl
  in
  t.samples <- truncate sample_buffer_cap t.samples

(* Replenishment candidates: fresh samples first (the secure stream is
   what bounds Byzantine mesh membership), then the raw view; each block
   shuffled so repeated heartbeats don't always pick the same peers. *)
let mesh_candidates t =
  let samples = Array.of_list t.samples in
  Rng.shuffle_in_place t.rng samples;
  let view =
    Array.of_list
      (List.filter
         (fun p -> not (Node_id.equal p t.node))
         (Array.to_list (t.view ())))
  in
  Rng.shuffle_in_place t.rng view;
  Array.append samples view

(* Distinct non-mesh peers from the view — the lazy-digest audience. *)
let lazy_candidates t =
  let out = ref [] in
  Array.iter
    (fun p ->
      if
        (not (Node_id.equal p t.node))
        && (not (Mesh.mem t.mesh p))
        && not (List.exists (Node_id.equal p) !out)
      then out := p :: !out)
    (t.view ());
  let arr = Array.of_list (List.rev !out) in
  Rng.shuffle_in_place t.rng arr;
  arr

let heartbeat t =
  (* 1. Recover announced-but-missing messages: graft towards the next
     advertiser and re-request. *)
  List.iter
    (fun (mid, holder) ->
      if not (Node_id.equal holder t.node) then begin
        if Mesh.degree t.mesh < t.config.Config.degree_hi then
          ignore (Mesh.add t.mesh holder);
        send_graft t ~dst:holder;
        send_iwant t ~dst:holder [| mid |]
      end)
    (Wanted.tick t.wanted);
  (* 2. Opportunistic mesh churn: demote the oldest eager peer (never
     below the churn floor) so mesh membership keeps tracking the
     {e current} sample stream — a poisoned sampler degrades the mesh,
     a secure one keeps replenishing it with correct peers. *)
  (match Mesh.peers t.mesh with
  | oldest :: _ when Mesh.degree t.mesh > t.config.Config.degree_lo ->
      Mesh.remove t.mesh oldest;
      send_prune t ~dst:oldest
  | _ -> ());
  (* 3. Top the mesh back up to the target degree. *)
  if Mesh.degree t.mesh < t.config.Config.degree then begin
    let cands = mesh_candidates t in
    let i = ref 0 in
    while
      Mesh.degree t.mesh < t.config.Config.degree && !i < Array.length cands
    do
      let p = cands.(!i) in
      incr i;
      if Mesh.add t.mesh p then send_graft t ~dst:p
    done
  end;
  (* 4. Prune overshoot back down to the upper bound. *)
  while Mesh.degree t.mesh > t.config.Config.degree_hi do
    let arr = Array.of_list (Mesh.peers t.mesh) in
    let p = Rng.pick t.rng arr in
    Mesh.remove t.mesh p;
    send_prune t ~dst:p
  done;
  (* 5. Advertise the recent windows to a few lazy peers. *)
  (match Mcache.window t.cache with
  | [] -> ()
  | wnd ->
      if t.config.Config.lazy_fanout > 0 then begin
        let digest = Message.Ihave (Array.of_list wnd) in
        let cands = lazy_candidates t in
        let k = min t.config.Config.lazy_fanout (Array.length cands) in
        for i = 0 to k - 1 do
          t.ihave_sent <- t.ihave_sent + 1;
          Obs.Counter.incr t.c_ihave;
          t.send ~dst:cands.(i) digest
        done
      end);
  Mcache.shift t.cache
