module Node_id = Basalt_proto.Node_id

type t = { mutable peers : Node_id.t list }

let create () = { peers = [] }
let mem t p = List.exists (Node_id.equal p) t.peers

let add t p =
  if mem t p then false
  else begin
    t.peers <- t.peers @ [ p ];
    true
  end

let remove t p = t.peers <- List.filter (fun q -> not (Node_id.equal p q)) t.peers
let degree t = List.length t.peers
let peers t = t.peers
