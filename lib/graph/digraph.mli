(** Directed graph snapshots of the overlay.

    A snapshot freezes, at measurement time, the directed graph whose
    vertices are all [n] nodes and whose edges go from each node to the
    members of its current view.  Self-loops and duplicate view entries
    are removed. *)

type t
(** An immutable directed graph over vertices [0 .. n-1]. *)

val of_views : n:int -> (int -> Basalt_proto.Node_id.t array) -> t
(** [of_views ~n view] builds the snapshot; [view i] is node [i]'s current
    view (called once per node).  Nodes may return [[||]] (e.g. malicious
    nodes whose internal state is not modelled). *)

val of_adjacency : int array array -> t
(** [of_adjacency adj] wraps an explicit adjacency (for tests); self-loops
    and duplicates are removed.
    @raise Invalid_argument on out-of-range targets. *)

val n : t -> int
(** Number of vertices. *)

val out_neighbors : t -> int -> int array
(** [out_neighbors g u] is the (deduplicated) out-adjacency of [u]. *)

val out_degree : t -> int -> int
(** [out_degree g u] is the number of distinct out-neighbors of [u]. *)

val in_degrees : t -> int array
(** [in_degrees g] is the in-degree of every vertex. *)

val transpose : t -> t
(** [transpose g] reverses every edge. *)

val edge_count : t -> int
(** Total number of directed edges. *)

val has_edge : t -> int -> int -> bool
(** [has_edge g u v] tests for the edge [u -> v] (O(out-degree)). *)

val undirected_neighbors : t -> int -> int array
(** [undirected_neighbors g u] is the union of in- and out-neighbors of
    [u] (computed against the transpose; prefer batching via
    {!transpose} when calling repeatedly). *)
