(** Deterministic observability: typed instruments and a structured trace
    sink (DESIGN.md §8).

    A registry holds monotonic counters, gauges and fixed-bucket
    histograms, found by name (get-or-create), plus an optional trace
    sink that records timestamped structured events.  Design goals, in
    order:

    - {e free when disabled}: instruments requested from {!disabled} are
      fresh unregistered dummies, so a mutation is a single store into a
      record nobody reads — no branch, no allocation on the hot path,
      and no shared state that domains could race on;
    - {e deterministic when enabled}: time comes from an injected clock
      (the virtual [Engine.now] in simulation; the event-loop clock at
      the allowlisted [lib/net] boundary — never the wall clock
      directly), snapshot order is registration order, and all float
      rendering is fixed-format, so rendered output is bit-identical
      across [-j N] parallelism levels;
    - {e confined}: lint rule D8 keeps references to this module inside
      [lib/obs] and the allowlisted instrumentation boundaries.

    Instrument names are shared across nodes of a simulation: two nodes
    asking for counter ["basalt.rounds"] get the same counter, so values
    are per-run aggregates.  A registry must therefore not be shared
    across concurrently running simulations; [lib/sim/runner.ml] creates
    one registry per run, inside the (possibly pooled) run itself. *)

type t
(** An instrument registry plus optional trace sink, or the no-op
    {!disabled} sink. *)

val disabled : t
(** [disabled] is the no-op sink: {!enabled} is [false], instruments
    requested from it are fresh dummies, {!trace} does nothing, and no
    call ever mutates shared state (safe to use from any domain). *)

val create : ?clock:(unit -> float) -> ?trace:bool -> unit -> t
(** [create ()] is a fresh enabled registry.  [clock] stamps trace
    events (default: constantly [0.]; see {!set_clock}); [trace]
    switches event recording on (default [false] — instruments only). *)

val enabled : t -> bool
(** [enabled t] is [false] exactly for {!disabled}. *)

val tracing : t -> bool
(** [tracing t] is [true] when [t] records trace events.  Call sites
    with per-event field allocation should guard on this. *)

val set_clock : t -> (unit -> float) -> unit
(** [set_clock t f] replaces the trace timestamp source, e.g. with
    [Engine.now] once the engine exists.  No-op on {!disabled}. *)

(** Monotonically increasing integer counters. *)
module Counter : sig
  type t
  (** A counter cell. *)

  val incr : t -> unit
  (** [incr c] adds one: a single store, even on a disabled dummy. *)

  val add : t -> int -> unit
  (** [add c k] adds [k] (negative [k] is a programming error; not
      checked on the hot path). *)

  val value : t -> int
  (** [value c] is the current count. *)
end

(** Last-value (or running-max) float gauges. *)
module Gauge : sig
  type t
  (** A gauge cell. *)

  val set : t -> float -> unit
  (** [set g x] overwrites the gauge with [x]. *)

  val set_max : t -> float -> unit
  (** [set_max g x] keeps the running maximum of observed values. *)

  val value : t -> float
  (** [value g] is the current value ([0.] if never set). *)
end

(** Fixed-bucket histograms (cumulative-free, one count per bucket). *)
module Histogram : sig
  type t
  (** A histogram cell. *)

  val observe : t -> float -> unit
  (** [observe h x] increments the bucket of the first upper edge
      [>= x], or the overflow bucket when [x] exceeds every edge. *)

  val count : t -> int
  (** [count h] is the number of observations. *)

  val sum : t -> float
  (** [sum h] is the sum of observed values. *)

  val edges : t -> float array
  (** [edges h] is the (sorted, inclusive) upper-edge array the
      histogram was created with. *)

  val bucket_counts : t -> int array
  (** [bucket_counts h] has length [Array.length (edges h) + 1]; the
      last cell counts overflow observations. *)
end

val counter : t -> string -> Counter.t
(** [counter t name] gets or creates the counter [name].  On
    {!disabled}, a fresh unregistered dummy.  @raise Invalid_argument
    if [name] already names a non-counter instrument. *)

val gauge : t -> string -> Gauge.t
(** [gauge t name] gets or creates the gauge [name] (dummy on
    {!disabled}).  @raise Invalid_argument on an instrument-kind
    clash. *)

val histogram : ?edges:float array -> t -> string -> Histogram.t
(** [histogram t name] gets or creates the histogram [name] with the
    given upper [edges] (default: powers of two from 64 to 65536,
    sized for datagram bytes).  [edges] must be sorted strictly
    increasing and non-empty.  On re-lookup the existing instrument is
    returned and [edges] is ignored.  @raise Invalid_argument on bad
    [edges] or an instrument-kind clash. *)

(** {1 Trace events} *)

type value = Int of int | Float of float | Str of string
(** A structured field value. *)

type event = { time : float; name : string; fields : (string * value) list }
(** One trace event: clock stamp, event name, ordered fields. *)

val trace : t -> name:string -> (string * value) list -> unit
(** [trace t ~name fields] appends an event stamped with the registry
    clock.  No-op unless {!tracing}; guard callers that allocate
    [fields] with [if Obs.tracing t then ...]. *)

val events : t -> event list
(** [events t] is all recorded events, oldest first. *)

val event_count : t -> int
(** [event_count t] is [List.length (events t)], without the list. *)

(** {1 Rendering}

    All float formatting is fixed ([%.12g]) so identical runs render
    byte-identical output regardless of parallelism. *)

val event_to_json : ?extra:(string * value) list -> event -> string
(** [event_to_json e] is a single-line JSON object
    [{"t":<time>,"ev":<name>,...fields}].  [extra] fields are
    interleaved right after ["ev"] (used to tag merged streams, e.g.
    with the protocol name). *)

val events_to_jsonl : ?extra:(string * value) list -> t -> string
(** [events_to_jsonl t] is one {!event_to_json} line per event,
    oldest first, each ["\n"]-terminated. *)

val event_of_json : string -> event option
(** [event_of_json line] parses a line produced by {!event_to_json}
    (the subset of JSON this module emits — flat objects of numbers
    and strings).  [None] on malformed input or missing ["t"]/["ev"]
    keys; extra fields (e.g. the [?extra] tags) are returned as
    ordinary event fields. *)

val events_to_csv : t -> string
(** [events_to_csv t] renders events as CSV with header
    [time,event,fields]; the fields column packs [k=v] pairs separated
    by [';']. *)

val snapshot : t -> (string * float) list
(** [snapshot t] is every counter (as float) and gauge, in
    registration order — the stable order that makes reports
    bit-identical across [-j N].  Histograms are excluded; see
    {!histograms}. *)

val histograms : t -> (string * Histogram.t) list
(** [histograms t] is every histogram, in registration order. *)

val render : t -> string
(** [render t] is a human-readable dump of every instrument (the
    SIGUSR1 output of [bin/basalt_node]). *)
