(** Deterministic observability: typed instruments and a structured trace
    sink (DESIGN.md §8).

    A registry holds monotonic counters, gauges and fixed-bucket
    histograms, found by name (get-or-create), plus an optional trace
    sink that records timestamped structured events.  Design goals, in
    order:

    - {e free when disabled}: instruments requested from {!disabled} are
      fresh unregistered dummies, so a mutation is a single store into a
      record nobody reads — no branch, no allocation on the hot path,
      and no shared state that domains could race on;
    - {e deterministic when enabled}: time comes from an injected clock
      (the virtual [Engine.now] in simulation; the event-loop clock at
      the allowlisted [lib/net] boundary — never the wall clock
      directly), snapshot order is registration order, and all float
      rendering is fixed-format, so rendered output is bit-identical
      across [-j N] parallelism levels;
    - {e confined}: lint rule D8 keeps references to this module inside
      [lib/obs] and the allowlisted instrumentation boundaries.

    Instrument names are shared across nodes of a simulation: two nodes
    asking for counter ["basalt.rounds"] get the same counter, so values
    are per-run aggregates.  A registry must therefore not be shared
    across concurrently running simulations; [lib/sim/runner.ml] creates
    one registry per run, inside the (possibly pooled) run itself. *)

type t
(** An instrument registry plus optional trace sink, or the no-op
    {!disabled} sink. *)

val disabled : t
(** [disabled] is the no-op sink: {!enabled} is [false], instruments
    requested from it are fresh dummies, {!trace} does nothing, and no
    call ever mutates shared state (safe to use from any domain). *)

val create : ?clock:(unit -> float) -> ?trace:bool -> unit -> t
(** [create ()] is a fresh enabled registry.  [clock] stamps trace
    events (default: constantly [0.]; see {!set_clock}); [trace]
    switches event recording on (default [false] — instruments only). *)

val enabled : t -> bool
(** [enabled t] is [false] exactly for {!disabled}. *)

val tracing : t -> bool
(** [tracing t] is [true] when [t] records trace events.  Call sites
    with per-event field allocation should guard on this. *)

val set_clock : t -> (unit -> float) -> unit
(** [set_clock t f] replaces the trace timestamp source, e.g. with
    [Engine.now] once the engine exists.  No-op on {!disabled}. *)

(** Monotonically increasing integer counters. *)
module Counter : sig
  type t
  (** A counter cell. *)

  val incr : t -> unit
  (** [incr c] adds one: a single store, even on a disabled dummy. *)

  val add : t -> int -> unit
  (** [add c k] adds [k] (negative [k] is a programming error; not
      checked on the hot path). *)

  val value : t -> int
  (** [value c] is the current count. *)
end

(** Last-value (or running-max) float gauges. *)
module Gauge : sig
  type t
  (** A gauge cell. *)

  val set : t -> float -> unit
  (** [set g x] overwrites the gauge with [x]. *)

  val set_max : t -> float -> unit
  (** [set_max g x] keeps the running maximum of observed values. *)

  val value : t -> float
  (** [value g] is the current value ([0.] if never set). *)
end

(** Fixed-bucket histograms (cumulative-free, one count per bucket). *)
module Histogram : sig
  type t
  (** A histogram cell. *)

  val observe : t -> float -> unit
  (** [observe h x] increments the bucket of the first upper edge
      [>= x], or the overflow bucket when [x] exceeds every edge. *)

  val count : t -> int
  (** [count h] is the number of observations. *)

  val sum : t -> float
  (** [sum h] is the sum of observed values. *)

  val edges : t -> float array
  (** [edges h] is the (sorted, inclusive) upper-edge array the
      histogram was created with. *)

  val bucket_counts : t -> int array
  (** [bucket_counts h] has length [Array.length (edges h) + 1]; the
      last cell counts overflow observations. *)

  val quantile : t -> float -> float
  (** [quantile h q] is the interpolated [q]-quantile estimate
      ([0. <= q <= 1.]): walk the cumulative counts to the bucket
      holding rank [q * count], then interpolate linearly between that
      bucket's edges.  The overflow bucket clamps to the last edge;
      an empty histogram reads [0.].  Pure fold, hence deterministic.
      @raise Invalid_argument if [q] is outside [[0, 1]]. *)
end

(** Mergeable log-bucketed quantile sketches (DDSketch-style).

    Values map to fixed buckets [ceil (log_gamma x)] with
    [gamma = 1.04], so quantile estimates carry a bounded relative
    error (~2%) at a fixed memory footprint, independent of the number
    of observations.  Because the bucket mapping is a global constant,
    {!merge} is plain bucket-wise integer addition — exactly
    associative and commutative, which lets per-shard sketches from a
    parallel fan-out combine into the same result in any order. *)
module Sketch : sig
  type t
  (** A sketch cell. *)

  val make : unit -> t
  (** [make ()] is a fresh empty sketch (a fixed-size bucket array
      covering [1e-9 .. 1e15]; values at or below the low cutoff,
      zeros and negatives included, land in a dedicated cell that
      reads back as [0.]). *)

  val relative_error : float
  (** The worst-case relative error of {!quantile} for in-range
      values: [(gamma - 1) / (gamma + 1)]. *)

  val add : t -> float -> unit
  (** [add s x] records one observation. *)

  val count : t -> int
  (** [count s] is the number of observations. *)

  val sum : t -> float
  (** [sum s] is the exact sum of observed values. *)

  val vmin : t -> float
  (** [vmin s] is the exact minimum observed value ([0.] when empty). *)

  val vmax : t -> float
  (** [vmax s] is the exact maximum observed value ([0.] when empty). *)

  val quantile : t -> float -> float
  (** [quantile s q] estimates the [q]-quantile within
      {!relative_error}, clamped into the observed [[vmin, vmax]]
      range.  [0.] when empty.
      @raise Invalid_argument if [q] is outside [[0, 1]]. *)

  val merge : t -> t -> t
  (** [merge a b] is a fresh sketch holding both inputs' observations:
      bucket-wise addition, exactly associative and commutative.
      Neither input is mutated. *)

  val buckets : t -> (int * int) list
  (** [buckets s] is the nonzero [(cell_index, count)] pairs in
      ascending cell order — the serialization-friendly raw view. *)
end

(** Windowed per-round accumulators.

    A series accumulates observations into a current window
    (count/sum/min/max); {!roll} closes the window and starts a fresh
    one.  The driver calls {!roll_series} once per simulation round, so
    a series is a per-round trajectory recorded in O(rounds) space no
    matter how many observations each round makes. *)
module Series : sig
  type t
  (** A series cell. *)

  type window = {
    w_count : int;  (** observations in the window *)
    w_sum : float;  (** their sum *)
    w_min : float;  (** minimum ([infinity] when the window is empty) *)
    w_max : float;  (** maximum ([neg_infinity] when empty) *)
  }
  (** One closed window's summary. *)

  val observe : t -> float -> unit
  (** [observe s x] records [x] into the current (open) window. *)

  val roll : t -> unit
  (** [roll s] closes the current window (appending its summary) and
      opens an empty one.  Usually reached via {!roll_series}. *)

  val windows : t -> window list
  (** [windows s] is every closed window, oldest first. *)

  val window_count : t -> int
  (** [window_count s] is the number of closed windows. *)

  val total : t -> int
  (** [total s] counts every observation ever made, open window
      included. *)

  val grand_sum : t -> float
  (** [grand_sum s] sums every observation ever made, open window
      included, folding in a fixed order so the float is
      bit-stable. *)
end

val counter : t -> string -> Counter.t
(** [counter t name] gets or creates the counter [name].  On
    {!disabled}, a fresh unregistered dummy.  @raise Invalid_argument
    if [name] already names a non-counter instrument. *)

val gauge : t -> string -> Gauge.t
(** [gauge t name] gets or creates the gauge [name] (dummy on
    {!disabled}).  @raise Invalid_argument on an instrument-kind
    clash. *)

val histogram : ?edges:float array -> t -> string -> Histogram.t
(** [histogram t name] gets or creates the histogram [name] with the
    given upper [edges] (default: powers of two from 64 to 65536,
    sized for datagram bytes).  [edges] must be sorted strictly
    increasing and non-empty.  On re-lookup the existing instrument is
    returned and [edges] is ignored.  @raise Invalid_argument on bad
    [edges] or an instrument-kind clash. *)

val sketch : t -> string -> Sketch.t
(** [sketch t name] gets or creates the quantile sketch [name] (dummy
    on {!disabled}).  @raise Invalid_argument on an instrument-kind
    clash. *)

val series : t -> string -> Series.t
(** [series t name] gets or creates the windowed series [name] (dummy
    on {!disabled}).  @raise Invalid_argument on an instrument-kind
    clash. *)

val roll_series : t -> unit
(** [roll_series t] closes the current window of every registered
    series — the per-round tick, called by the simulation driver at
    each measurement boundary.  No-op on {!disabled}. *)

val now : t -> float
(** [now t] reads the registry clock ([0.] on {!disabled}).  Lets
    instrumented code compute durations (e.g. a pull RTT) in the same
    virtual timebase that stamps trace events, without holding its own
    clock. *)

(** {1 Trace events} *)

type value = Int of int | Float of float | Str of string
(** A structured field value. *)

type event = { time : float; name : string; fields : (string * value) list }
(** One trace event: clock stamp, event name, ordered fields. *)

val trace : t -> name:string -> (string * value) list -> unit
(** [trace t ~name fields] appends an event stamped with the registry
    clock.  No-op unless {!tracing}; guard callers that allocate
    [fields] with [if Obs.tracing t then ...]. *)

val events : t -> event list
(** [events t] is all recorded events, oldest first. *)

val event_count : t -> int
(** [event_count t] is [List.length (events t)], without the list. *)

(** {1 Spans}

    A span is a scoped region of virtual time.  {!span} opens it,
    {!span_end} closes it and emits a single trace event carrying the
    span's causal id ([sid]), start time ([t0]) and duration ([dur])
    alongside the fields given at either end.  Ids come from a
    per-registry counter allocated in open order; since each run owns
    its registry and opens spans in a deterministic order, ids are
    bit-identical across [-j N] (DESIGN.md §8).  An unfinished span
    emits nothing. *)

type span
(** An open span handle (or the no-op {!no_span}). *)

val no_span : span
(** The span that never emits — what {!span} returns when tracing is
    off, so handles can be stored unconditionally. *)

val span : t -> name:string -> (string * value) list -> span
(** [span t ~name fields] opens a span stamped with the current clock.
    Returns {!no_span} unless {!tracing}, making the disabled cost one
    branch. *)

val span_end : ?fields:(string * value) list -> t -> span -> unit
(** [span_end t sp] closes [sp], emitting one event named after the
    span with fields [sid], [t0], [dur], then the open-time fields,
    then [fields].  No-op on {!no_span}. *)

type rtt
(** A request/response round-trip tracker: one pending table per
    protocol instance, one shared RTT sketch per registry.  Built for
    the samplers' pull exchanges (DESIGN.md §8). *)

val rtt : t -> name:string -> rtt
(** [rtt t ~name] makes a tracker whose completed round trips feed the
    quantile sketch [name ^ "_rtt"] and, under tracing, emit spans
    named [name] with [node]/[peer] fields.  On {!disabled}, a dummy
    whose operations reduce to one branch. *)

val rtt_start : rtt -> node:int -> peer:int -> unit
(** [rtt_start r ~node ~peer] records that [node] sent [peer] a
    request now.  A second start to the same peer supersedes the first
    (the superseded span emits nothing, like a lost request). *)

val rtt_finish : rtt -> peer:int -> unit
(** [rtt_finish r ~peer] completes the pending round trip to [peer],
    if any: observes [now - start] into the sketch and closes the
    span.  No-op when no request to [peer] is pending. *)

(** {1 Rendering}

    All float formatting is fixed ([%.12g]) so identical runs render
    byte-identical output regardless of parallelism. *)

val event_to_json : ?extra:(string * value) list -> event -> string
(** [event_to_json e] is a single-line JSON object
    [{"t":<time>,"ev":<name>,...fields}].  [extra] fields are
    interleaved right after ["ev"] (used to tag merged streams, e.g.
    with the protocol name). *)

val events_to_jsonl : ?extra:(string * value) list -> t -> string
(** [events_to_jsonl t] is one {!event_to_json} line per event,
    oldest first, each ["\n"]-terminated. *)

val event_of_json : string -> event option
(** [event_of_json line] parses a line produced by {!event_to_json}
    (the subset of JSON this module emits — flat objects of numbers
    and strings).  [None] on malformed input or missing ["t"]/["ev"]
    keys; extra fields (e.g. the [?extra] tags) are returned as
    ordinary event fields. *)

val events_to_csv : t -> string
(** [events_to_csv t] renders events as CSV with header
    [time,event,fields]; the fields column packs [k=v] pairs separated
    by [';'].  A key or value containing a pack metacharacter ([';'],
    ['='], [','], ['"'] or a newline) is quoted with doubled inner
    quotes, and any whole cell containing [','], ['"'] or a newline is
    RFC 4180-quoted, so arbitrary string fields round-trip. *)

val snapshot : t -> (string * float) list
(** [snapshot t] is every counter (as float) and gauge, in
    registration order — the stable order that makes reports
    bit-identical across [-j N].  Histograms, sketches and series are
    excluded; see {!histograms}, {!sketches}, {!all_series}. *)

val histograms : t -> (string * Histogram.t) list
(** [histograms t] is every histogram, in registration order. *)

val sketches : t -> (string * Sketch.t) list
(** [sketches t] is every quantile sketch, in registration order. *)

val all_series : t -> (string * Series.t) list
(** [all_series t] is every windowed series, in registration order. *)

val render : t -> string
(** [render t] is a human-readable dump of every instrument (the
    SIGUSR1 output of [bin/basalt_node]); histograms and sketches
    include interpolated p50/p90/p99 lines when non-empty. *)

val render_prometheus : t -> string
(** [render_prometheus t] renders every instrument in Prometheus text
    exposition format (version 0.0.4): counters and gauges as-is,
    histograms as cumulative [_bucket{le="..."}] lines plus
    [_sum]/[_count], sketches as summaries with
    [quantile="0.5"|"0.9"|"0.99"] lines, series as [_total]/[_windows]
    gauge pairs (Prometheus has no windowed type; scrapes [rate()]
    them).  Instrument names are sanitized to [[a-zA-Z0-9_:]].  Served
    by [bin/basalt_node --metrics-addr]. *)
