module Counter = struct
  type t = { mutable n : int }

  let make () = { n = 0 }
  let incr c = c.n <- c.n + 1
  let add c k = c.n <- c.n + k
  let value c = c.n
end

module Gauge = struct
  type t = { mutable v : float }

  let make () = { v = 0.0 }
  let set g x = g.v <- x
  let set_max g x = if x > g.v then g.v <- x
  let value g = g.v
end

module Histogram = struct
  type t = {
    edges : float array;
    counts : int array;  (* length edges + 1; last cell = overflow *)
    mutable total : int;
    mutable sum : float;
  }

  let make edges =
    let n = Array.length edges in
    if n = 0 then invalid_arg "Obs.histogram: empty edges";
    for i = 1 to n - 1 do
      if edges.(i) <= edges.(i - 1) then
        invalid_arg "Obs.histogram: edges must be strictly increasing"
    done;
    { edges = Array.copy edges; counts = Array.make (n + 1) 0; total = 0; sum = 0.0 }

  let observe h x =
    let n = Array.length h.edges in
    let i = ref 0 in
    while !i < n && x > h.edges.(!i) do
      incr i
    done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.total <- h.total + 1;
    h.sum <- h.sum +. x

  let count h = h.total
  let sum h = h.sum
  let edges h = Array.copy h.edges
  let bucket_counts h = Array.copy h.counts
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type value = Int of int | Float of float | Str of string
type event = { time : float; name : string; fields : (string * value) list }

type t = {
  is_enabled : bool;
  trace_enabled : bool;
  mutable clock : unit -> float;
  (* Registration order, newest first.  Lookup is O(#instruments), which
     is fine: get-or-create runs at node construction, never on the hot
     path, and an association list keeps the registry free of hash
     tables (and of their iteration-order pitfalls). *)
  mutable instruments : (string * instrument) list;
  mutable events_rev : event list;
  mutable n_events : int;
}

let zero_clock () = 0.0

let disabled =
  {
    is_enabled = false;
    trace_enabled = false;
    clock = zero_clock;
    instruments = [];
    events_rev = [];
    n_events = 0;
  }

let create ?(clock = zero_clock) ?(trace = false) () =
  {
    is_enabled = true;
    trace_enabled = trace;
    clock;
    instruments = [];
    events_rev = [];
    n_events = 0;
  }

let enabled t = t.is_enabled
let tracing t = t.trace_enabled
let set_clock t f = if t.is_enabled then t.clock <- f

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let get_or_create t name ~make ~cast =
  match List.assoc_opt name t.instruments with
  | Some i -> (
      match cast i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Obs: %S already registered as a %s" name
               (kind_name i)))
  | None ->
      let i = make () in
      t.instruments <- (name, i) :: t.instruments;
      match cast i with Some x -> x | None -> assert false

let counter t name =
  if not t.is_enabled then Counter.make ()
  else
    get_or_create t name
      ~make:(fun () -> I_counter (Counter.make ()))
      ~cast:(function I_counter c -> Some c | _ -> None)

let gauge t name =
  if not t.is_enabled then Gauge.make ()
  else
    get_or_create t name
      ~make:(fun () -> I_gauge (Gauge.make ()))
      ~cast:(function I_gauge g -> Some g | _ -> None)

let default_edges = [| 64.; 128.; 256.; 512.; 1024.; 2048.; 4096.; 8192.; 16384.; 32768.; 65536. |]

let histogram ?(edges = default_edges) t name =
  if not t.is_enabled then Histogram.make edges
  else
    get_or_create t name
      ~make:(fun () -> I_histogram (Histogram.make edges))
      ~cast:(function I_histogram h -> Some h | _ -> None)

let trace t ~name fields =
  if t.trace_enabled then begin
    t.events_rev <- { time = t.clock (); name; fields } :: t.events_rev;
    t.n_events <- t.n_events + 1
  end

let events t = List.rev t.events_rev
let event_count t = t.n_events

(* Fixed-format floats: the same float always renders the same bytes, so
   traces and snapshots diff clean across -j N. *)
let float_string x = Printf.sprintf "%.12g" x

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Int n -> string_of_int n
  | Float x -> float_string x
  | Str s -> Printf.sprintf "\"%s\"" (escape_json s)

let event_to_json ?(extra = []) e =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "{\"t\":";
  Buffer.add_string buf (float_string e.time);
  Buffer.add_string buf ",\"ev\":\"";
  Buffer.add_string buf (escape_json e.name);
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      Buffer.add_string buf (escape_json k);
      Buffer.add_string buf "\":";
      Buffer.add_string buf (value_to_json v))
    (extra @ e.fields);
  Buffer.add_char buf '}';
  Buffer.contents buf

let events_to_jsonl ?extra t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_to_json ?extra e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* A hand-rolled parser for exactly the JSON subset event_to_json emits:
   one flat object of string/number values per line. *)
let event_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then (incr pos; true) else false
  in
  let parse_string () =
    if not (expect '"') then None
    else begin
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then None
        else
          match line.[!pos] with
          | '"' -> incr pos; Some (Buffer.contents buf)
          | '\\' when !pos + 1 < n ->
              let c = line.[!pos + 1] in
              pos := !pos + 2;
              (match c with
              | 'n' -> Buffer.add_char buf '\n'; loop ()
              | 't' -> Buffer.add_char buf '\t'; loop ()
              | 'r' -> Buffer.add_char buf '\r'; loop ()
              | 'u' ->
                  if !pos + 4 <= n then begin
                    (match int_of_string_opt ("0x" ^ String.sub line !pos 4) with
                    | Some code when code < 0x80 ->
                        Buffer.add_char buf (Char.chr code)
                    | _ -> ());
                    pos := !pos + 4;
                    loop ()
                  end
                  else None
              | c -> Buffer.add_char buf c; loop ())
          | c -> incr pos; Buffer.add_char buf c; loop ()
      in
      loop ()
    end
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then None
    else
      let s = String.sub line start (!pos - start) in
      let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
      if is_float then Option.map (fun x -> Float x) (float_of_string_opt s)
      else Option.map (fun i -> Int i) (int_of_string_opt s)
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Option.map (fun s -> Str s) (parse_string ())
    | _ -> parse_number ()
  in
  let rec parse_members acc =
    match parse_string () with
    | None -> None
    | Some key -> (
        if not (expect ':') then None
        else
          match parse_value () with
          | None -> None
          | Some v ->
              let acc = (key, v) :: acc in
              skip_ws ();
              if expect ',' then (skip_ws (); parse_members acc)
              else if expect '}' then Some (List.rev acc)
              else None)
  in
  if not (expect '{') then None
  else
    match parse_members [] with
    | None -> None
    | Some members -> (
        let time =
          match List.assoc_opt "t" members with
          | Some (Float x) -> Some x
          | Some (Int i) -> Some (float_of_int i)
          | _ -> None
        in
        let name =
          match List.assoc_opt "ev" members with
          | Some (Str s) -> Some s
          | _ -> None
        in
        match (time, name) with
        | Some time, Some name ->
            let fields =
              List.filter (fun (k, _) -> k <> "t" && k <> "ev") members
            in
            Some { time; name; fields }
        | _ -> None)

let value_to_text = function
  | Int n -> string_of_int n
  | Float x -> float_string x
  | Str s -> s

let events_to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time,event,fields\n";
  List.iter
    (fun e ->
      Buffer.add_string buf (float_string e.time);
      Buffer.add_char buf ',';
      Buffer.add_string buf e.name;
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (String.concat ";"
           (List.map (fun (k, v) -> k ^ "=" ^ value_to_text v) e.fields));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let in_order t = List.rev t.instruments

let snapshot t =
  List.filter_map
    (fun (name, i) ->
      match i with
      | I_counter c -> Some (name, float_of_int (Counter.value c))
      | I_gauge g -> Some (name, Gauge.value g)
      | I_histogram _ -> None)
    (in_order t)

let histograms t =
  List.filter_map
    (fun (name, i) ->
      match i with I_histogram h -> Some (name, h) | _ -> None)
    (in_order t)

let render t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, i) ->
      (match i with
      | I_counter c ->
          Buffer.add_string buf
            (Printf.sprintf "counter    %-32s %d" name (Counter.value c))
      | I_gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "gauge      %-32s %s" name
               (float_string (Gauge.value g)))
      | I_histogram h ->
          let cells =
            let edges = Histogram.edges h and counts = Histogram.bucket_counts h in
            let parts = ref [] in
            Array.iteri
              (fun i c ->
                if c > 0 then
                  let label =
                    if i < Array.length edges then
                      "<=" ^ float_string edges.(i)
                    else ">" ^ float_string edges.(Array.length edges - 1)
                  in
                  parts := Printf.sprintf "%s:%d" label c :: !parts)
              counts;
            String.concat " " (List.rev !parts)
          in
          Buffer.add_string buf
            (Printf.sprintf "histogram  %-32s count=%d sum=%s %s" name
               (Histogram.count h)
               (float_string (Histogram.sum h))
               cells));
      Buffer.add_char buf '\n')
    (in_order t);
  if t.trace_enabled then
    Buffer.add_string buf (Printf.sprintf "trace      %-32s %d\n" "events" t.n_events);
  Buffer.contents buf
