module Counter = struct
  type t = { mutable n : int }

  let make () = { n = 0 }
  let incr c = c.n <- c.n + 1
  let add c k = c.n <- c.n + k
  let value c = c.n
end

module Gauge = struct
  type t = { mutable v : float }

  let make () = { v = 0.0 }
  let set g x = g.v <- x
  let set_max g x = if x > g.v then g.v <- x
  let value g = g.v
end

module Histogram = struct
  type t = {
    edges : float array;
    counts : int array;  (* length edges + 1; last cell = overflow *)
    mutable total : int;
    mutable sum : float;
  }

  let make edges =
    let n = Array.length edges in
    if n = 0 then invalid_arg "Obs.histogram: empty edges";
    for i = 1 to n - 1 do
      if edges.(i) <= edges.(i - 1) then
        invalid_arg "Obs.histogram: edges must be strictly increasing"
    done;
    { edges = Array.copy edges; counts = Array.make (n + 1) 0; total = 0; sum = 0.0 }

  let observe h x =
    let n = Array.length h.edges in
    let i = ref 0 in
    while !i < n && x > h.edges.(!i) do
      incr i
    done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.total <- h.total + 1;
    h.sum <- h.sum +. x

  let count h = h.total
  let sum h = h.sum
  let edges h = Array.copy h.edges
  let bucket_counts h = Array.copy h.counts

  (* Interpolated quantile: walk the cumulative counts to the bucket
     containing rank [q * total], then interpolate linearly between that
     bucket's lower and upper edges.  The first bucket's lower edge is
     taken as [min 0 edges.(0)] (these histograms record non-negative
     sizes and latencies); the overflow bucket cannot be interpolated and
     clamps to the last edge.  Everything is a pure fold over the counts,
     so the estimate is deterministic. *)
  let quantile h q =
    if q < 0.0 || q > 1.0 then
      invalid_arg "Obs.Histogram.quantile: q outside [0, 1]";
    if h.total = 0 then 0.0
    else begin
      let n = Array.length h.edges in
      let target = q *. float_of_int h.total in
      let rec find i cum =
        if i > n then h.edges.(n - 1)
        else
          let c = h.counts.(i) in
          if c > 0 && float_of_int (cum + c) >= target then
            if i = n then h.edges.(n - 1)
            else
              let lo =
                if i = 0 then Float.min 0.0 h.edges.(0) else h.edges.(i - 1)
              in
              let hi = h.edges.(i) in
              let frac = (target -. float_of_int cum) /. float_of_int c in
              lo +. ((hi -. lo) *. Float.max 0.0 frac)
          else find (i + 1) (cum + c)
      in
      find 0 0
    end
end

module Sketch = struct
  (* A DDSketch-style log-bucketed quantile sketch: values map to the
     bucket [ceil (log_gamma x)], so any quantile estimate is within a
     fixed relative error of the true value.  The bucket mapping is a
     global constant, which is what makes [merge] a plain bucket-wise
     addition — exactly associative and commutative, the property the
     parallel fan-out and the trace analyzer rely on. *)

  let gamma = 1.04
  let relative_error = (gamma -. 1.0) /. (gamma +. 1.0)
  let ln_gamma = Float.log gamma

  (* Value range covered with full accuracy; anything at or below
     [min_value] (zeros and negatives included) lands in the dedicated
     low cell and reads back as 0, anything above [max_value] clamps to
     the top bucket. *)
  let min_value = 1e-9
  let max_value = 1e15
  let min_index = int_of_float (Float.floor (Float.log min_value /. ln_gamma))
  let max_index = int_of_float (Float.ceil (Float.log max_value /. ln_gamma))

  (* Cell 0 is the low cell; cell [c >= 1] holds bucket [min_index + c - 1]. *)
  let cells_len = max_index - min_index + 2

  type t = {
    cells : int array;
    mutable total : int;
    mutable vsum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let make () =
    {
      cells = Array.make cells_len 0;
      total = 0;
      vsum = 0.0;
      vmin = Float.infinity;
      vmax = Float.neg_infinity;
    }

  let cell_of x =
    if x <= min_value then 0
    else
      let i = int_of_float (Float.ceil (Float.log x /. ln_gamma)) in
      let i = if i < min_index then min_index else i in
      let i = if i > max_index then max_index else i in
      i - min_index + 1

  let value_of_cell c =
    if c = 0 then 0.0
    else 2.0 *. (gamma ** float_of_int (c - 1 + min_index)) /. (gamma +. 1.0)

  let add s x =
    s.cells.(cell_of x) <- s.cells.(cell_of x) + 1;
    s.total <- s.total + 1;
    s.vsum <- s.vsum +. x;
    if x < s.vmin then s.vmin <- x;
    if x > s.vmax then s.vmax <- x

  let count s = s.total
  let sum s = s.vsum
  let vmin s = if s.total = 0 then 0.0 else s.vmin
  let vmax s = if s.total = 0 then 0.0 else s.vmax

  let quantile s q =
    if q < 0.0 || q > 1.0 then
      invalid_arg "Obs.Sketch.quantile: q outside [0, 1]";
    if s.total = 0 then 0.0
    else begin
      let target =
        let r = int_of_float (Float.ceil (q *. float_of_int s.total)) in
        if r < 1 then 1 else if r > s.total then s.total else r
      in
      let rec find c cum =
        if c >= cells_len then s.vmax
        else
          let cum = cum + s.cells.(c) in
          if cum >= target then
            (* Clamp to the observed range so extreme quantiles read back
               the exact min/max rather than a bucket midpoint. *)
            Float.min s.vmax (Float.max s.vmin (value_of_cell c))
          else find (c + 1) cum
      in
      find 0 0
    end

  let merge a b =
    let out = make () in
    Array.iteri (fun i c -> out.cells.(i) <- c + b.cells.(i)) a.cells;
    out.total <- a.total + b.total;
    out.vsum <- a.vsum +. b.vsum;
    out.vmin <- Float.min a.vmin b.vmin;
    out.vmax <- Float.max a.vmax b.vmax;
    out

  let buckets s =
    let out = ref [] in
    for i = cells_len - 1 downto 0 do
      if s.cells.(i) > 0 then out := (i, s.cells.(i)) :: !out
    done;
    !out
end

module Series = struct
  type window = { w_count : int; w_sum : float; w_min : float; w_max : float }

  type t = {
    mutable cur_count : int;
    mutable cur_sum : float;
    mutable cur_min : float;
    mutable cur_max : float;
    mutable closed_rev : window list;
    mutable n_closed : int;
    mutable total : int;
  }

  let make () =
    {
      cur_count = 0;
      cur_sum = 0.0;
      cur_min = Float.infinity;
      cur_max = Float.neg_infinity;
      closed_rev = [];
      n_closed = 0;
      total = 0;
    }

  let observe s x =
    s.cur_count <- s.cur_count + 1;
    s.cur_sum <- s.cur_sum +. x;
    if x < s.cur_min then s.cur_min <- x;
    if x > s.cur_max then s.cur_max <- x;
    s.total <- s.total + 1

  let roll s =
    s.closed_rev <-
      {
        w_count = s.cur_count;
        w_sum = s.cur_sum;
        w_min = s.cur_min;
        w_max = s.cur_max;
      }
      :: s.closed_rev;
    s.n_closed <- s.n_closed + 1;
    s.cur_count <- 0;
    s.cur_sum <- 0.0;
    s.cur_min <- Float.infinity;
    s.cur_max <- Float.neg_infinity

  let windows s = List.rev s.closed_rev
  let window_count s = s.n_closed
  let total s = s.total

  (* Sum over every observation ever made, open window included.  The
     fold runs in a fixed (reverse-registration) order, so the float
     result is bit-stable across runs. *)
  let grand_sum s =
    List.fold_left (fun acc w -> acc +. w.w_sum) s.cur_sum s.closed_rev
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t
  | I_sketch of Sketch.t
  | I_series of Series.t

type value = Int of int | Float of float | Str of string
type event = { time : float; name : string; fields : (string * value) list }

type t = {
  is_enabled : bool;
  trace_enabled : bool;
  mutable clock : unit -> float;
  (* Registration order, newest first.  Lookup is O(#instruments), which
     is fine: get-or-create runs at node construction, never on the hot
     path, and an association list keeps the registry free of hash
     tables (and of their iteration-order pitfalls). *)
  mutable instruments : (string * instrument) list;
  mutable events_rev : event list;
  mutable n_events : int;
  (* Next causal span id; allocation order is trace order, which is
     deterministic per run (DESIGN.md §8). *)
  mutable next_span : int;
}

let zero_clock () = 0.0

let disabled =
  {
    is_enabled = false;
    trace_enabled = false;
    clock = zero_clock;
    instruments = [];
    events_rev = [];
    n_events = 0;
    next_span = 0;
  }

let create ?(clock = zero_clock) ?(trace = false) () =
  {
    is_enabled = true;
    trace_enabled = trace;
    clock;
    instruments = [];
    events_rev = [];
    n_events = 0;
    next_span = 0;
  }

let enabled t = t.is_enabled
let tracing t = t.trace_enabled
let set_clock t f = if t.is_enabled then t.clock <- f

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"
  | I_sketch _ -> "sketch"
  | I_series _ -> "series"

let get_or_create t name ~make ~cast =
  match List.assoc_opt name t.instruments with
  | Some i -> (
      match cast i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Obs: %S already registered as a %s" name
               (kind_name i)))
  | None ->
      let i = make () in
      t.instruments <- (name, i) :: t.instruments;
      match cast i with Some x -> x | None -> assert false

let counter t name =
  if not t.is_enabled then Counter.make ()
  else
    get_or_create t name
      ~make:(fun () -> I_counter (Counter.make ()))
      ~cast:(function I_counter c -> Some c | _ -> None)

let gauge t name =
  if not t.is_enabled then Gauge.make ()
  else
    get_or_create t name
      ~make:(fun () -> I_gauge (Gauge.make ()))
      ~cast:(function I_gauge g -> Some g | _ -> None)

let default_edges = [| 64.; 128.; 256.; 512.; 1024.; 2048.; 4096.; 8192.; 16384.; 32768.; 65536. |]

let histogram ?(edges = default_edges) t name =
  if not t.is_enabled then Histogram.make edges
  else
    get_or_create t name
      ~make:(fun () -> I_histogram (Histogram.make edges))
      ~cast:(function I_histogram h -> Some h | _ -> None)

let sketch t name =
  if not t.is_enabled then Sketch.make ()
  else
    get_or_create t name
      ~make:(fun () -> I_sketch (Sketch.make ()))
      ~cast:(function I_sketch s -> Some s | _ -> None)

let series t name =
  if not t.is_enabled then Series.make ()
  else
    get_or_create t name
      ~make:(fun () -> I_series (Series.make ()))
      ~cast:(function I_series s -> Some s | _ -> None)

let roll_series t =
  List.iter
    (fun (_, i) -> match i with I_series s -> Series.roll s | _ -> ())
    t.instruments

let now t = t.clock ()

let trace t ~name fields =
  if t.trace_enabled then begin
    t.events_rev <- { time = t.clock (); name; fields } :: t.events_rev;
    t.n_events <- t.n_events + 1
  end

let events t = List.rev t.events_rev
let event_count t = t.n_events

(* --- Spans --- *)

type span =
  | No_span
  | Span of {
      sid : int;
      sname : string;
      t0 : float;
      begin_fields : (string * value) list;
    }

let no_span = No_span

let span t ~name fields =
  if not t.trace_enabled then No_span
  else begin
    let sid = t.next_span in
    t.next_span <- sid + 1;
    Span { sid; sname = name; t0 = t.clock (); begin_fields = fields }
  end

let span_end ?(fields = []) t sp =
  match sp with
  | No_span -> ()
  | Span { sid; sname; t0; begin_fields } ->
      let dur = t.clock () -. t0 in
      trace t ~name:sname
        (("sid", Int sid)
        :: ("t0", Float t0)
        :: ("dur", Float dur)
        :: (begin_fields @ fields))

(* --- Pull-RTT trackers --- *)

type rtt = {
  r_reg : t;
  r_sketch : Sketch.t;
  r_name : string;
  (* peer -> (request time, open span).  Never iterated (only point
     lookups), so Hashtbl order cannot leak into any observable. *)
  r_pending : (int, float * span) Hashtbl.t;
}

let rtt t ~name =
  {
    r_reg = t;
    r_sketch = sketch t (name ^ "_rtt");
    r_name = name;
    r_pending = Hashtbl.create 16;
  }

let rtt_start r ~node ~peer =
  if r.r_reg.is_enabled then begin
    let sp =
      if r.r_reg.trace_enabled then
        span r.r_reg ~name:r.r_name [ ("node", Int node); ("peer", Int peer) ]
      else No_span
    in
    Hashtbl.replace r.r_pending peer (r.r_reg.clock (), sp)
  end

let rtt_finish r ~peer =
  if r.r_reg.is_enabled then
    match Hashtbl.find_opt r.r_pending peer with
    | Some (t0, sp) ->
        Hashtbl.remove r.r_pending peer;
        Sketch.add r.r_sketch (r.r_reg.clock () -. t0);
        span_end r.r_reg sp
    | None -> ()

(* Fixed-format floats: the same float always renders the same bytes, so
   traces and snapshots diff clean across -j N.  A rendered float always
   carries a '.' or an exponent, so [event_of_json] can tell [Float 3.]
   from [Int 3] and typed round-trips are exact. *)
let float_string x =
  let s = Printf.sprintf "%.12g" x in
  if
    String.exists
      (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'a')
      s
  then s
  else s ^ ".0"

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Int n -> string_of_int n
  | Float x -> float_string x
  | Str s -> Printf.sprintf "\"%s\"" (escape_json s)

let event_to_json ?(extra = []) e =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "{\"t\":";
  Buffer.add_string buf (float_string e.time);
  Buffer.add_string buf ",\"ev\":\"";
  Buffer.add_string buf (escape_json e.name);
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      Buffer.add_string buf (escape_json k);
      Buffer.add_string buf "\":";
      Buffer.add_string buf (value_to_json v))
    (extra @ e.fields);
  Buffer.add_char buf '}';
  Buffer.contents buf

let events_to_jsonl ?extra t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_to_json ?extra e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* A hand-rolled parser for exactly the JSON subset event_to_json emits:
   one flat object of string/number values per line. *)
let event_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then (incr pos; true) else false
  in
  let parse_string () =
    if not (expect '"') then None
    else begin
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then None
        else
          match line.[!pos] with
          | '"' -> incr pos; Some (Buffer.contents buf)
          | '\\' when !pos + 1 < n ->
              let c = line.[!pos + 1] in
              pos := !pos + 2;
              (match c with
              | 'n' -> Buffer.add_char buf '\n'; loop ()
              | 't' -> Buffer.add_char buf '\t'; loop ()
              | 'r' -> Buffer.add_char buf '\r'; loop ()
              | 'u' ->
                  if !pos + 4 <= n then begin
                    (match int_of_string_opt ("0x" ^ String.sub line !pos 4) with
                    | Some code when code < 0x80 ->
                        Buffer.add_char buf (Char.chr code)
                    | _ -> ());
                    pos := !pos + 4;
                    loop ()
                  end
                  else None
              | c -> Buffer.add_char buf c; loop ())
          | c -> incr pos; Buffer.add_char buf c; loop ()
      in
      loop ()
    end
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then None
    else
      let s = String.sub line start (!pos - start) in
      let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
      if is_float then Option.map (fun x -> Float x) (float_of_string_opt s)
      else Option.map (fun i -> Int i) (int_of_string_opt s)
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Option.map (fun s -> Str s) (parse_string ())
    | _ -> parse_number ()
  in
  let rec parse_members acc =
    match parse_string () with
    | None -> None
    | Some key -> (
        if not (expect ':') then None
        else
          match parse_value () with
          | None -> None
          | Some v ->
              let acc = (key, v) :: acc in
              skip_ws ();
              if expect ',' then (skip_ws (); parse_members acc)
              else if expect '}' then Some (List.rev acc)
              else None)
  in
  if not (expect '{') then None
  else
    match parse_members [] with
    | None -> None
    | Some members -> (
        let time =
          match List.assoc_opt "t" members with
          | Some (Float x) -> Some x
          | Some (Int i) -> Some (float_of_int i)
          | _ -> None
        in
        let name =
          match List.assoc_opt "ev" members with
          | Some (Str s) -> Some s
          | _ -> None
        in
        match (time, name) with
        | Some time, Some name ->
            let fields =
              List.filter (fun (k, _) -> k <> "t" && k <> "ev") members
            in
            Some { time; name; fields }
        | _ -> None)

let value_to_text = function
  | Int n -> string_of_int n
  | Float x -> float_string x
  | Str s -> s

(* CSV escaping happens at two levels.  Inside the packed fields cell a
   [k=v] token whose text contains one of the pack metacharacters
   (';' '=' ',' '"' or a newline) is quoted with doubled inner quotes, so
   ';' still unambiguously separates tokens and '=' the key.  Then any
   whole cell containing ',' '"' or a newline is RFC4180-quoted. *)
let pack_meta s =
  String.exists
    (fun c -> c = ';' || c = '=' || c = ',' || c = '"' || c = '\n' || c = '\r')
    s

let quote_token s =
  if not (pack_meta s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_cell s =
  if
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let events_to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time,event,fields\n";
  List.iter
    (fun e ->
      Buffer.add_string buf (float_string e.time);
      Buffer.add_char buf ',';
      Buffer.add_string buf (csv_cell e.name);
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (csv_cell
           (String.concat ";"
              (List.map
                 (fun (k, v) ->
                   quote_token k ^ "=" ^ quote_token (value_to_text v))
                 e.fields)));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let in_order t = List.rev t.instruments

let snapshot t =
  List.filter_map
    (fun (name, i) ->
      match i with
      | I_counter c -> Some (name, float_of_int (Counter.value c))
      | I_gauge g -> Some (name, Gauge.value g)
      | I_histogram _ | I_sketch _ | I_series _ -> None)
    (in_order t)

let histograms t =
  List.filter_map
    (fun (name, i) ->
      match i with I_histogram h -> Some (name, h) | _ -> None)
    (in_order t)

let sketches t =
  List.filter_map
    (fun (name, i) ->
      match i with I_sketch s -> Some (name, s) | _ -> None)
    (in_order t)

let all_series t =
  List.filter_map
    (fun (name, i) ->
      match i with I_series s -> Some (name, s) | _ -> None)
    (in_order t)

let render t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, i) ->
      (match i with
      | I_counter c ->
          Buffer.add_string buf
            (Printf.sprintf "counter    %-32s %d" name (Counter.value c))
      | I_gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "gauge      %-32s %s" name
               (float_string (Gauge.value g)))
      | I_histogram h ->
          let cells =
            let edges = Histogram.edges h and counts = Histogram.bucket_counts h in
            let parts = ref [] in
            Array.iteri
              (fun i c ->
                if c > 0 then
                  let label =
                    if i < Array.length edges then
                      "<=" ^ float_string edges.(i)
                    else ">" ^ float_string edges.(Array.length edges - 1)
                  in
                  parts := Printf.sprintf "%s:%d" label c :: !parts)
              counts;
            String.concat " " (List.rev !parts)
          in
          let pcts =
            if Histogram.count h = 0 then ""
            else
              Printf.sprintf " p50=%s p90=%s p99=%s"
                (float_string (Histogram.quantile h 0.5))
                (float_string (Histogram.quantile h 0.9))
                (float_string (Histogram.quantile h 0.99))
          in
          Buffer.add_string buf
            (Printf.sprintf "histogram  %-32s count=%d sum=%s%s %s" name
               (Histogram.count h)
               (float_string (Histogram.sum h))
               pcts cells)
      | I_sketch s ->
          let pcts =
            if Sketch.count s = 0 then ""
            else
              Printf.sprintf " p50=%s p90=%s p99=%s max=%s"
                (float_string (Sketch.quantile s 0.5))
                (float_string (Sketch.quantile s 0.9))
                (float_string (Sketch.quantile s 0.99))
                (float_string (Sketch.vmax s))
          in
          Buffer.add_string buf
            (Printf.sprintf "sketch     %-32s count=%d sum=%s%s" name
               (Sketch.count s)
               (float_string (Sketch.sum s))
               pcts)
      | I_series s ->
          Buffer.add_string buf
            (Printf.sprintf "series     %-32s windows=%d count=%d sum=%s" name
               (Series.window_count s) (Series.total s)
               (float_string (Series.grand_sum s))));
      Buffer.add_char buf '\n')
    (in_order t);
  if t.trace_enabled then
    Buffer.add_string buf (Printf.sprintf "trace      %-32s %d\n" "events" t.n_events);
  Buffer.contents buf

(* --- Prometheus text exposition (version 0.0.4) --- *)

let prom_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

let render_prometheus t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, i) ->
      let n = prom_name name in
      match i with
      | I_counter c ->
          line "# TYPE %s counter" n;
          line "%s %d" n (Counter.value c)
      | I_gauge g ->
          line "# TYPE %s gauge" n;
          line "%s %s" n (float_string (Gauge.value g))
      | I_histogram h ->
          line "# TYPE %s histogram" n;
          let edges = Histogram.edges h
          and counts = Histogram.bucket_counts h in
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              if i < Array.length edges then
                line "%s_bucket{le=\"%s\"} %d" n (float_string edges.(i)) !cum)
            counts;
          line "%s_bucket{le=\"+Inf\"} %d" n (Histogram.count h);
          line "%s_sum %s" n (float_string (Histogram.sum h));
          line "%s_count %d" n (Histogram.count h)
      | I_sketch s ->
          line "# TYPE %s summary" n;
          if Sketch.count s > 0 then begin
            line "%s{quantile=\"0.5\"} %s" n (float_string (Sketch.quantile s 0.5));
            line "%s{quantile=\"0.9\"} %s" n (float_string (Sketch.quantile s 0.9));
            line "%s{quantile=\"0.99\"} %s" n (float_string (Sketch.quantile s 0.99))
          end;
          line "%s_sum %s" n (float_string (Sketch.sum s));
          line "%s_count %d" n (Sketch.count s)
      | I_series s ->
          (* Prometheus has no native windowed type; expose the running
             totals as a gauge pair so scrapes can rate() them. *)
          line "# TYPE %s_total gauge" n;
          line "%s_total %d" n (Series.total s);
          line "# TYPE %s_windows gauge" n;
          line "%s_windows %d" n (Series.window_count s))
    (in_order t);
  Buffer.contents buf
