module Model = Basalt_analysis.Model
module Isolation_bound = Basalt_analysis.Isolation_bound
module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report

type worked = {
  joining_bound : float;
  delta_c : float;
  c_next : float;
  safe_c : float;
}

let worked_examples () =
  (* Joining bound: n = 10000, f = 0.1, v = 200, I = fn/4, f0 = 0.5. *)
  let env_join = Model.env ~n:10_000 ~f:0.1 ~v:200 () in
  let bootstrap_size = int_of_float (Model.b_max env_join /. 4.0) in
  let joining_bound =
    Isolation_bound.joining_isolation_probability ~env:env_join ~f0:0.5
      ~bootstrap_size
  in
  (* Growth bound: v = 100, k = 50, c0 = 125 (the paper's worked case). *)
  let env_grow = Model.env ~n:10_000 ~f:0.1 ~v:100 () in
  let delta_c = Isolation_bound.delta_c_lower_bound ~env:env_grow ~k:50 ~c0:125.0 in
  let safe_c =
    Isolation_bound.safe_c_threshold ~env:env_grow ~k:50 ~target:1e-10
  in
  { joining_bound; delta_c; c_next = 125.0 +. delta_c; safe_c }

type equilibrium_row = {
  v : int;
  b1 : float option;
  b2 : float option;
  predicted_excess : float option;
}

let equilibria ?(scale = Scale.Standard) ?(f = 0.1) () =
  let n = Scale.n scale in
  List.map
    (fun v ->
      let env = Model.env ~n ~f ~v () in
      match Model.equilibria env with
      | Some (b1, b2) ->
          { v; b1 = Some b1; b2 = Some b2; predicted_excess = Some (b1 -. f) }
      | None -> { v; b1 = None; b2 = None; predicted_excess = None })
    (Scale.view_sizes scale)

type validation_row = {
  view : int;
  model_b1 : float option;
  simulated : float;
}

let validate ?(scale = Scale.Standard) ?pool () =
  let n = Scale.n scale in
  let f = 0.1 in
  let seeds = Scale.seeds scale in
  let vs = Scale.view_sizes scale in
  let scenarios =
    List.map
      (fun v ->
        (* High force approximates the model's worst-case flooding. *)
        Scenario.make ~name:"theory-validate" ~n ~f ~force:50.0
          ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v ()))
          ~steps:(Scale.steps scale) ())
      vs
  in
  List.map2
    (fun v agg ->
      let env = Model.env ~n ~f ~v () in
      {
        view = v;
        model_b1 = Model.steady_state env;
        simulated = agg.Sweep.mean_view_byz;
      })
    vs
    (Sweep.run_aggregates ?pool scenarios ~seeds)

let opt_cell = function Some x -> Report.float_cell x | None -> "none"

let print ?(scale = Scale.Standard) ?pool () =
  let w = worked_examples () in
  Printf.printf "== theory: worked examples (Section 3.3.1)\n";
  Printf.printf
    "  joining isolation bound (Eq.7, v=200, I=fn/4, f0=0.5): %.3e  (paper: < 1e-10)\n"
    w.joining_bound;
  Printf.printf
    "  growth bound delta_c (Eq.12, v=100, k=50, c0=125):     %.1f   (paper: >= 467)\n"
    w.delta_c;
  Printf.printf
    "  c at next reset:                                       %.1f   (paper: >= 592)\n"
    w.c_next;
  Printf.printf
    "  safe c threshold for Eq.8 < 1e-10:                     %.1f   (paper: ~585)\n"
    w.safe_c;
  Printf.printf "== theory: equilibria of Eq.16 (f=0.1, n=%d)\n" (Scale.n scale);
  let eq = equilibria ~scale () in
  let arr = Array.of_list eq in
  Report.print_table ~rows:(Array.length arr)
    [
      { Report.header = "v"; cell = (fun i -> string_of_int arr.(i).v) };
      { Report.header = "B1(stable)"; cell = (fun i -> opt_cell arr.(i).b1) };
      { Report.header = "B2(unstable)"; cell = (fun i -> opt_cell arr.(i).b2) };
      {
        Report.header = "B1-f";
        cell = (fun i -> opt_cell arr.(i).predicted_excess);
      };
    ];
  Printf.printf "== theory: model vs Monte-Carlo (Basalt views under flooding)\n";
  let rows = Array.of_list (validate ~scale ?pool ()) in
  Report.print_table ~rows:(Array.length rows)
    [
      { Report.header = "v"; cell = (fun i -> string_of_int rows.(i).view) };
      {
        Report.header = "model_B1";
        cell = (fun i -> opt_cell rows.(i).model_b1);
      };
      {
        Report.header = "simulated";
        cell = (fun i -> Report.float_cell rows.(i).simulated);
      };
    ]
