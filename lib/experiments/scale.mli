(** Experiment scale presets.

    The paper's evaluation runs at n = 10000 (n = 1000 for Fig. 3) with
    views up to 200 identifiers.  A faithful run of every figure at that
    scale takes hours of CPU; the presets trade network size for wall
    time while preserving the model's operating point (the Eq. 16
    discriminant stays well positive at each preset's [n]/[v]
    combination, so who-wins and crossover shapes are unchanged — see
    EXPERIMENTS.md for measured evidence).

    - {!Quick}: seconds per figure; used by the bench harness and smoke
      runs (n = 300, v = 40).
    - {!Standard}: minutes for the full suite; the default for
      [bin/repro] (n = 1000, v = 100 — the paper's own Fig. 3 scale).
    - {!Full}: the paper's headline scale (n = 10000, v = 160). *)

type t = Quick | Standard | Full

val of_string : string -> (t, string) Stdlib.result
(** [of_string s] parses ["quick"], ["standard"], or ["full"]. *)

val to_string : t -> string
(** Inverse of {!of_string}. *)

val n : t -> int
(** Base network size. *)

val v : t -> int
(** Base view size. *)

val steps : t -> float
(** Base run duration (time units). *)

val seeds : t -> int list
(** Seeds to average over. *)

val view_sizes : t -> int list
(** The x-axis of Fig. 2d / Fig. 5, adapted to [n]. *)

val byzantine_fractions : t -> float list
(** The x-axis of Fig. 2a / Fig. 3. *)

val forces : t -> float list
(** The x-axis of Fig. 2b. *)

val sampling_rates : t -> float list
(** The x-axis of Fig. 2c / the ρ candidates of Fig. 5. *)
