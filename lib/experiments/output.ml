module Report = Basalt_sim.Report

let line s =
  print_string s;
  print_newline ()

let emit ?csv ~rows cols =
  Report.print_table ~rows cols;
  match csv with
  | None -> ()
  | Some path ->
      Report.write_csv ~path ~rows cols;
      Printf.printf "(csv written to %s)\n" path
