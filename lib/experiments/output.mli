(** Shared table emission for experiment modules: print to stdout and
    optionally write the same rows as CSV for external plotting. *)

val line : string -> unit
(** [line s] prints [s] followed by a newline on stdout.  Banner and
    note lines from libraries outside [lib/experiments] (notably the
    matrix driver in [lib/scenario], which lint rule D6 keeps away from
    the console) route through here. *)

val emit :
  ?csv:string -> rows:int -> Basalt_sim.Report.column list -> unit
(** [emit ?csv ~rows cols] prints the aligned table; when [csv] is given,
    also writes the data to that path and notes it on stdout. *)
