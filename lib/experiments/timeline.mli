(** Free-form single-run time series.

    Runs one scenario with user-chosen parameters and prints the full
    measurement series (plus graph metrics on demand) — the generic tool
    behind "plot what Fig. 4 plots, but for my configuration". *)

type spec = {
  protocol : string;  (** "basalt" | "brahms" | "sps" | "classic". *)
  n : int;
  f : float;
  force : float;
  v : int;
  rho : float;
  steps : float;
  seed : int;
  graph_metrics : bool;
}

val spec :
  ?protocol:string ->
  ?n:int ->
  ?f:float ->
  ?force:float ->
  ?v:int ->
  ?rho:float ->
  ?steps:float ->
  ?seed:int ->
  ?graph_metrics:bool ->
  unit ->
  (spec, string) result
(** Defaults: basalt, n = 1000, f = 0.1, F = 10, v = 100, rho = 1,
    200 steps, seed 42, no graph metrics.  Errors on an unknown protocol
    name (construction-parameter errors surface as [Invalid_argument]
    from {!run}). *)

val run : ?obs:bool -> ?trace:bool -> spec -> Basalt_sim.Runner.result
(** [run spec] executes the timeline scenario and returns the runner's
    result; [obs]/[trace] are forwarded to {!Basalt_sim.Runner.run}. *)

val print : ?csv:string -> ?trace:string -> spec -> unit
(** [print spec] runs the scenario and prints the per-phase timeline;
    [csv] also writes a CSV file.  [trace] enables the observability
    sink — the table then carries one column per instrument — and writes
    the event stream as JSONL to the given path. *)
