(** Extension: institutional (Sybil) attacks and prefix-diverse ranking.

    Basalt bounds an attacker's share of samples by its share of
    {e identifiers} (§6), so an attacker that can mint many identifiers —
    a Sybil attack — still wins.  The paper's discussion points at
    HAPS-style address-based defenses and suggests "spreading connections
    over a variety of IP prefixes by using a specially crafted rank
    function".

    This experiment implements that suggestion
    ({!Basalt_hashing.Rank.Prefix_diverse}) and evaluates it in the
    institutional setting: honest nodes spread across many address
    prefixes, the attacker minting unlimited identifiers inside a handful
    of prefixes it owns.  Expected result: with vanilla ranking the
    attacker's sample share tracks its {e identifier} share (growing with
    the Sybil multiplier), while with prefix-diverse ranking it stays
    pinned near its {e prefix} share. *)

type row = {
  sybil_ids : float;  (** Attacker identifiers as a fraction of all ids. *)
  prefix_share : float;  (** Attacker prefixes / all prefixes. *)
  vanilla : float;  (** Byzantine sample share, vanilla Basalt. *)
  diverse : float;  (** Byzantine sample share, prefix-diverse Basalt. *)
}

val prefix_layout :
  honest:int -> honest_prefixes:int -> attacker_prefixes:int -> int -> int
(** [prefix_layout ~honest ~honest_prefixes ~attacker_prefixes id] is the
    experiment's address map: honest identifiers ([id < honest]) are
    spread round-robin over [honest_prefixes]; attacker identifiers
    cycle over [attacker_prefixes] prefixes of their own. *)

val run : ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> row list
(** [run ()] executes the sybil-prefix experiment at the given scale. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
