module Scenario = Basalt_sim.Scenario
module Report = Basalt_sim.Report
module Fault = Basalt_engine.Fault
module Link = Basalt_engine.Link
module Pool = Basalt_parallel.Pool
module Obs = Basalt_obs.Obs

type outcome = { delivered : float; t99 : float option; redundancy : float }

type row = {
  condition : string;
  force : float;
  basalt : outcome;
  brahms : outcome;
  sps : outcome;
  classic : outcome;
}

let publish_count = Gossip_app.default_params.Gossip_app.publishes

let burst_loss =
  Link.Loss.Gilbert_elliott
    { p_gb = 0.05; p_bg = 0.25; good = 0.0; bad = 0.9 }

(* Same shapes as the robustness-net sweep: bursty loss for the whole
   run, or half the identifier space partitioned away for the second
   quarter (the healing and the publish window overlap). *)
let conditions ~n ~steps =
  [
    ("clean", None);
    ("burst-loss", Some (Fault.make ~base:(Fault.link ~loss:burst_loss ()) ()));
    ( "partition",
      Some
        (Fault.make
           ~partitions:
             [
               Fault.partition ~from_time:(steps /. 4.0)
                 ~until_time:(steps /. 2.0)
                 (fun i -> i < n / 2);
             ]
           ()) );
  ]

let forces = [ 1.0; 10.0 ]

let protocols v =
  [
    ("basalt", Scenario.Basalt (Basalt_core.Config.make ~v ()));
    ("brahms", Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
    ("sps", Scenario.Sps (Basalt_sps.Sps.config ~l:v ()));
    ("classic", Scenario.Classic (Basalt_sps.Classic.config ~l:v ()));
  ]

(* One flat condition × force × protocol × seed batch so a Pool can fan
   the whole sweep out; [Pool.map] preserves task order, so regrouping —
   and the merged trace below — is deterministic at any [-j N]. *)
let run_tasks ?(scale = Scale.Standard) ?(trace = false) ?pool () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let tasks =
    List.concat_map
      (fun (condition, fault) ->
        List.concat_map
          (fun force ->
            List.concat_map
              (fun (proto, protocol) ->
                List.map
                  (fun seed ->
                    ( condition,
                      force,
                      proto,
                      (* Non-zero link delay so time-to-99% resolves the
                         eager cascade depth instead of collapsing to 0. *)
                      Scenario.make ~name:"broadcast" ~n ~f:0.1 ~force
                        ~protocol ~steps ?fault ~seed
                        ~latency:(Link.Latency.Uniform { lo = 0.05; hi = 0.2 })
                        () ))
                  seeds)
              (protocols v))
          forces)
      (conditions ~n ~steps)
  in
  let runs = Pool.map ?pool (fun (_, _, _, s) -> Gossip_app.run ~trace s) tasks in
  (tasks, runs)

let outcome summaries =
  let dups = Agg.sum (fun s -> s.Gossip_app.duplicates) summaries in
  let dels = Agg.sum (fun s -> s.Gossip_app.deliveries) summaries in
  {
    delivered = Agg.mean (fun s -> s.Gossip_app.delivered) summaries;
    t99 = Agg.median_opt (List.map (fun s -> s.Gossip_app.t99) summaries);
    redundancy = float_of_int dups /. float_of_int (max 1 dels);
  }

let rows_of ~scale runs =
  let per_group = List.length (Scale.seeds scale) in
  let groups = Agg.chunks per_group (List.map snd runs) in
  let n = Scale.n scale in
  let steps = Scale.steps scale in
  let cells =
    List.concat_map
      (fun (condition, _) -> List.map (fun f -> (condition, f)) forces)
      (conditions ~n ~steps)
  in
  let rec rows cells groups =
    match (cells, groups) with
    | [], [] -> []
    | (condition, force) :: cells, b :: br :: sp :: cl :: groups ->
        {
          condition;
          force;
          basalt = outcome b;
          brahms = outcome br;
          sps = outcome sp;
          classic = outcome cl;
        }
        :: rows cells groups
    | _ -> assert false
  in
  rows cells groups

let run ?(scale = Scale.Standard) ?pool () =
  let _, runs = run_tasks ~scale ?pool () in
  rows_of ~scale runs

let write_trace path tasks runs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter2
        (fun (condition, force, proto, _) (r, _) ->
          match r.Basalt_sim.Runner.obs with
          | Some sink ->
              output_string oc
                (Obs.events_to_jsonl
                   ~extra:
                     [
                       ("cond", Obs.Str condition);
                       ("force", Obs.Float force);
                       ("proto", Obs.Str proto);
                     ]
                   sink)
          | None -> ())
        tasks runs)

let t99_cell = function
  | Some t -> Report.float_cell t
  | None -> "never"

let columns rows =
  let arr = Array.of_list rows in
  let per_proto header get =
    List.map
      (fun (proto, field) ->
        {
          Report.header = Printf.sprintf "%s_%s" proto header;
          cell = (fun i -> get (field arr.(i)));
        })
      [
        ("basalt", fun r -> r.basalt);
        ("brahms", fun r -> r.brahms);
        ("sps", fun r -> r.sps);
        ("classic", fun r -> r.classic);
      ]
  in
  ( Array.length arr,
    [
      { Report.header = "condition"; cell = (fun i -> arr.(i).condition) };
      {
        Report.header = "force";
        cell = (fun i -> Report.float_cell arr.(i).force);
      };
    ]
    @ per_proto "delivered" (fun o -> Report.float_cell o.delivered)
    @ per_proto "t99" (fun o -> t99_cell o.t99)
    @ per_proto "redundancy" (fun o -> Report.float_cell o.redundancy) )

let print ?(scale = Scale.Standard) ?csv ?trace ?pool () =
  Printf.printf
    "== broadcast: gossip dissemination over sampled overlays (n=%d, v=%d, \
     f=0.1, %d msgs)\n"
    (Scale.n scale) (Scale.v scale) publish_count;
  let tasks, runs = run_tasks ~scale ~trace:(Option.is_some trace) ?pool () in
  let rows, cols = columns (rows_of ~scale runs) in
  Output.emit ?csv ~rows cols;
  match trace with
  | None -> ()
  | Some path ->
      write_trace path tasks runs;
      Printf.printf "(trace written to %s)\n" path
