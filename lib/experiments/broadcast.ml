module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Report = Basalt_sim.Report
module Fault = Basalt_engine.Fault
module Link = Basalt_engine.Link
module Pool = Basalt_parallel.Pool
module Obs = Basalt_obs.Obs
module Gossip = Basalt_gossip.Gossip
module Delivery = Basalt_gossip.Delivery
module Rng = Basalt_prng.Rng
module Node_id = Basalt_proto.Node_id

type outcome = { delivered : float; t99 : float option; redundancy : float }

type row = {
  condition : string;
  force : float;
  basalt : outcome;
  brahms : outcome;
  sps : outcome;
  classic : outcome;
}

(* One run's dissemination summary — plain data so Pool workers can
   return it. *)
type summary = {
  s_delivered : float;
  s_t99 : float option;
  s_duplicates : int;
  s_deliveries : int;
}

let publish_count = 10

let burst_loss =
  Link.Loss.Gilbert_elliott
    { p_gb = 0.05; p_bg = 0.25; good = 0.0; bad = 0.9 }

(* Same shapes as the robustness-net sweep: bursty loss for the whole
   run, or half the identifier space partitioned away for the second
   quarter (the healing and the publish window overlap). *)
let conditions ~n ~steps =
  [
    ("clean", None);
    ("burst-loss", Some (Fault.make ~base:(Fault.link ~loss:burst_loss ()) ()));
    ( "partition",
      Some
        (Fault.make
           ~partitions:
             [
               Fault.partition ~from_time:(steps /. 4.0)
                 ~until_time:(steps /. 2.0)
                 (fun i -> i < n / 2);
             ]
           ()) );
  ]

let forces = [ 1.0; 10.0 ]

let protocols v =
  [
    ("basalt", Scenario.Basalt (Basalt_core.Config.make ~v ()));
    ("brahms", Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
    ("sps", Scenario.Sps (Basalt_sps.Sps.config ~l:v ()));
    ("classic", Scenario.Classic (Basalt_sps.Classic.config ~l:v ()));
  ]

(* The publish plan: [publish_count] messages from rotating correct
   publishers, one per time unit, starting after a 40%-of-run warmup so
   meshes exist (and, under the partition condition, spanning the cut). *)
let plan ~q ~steps =
  List.init publish_count (fun k ->
      let time = (0.4 *. steps) +. float_of_int k in
      let publisher = 17 * (k + 1) mod q in
      let payload = Bytes.make 32 (Char.chr (65 + (k mod 26))) in
      (time, publisher, payload))

let run_one ~trace s =
  let q = Scenario.num_correct s in
  let tracker = Delivery.create ~n:q () in
  let gossips = Array.make q None in
  let app ctx =
    List.iter
      (fun (time, p, payload) ->
        ctx.Runner.app_schedule ~delay:time (fun () ->
            if ctx.Runner.app_alive p then
              match gossips.(p) with
              | Some g ->
                  let mid = Gossip.publish g payload in
                  Delivery.published tracker mid ~time:(ctx.Runner.app_now ())
              | None -> ()))
      (plan ~q ~steps:s.Scenario.steps);
    fun i ->
      let rng = Rng.split ctx.Runner.app_rng in
      let g =
        Gossip.create ~obs:ctx.Runner.app_obs ~node:(Node_id.of_int i)
          ~view:(fun () -> ctx.Runner.app_view i)
          ~rng
          ~send:(fun ~dst msg -> ctx.Runner.app_send ~src:i ~dst msg)
          ~deliver:(fun mid _payload ->
            Delivery.delivered tracker mid ~node:i
              ~time:(ctx.Runner.app_now ()))
          ()
      in
      gossips.(i) <- Some g;
      {
        Runner.app_deliver = (fun ~from msg -> Gossip.on_message g ~from msg);
        app_tick = (fun ps -> Gossip.on_samples g ps);
        app_round = (fun () -> Gossip.heartbeat g);
      }
  in
  let result = Runner.run ~app ~obs:trace ~trace s in
  let duplicates = ref 0 in
  let deliveries = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some g ->
          let st = Gossip.stats g in
          duplicates := !duplicates + st.Gossip.duplicates;
          deliveries := !deliveries + st.Gossip.delivered)
    gossips;
  ( result,
    {
      s_delivered = Delivery.fraction tracker;
      s_t99 = Delivery.median_time_to_fraction tracker ~frac:0.99;
      s_duplicates = !duplicates;
      s_deliveries = !deliveries;
    } )

(* One flat condition × force × protocol × seed batch so a Pool can fan
   the whole sweep out; [Pool.map] preserves task order, so regrouping —
   and the merged trace below — is deterministic at any [-j N]. *)
let run_tasks ?(scale = Scale.Standard) ?(trace = false) ?pool () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let tasks =
    List.concat_map
      (fun (condition, fault) ->
        List.concat_map
          (fun force ->
            List.concat_map
              (fun (proto, protocol) ->
                List.map
                  (fun seed ->
                    ( condition,
                      force,
                      proto,
                      (* Non-zero link delay so time-to-99% resolves the
                         eager cascade depth instead of collapsing to 0. *)
                      Scenario.make ~name:"broadcast" ~n ~f:0.1 ~force
                        ~protocol ~steps ?fault ~seed
                        ~latency:(Link.Latency.Uniform { lo = 0.05; hi = 0.2 })
                        () ))
                  seeds)
              (protocols v))
          forces)
      (conditions ~n ~steps)
  in
  let runs = Pool.map ?pool (fun (_, _, _, s) -> run_one ~trace s) tasks in
  (tasks, runs)

let outcome summaries =
  let mean f =
    List.fold_left (fun acc s -> acc +. f s) 0.0 summaries
    /. float_of_int (List.length summaries)
  in
  let t99s = List.filter_map (fun s -> s.s_t99) summaries in
  let t99 =
    if 2 * List.length t99s < List.length summaries + 1 then None
    else begin
      let sorted = List.sort Float.compare t99s in
      Some (List.nth sorted (List.length sorted / 2))
    end
  in
  let dups = List.fold_left (fun acc s -> acc + s.s_duplicates) 0 summaries in
  let dels = List.fold_left (fun acc s -> acc + s.s_deliveries) 0 summaries in
  {
    delivered = mean (fun s -> s.s_delivered);
    t99;
    redundancy = float_of_int dups /. float_of_int (max 1 dels);
  }

let rows_of ~scale runs =
  let per_group = List.length (Scale.seeds scale) in
  let summaries = List.map snd runs in
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else
      match rest with
      | r :: tl -> take (k - 1) (r :: acc) tl
      | [] -> assert false
  in
  let rec regroup = function
    | [] -> []
    | xs ->
        let group, rest = take per_group [] xs in
        group :: regroup rest
  in
  let groups = regroup summaries in
  let n = Scale.n scale in
  let steps = Scale.steps scale in
  let cells =
    List.concat_map
      (fun (condition, _) -> List.map (fun f -> (condition, f)) forces)
      (conditions ~n ~steps)
  in
  let rec rows cells groups =
    match (cells, groups) with
    | [], [] -> []
    | (condition, force) :: cells, b :: br :: sp :: cl :: groups ->
        {
          condition;
          force;
          basalt = outcome b;
          brahms = outcome br;
          sps = outcome sp;
          classic = outcome cl;
        }
        :: rows cells groups
    | _ -> assert false
  in
  rows cells groups

let run ?(scale = Scale.Standard) ?pool () =
  let _, runs = run_tasks ~scale ?pool () in
  rows_of ~scale runs

let write_trace path tasks runs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter2
        (fun (condition, force, proto, _) (r, _) ->
          match r.Runner.obs with
          | Some sink ->
              output_string oc
                (Obs.events_to_jsonl
                   ~extra:
                     [
                       ("cond", Obs.Str condition);
                       ("force", Obs.Float force);
                       ("proto", Obs.Str proto);
                     ]
                   sink)
          | None -> ())
        tasks runs)

let t99_cell = function
  | Some t -> Report.float_cell t
  | None -> "never"

let columns rows =
  let arr = Array.of_list rows in
  let per_proto header get =
    List.map
      (fun (proto, field) ->
        {
          Report.header = Printf.sprintf "%s_%s" proto header;
          cell = (fun i -> get (field arr.(i)));
        })
      [
        ("basalt", fun r -> r.basalt);
        ("brahms", fun r -> r.brahms);
        ("sps", fun r -> r.sps);
        ("classic", fun r -> r.classic);
      ]
  in
  ( Array.length arr,
    [
      { Report.header = "condition"; cell = (fun i -> arr.(i).condition) };
      {
        Report.header = "force";
        cell = (fun i -> Report.float_cell arr.(i).force);
      };
    ]
    @ per_proto "delivered" (fun o -> Report.float_cell o.delivered)
    @ per_proto "t99" (fun o -> t99_cell o.t99)
    @ per_proto "redundancy" (fun o -> Report.float_cell o.redundancy) )

let print ?(scale = Scale.Standard) ?csv ?trace ?pool () =
  Printf.printf
    "== broadcast: gossip dissemination over sampled overlays (n=%d, v=%d, \
     f=0.1, %d msgs)\n"
    (Scale.n scale) (Scale.v scale) publish_count;
  let tasks, runs = run_tasks ~scale ~trace:(Option.is_some trace) ?pool () in
  let rows, cols = columns (rows_of ~scale runs) in
  Output.emit ?csv ~rows cols;
  match trace with
  | None -> ()
  | Some path ->
      write_trace path tasks runs;
      Printf.printf "(trace written to %s)\n" path
