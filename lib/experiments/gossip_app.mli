(** The broadcast experiment's gossip workload as a reusable driver.

    Mounts the epidemic broadcast layer (lib/gossip, DESIGN.md §11) on a
    {!Basalt_sim.Runner} run via its [?app] hook and publishes a
    deterministic plan of messages from rotating correct publishers.
    Both the hand-written broadcast experiment and the declarative
    matrix driver (lib/scenario, DESIGN.md §12) run exactly this code,
    which is what makes a scenario file reproduce the broadcast table
    byte-for-byte. *)

type params = {
  publishes : int;  (** Messages published over the run. *)
  warmup_frac : float;
      (** Fraction of the run to wait before the first publish, so
          meshes exist. *)
  payload_bytes : int;  (** Payload size of each broadcast. *)
}

val params :
  ?publishes:int -> ?warmup_frac:float -> ?payload_bytes:int -> unit -> params
(** [params ()] is {!default_params}; override pieces as needed.
    @raise Invalid_argument on a non-positive count or size, or a
    warmup fraction outside [\[0, 1)]. *)

val default_params : params
(** The broadcast experiment's plan: 10 publishes, 40% warmup, 32-byte
    payloads. *)

type summary = {
  delivered : float;  (** Fraction of (message, correct node) deliveries. *)
  t99 : float option;
      (** Median time for a message to reach 99% of correct nodes
          ([None] when a majority of messages never did). *)
  duplicates : int;  (** Redundant data frames received, run-wide. *)
  deliveries : int;  (** First-time deliveries, run-wide. *)
}

val run :
  ?params:params ->
  ?trace:bool ->
  Basalt_sim.Scenario.t ->
  Basalt_sim.Runner.result * summary
(** [run s] executes the scenario with the gossip layer mounted on
    every correct node and returns the runner result plus the
    dissemination summary.  [trace] (default [false]) enables the
    per-run instrument registry and event trace, as in
    {!Basalt_sim.Runner.run}. *)
