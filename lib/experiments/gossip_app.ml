(* The broadcast experiment's application layer, extracted so the
   declarative matrix driver (lib/scenario) can mount the exact same
   gossip workload: identical publish plan, identical per-node RNG
   splits, identical delivery accounting — a scenario file that mirrors
   the broadcast experiment reproduces its table byte-for-byte. *)

module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Gossip = Basalt_gossip.Gossip
module Delivery = Basalt_gossip.Delivery
module Rng = Basalt_prng.Rng
module Node_id = Basalt_proto.Node_id

type params = { publishes : int; warmup_frac : float; payload_bytes : int }

let params ?(publishes = 10) ?(warmup_frac = 0.4) ?(payload_bytes = 32) () =
  if publishes <= 0 then invalid_arg "Gossip_app.params: publishes <= 0";
  if warmup_frac < 0.0 || warmup_frac >= 1.0 then
    invalid_arg "Gossip_app.params: warmup_frac out of [0,1)";
  if payload_bytes <= 0 then invalid_arg "Gossip_app.params: payload_bytes <= 0";
  { publishes; warmup_frac; payload_bytes }

let default_params = params ()

type summary = {
  delivered : float;
  t99 : float option;
  duplicates : int;
  deliveries : int;
}

(* The publish plan: [publishes] messages from rotating correct
   publishers, one per time unit, starting after a warmup fraction of
   the run so meshes exist (and, under a partition condition, spanning
   the cut). *)
let plan ~p ~q ~steps =
  List.init p.publishes (fun k ->
      let time = (p.warmup_frac *. steps) +. float_of_int k in
      let publisher = 17 * (k + 1) mod q in
      let payload =
        Bytes.make p.payload_bytes (Char.chr (65 + (k mod 26)))
      in
      (time, publisher, payload))

let run ?(params = default_params) ?(trace = false) s =
  let q = Scenario.num_correct s in
  let tracker = Delivery.create ~n:q () in
  let gossips = Array.make q None in
  let app ctx =
    List.iter
      (fun (time, p, payload) ->
        ctx.Runner.app_schedule ~delay:time (fun () ->
            if ctx.Runner.app_alive p then
              match gossips.(p) with
              | Some g ->
                  let mid = Gossip.publish g payload in
                  Delivery.published tracker mid ~time:(ctx.Runner.app_now ())
              | None -> ()))
      (plan ~p:params ~q ~steps:s.Scenario.steps);
    fun i ->
      let rng = Rng.split ctx.Runner.app_rng in
      let g =
        Gossip.create ~obs:ctx.Runner.app_obs ~node:(Node_id.of_int i)
          ~view:(fun () -> ctx.Runner.app_view i)
          ~rng
          ~send:(fun ~dst msg -> ctx.Runner.app_send ~src:i ~dst msg)
          ~deliver:(fun mid _payload ->
            Delivery.delivered tracker mid ~node:i
              ~time:(ctx.Runner.app_now ()))
          ()
      in
      gossips.(i) <- Some g;
      {
        Runner.app_deliver = (fun ~from msg -> Gossip.on_message g ~from msg);
        app_tick = (fun ps -> Gossip.on_samples g ps);
        app_round = (fun () -> Gossip.heartbeat g);
      }
  in
  let result = Runner.run ~app ~obs:trace ~trace s in
  let duplicates = ref 0 in
  let deliveries = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some g ->
          let st = Gossip.stats g in
          duplicates := !duplicates + st.Gossip.duplicates;
          deliveries := !deliveries + st.Gossip.delivered)
    gossips;
  ( result,
    {
      delivered = Delivery.fraction tracker;
      t99 = Delivery.median_time_to_fraction tracker ~frac:0.99;
      duplicates = !duplicates;
      deliveries = !deliveries;
    } )
