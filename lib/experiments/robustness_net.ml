module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Measurements = Basalt_sim.Measurements
module Report = Basalt_sim.Report
module Fault = Basalt_engine.Fault
module Link = Basalt_engine.Link
module Pool = Basalt_parallel.Pool
module Obs = Basalt_obs.Obs

type outcome = {
  time : float option;
  sample_byz : float;
  delivered_frac : float;
}

type row = {
  condition : string;
  basalt : outcome;
  brahms : outcome;
  sps : outcome;
}

(* Stationary loss of the burst channel: pi_bad = 0.05/(0.05+0.25) = 1/6,
   so mean loss = 0.9/6 = 15% — comparable to the robustness experiment's
   Bernoulli sweep midpoint, but arriving in bursts that starve a node
   for several exchange rounds at a time. *)
let burst_loss =
  Link.Loss.Gilbert_elliott
    { p_gb = 0.05; p_bg = 0.25; good = 0.0; bad = 0.9 }

(* The four network conditions swept for every protocol.  The partition
   cuts the first half of the identifier space (all correct nodes at
   f = 0.1) away from the rest for the second quarter of the run, then
   heals; dup-reorder stresses the at-most-once/ordering assumptions
   instead of availability. *)
let conditions ~n ~steps =
  [
    ("clean", None);
    ("burst-loss", Some (Fault.make ~base:(Fault.link ~loss:burst_loss ()) ()));
    ( "partition",
      Some
        (Fault.make
           ~partitions:
             [
               Fault.partition ~from_time:(steps /. 4.0)
                 ~until_time:(steps /. 2.0)
                 (fun i -> i < n / 2);
             ]
           ()) );
    ( "dup-reorder",
      Some
        (Fault.make
           ~base:(Fault.link ~dup:0.2 ~reorder:0.3 ~reorder_window:0.5 ())
           ()) );
  ]

let protocols v =
  [
    ("basalt", Scenario.Basalt (Basalt_core.Config.make ~v ()));
    ("brahms", Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
    ("sps", Scenario.Sps (Basalt_sps.Sps.config ~l:v ()));
  ]

let median_convergence runs ~optimal ~within =
  Agg.median_opt
    (List.map
       (fun r ->
         Measurements.convergence_time ~optimal ~within r.Runner.series)
       runs)

let outcome ~f ~within runs =
  let stats r = r.Runner.transport in
  let sent = Agg.sum (fun r -> (stats r).Basalt_engine.Engine.sent) runs in
  let delivered =
    Agg.sum (fun r -> (stats r).Basalt_engine.Engine.delivered) runs
  in
  {
    time = median_convergence runs ~optimal:f ~within;
    sample_byz = Agg.mean (fun r -> r.Runner.final.Measurements.sample_byz) runs;
    delivered_frac = float_of_int delivered /. float_of_int (max 1 sent);
  }

(* One flat condition × protocol × seed batch so a Pool can fan the whole
   sweep out; [Pool.map] preserves task order, so regrouping — and the
   merged trace below — is deterministic at any [-j N]. *)
let run_tasks ?(scale = Scale.Standard) ?(trace = false) ?pool () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let f = 0.1 in
  let tasks =
    List.concat_map
      (fun (condition, fault) ->
        List.concat_map
          (fun (proto, protocol) ->
            List.map
              (fun seed ->
                ( condition,
                  proto,
                  Scenario.make ~name:"robustness-net" ~n ~f ~force:10.0
                    ~protocol ~steps ?fault ~seed () ))
              seeds)
          (protocols v))
      (conditions ~n ~steps)
  in
  let runs =
    Pool.map ?pool (fun (_, _, s) -> Runner.run ~obs:trace ~trace s) tasks
  in
  (tasks, runs)

let rows_of ~scale runs =
  let f = 0.1 in
  let within = 0.25 in
  let per_group = List.length (Scale.seeds scale) in
  let groups = Agg.chunks per_group runs in
  let rec rows conds groups =
    match (conds, groups) with
    | [], [] -> []
    | (condition, _) :: conds, basalt_runs :: brahms_runs :: sps_runs :: groups
      ->
        {
          condition;
          basalt = outcome ~f ~within basalt_runs;
          brahms = outcome ~f ~within brahms_runs;
          sps = outcome ~f ~within sps_runs;
        }
        :: rows conds groups
    | _ -> assert false
  in
  rows (conditions ~n:(Scale.n scale) ~steps:(Scale.steps scale)) groups

let run ?(scale = Scale.Standard) ?pool () =
  let _, runs = run_tasks ~scale ?pool () in
  rows_of ~scale runs

let write_trace path tasks runs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter2
        (fun (condition, proto, _) r ->
          match r.Runner.obs with
          | Some sink ->
              output_string oc
                (Obs.events_to_jsonl
                   ~extra:
                     [ ("cond", Obs.Str condition); ("proto", Obs.Str proto) ]
                   sink)
          | None -> ())
        tasks runs)

let time_cell = function
  | Some t -> Report.float_cell t
  | None -> "no-convergence"

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "condition"; cell = (fun i -> arr.(i).condition) };
      {
        Report.header = "basalt_time";
        cell = (fun i -> time_cell arr.(i).basalt.time);
      };
      {
        Report.header = "brahms_time";
        cell = (fun i -> time_cell arr.(i).brahms.time);
      };
      {
        Report.header = "sps_time";
        cell = (fun i -> time_cell arr.(i).sps.time);
      };
      {
        Report.header = "basalt_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).basalt.sample_byz);
      };
      {
        Report.header = "brahms_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).brahms.sample_byz);
      };
      {
        Report.header = "sps_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).sps.sample_byz);
      };
      {
        Report.header = "basalt_delivered/sent";
        cell = (fun i -> Report.float_cell arr.(i).basalt.delivered_frac);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?trace ?pool () =
  Printf.printf
    "== robustness-net: fault plans (n=%d, v=%d, f=0.1, F=10, GE loss %.0f%%)\n"
    (Scale.n scale) (Scale.v scale)
    (100.0 *. Link.Loss.mean_loss burst_loss);
  let tasks, runs =
    run_tasks ~scale ~trace:(Option.is_some trace) ?pool ()
  in
  let rows, cols = columns (rows_of ~scale runs) in
  Output.emit ?csv ~rows cols;
  match trace with
  | None -> ()
  | Some path ->
      write_trace path tasks runs;
      Printf.printf "(trace written to %s)\n" path
