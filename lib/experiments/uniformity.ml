module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Report = Basalt_sim.Report
module Rng = Basalt_prng.Rng

type row = {
  sampler : string;
  samples : int;
  tv_distance : float;
  coeff_variation : float;
  max_over_mean : float;
}

let of_histogram ~sampler ~correct hist =
  let counts = Array.sub hist 0 correct in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then
    {
      sampler;
      samples = 0;
      tv_distance = Float.nan;
      coeff_variation = Float.nan;
      max_over_mean = Float.nan;
    }
  else begin
    let totalf = float_of_int total in
    let uniform = 1.0 /. float_of_int correct in
    let tv = ref 0.0 in
    Array.iter
      (fun c -> tv := !tv +. Float.abs ((float_of_int c /. totalf) -. uniform))
      counts;
    let floats = Array.map float_of_int counts in
    let mean = Basalt_analysis.Stats.mean floats in
    let std = Basalt_analysis.Stats.stddev floats in
    let _, maxc = Basalt_analysis.Stats.min_max floats in
    {
      sampler;
      samples = total;
      tv_distance = 0.5 *. !tv;
      coeff_variation = (if mean = 0.0 then Float.nan else std /. mean);
      max_over_mean = (if mean = 0.0 then Float.nan else maxc /. mean);
    }
  end

let ideal_histogram rng ~correct ~samples =
  let hist = Array.make correct 0 in
  for _ = 1 to samples do
    let i = Rng.int rng correct in
    hist.(i) <- hist.(i) + 1
  done;
  hist

let run ?(scale = Scale.Standard) ?pool () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let protocols =
    [
      ("basalt", Scenario.Basalt (Basalt_core.Config.make ~v ()));
      ("brahms", Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
      ("classic", Scenario.Classic (Basalt_sps.Classic.config ~l:v ()));
    ]
  in
  let rows =
    Basalt_parallel.Pool.map ?pool
      (fun (name, protocol) ->
        let scenario =
          Scenario.make ~name:"uniformity" ~n ~f:0.1 ~force:10.0 ~protocol
            ~steps ()
        in
        let r = Runner.run scenario in
        of_histogram ~sampler:name
          ~correct:(Scenario.num_correct scenario)
          r.Runner.sample_histogram)
      protocols
  in
  (* Calibration: a perfect uniform sampler drawing as many samples as
     Basalt did. *)
  let basalt_samples =
    match rows with r :: _ -> max 1 r.samples | [] -> 1
  in
  let correct = n - int_of_float (Float.round (0.1 *. float_of_int n)) in
  let ideal =
    of_histogram ~sampler:"ideal-uniform" ~correct
      (ideal_histogram (Rng.create ~seed:7) ~correct ~samples:basalt_samples)
  in
  rows @ [ ideal ]

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "sampler"; cell = (fun i -> arr.(i).sampler) };
      {
        Report.header = "samples";
        cell = (fun i -> string_of_int arr.(i).samples);
      };
      {
        Report.header = "tv_distance";
        cell = (fun i -> Report.float_cell arr.(i).tv_distance);
      };
      {
        Report.header = "coeff_var";
        cell = (fun i -> Report.float_cell arr.(i).coeff_variation);
      };
      {
        Report.header = "max/mean";
        cell = (fun i -> Report.float_cell arr.(i).max_over_mean);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?pool () =
  Printf.printf
    "== uniformity extension: sample-stream diversity over correct nodes \
     (n=%d, f=0.1, F=10)\n"
    (Scale.n scale);
  let rows, cols = columns (run ~scale ?pool ()) in
  Output.emit ?csv ~rows cols
