module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Sweep = Basalt_sim.Sweep
module Measurements = Basalt_sim.Measurements
module Report = Basalt_sim.Report

type row = {
  f : float;
  basalt_time : float option;
  brahms_time : float option;
}

(* Fig. 3 runs at the paper's own n = 1000 / v = 100 for the standard and
   full presets; quick shrinks further. *)
let dims scale =
  match scale with
  | Scale.Quick -> (300, 40, 100.0)
  | Scale.Standard | Scale.Full -> (1000, 100, 300.0)

let convergence_of_runs runs ~optimal ~within =
  (* Majority rule (Agg.median_opt): report the median time if most
     seeds converged. *)
  Agg.median_opt
    (List.map
       (fun r ->
         Measurements.convergence_time ~optimal ~within r.Runner.series)
       runs)

let run ?(scale = Scale.Standard) ?(within = 0.25) ?pool () =
  let n, v, steps = dims scale in
  let seeds = Scale.seeds scale in
  let fs = Scale.byzantine_fractions scale in
  let scenario f protocol =
    Scenario.make ~name:"fig3" ~n ~f ~force:10.0 ~protocol ~steps ()
  in
  (* One flat f × protocol × seed batch, regrouped per scenario. *)
  let scenarios =
    List.concat_map
      (fun f ->
        [
          scenario f (Scenario.Basalt (Basalt_core.Config.make ~v ()));
          scenario f (Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
        ])
      fs
  in
  let groups = Sweep.run_grouped ?pool scenarios ~seeds in
  let rec rows fs groups =
    match (fs, groups) with
    | [], [] -> []
    | f :: fs, basalt_runs :: brahms_runs :: groups ->
        {
          f;
          basalt_time = convergence_of_runs basalt_runs ~optimal:f ~within;
          brahms_time = convergence_of_runs brahms_runs ~optimal:f ~within;
        }
        :: rows fs groups
    | _ -> assert false
  in
  rows fs groups

let time_cell = function
  | Some t -> Report.float_cell t
  | None -> "no-convergence"

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "f"; cell = (fun i -> Report.float_cell arr.(i).f) };
      {
        Report.header = "basalt_time";
        cell = (fun i -> time_cell arr.(i).basalt_time);
      };
      {
        Report.header = "brahms_time";
        cell = (fun i -> time_cell arr.(i).brahms_time);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?pool () =
  let n, v, steps = dims scale in
  Printf.printf
    "== fig3 (convergence time within 25%% of optimal)  [n=%d v=%d steps=%g]\n"
    n v steps;
  let rows, cols = columns (run ~scale ?pool ()) in
  Output.emit ?csv ~rows cols
