module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Report = Basalt_sim.Report
module Obs = Basalt_obs.Obs

type row = {
  protocol : string;
  msgs_per_node_round : float;
  bytes_per_node_round : float;
  wire_bytes_per_node_round : float;
  max_datagram : int;
  fits_mtu : bool;
  adversary_bytes_ratio : float;
  obs : Obs.t;
}

let run ?(scale = Scale.Standard) ?(trace = false) () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let protocols =
    [
      ("basalt", Scenario.Basalt (Basalt_core.Config.make ~v ()));
      ("brahms", Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
      ("sps", Scenario.Sps (Basalt_sps.Sps.config ~l:v ()));
      ("classic", Scenario.Classic (Basalt_sps.Classic.config ~l:v ()));
    ]
  in
  List.map
    (fun (name, protocol) ->
      let scenario =
        Scenario.make ~name:"cost" ~n ~f:0.1 ~force:10.0 ~protocol ~steps ()
      in
      let r = Runner.run ~obs:true ~trace scenario in
      let sink = match r.Runner.obs with Some o -> o | None -> assert false in
      let q = float_of_int (Scenario.num_correct scenario) in
      let rounds = steps /. Scenario.tau scenario in
      let b = r.Runner.bandwidth in
      let per_round x = x /. (q *. rounds) in
      (* Message and wire-byte counts come from the protocol's own
         instruments: every correct-node send passes through
         Basalt_codec.Metered.send, so <proto>.msgs_sent equals the
         transport meter's correct_messages while <proto>.bytes_sent
         costs each datagram with the real codec (8-byte identifiers +
         header) instead of the §4.3 4-byte-id model. *)
      let instrument suffix =
        Obs.Counter.value (Obs.counter sink (name ^ "." ^ suffix))
      in
      {
        protocol = name;
        msgs_per_node_round = per_round (float_of_int (instrument "msgs_sent"));
        bytes_per_node_round =
          per_round (float_of_int b.Runner.correct_bytes);
        wire_bytes_per_node_round =
          per_round (float_of_int (instrument "bytes_sent"));
        max_datagram = b.Runner.max_datagram;
        fits_mtu = b.Runner.max_datagram <= 1500;
        adversary_bytes_ratio =
          (if b.Runner.correct_bytes = 0 then Float.nan
           else
             float_of_int b.Runner.adversary_bytes
             /. float_of_int b.Runner.correct_bytes);
        obs = sink;
      })
    protocols

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "protocol"; cell = (fun i -> arr.(i).protocol) };
      {
        Report.header = "msgs/node/round";
        cell = (fun i -> Report.float_cell arr.(i).msgs_per_node_round);
      };
      {
        Report.header = "bytes/node/round";
        cell = (fun i -> Report.float_cell arr.(i).bytes_per_node_round);
      };
      {
        Report.header = "wire_bytes/node/round";
        cell = (fun i -> Report.float_cell arr.(i).wire_bytes_per_node_round);
      };
      {
        Report.header = "max_datagram";
        cell = (fun i -> string_of_int arr.(i).max_datagram);
      };
      {
        Report.header = "fits_MTU";
        cell = (fun i -> string_of_bool arr.(i).fits_mtu);
      };
      {
        Report.header = "adv/correct bytes";
        cell = (fun i -> Report.float_cell arr.(i).adversary_bytes_ratio);
      };
    ] )

let write_trace path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun row ->
          output_string oc
            (Obs.events_to_jsonl
               ~extra:[ ("proto", Obs.Str row.protocol) ]
               row.obs))
        rows)

let print ?(scale = Scale.Standard) ?csv ?trace () =
  Printf.printf "== communication cost (n=%d, v=%d, f=0.1, F=10)\n"
    (Scale.n scale) (Scale.v scale);
  let rows = run ~scale ~trace:(Option.is_some trace) () in
  let nrows, cols = columns rows in
  Output.emit ?csv ~rows:nrows cols;
  match trace with
  | None -> ()
  | Some path ->
      write_trace path rows;
      Printf.printf "(trace written to %s)\n" path
