(** Extension: convergence under composed network fault plans.

    Where {!Robustness} sweeps independent Bernoulli loss, this
    experiment drives the engine's fault-plan layer (DESIGN.md §10):
    Gilbert–Elliott burst loss, a timed network partition cutting half
    the identifier space for a quarter of the run, and a
    duplication + reordering link — each against Basalt, Brahms and SPS
    while flooding continues at F = 10.  Reported per condition: the
    median convergence time to within 25% of the optimal Byzantine
    sample fraction (as in Fig. 3), the final sampled Byzantine
    fraction, and the transport delivery ratio (which exceeds 1 under
    duplication).  The whole sweep is a flat condition × protocol × seed
    batch fanned over an optional {!Basalt_parallel.Pool}, so tables and
    traces are bit-identical at any [-j N]. *)

type outcome = {
  time : float option;
      (** Median convergence time across seeds, [None] when a majority of
          seeds never converged. *)
  sample_byz : float;  (** Mean final Byzantine fraction among samples. *)
  delivered_frac : float;
      (** Messages delivered per message sent ([> 1] under duplication,
          [< 1] under loss/partition). *)
}

type row = {
  condition : string;  (** Fault-plan name (["clean"], ["burst-loss"], …). *)
  basalt : outcome;
  brahms : outcome;
  sps : outcome;
}

val burst_loss : Basalt_engine.Link.Loss.t
(** The Gilbert–Elliott channel used by the ["burst-loss"] condition
    (15% stationary loss arriving in bursts). *)

val run : ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> row list
(** [run ()] sweeps every condition × protocol at the scale's base
    parameters. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print :
  ?scale:Scale.t ->
  ?csv:string ->
  ?trace:string ->
  ?pool:Basalt_parallel.Pool.t ->
  unit ->
  unit
(** [print ()] runs the sweep and prints its table; [csv] also writes a
    CSV file, [trace] dumps the merged deterministic JSONL event trace
    of every run, tagged with [cond] and [proto] fields, in task order
    (byte-identical at any [-j N]). *)
