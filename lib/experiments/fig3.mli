(** Figure 3: time to convergence within 25% of the optimal proportion of
    Byzantine samples, vs the Byzantine fraction [f].

    Paper setting: n = 1000, v = 100, F = 10, ρ = 1.  Expected shape:
    Basalt's convergence time stays low up to [f ≈ 30%]; Brahms takes
    much longer and stops converging within the experiment's duration
    from [f ≈ 20%] ("no convergence" is reported as [None]). *)

type row = {
  f : float;
  basalt_time : float option;  (** [None] = did not converge. *)
  brahms_time : float option;
}

val run :
  ?scale:Scale.t ->
  ?within:float ->
  ?pool:Basalt_parallel.Pool.t ->
  unit ->
  row list
(** [run ~scale ~within ()] measures the earliest time from which the
    Byzantine sample proportion stays at or below
    [(1 + within) * f] (default [within = 0.25]), median across seeds
    ([None] when the majority of seeds never converge). *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
