(** Extension: epidemic broadcast over the sampled overlay.

    The application-level payoff of a Byzantine-tolerant sampler: the
    [lib/gossip] eager/lazy-push broadcast layer (DESIGN.md §11) runs
    on top of Basalt, Brahms, SPS and the non-tolerant classic
    baseline while the §4 flooding adversary attacks the sampling
    layer — Byzantine nodes additionally black-hole every broadcast
    frame.  Because the eager mesh is replenished from the sampler's
    output, the dissemination tree inherits the sample stream's
    Byzantine fraction: samplers that bound it (Basalt) keep messages
    flowing, poisoned ones (classic) lose them.

    Swept: network condition (clean / Gilbert–Elliott burst loss / a
    timed half-space partition) × flooding force × protocol.  A batch
    of messages is published from rotating correct publishers after a
    warmup; reported per cell: the delivered fraction of
    (message, correct node) pairs, the median time for a message to
    reach 99% of correct nodes, and the redundancy (duplicate data
    frames per delivery).  The whole sweep is a flat task list fanned
    over an optional {!Basalt_parallel.Pool}; tables and traces are
    bit-identical at any [-j N]. *)

type outcome = {
  delivered : float;  (** Mean delivered fraction across seeds. *)
  t99 : float option;
      (** Median time-to-99% across seeds' medians, [None] when a
          majority of messages never got there. *)
  redundancy : float;  (** Duplicate data frames per delivery. *)
}

type row = {
  condition : string;  (** Network condition name. *)
  force : float;  (** Flooding force F. *)
  basalt : outcome;
  brahms : outcome;
  sps : outcome;
  classic : outcome;
}

val publish_count : int
(** Messages published per run (10). *)

val run :
  ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> row list
(** [run ()] sweeps condition × force × protocol at the scale's base
    parameters ([f = 0.1]). *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table. *)

val print :
  ?scale:Scale.t ->
  ?csv:string ->
  ?trace:string ->
  ?pool:Basalt_parallel.Pool.t ->
  unit ->
  unit
(** [print ()] runs the sweep and prints its table; [csv] also writes
    a CSV file, [trace] dumps the merged deterministic JSONL event
    trace of every run, tagged with [cond], [force] and [proto]
    fields, in task order (byte-identical at any [-j N]). *)
