(** The §4.3 SPS failure result.

    "For n = 1000, f = 30%, and even with a favorable attack force F of
    0, 90% of correct nodes become isolated in the network rapidly using
    SPS and remain so during the whole simulation.  In contrast, both
    BASALT and Brahms were able to prevent all correct nodes from
    becoming isolated in this scenario."

    This experiment runs all three protocols (plus the classical
    non-tolerant baseline for context) in that scenario and reports the
    final fraction of isolated correct nodes. *)

type row = {
  protocol : string;
  isolated_fraction : float;  (** Final fraction of isolated correct nodes. *)
  view_byz : float;
  ever_isolated : bool;  (** Any isolation during the second half. *)
}

val run :
  ?scale:Scale.t ->
  ?force:float ->
  ?pool:Basalt_parallel.Pool.t ->
  unit ->
  row list
(** [run ~scale ~force ()] uses [f = 0.3] and [force] (default 0: the
    adversary only answers pulls). *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
