module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report
module Link = Basalt_engine.Link

type row = {
  loss_rate : float;
  basalt : Sweep.aggregate;
  brahms : Sweep.aggregate;
}

let loss_rates = [ 0.0; 0.1; 0.2; 0.4 ]

let run ?(scale = Scale.Standard) ?pool () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let scenario loss_rate protocol =
    let loss =
      if loss_rate = 0.0 then Link.Loss.None else Link.Loss.Bernoulli loss_rate
    in
    Scenario.make ~name:"robustness" ~n ~f:0.1 ~force:10.0 ~protocol ~steps
      ~loss ()
  in
  let scenarios =
    List.concat_map
      (fun rate ->
        [
          scenario rate (Scenario.Basalt (Basalt_core.Config.make ~v ()));
          scenario rate (Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
        ])
      loss_rates
  in
  let aggs = Sweep.run_aggregates ?pool scenarios ~seeds in
  let rec rows rates aggs =
    match (rates, aggs) with
    | [], [] -> []
    | loss_rate :: rates, basalt :: brahms :: aggs ->
        { loss_rate; basalt; brahms } :: rows rates aggs
    | _ -> assert false
  in
  rows loss_rates aggs

type latency_row = { jitter : float; basalt_sample_byz : float }

let jitters = [ 0.0; 0.25; 0.5; 1.0 ]

let run_latency ?(scale = Scale.Standard) ?pool () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let scenarios =
    List.map
      (fun jitter ->
        let latency =
          if jitter = 0.0 then Link.Latency.Zero
          else Link.Latency.Uniform { lo = 0.0; hi = jitter }
        in
        Scenario.make ~name:"robustness-latency" ~n ~f:0.1 ~force:10.0
          ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v ()))
          ~steps ~latency ())
      jitters
  in
  List.map2
    (fun jitter agg -> { jitter; basalt_sample_byz = agg.Sweep.mean_sample_byz })
    jitters
    (Sweep.run_aggregates ?pool scenarios ~seeds)

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      {
        Report.header = "loss_rate";
        cell = (fun i -> Report.float_cell arr.(i).loss_rate);
      };
      {
        Report.header = "basalt_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_sample_byz);
      };
      {
        Report.header = "brahms_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_sample_byz);
      };
      {
        Report.header = "basalt_isolated";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_isolated);
      };
      {
        Report.header = "brahms_isolated";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_isolated);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?pool () =
  Printf.printf "== robustness extension: message loss (n=%d, v=%d, F=10)\n"
    (Scale.n scale) (Scale.v scale);
  let rows, cols = columns (run ~scale ?pool ()) in
  Output.emit ?csv ~rows cols;
  Printf.printf "latency jitter sweep (basalt, max delay as fraction of tau):\n";
  List.iter
    (fun r ->
      Printf.printf "  jitter=%.2f  samples_byz=%.4f\n" r.jitter
        r.basalt_sample_byz)
    (run_latency ~scale ?pool ())
