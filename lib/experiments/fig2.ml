module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report

type panel = F_byzantine | Force | Rho | View_size

let panel_name = function
  | F_byzantine -> "fig2a (vs f)"
  | Force -> "fig2b (vs F)"
  | Rho -> "fig2c (vs rho)"
  | View_size -> "fig2d (vs v)"

let all_panels = [ F_byzantine; Force; Rho; View_size ]

type row = {
  x : float;
  optimal : float;
  basalt : Sweep.aggregate;
  brahms : Sweep.aggregate;
}

type point = { f : float; force : float; rho : float; v : int }

let base scale =
  { f = 0.1; force = 10.0; rho = 1.0; v = Scale.v scale }

let protocol_of which point =
  match which with
  | `Basalt -> Scenario.Basalt (Basalt_core.Config.make ~v:point.v ~rho:point.rho ())
  | `Brahms ->
      Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:point.v ~rho:point.rho ())

let scenario scale which point =
  Scenario.make
    ~name:(panel_name F_byzantine)
    ~n:(Scale.n scale) ~f:point.f ~force:point.force
    ~protocol:(protocol_of which point)
    ~steps:(Scale.steps scale) ()

let points scale panel =
  let base = base scale in
  match panel with
  | F_byzantine ->
      List.map
        (fun f -> (f, { base with f }))
        (Scale.byzantine_fractions scale)
  | Force ->
      List.map (fun force -> (force, { base with force })) (Scale.forces scale)
  | Rho ->
      List.map (fun rho -> (rho, { base with rho })) (Scale.sampling_rates scale)
  | View_size ->
      List.map
        (fun v -> (float_of_int v, { base with v }))
        (Scale.view_sizes scale)

let run ?(scale = Scale.Standard) ?pool panel =
  let seeds = Scale.seeds scale in
  let pts = points scale panel in
  (* One flat batch: every (point, protocol, seed) simulation is an
     independent task, so a pool stays busy even with one seed. *)
  let scenarios =
    List.concat_map
      (fun (_, point) ->
        [ scenario scale `Basalt point; scenario scale `Brahms point ])
      pts
  in
  let aggs = Sweep.run_aggregates ?pool scenarios ~seeds in
  let rec rows pts aggs =
    match (pts, aggs) with
    | [], [] -> []
    | (x, point) :: pts, basalt :: brahms :: aggs ->
        { x; optimal = point.f; basalt; brahms } :: rows pts aggs
    | _ -> assert false
  in
  rows pts aggs

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "x"; cell = (fun i -> Report.float_cell arr.(i).x) };
      {
        Report.header = "basalt_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_sample_byz);
      };
      {
        Report.header = "brahms_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_sample_byz);
      };
      {
        Report.header = "optimal";
        cell = (fun i -> Report.float_cell arr.(i).optimal);
      };
      {
        Report.header = "basalt_isolated";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_isolated);
      };
      {
        Report.header = "brahms_isolated";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_isolated);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?pool panel =
  Printf.printf "== %s  [scale=%s]\n" (panel_name panel) (Scale.to_string scale);
  let rows, cols = columns (run ~scale ?pool panel) in
  Output.emit ?csv ~rows cols
