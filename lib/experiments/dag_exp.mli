(** Extension: full Avalanche DAG consensus over different samplers.

    The paper's §5 use case end-to-end: a DAG of transactions with one
    deliberate double-spend, decided by repeated RPS-sampled committee
    queries ({!Basalt_avalanche.Dag_network}).  Byzantine nodes vote for
    the conflicting branch and flood the RPS.

    Expected shape: with Basalt (as with an idealised full-knowledge
    sampler) safety holds and the network makes steady progress; with the
    classical non-tolerant RPS, committees become attacker-dominated and
    liveness is lost entirely. *)

type row = {
  sampler : string;
  safety : bool;
  conflict_resolved : float;
  virtuous_accepted : float;
  committee_byz : float;
}

val run : ?scale:Scale.t -> unit -> row list
(** [run ()] executes the DAG-consensus experiment at the given scale. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print : ?scale:Scale.t -> ?csv:string -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
