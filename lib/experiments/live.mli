(** The §5 live-deployment measurement (simulated; see
    {!Basalt_avalanche.Deployment}).

    Reports the malicious proportion in a witness node's samples under an
    Eclipse attempt by ≈20% of the network, for the Basalt-derived
    sampler, a full-knowledge uniform sampler, and the ground truth.
    Paper numbers: 17.5% / 18.4% / 18.8%. *)

type row = {
  sampler : string;
  malicious_proportion : float;
  paper_value : float;  (** The value the paper reports. *)
}

val run : ?scale:Scale.t -> unit -> row list * Basalt_avalanche.Deployment.result
(** [run ()] executes the live-deployment experiment, returning per-phase
    rows and the final deployment result. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print : ?scale:Scale.t -> ?csv:string -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
