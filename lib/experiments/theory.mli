(** Section 3 theoretical results: worked numbers and model-vs-simulation.

    Three parts:
    + the paper's worked examples — the joining-isolation bound of
      Eq. (7) ([B^v < 1e-10] with [v = 200], [I = fn/4], [f0 = 0.5]), the
      coupon-collector growth bound of Eq. (12) ([Δc ≥ 467] hence
      [c ≥ 592] at the next reset for the example system), and the safe
      threshold [c ≥ 585] making Eq. (8) drop below [1e-10];
    + the equilibria of Eq. (16) across view sizes;
    + a validation run comparing the model's stable point [B1] with the
      Byzantine view proportion measured by Monte-Carlo simulation. *)

type worked = {
  joining_bound : float;  (** Eq. (7) with the paper's example numbers. *)
  delta_c : float;  (** Eq. (12): expected new correct ids per reset. *)
  c_next : float;  (** [c0 + delta_c]; paper: ≥ 592. *)
  safe_c : float;  (** Smallest c with Eq. (8) < 1e-10; paper: 585. *)
}

val worked_examples : unit -> worked
(** [worked_examples ()] evaluates the bounds with the paper's example
    parameters (n = 10000, f = 0.1, and v = 200 / I = fn/4 / f0 = 0.5 for
    the joining bound; v = 100, k = 50, c0 = 125 for the growth bound). *)

type equilibrium_row = {
  v : int;
  b1 : float option;  (** Stable point of Eq. (16). *)
  b2 : float option;  (** Unstable point. *)
  predicted_excess : float option;  (** [B1 - f]. *)
}

val equilibria : ?scale:Scale.t -> ?f:float -> unit -> equilibrium_row list
(** [equilibria ()] tabulates the fixed points of Eq. 16 across the force
    grid for Byzantine fraction [f]. *)

type validation_row = {
  view : int;
  model_b1 : float option;
  simulated : float;  (** Mean Byzantine view proportion at the end. *)
}

val validate :
  ?scale:Scale.t ->
  ?pool:Basalt_parallel.Pool.t ->
  unit ->
  validation_row list
(** [validate ~scale ()] runs Basalt at several view sizes under the
    worst-case-style flooding attack and compares against [B1]. *)

val print : ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] prints the worked examples, the equilibrium table, and the
    model-vs-simulation validation. *)
