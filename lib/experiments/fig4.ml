module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Measurements = Basalt_sim.Measurements
module Report = Basalt_sim.Report

type series = { protocol : string; points : Measurements.point list }

let dims scale =
  match scale with
  | Scale.Quick -> (300, 40, 80.0, 10.0)
  | Scale.Standard -> (1000, 100, 150.0, 5.0)
  | Scale.Full -> (10_000, 160, 200.0, 5.0)

let run ?(scale = Scale.Standard) ?pool () =
  let n, v, steps, measure_every = dims scale in
  let make protocol =
    Scenario.make ~name:"fig4" ~n ~f:0.1 ~force:1.0 ~protocol ~steps
      ~measure_every ~graph_metrics:true ()
  in
  let series (name, protocol) =
    let r = Runner.run (make protocol) in
    { protocol = name; points = Measurements.points r.Runner.series }
  in
  Basalt_parallel.Pool.map ?pool series
    [
      ("basalt", Scenario.Basalt (Basalt_core.Config.make ~v ~rho:0.5 ()));
      ("brahms", Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ~rho:0.5 ()));
    ]

let opt_cell = function Some x -> Report.float_cell x | None -> "-"

let columns series_list =
  match series_list with
  | [] -> (0, [])
  | first :: _ ->
      let rows = List.length first.points in
      let times = Array.of_list first.points in
      let per_protocol s =
        let pts = Array.of_list s.points in
        [
          {
            Report.header = s.protocol ^ "_view_byz";
            cell = (fun i -> Report.float_cell pts.(i).Measurements.view_byz);
          };
          {
            Report.header = s.protocol ^ "_clustering";
            cell = (fun i -> opt_cell pts.(i).Measurements.clustering);
          };
          {
            Report.header = s.protocol ^ "_mean_path";
            cell = (fun i -> opt_cell pts.(i).Measurements.mean_path);
          };
          {
            Report.header = s.protocol ^ "_indeg_spread";
            cell = (fun i -> opt_cell pts.(i).Measurements.indegree_spread);
          };
        ]
      in
      ( rows,
        {
          Report.header = "time";
          cell = (fun i -> Report.float_cell times.(i).Measurements.time);
        }
        :: List.concat_map per_protocol series_list )

let print ?(scale = Scale.Standard) ?csv ?pool () =
  let n, v, steps, _ = dims scale in
  Printf.printf
    "== fig4 (graph metric convergence)  [n=%d v=%d f=0.1 F=1 rho=0.5 steps=%g]\n"
    n v steps;
  let series_list = run ~scale ?pool () in
  let rows, cols = columns series_list in
  Output.emit ?csv ~rows cols;
  (* Quantify "Basalt converges much more rapidly" with fitted relaxation
     time constants on the Byzantine-in-view series. *)
  List.iter
    (fun s ->
      let series =
        List.map
          (fun p -> (p.Measurements.time, p.Measurements.view_byz))
          s.points
      in
      match Basalt_analysis.Fit.exponential_decay series with
      | Some fit ->
          Printf.printf
            "%s: view_byz relaxes to %.4f with time constant tau = %.1f \
             (half-life %.1f, r2 = %.2f)\n"
            s.protocol fit.Basalt_analysis.Fit.y_inf
            fit.Basalt_analysis.Fit.tau
            (Basalt_analysis.Fit.half_life fit)
            fit.Basalt_analysis.Fit.r_square
      | None ->
          Printf.printf "%s: already at its operating point (no decay to fit)\n"
            s.protocol)
    series_list
