module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report

type row = {
  v : int;
  basalt_max_rho : float option;
  brahms_max_rho : float option;
}

let run ?(scale = Scale.Standard) ?pool () =
  let n = Scale.n scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let rhos = Scale.sampling_rates scale in
  let make_basalt v ~rho =
    Scenario.make ~name:"fig5-basalt" ~n ~f:0.1 ~force:10.0
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v ~rho ()))
      ~steps ()
  in
  let make_brahms v ~rho =
    Scenario.make ~name:"fig5-brahms" ~n ~f:0.1 ~force:10.0
      ~protocol:(Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ~rho ()))
      ~steps ()
  in
  (* Each max_rho scan is inherently sequential (it stops at the first
     failing rate), so parallelism comes from the v × protocol grid. *)
  let tasks =
    List.concat_map (fun v -> [ (v, `Basalt); (v, `Brahms) ]) (Scale.view_sizes scale)
  in
  let results =
    Basalt_parallel.Pool.map ?pool
      (fun (v, which) ->
        let make =
          match which with `Basalt -> make_basalt v | `Brahms -> make_brahms v
        in
        Sweep.max_rho ~make ~seeds rhos)
      tasks
  in
  let rec rows = function
    | [] -> []
    | ((v, _), basalt_max_rho) :: (_, brahms_max_rho) :: rest ->
        { v; basalt_max_rho; brahms_max_rho } :: rows rest
    | _ -> assert false
  in
  rows (List.combine tasks results)

let rho_cell = function Some r -> Report.float_cell r | None -> "none"

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "v"; cell = (fun i -> string_of_int arr.(i).v) };
      {
        Report.header = "basalt_max_rho";
        cell = (fun i -> rho_cell arr.(i).basalt_max_rho);
      };
      {
        Report.header = "brahms_max_rho";
        cell = (fun i -> rho_cell arr.(i).brahms_max_rho);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?pool () =
  Printf.printf
    "== fig5 (max sampling rate without isolation)  [n=%d f=0.1 F=10]\n"
    (Scale.n scale);
  let rows, cols = columns (run ~scale ?pool ()) in
  Output.emit ?csv ~rows cols
