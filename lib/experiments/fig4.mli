(** Figure 4: convergence of graph quality metrics over time.

    Paper setting: n = 10000, f = 10%, F = 1, ρ = 0.5, v = 160 — a
    favorable situation highlighting convergence speed.  Four time
    series per protocol (lower is better on all):

    - Byzantine proportion in views,
    - average local clustering coefficient (malicious assumed fully
      interconnected),
    - mean path length over the correct-only subgraph,
    - in-degree concentration (last minus first decile).

    Expected shape: Basalt converges markedly faster than Brahms on every
    metric. *)

type series = {
  protocol : string;
  points : Basalt_sim.Measurements.point list;
}

val run :
  ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> series list
(** [run ~scale ()] produces one series per protocol (Basalt, Brahms),
    in parallel when a pool is given. *)

val columns : series list -> int * Basalt_sim.Report.column list
(** Interleaved table: one row per measurement time, one column group per
    protocol. *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] runs the experiment, prints the per-series table and the
    fitted decay rates; [csv] also writes a CSV file. *)
