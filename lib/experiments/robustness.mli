(** Extension: resilience to non-adversarial network faults.

    The system model (§2.1) assumes reliable channels and notes that
    unreliable ones with attacker-independent loss would only matter
    through the attack-force abstraction.  This experiment checks that
    empirically: Basalt and Brahms run under increasing uniform message
    loss (and, separately, under latency jitter comparable to the
    exchange interval) while flooding continues at F = 10.  Expected
    behavior: loss slows discovery but does not bias it — Basalt's sample
    quality degrades only mildly even at 40% loss. *)

type row = {
  loss_rate : float;
  basalt : Basalt_sim.Sweep.aggregate;
  brahms : Basalt_sim.Sweep.aggregate;
}

val run : ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> row list
(** Loss sweep at the scale's base parameters. *)

type latency_row = {
  jitter : float;  (** Max one-way delay as a fraction of τ. *)
  basalt_sample_byz : float;
}

val run_latency :
  ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> latency_row list
(** Latency-jitter sweep (Basalt only). *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] runs both robustness sweeps and prints their tables; [csv]
    also writes a CSV file. *)
