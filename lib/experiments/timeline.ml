module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Report = Basalt_sim.Report

type spec = {
  protocol : string;
  n : int;
  f : float;
  force : float;
  v : int;
  rho : float;
  steps : float;
  seed : int;
  graph_metrics : bool;
}

let known_protocols = [ "basalt"; "brahms"; "sps"; "classic" ]

let spec ?(protocol = "basalt") ?(n = 1000) ?(f = 0.1) ?(force = 10.0)
    ?(v = 100) ?(rho = 1.0) ?(steps = 200.0) ?(seed = 42)
    ?(graph_metrics = false) () =
  if not (List.mem protocol known_protocols) then
    Error
      (Printf.sprintf "unknown protocol %S (expected %s)" protocol
         (String.concat "|" known_protocols))
  else Ok { protocol; n; f; force; v; rho; steps; seed; graph_metrics }

let protocol_of s =
  match s.protocol with
  | "basalt" -> Scenario.Basalt (Basalt_core.Config.make ~v:s.v ~rho:s.rho ())
  | "brahms" ->
      Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:s.v ~rho:s.rho ())
  | "sps" -> Scenario.Sps (Basalt_sps.Sps.config ~l:s.v ())
  | "classic" -> Scenario.Classic (Basalt_sps.Classic.config ~l:s.v ())
  | p -> invalid_arg ("Timeline: unknown protocol " ^ p)

let run ?obs ?trace s =
  Runner.run ?obs ?trace
    (Scenario.make ~name:"timeline" ~n:s.n ~f:s.f ~force:s.force
       ~protocol:(protocol_of s) ~steps:s.steps ~seed:s.seed
       ~graph_metrics:s.graph_metrics ())

let print ?csv ?trace s =
  Printf.printf
    "== timeline: %s  n=%d f=%g F=%g v=%d rho=%g steps=%g seed=%d\n" s.protocol
    s.n s.f s.force s.v s.rho s.steps s.seed;
  (* Metrics columns ride along whenever a trace was asked for: the same
     sink feeds both, and the table is where the instruments surface. *)
  let with_obs = Option.is_some trace in
  let r = run ~obs:with_obs ~trace:with_obs s in
  let cols = Report.series_columns r.Runner.series in
  let rows = Basalt_sim.Measurements.length r.Runner.series in
  Output.emit ?csv ~rows cols;
  let series field =
    Array.of_list
      (List.map field (Basalt_sim.Measurements.points r.Runner.series))
  in
  Printf.printf "view_byz   %s\n"
    (Report.sparkline (series (fun p -> p.Basalt_sim.Measurements.view_byz)));
  Printf.printf "sample_byz %s\n"
    (Report.sparkline (series (fun p -> p.Basalt_sim.Measurements.sample_byz)));
  Printf.printf "isolated   %s\n"
    (Report.sparkline (series (fun p -> p.Basalt_sim.Measurements.isolated)));
  let b = r.Runner.bandwidth in
  Printf.printf
    "final: view_byz=%.4f sample_byz=%.4f isolated=%.4f; %d correct msgs \
     (%d bytes), max datagram %d B\n"
    r.Runner.final.Basalt_sim.Measurements.view_byz
    r.Runner.final.Basalt_sim.Measurements.sample_byz
    r.Runner.final.Basalt_sim.Measurements.isolated b.Runner.correct_messages
    b.Runner.correct_bytes b.Runner.max_datagram;
  match (trace, r.Runner.obs) with
  | Some path, Some sink ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Basalt_obs.Obs.events_to_jsonl sink));
      Printf.printf "(trace written to %s)\n" path
  | _ -> ()
