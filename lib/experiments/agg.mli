(** Aggregation helpers shared by the multi-seed experiment sweeps and
    the declarative matrix driver (lib/scenario, DESIGN.md §12).

    The hand-written experiments and the scenario files that reproduce
    them must agree byte-for-byte, so both routes go through these
    functions rather than re-deriving the statistics. *)

val mean : ('a -> float) -> 'a list -> float
(** [mean f xs] is the arithmetic mean of [f] over [xs] ([nan] on the
    empty list). *)

val sum : ('a -> int) -> 'a list -> int
(** [sum f xs] totals [f] over [xs]. *)

val median_opt : float option list -> float option
(** [median_opt times] applies the sweeps' majority rule: [None] unless
    more than half of the entries are [Some], otherwise the median of
    the present values (upper median for even counts). *)

val chunks : int -> 'a list -> 'a list list
(** [chunks k xs] splits [xs] into consecutive groups of exactly [k],
    preserving order — the regrouping step after a flat
    {!Basalt_parallel.Pool.map} over a condition × seed batch.
    @raise Invalid_argument if [k <= 0] or [k] does not divide the
    length of [xs]. *)
