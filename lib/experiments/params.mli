(** Table 1: parameter envelope and validity checks.

    Prints the algorithm and environment parameters with their paper
    ranges and this repository's defaults, and evaluates the Eq. (16)
    stability condition across the paper's envelope. *)

val print : ?scale:Scale.t -> unit -> unit
(** [print ()] prints the Table 1 parameter sweep and the Eq. 16 stability
    check for the chosen scale. *)
