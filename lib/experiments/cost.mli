(** Communication-cost accounting (the §4.3 budget argument).

    The paper's evaluation gives each protocol two datagram exchanges per
    round per node and argues every datagram fits one 1500-byte MTU (at
    most 200 four-byte identifiers plus headers).  This experiment runs
    each protocol in the base scenario and reports measured message and
    byte rates, checking the budget empirically.

    Since the observability layer (DESIGN.md §8) the message and
    wire-byte rates are sourced from the protocols' own [lib/obs]
    instruments ([<proto>.msgs_sent] / [<proto>.bytes_sent], costed with
    {!Basalt_codec.Wire.encoded_size}); the transport meter's abstract
    4-byte-identifier model is kept alongside as [bytes_per_node_round]
    for direct comparison with the paper's formula. *)

type row = {
  protocol : string;
  msgs_per_node_round : float;  (** Messages a correct node sends per τ,
                                    from the [<proto>.msgs_sent]
                                    instrument. *)
  bytes_per_node_round : float;
      (** Per the §4.3 4-byte-identifier model (transport meter). *)
  wire_bytes_per_node_round : float;
      (** Per the real codec ([<proto>.bytes_sent] instrument). *)
  max_datagram : int;  (** Largest payload observed (bytes). *)
  fits_mtu : bool;  (** [max_datagram <= 1500]. *)
  adversary_bytes_ratio : float;
      (** Adversary bytes / correct bytes — the resource asymmetry the
          attack force F buys. *)
  obs : Basalt_obs.Obs.t;
      (** The run's full instrument registry (and trace, when
          requested). *)
}

val run : ?scale:Scale.t -> ?trace:bool -> unit -> row list
(** [run ()] measures the communication-cost table at the given scale;
    [trace] (default [false]) additionally records per-message events in
    each row's registry. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print : ?scale:Scale.t -> ?csv:string -> ?trace:string -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also
    writes a CSV file, and [trace] writes the merged per-protocol event
    stream as JSONL (each line tagged with a ["proto"] field) to the
    given path. *)
