(** Communication-cost accounting (the §4.3 budget argument).

    The paper's evaluation gives each protocol two datagram exchanges per
    round per node and argues every datagram fits one 1500-byte MTU (at
    most 200 four-byte identifiers plus headers).  This experiment runs
    each protocol in the base scenario and reports measured message and
    byte rates, checking the budget empirically. *)

type row = {
  protocol : string;
  msgs_per_node_round : float;  (** Messages a correct node sends per τ. *)
  bytes_per_node_round : float;
  max_datagram : int;  (** Largest payload observed (bytes). *)
  fits_mtu : bool;  (** [max_datagram <= 1500]. *)
  adversary_bytes_ratio : float;
      (** Adversary bytes / correct bytes — the resource asymmetry the
          attack force F buys. *)
}

val run : ?scale:Scale.t -> unit -> row list
(** [run ()] measures the communication-cost table at the given scale. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print : ?scale:Scale.t -> ?csv:string -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
