(** Figure 2: proportion of Byzantine samples, Basalt vs Brahms.

    Four panels vary one parameter around the base scenario ([f = 0.1],
    [rho = 1], base view size, [F = 10]) and report the mean Byzantine
    proportion among the samples correct nodes' services emitted by the
    end of the run:

    - (a) vs the fraction [f] of Byzantine nodes,
    - (b) vs the attack force [F],
    - (c) vs the sampling rate [rho],
    - (d) vs the view size [v].

    Expected shape (paper §4.4): Basalt stays near the optimum [f] up to
    [f ≈ 20%]; Brahms is consistently worse, degrades with [F], and
    collapses at high [rho] and small [v]. *)

type panel = F_byzantine | Force | Rho | View_size

val panel_name : panel -> string
(** [panel_name p] is the panel's display name (e.g. ["fig2a (vs f)"]). *)

val all_panels : panel list
(** All four panels, in figure order. *)

type row = {
  x : float;  (** The varied parameter's value. *)
  optimal : float;  (** The optimum: the Byzantine fraction [f]. *)
  basalt : Basalt_sim.Sweep.aggregate;
  brahms : Basalt_sim.Sweep.aggregate;
}

val run : ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> panel -> row list
(** [run ~scale panel] executes both protocols over the panel's x-axis,
    averaged over the scale's seeds.  With [?pool], the point × protocol
    × seed product fans out as one flat task batch. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] is [(row count, printable columns)]. *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> panel -> unit
(** [print ~scale panel] runs the panel and prints its table. *)
