(* Shared aggregation helpers for multi-seed experiment sweeps.  The
   matrix driver (lib/scenario) reuses these, so a scenario file that
   mirrors a hand-written experiment reproduces its numbers exactly. *)

let mean f xs =
  List.fold_left (fun acc x -> acc +. f x) 0.0 xs /. float_of_int (List.length xs)

let sum f xs = List.fold_left (fun acc x -> acc + f x) 0 xs

let median_opt times =
  let converged = List.filter_map Fun.id times in
  (* Majority rule: report the median only when most runs produced a
     value; otherwise the cell is "did not converge". *)
  if 2 * List.length converged < List.length times + 1 then None
  else begin
    let sorted = List.sort Float.compare converged in
    Some (List.nth sorted (List.length sorted / 2))
  end

let chunks k xs =
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else
      match rest with
      | x :: tl -> take (k - 1) (x :: acc) tl
      | [] -> invalid_arg "Agg.chunks: list length not a multiple of k"
  in
  let rec go = function
    | [] -> []
    | xs ->
        let group, rest = take k [] xs in
        group :: go rest
  in
  if k <= 0 then invalid_arg "Agg.chunks: k must be positive" else go xs
