(** Figure 5: maximum achievable sampling rate ρ without isolation,
    vs view size [v].

    Paper setting: n = 10000, f = 10%, F = 10.  A run succeeds if, from
    half of the allotted time onward, no correct node is ever isolated;
    the figure plots the largest ρ with only successful runs for each
    [v].  Expected shape: Basalt sustains a higher ρ than Brahms at every
    view size (more utility for the same view). *)

type row = {
  v : int;
  basalt_max_rho : float option;  (** [None]: no tested ρ succeeded. *)
  brahms_max_rho : float option;
}

val run : ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> row list
(** [run ()] executes the hit-ratio experiment at the given scale,
    fanning the v × protocol grid out over the pool (each ρ-scan itself
    stays sequential: it stops at the first failing rate). *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
