module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report
module Rank = Basalt_hashing.Rank

type row = {
  sybil_ids : float;
  prefix_share : float;
  vanilla : float;
  diverse : float;
}

let prefix_layout ~honest ~honest_prefixes ~attacker_prefixes id =
  if id < honest then id mod honest_prefixes
  else honest_prefixes + ((id - honest) mod attacker_prefixes)

let honest_prefixes = 64
let attacker_prefixes = 4

(* Sybil multipliers: attacker identifiers as a multiple of Q/8. *)
let multipliers = [ 1; 3; 8; 16 ]

let run ?(scale = Scale.Standard) ?pool () =
  let honest = Scale.n scale * 3 / 4 in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let settings =
    List.map
      (fun m ->
        let sybils = honest * m / 8 in
        let n = honest + sybils in
        let f = float_of_int sybils /. float_of_int n in
        (n, f))
      multipliers
  in
  let prefix_of = prefix_layout ~honest ~honest_prefixes ~attacker_prefixes in
  let scenario (n, f) backend =
    Scenario.make ~name:"sybil" ~n ~f ~force:10.0
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v ~backend ()))
      ~steps ()
  in
  (* One flat multiplier × backend × seed batch. *)
  let scenarios =
    List.concat_map
      (fun s ->
        [
          scenario s Rank.Cheap;
          scenario s (Rank.Prefix_diverse { prefix_of });
        ])
      settings
  in
  let aggs = Sweep.run_aggregates ?pool scenarios ~seeds in
  let rec rows settings aggs =
    match (settings, aggs) with
    | [], [] -> []
    | (_, f) :: settings, vanilla :: diverse :: aggs ->
        {
          sybil_ids = f;
          prefix_share =
            float_of_int attacker_prefixes
            /. float_of_int (honest_prefixes + attacker_prefixes);
          vanilla = vanilla.Sweep.mean_sample_byz;
          diverse = diverse.Sweep.mean_sample_byz;
        }
        :: rows settings aggs
    | _ -> assert false
  in
  rows settings aggs

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      {
        Report.header = "sybil_id_share";
        cell = (fun i -> Report.float_cell arr.(i).sybil_ids);
      };
      {
        Report.header = "prefix_share";
        cell = (fun i -> Report.float_cell arr.(i).prefix_share);
      };
      {
        Report.header = "vanilla_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).vanilla);
      };
      {
        Report.header = "prefix_diverse_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).diverse);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?pool () =
  Printf.printf
    "== sybil extension (honest nodes over %d prefixes, attacker over %d)\n"
    honest_prefixes attacker_prefixes;
  let rows, cols = columns (run ~scale ?pool ()) in
  Output.emit ?csv ~rows cols;
  print_endline
    "vanilla Basalt tracks the attacker's identifier share; prefix-diverse\n\
     ranking caps it near the attacker's prefix share."
