(** Extension: sample quality under continuous churn.

    The paper replaces churn by the all-nodes-just-joined worst case
    (§4.1); this extension restores continuous churn (see
    {!Basalt_sim.Churn}) and measures how Basalt and Brahms cope with
    simultaneous flooding ([F = 10]) and node replacement.  Expected
    behavior: Basalt degrades gracefully (each replaced node re-converges
    within a few slot lifetimes) while Brahms, already stressed by the
    attack, loses more ground as churn rises. *)

type row = {
  churn_rate : float;  (** Fraction of correct nodes replaced per unit. *)
  basalt : Basalt_sim.Sweep.aggregate;
  brahms : Basalt_sim.Sweep.aggregate;
  basalt_churned : int;  (** Replacements over the run (one seed). *)
}

val run : ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> row list
(** [run ()] executes the churn experiment at the given scale and returns
    one row per churn setting. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
