module Scenario = Basalt_sim.Scenario
module Sweep = Basalt_sim.Sweep
module Report = Basalt_sim.Report

type row = {
  protocol : string;
  isolated_fraction : float;
  view_byz : float;
  ever_isolated : bool;
}

let dims scale =
  match scale with
  | Scale.Quick -> (300, 40, 100.0)
  | Scale.Standard | Scale.Full -> (1000, 100, 200.0)

let run ?(scale = Scale.Standard) ?(force = 0.0) ?pool () =
  let n, v, steps = dims scale in
  let seeds = Scale.seeds scale in
  let strategy =
    if force = 0.0 then Basalt_adversary.Adversary.Silent
    else Basalt_adversary.Adversary.Flood
  in
  let protocols =
    [
      ("sps", Scenario.Sps (Basalt_sps.Sps.config ~l:v ()));
      ("basalt", Scenario.Basalt (Basalt_core.Config.make ~v ()));
      ("brahms", Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
      ("classic", Scenario.Classic (Basalt_sps.Classic.config ~l:v ()));
    ]
  in
  let scenarios =
    List.map
      (fun (_, protocol) ->
        Scenario.make ~name:"sps-failure" ~n ~f:0.3 ~force ~strategy ~protocol
          ~steps ())
      protocols
  in
  List.map2
    (fun (name, _) agg ->
      {
        protocol = name;
        isolated_fraction = agg.Sweep.mean_isolated;
        view_byz = agg.Sweep.mean_view_byz;
        ever_isolated = agg.Sweep.isolation_runs > 0;
      })
    protocols
    (Sweep.run_aggregates ?pool scenarios ~seeds)

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      { Report.header = "protocol"; cell = (fun i -> arr.(i).protocol) };
      {
        Report.header = "isolated_frac";
        cell = (fun i -> Report.float_cell arr.(i).isolated_fraction);
      };
      {
        Report.header = "view_byz";
        cell = (fun i -> Report.float_cell arr.(i).view_byz);
      };
      {
        Report.header = "ever_isolated";
        cell = (fun i -> string_of_bool arr.(i).ever_isolated);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?pool () =
  let n, v, steps = dims scale in
  Printf.printf "== sps-failure (f=0.3, F=0)  [n=%d v=%d steps=%g]\n" n v steps;
  let rows, cols = columns (run ~scale ?pool ()) in
  Output.emit ?csv ~rows cols
