(** Extension: uniformity of the sample stream.

    A secure RPS must not only limit Byzantine over-representation
    (goal ii of §2) but also keep the stream {e diverse} (goal i): every
    correct node should be emitted equally often.  This experiment
    aggregates the sample histogram over a whole run and reports, over
    correct identifiers only:

    - the total-variation distance between the empirical sampling
      distribution and the uniform distribution (0 = perfectly uniform);
    - the coefficient of variation of per-node sampling counts;
    - the max/mean count ratio (how over-sampled the hottest node is).

    For calibration, the table includes an ideal uniform sampler drawing
    the same number of samples (its TV distance is pure sampling noise). *)

type row = {
  sampler : string;
  samples : int;  (** Total samples drawn over the run. *)
  tv_distance : float;
  coeff_variation : float;
  max_over_mean : float;
}

val of_histogram : sampler:string -> correct:int -> int array -> row
(** [of_histogram ~sampler ~correct hist] computes the statistics over
    the first [correct] entries of [hist]. *)

val run : ?scale:Scale.t -> ?pool:Basalt_parallel.Pool.t -> unit -> row list
(** [run ()] executes the uniformity experiment at the given scale. *)

val columns : row list -> int * Basalt_sim.Report.column list
(** [columns rows] lays out the report table (key-column count and column
    specs). *)

val print :
  ?scale:Scale.t -> ?csv:string -> ?pool:Basalt_parallel.Pool.t -> unit -> unit
(** [print ()] runs the experiment and prints the table; [csv] also writes a
    CSV file. *)
