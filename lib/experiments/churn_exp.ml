module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Sweep = Basalt_sim.Sweep
module Churn = Basalt_sim.Churn
module Report = Basalt_sim.Report

type row = {
  churn_rate : float;
  basalt : Sweep.aggregate;
  brahms : Sweep.aggregate;
  basalt_churned : int;
}

let rates = [ 0.0; 0.005; 0.01; 0.02; 0.05 ]

let run ?(scale = Scale.Standard) ?pool () =
  let n = Scale.n scale in
  let v = Scale.v scale in
  let steps = Scale.steps scale in
  let seeds = Scale.seeds scale in
  let scenario churn_rate protocol =
    let churn =
      if churn_rate = 0.0 then None
      else Some (Churn.make ~start:(steps /. 4.0) ~rate:churn_rate ())
    in
    Scenario.make ~name:"churn" ~n ~f:0.1 ~force:10.0 ~protocol ~steps ?churn ()
  in
  (* One flat rate × protocol × seed batch; raw basalt runs are kept to
     report the replacement count of the first seed. *)
  let scenarios =
    List.concat_map
      (fun rate ->
        [
          scenario rate (Scenario.Basalt (Basalt_core.Config.make ~v ()));
          scenario rate (Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:v ()));
        ])
      rates
  in
  let groups = Sweep.run_grouped ?pool scenarios ~seeds in
  let agg runs =
    (* Groups from run_grouped are non-empty (one run per seed). *)
    match Sweep.aggregate runs with Some a -> a | None -> assert false
  in
  let rec rows rates groups =
    match (rates, groups) with
    | [], [] -> []
    | churn_rate :: rates, basalt_runs :: brahms_runs :: groups ->
        {
          churn_rate;
          basalt = agg basalt_runs;
          brahms = agg brahms_runs;
          basalt_churned =
            (match basalt_runs with
            | r :: _ -> r.Runner.nodes_churned
            | [] -> 0);
        }
        :: rows rates groups
    | _ -> assert false
  in
  rows rates groups

let columns rows =
  let arr = Array.of_list rows in
  ( Array.length arr,
    [
      {
        Report.header = "churn_rate";
        cell = (fun i -> Report.float_cell arr.(i).churn_rate);
      };
      {
        Report.header = "basalt_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_sample_byz);
      };
      {
        Report.header = "brahms_samples_byz";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_sample_byz);
      };
      {
        Report.header = "basalt_isolated";
        cell = (fun i -> Report.float_cell arr.(i).basalt.Sweep.mean_isolated);
      };
      {
        Report.header = "brahms_isolated";
        cell = (fun i -> Report.float_cell arr.(i).brahms.Sweep.mean_isolated);
      };
      {
        Report.header = "replacements";
        cell = (fun i -> string_of_int arr.(i).basalt_churned);
      };
    ] )

let print ?(scale = Scale.Standard) ?csv ?pool () =
  Printf.printf "== churn extension (n=%d, v=%d, f=0.1, F=10)\n" (Scale.n scale)
    (Scale.v scale);
  let rows, cols = columns (run ~scale ?pool ()) in
  Output.emit ?csv ~rows cols
