module Basalt = Basalt_core.Basalt
module Config = Basalt_core.Config
module Sample_stream = Basalt_core.Sample_stream
module Wire = Basalt_codec.Wire
module Obs = Basalt_obs.Obs

type stats = {
  datagrams_in : int;
  datagrams_out : int;
  decode_errors : int;
}

type t = {
  loop : Event_loop.t;
  socket : Unix.file_descr;
  endpoint : Endpoint.t;
  node : Basalt.t;
  stream : Sample_stream.t;
  buffer : bytes;
  datagrams_in : int ref;
  datagrams_out : int ref;
  decode_errors : int ref;
}

let bind_socket listen =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Endpoint.to_sockaddr listen);
  Unix.set_nonblock socket;
  (* Resolve the actually-bound endpoint (meaningful when port 0 was
     requested). *)
  match Unix.getsockname socket with
  | Unix.ADDR_INET (addr, port) -> (socket, { Endpoint.addr; port })
  | Unix.ADDR_UNIX _ -> assert false

let create ?(config = Config.make ~v:16 ~k:4 ()) ?(obs = Obs.disabled) ~loop
    ~listen ~bootstrap ~seed () =
  let socket, endpoint = bind_socket listen in
  let datagrams_in = ref 0 in
  let datagrams_out = ref 0 in
  let decode_errors = ref 0 in
  let c_in = Obs.counter obs "net.datagrams_in" in
  let c_out = Obs.counter obs "net.datagrams_out" in
  let c_decode_errors = Obs.counter obs "net.decode_errors" in
  let send ~dst msg =
    let packet = Wire.encode msg in
    let target = Endpoint.to_sockaddr (Endpoint.of_node_id dst) in
    (try ignore (Unix.sendto socket packet 0 (Bytes.length packet) [] target)
     with Unix.Unix_error _ -> ());
    incr datagrams_out;
    Obs.Counter.incr c_out
  in
  let node =
    Basalt.create ~config ~obs
      ~id:(Endpoint.to_node_id endpoint)
      ~bootstrap:(Array.of_list (List.map Endpoint.to_node_id bootstrap))
      ~rng:(Basalt_prng.Rng.create ~seed)
      ~send ()
  in
  let t =
    {
      loop;
      socket;
      endpoint;
      node;
      stream = Sample_stream.create ~capacity:1024;
      buffer = Bytes.create 65536;
      datagrams_in;
      datagrams_out;
      decode_errors;
    }
  in
  let receive () =
    (* Drain everything currently queued on the socket. *)
    let rec drain () =
      match Unix.recvfrom t.socket t.buffer 0 (Bytes.length t.buffer) [] with
      | len, Unix.ADDR_INET (addr, port) -> (
          incr t.datagrams_in;
          Obs.Counter.incr c_in;
          let from = Endpoint.to_node_id { Endpoint.addr; port } in
          (match Wire.decode_sub t.buffer ~off:0 ~len with
          | Ok msg -> Basalt.on_message t.node ~from msg
          | Error _ ->
              incr t.decode_errors;
              Obs.Counter.incr c_decode_errors);
          drain ())
      | _, Unix.ADDR_UNIX _ -> drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
          (* A peer's socket is gone; UDP reports it asynchronously. *)
          drain ()
    in
    drain ()
  in
  Event_loop.on_readable loop t.socket receive;
  let tau = config.Config.tau in
  let phase = 0.01 +. (float_of_int (seed land 0xF) /. 500.0) in
  Event_loop.every loop ~phase ~interval:tau (fun () ->
      Basalt.on_round t.node);
  Event_loop.every loop ~interval:(Config.refresh_interval config) (fun () ->
      Sample_stream.push_list t.stream (Basalt.sample_tick t.node));
  t

let endpoint t = t.endpoint
let id t = Basalt.id t.node

let view t =
  Array.to_list (Array.map Endpoint.of_node_id (Basalt.view t.node))

let samples t = t.stream

let stats t =
  {
    datagrams_in = !(t.datagrams_in);
    datagrams_out = !(t.datagrams_out);
    decode_errors = !(t.decode_errors);
  }

let close t =
  Event_loop.remove_fd t.loop t.socket;
  Unix.close t.socket
