module Basalt = Basalt_core.Basalt
module Config = Basalt_core.Config
module Sample_stream = Basalt_core.Sample_stream
module Wire = Basalt_codec.Wire
module Obs = Basalt_obs.Obs
module Rng = Basalt_prng.Rng
module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id
module Gossip = Basalt_gossip.Gossip

type stats = {
  datagrams_in : int;
  datagrams_out : int;
  decode_errors : int;
  retries : int;
}

type retry = {
  timeout : float;
  backoff : float;
  max_timeout : float;
  max_attempts : int;
  jitter : float;
}

let default_retry =
  { timeout = 0.25; backoff = 2.0; max_timeout = 2.0; max_attempts = 3;
    jitter = 0.1 }

let no_retry =
  { timeout = 1.0; backoff = 1.0; max_timeout = 1.0; max_attempts = 0;
    jitter = 0.0 }

let check_retry r =
  if r.timeout <= 0.0 then invalid_arg "Udp_node: retry timeout must be > 0";
  if r.backoff < 1.0 then invalid_arg "Udp_node: retry backoff must be >= 1";
  if r.max_timeout < r.timeout then
    invalid_arg "Udp_node: retry max_timeout must be >= timeout";
  if r.max_attempts < 0 then
    invalid_arg "Udp_node: retry max_attempts must be >= 0";
  if r.jitter < 0.0 then invalid_arg "Udp_node: retry jitter must be >= 0"

(* One in-flight pull awaiting an answer.  [seq] tokens stand in for
   timer cancellation (the loop has none): every (re)arm takes a fresh
   token and a firing timer acts only if its token is still current. *)
type pending = { mutable attempt : int; mutable seq : int }

type t = {
  loop : Event_loop.t;
  socket : Unix.file_descr;
  endpoint : Endpoint.t;
  node : Basalt.t;
  stream : Sample_stream.t;
  gossip : Gossip.t option;
  buffer : bytes;
  datagrams_in : int ref;
  datagrams_out : int ref;
  decode_errors : int ref;
  retries : int ref;
}

let bind_socket listen =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Endpoint.to_sockaddr listen);
  Unix.set_nonblock socket;
  (* Resolve the actually-bound endpoint (meaningful when port 0 was
     requested). *)
  match Unix.getsockname socket with
  | Unix.ADDR_INET (addr, port) -> (socket, { Endpoint.addr; port })
  | Unix.ADDR_UNIX _ -> assert false

let create ?(config = Config.make ~v:16 ~k:4 ()) ?(obs = Obs.disabled)
    ?(retry = default_retry) ?(inject_loss = 0.0) ?(inject_delay = 0.0) ?gossip
    ?(deliver = fun _ _ -> ()) ~loop ~listen ~bootstrap ~seed () =
  check_retry retry;
  if inject_loss < 0.0 || inject_loss > 1.0 then
    invalid_arg "Udp_node: inject_loss must be in [0, 1]";
  if inject_delay < 0.0 then
    invalid_arg "Udp_node: inject_delay must be >= 0";
  let socket, endpoint = bind_socket listen in
  let datagrams_in = ref 0 in
  let datagrams_out = ref 0 in
  let decode_errors = ref 0 in
  let retries = ref 0 in
  let c_in = Obs.counter obs "net.datagrams_in" in
  let c_out = Obs.counter obs "net.datagrams_out" in
  let c_decode_errors = Obs.counter obs "net.decode_errors" in
  let c_retries = Obs.counter obs "net.retries" in
  let c_injected = Obs.counter obs "net.injected_drops" in
  (* All transport-local randomness (backoff jitter, self-injection) comes
     from streams split off the node's seed, so a soak run is replayable
     from its command line. *)
  let root_rng = Rng.create ~seed in
  let retry_rng = Rng.split root_rng in
  let inject_rng = Rng.split root_rng in
  (* Gossip-less nodes draw exactly the streams they always did. *)
  let gossip_rng =
    match gossip with None -> None | Some _ -> Some (Rng.split root_rng)
  in
  (* Raw transmission, optionally degraded by the self-injection knobs:
     drop with probability [inject_loss], else postpone by a uniform draw
     from [0, inject_delay). *)
  let transmit packet target =
    let push () =
      (try ignore (Unix.sendto socket packet 0 (Bytes.length packet) [] target)
       with Unix.Unix_error _ -> ());
      incr datagrams_out;
      Obs.Counter.incr c_out
    in
    if inject_loss > 0.0 && Rng.float inject_rng 1.0 < inject_loss then
      Obs.Counter.incr c_injected
    else if inject_delay > 0.0 then
      Event_loop.schedule loop ~delay:(Rng.float inject_rng inject_delay) push
    else push ()
  in
  let pending : (int, pending) Hashtbl.t = Hashtbl.create 16 in
  let next_seq = ref 0 in
  let node_cell = ref None in
  (* Retransmit an unanswered pull with capped exponential backoff:
     attempt [i] waits [min max_timeout (timeout * backoff^i)], stretched
     by a seeded jitter draw so a cluster started in lockstep does not
     retry in lockstep. *)
  let rec arm_retry ~dst ~key ~packet ~target (p : pending) =
    let seq = !next_seq in
    incr next_seq;
    p.seq <- seq;
    let base = retry.timeout *. (retry.backoff ** float_of_int p.attempt) in
    let delay =
      Float.min retry.max_timeout base
      *. (1.0 +. (retry.jitter *. Rng.float retry_rng 1.0))
    in
    Event_loop.schedule loop ~delay (fun () ->
        match Hashtbl.find_opt pending key with
        | Some q when q == p && q.seq = seq ->
            if p.attempt >= retry.max_attempts then Hashtbl.remove pending key
            else begin
              p.attempt <- p.attempt + 1;
              incr retries;
              Obs.Counter.incr c_retries;
              (* Keep the protocol's dead-peer detection honest: a
                 retransmitted pull is still an unanswered probe. *)
              (match !node_cell with
              | Some node
                when (Basalt.config node).Config.evict_after_rounds <> None ->
                  Basalt.record_probe node dst
              | Some _ | None -> ());
              transmit packet target;
              arm_retry ~dst ~key ~packet ~target p
            end
        | Some _ | None -> ())
  in
  let send ~dst msg =
    let packet = Wire.encode msg in
    let target = Endpoint.to_sockaddr (Endpoint.of_node_id dst) in
    transmit packet target;
    match msg with
    | Message.Pull_request when retry.max_attempts > 0 ->
        let key = Node_id.to_int dst in
        let p =
          match Hashtbl.find_opt pending key with
          | Some p ->
              p.attempt <- 0;
              p
          | None ->
              let p = { attempt = 0; seq = 0 } in
              Hashtbl.replace pending key p;
              p
        in
        arm_retry ~dst ~key ~packet ~target p
    | _ -> ()
  in
  let node =
    Basalt.create ~config ~obs
      ~id:(Endpoint.to_node_id endpoint)
      ~bootstrap:(Array.of_list (List.map Endpoint.to_node_id bootstrap))
      ~rng:root_rng ~send ()
  in
  node_cell := Some node;
  (* The broadcast layer shares the sampler's socket and retry-free send
     path; its mesh replenishes from the same sample stream the
     application reads. *)
  let glayer =
    match (gossip, gossip_rng) with
    | Some gconfig, Some grng ->
        Some
          (Gossip.create ~config:gconfig ~obs
             ~node:(Endpoint.to_node_id endpoint)
             ~view:(fun () -> Basalt.view node)
             ~rng:grng ~send ~deliver ())
    | _ -> None
  in
  let t =
    {
      loop;
      socket;
      endpoint;
      node;
      stream = Sample_stream.create ~capacity:1024;
      gossip = glayer;
      buffer = Bytes.create 65536;
      datagrams_in;
      datagrams_out;
      decode_errors;
      retries;
    }
  in
  let receive () =
    (* Drain everything currently queued on the socket. *)
    let rec drain () =
      match Unix.recvfrom t.socket t.buffer 0 (Bytes.length t.buffer) [] with
      | len, Unix.ADDR_INET (addr, port) -> (
          incr t.datagrams_in;
          Obs.Counter.incr c_in;
          let from = Endpoint.to_node_id { Endpoint.addr; port } in
          (match Wire.decode_sub t.buffer ~off:0 ~len with
          | Ok msg ->
              (* Any decodable traffic from a peer answers its pending
                 pull, mirroring how {!Basalt.on_message} clears the
                 eviction probe. *)
              Hashtbl.remove pending (Node_id.to_int from);
              let handled =
                match t.gossip with
                | Some g -> Gossip.on_message g ~from msg
                | None -> false
              in
              if not handled then Basalt.on_message t.node ~from msg
          | Error _ ->
              incr t.decode_errors;
              Obs.Counter.incr c_decode_errors);
          drain ())
      | _, Unix.ADDR_UNIX _ -> drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
          (* A peer's socket is gone; UDP reports it asynchronously. *)
          drain ()
    in
    drain ()
  in
  Event_loop.on_readable loop t.socket receive;
  let tau = config.Config.tau in
  let phase = 0.01 +. (float_of_int (seed land 0xF) /. 500.0) in
  Event_loop.every loop ~phase ~interval:tau (fun () ->
      Basalt.on_round t.node;
      match t.gossip with
      | Some g -> Gossip.heartbeat g
      | None -> ());
  Event_loop.every loop ~interval:(Config.refresh_interval config) (fun () ->
      let fresh = Basalt.sample_tick t.node in
      Sample_stream.push_list t.stream fresh;
      match t.gossip with
      | Some g -> Gossip.on_samples g fresh
      | None -> ());
  t

let endpoint t = t.endpoint
let id t = Basalt.id t.node

let view t =
  Array.to_list (Array.map Endpoint.of_node_id (Basalt.view t.node))

let samples t = t.stream

let publish t payload =
  match t.gossip with
  | Some g -> Gossip.publish g payload
  | None -> invalid_arg "Udp_node.publish: gossip layer not enabled"

let gossip_stats t = Option.map Gossip.stats t.gossip

let stats t =
  {
    datagrams_in = !(t.datagrams_in);
    datagrams_out = !(t.datagrams_out);
    decode_errors = !(t.decode_errors);
    retries = !(t.retries);
  }

let close t =
  Event_loop.remove_fd t.loop t.socket;
  Unix.close t.socket
