(* A minimal Prometheus-exposition HTTP endpoint on the shared event
   loop.  Each accepted connection is read until the end of the request
   headers (or EOF), answered with one 200 response carrying the
   render callback's current output, and closed — the stateless
   one-shot shape every scraper and `curl` speak. *)

type conn = { fd : Unix.file_descr; buf : Buffer.t }

type t = {
  loop : Event_loop.t;
  listen_fd : Unix.file_descr;
  endpoint : Endpoint.t;
  render : unit -> string;
  mutable conns : conn list;
  mutable requests : int;
  mutable closed : bool;
}

let max_request_bytes = 16_384

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write fd b !off (n - !off)
     done
   with Unix.Unix_error _ -> ())

let drop_conn t conn =
  t.conns <- List.filter (fun c -> c.fd != conn.fd) t.conns;
  Event_loop.remove_fd t.loop conn.fd;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let respond t conn =
  let body = t.render () in
  let response =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      (String.length body) body
  in
  write_all conn.fd response;
  t.requests <- t.requests + 1;
  drop_conn t conn

let headers_complete buf =
  let s = Buffer.contents buf in
  let rec scan i =
    if i + 3 >= String.length s then false
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
            && s.[i + 3] = '\n'
    then true
    else scan (i + 1)
  in
  scan 0

let on_conn_readable t conn () =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> respond t conn (* client shut down its write side *)
  | n ->
      Buffer.add_subbytes conn.buf chunk 0 n;
      if headers_complete conn.buf then respond t conn
      else if Buffer.length conn.buf > max_request_bytes then drop_conn t conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn t conn

let on_accept t () =
  match Unix.accept t.listen_fd with
  | fd, _addr ->
      Unix.set_nonblock fd;
      let conn = { fd; buf = Buffer.create 256 } in
      t.conns <- conn :: t.conns;
      Event_loop.on_readable t.loop fd (on_conn_readable t conn)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()

let serve ~loop ~listen ~render () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd (Endpoint.to_sockaddr listen);
     Unix.listen fd 16;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let endpoint =
    match Endpoint.of_sockaddr (Unix.getsockname fd) with
    | Ok e -> e
    | Error _ -> listen
  in
  let t =
    {
      loop;
      listen_fd = fd;
      endpoint;
      render;
      conns = [];
      requests = 0;
      closed = false;
    }
  in
  Event_loop.on_readable loop fd (on_accept t);
  t

let endpoint t = t.endpoint
let requests t = t.requests

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun c -> drop_conn t c) t.conns;
    Event_loop.remove_fd t.loop t.listen_fd;
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end
