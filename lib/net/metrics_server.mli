(** Live metrics exposition: a minimal HTTP endpoint on the shared
    {!Event_loop} serving Prometheus text (DESIGN.md §8).

    Each accepted connection is answered with a single [200] response
    carrying the render callback's output at scrape time — typically
    {!Basalt_obs.Obs.render_prometheus} over the daemon's registry —
    then closed (HTTP/1.0 one-shot, which every scraper and [curl]
    speak).  The server never blocks the loop: the listener and every
    connection are non-blocking, and requests are read incrementally
    through the loop's readable callbacks. *)

type t

val serve :
  loop:Event_loop.t ->
  listen:Endpoint.t ->
  render:(unit -> string) ->
  unit ->
  t
(** [serve ~loop ~listen ~render ()] binds a TCP listener on [listen]
    (port 0 = OS-assigned) and serves [render ()] to every request.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val endpoint : t -> Endpoint.t
(** [endpoint t] is the actually-bound listen endpoint. *)

val requests : t -> int
(** [requests t] counts responses served so far. *)

val close : t -> unit
(** [close t] closes the listener and any in-flight connections.
    Idempotent. *)
