(** A Basalt node over real UDP datagrams.

    Binds a socket, runs {!Basalt_core.Basalt} with the {!Wire} codec on
    an {!Event_loop}, and exposes the sampling service.  Identifiers are
    packed endpoints ({!Endpoint.to_node_id}), so discovering an
    identifier is discovering how to reach it — the paper's system model
    made concrete.

    Several nodes can share one event loop (and thus one OS thread),
    which is how the integration tests and the [local_udp] example run a
    whole overlay inside a single process. *)

type stats = {
  datagrams_in : int;
  datagrams_out : int;
  decode_errors : int;
}

type t

val create :
  ?config:Basalt_core.Config.t ->
  ?obs:Basalt_obs.Obs.t ->
  loop:Event_loop.t ->
  listen:Endpoint.t ->
  bootstrap:Endpoint.t list ->
  seed:int ->
  unit ->
  t
(** [create ~loop ~listen ~bootstrap ~seed ()] binds [listen] (port 0
    lets the OS pick; see {!endpoint}) and schedules the protocol's
    periodic tasks on [loop]: one exchange round every [tau] {e seconds}
    and a sampling tick every [k/rho] seconds.

    [obs] (default disabled) is threaded into the protocol instance and
    additionally records [net.datagrams_in], [net.datagrams_out] and
    [net.decode_errors].  This is the one allowlisted boundary where the
    sink's clock may come from the event loop's real monotonic time
    (lint D2/D8, DESIGN.md §8).
    @raise Unix.Unix_error if the socket cannot be bound. *)

val endpoint : t -> Endpoint.t
(** [endpoint t] is the actually-bound address (resolves port 0). *)

val id : t -> Basalt_proto.Node_id.t
(** [id t] is the node's identifier (its packed endpoint). *)

val view : t -> Endpoint.t list
(** [view t] is the current view as endpoints. *)

val samples : t -> Basalt_core.Sample_stream.t
(** [samples t] is the service's output stream. *)

val stats : t -> stats
(** [stats t] returns the transport counters so far. *)

val close : t -> unit
(** [close t] unregisters from the loop and closes the socket. *)
