(** A Basalt node over real UDP datagrams.

    Binds a socket, runs {!Basalt_core.Basalt} with the {!Wire} codec on
    an {!Event_loop}, and exposes the sampling service.  Identifiers are
    packed endpoints ({!Endpoint.to_node_id}), so discovering an
    identifier is discovering how to reach it — the paper's system model
    made concrete.

    Several nodes can share one event loop (and thus one OS thread),
    which is how the integration tests and the [local_udp] example run a
    whole overlay inside a single process. *)

type stats = {
  datagrams_in : int;
  datagrams_out : int;
  decode_errors : int;
  retries : int;  (** Pull retransmissions issued by the retry policy. *)
}

type retry = {
  timeout : float;  (** Delay before the first retransmission, seconds. *)
  backoff : float;  (** Multiplier applied per attempt (>= 1). *)
  max_timeout : float;  (** Cap on the per-attempt delay, seconds. *)
  max_attempts : int;  (** Retransmissions per pull; [0] disables retries. *)
  jitter : float;
      (** Each delay is stretched by [1 + jitter * u] with [u] a seeded
          uniform draw in [\[0, 1)], de-synchronising lockstep clusters. *)
}
(** Retransmission policy for unanswered pulls (DESIGN.md §10): attempt
    [i] (0-based) is retransmitted after
    [min max_timeout (timeout * backoff^i)] seconds, stretched by the
    jitter factor.  All delays are event-loop timers, so under a virtual
    clock the whole policy is deterministic in virtual time. *)

val default_retry : retry
(** [default_retry] retries after 0.25 s, doubling up to 2 s, at most 3
    times, with 10% jitter. *)

val no_retry : retry
(** [no_retry] never retransmits ([max_attempts = 0]). *)

type t

val create :
  ?config:Basalt_core.Config.t ->
  ?obs:Basalt_obs.Obs.t ->
  ?retry:retry ->
  ?inject_loss:float ->
  ?inject_delay:float ->
  ?gossip:Basalt_gossip.Config.t ->
  ?deliver:(Basalt_proto.Message.mid -> bytes -> unit) ->
  loop:Event_loop.t ->
  listen:Endpoint.t ->
  bootstrap:Endpoint.t list ->
  seed:int ->
  unit ->
  t
(** [create ~loop ~listen ~bootstrap ~seed ()] binds [listen] (port 0
    lets the OS pick; see {!endpoint}) and schedules the protocol's
    periodic tasks on [loop]: one exchange round every [tau] {e seconds}
    and a sampling tick every [k/rho] seconds.

    [retry] (default {!default_retry}) governs pull retransmission: a
    [PULL] that stays unanswered is retransmitted with capped exponential
    backoff until any decodable datagram arrives from the peer (which
    also clears the protocol's eviction probe) or the attempt budget is
    spent.  When the configuration enables [evict_after_rounds], each
    retransmission re-records the probe via {!Basalt_core.Basalt.record_probe},
    so transport-level persistence and dead-peer eviction stay coupled.

    [inject_loss] / [inject_delay] (defaults 0) degrade the node's {e
    outgoing} datagrams for soak testing without root or [tc]: each
    datagram is dropped with probability [inject_loss], otherwise
    postponed by a uniform draw from [\[0, inject_delay)] seconds.  Both
    draw from streams split off [seed], so a degraded run is replayable.

    [gossip] enables the {!Basalt_gossip.Gossip} epidemic broadcast
    layer (DESIGN.md §11) with the given configuration: inbound
    broadcast frames are routed to it instead of the sampler, its
    heartbeat rides the exchange-round timer, its mesh replenishes from
    each sampling tick, and [deliver] (default a no-op) fires exactly
    once per received or published message.  Without [gossip] the node
    draws exactly the PRNG streams it always did, and inbound broadcast
    frames fall through to the sampler, which ignores them.

    [obs] (default disabled) is threaded into the protocol instance and
    additionally records [net.datagrams_in], [net.datagrams_out],
    [net.decode_errors], [net.retries] and [net.injected_drops] (plus
    the [gossip.*] instruments when [gossip] is enabled).  This is
    the one allowlisted boundary where the sink's clock may come from the
    event loop's real monotonic time (lint D2/D8, DESIGN.md §8).
    @raise Invalid_argument if [retry] is malformed, [inject_loss] is
    outside [\[0, 1]] or [inject_delay] is negative.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val endpoint : t -> Endpoint.t
(** [endpoint t] is the actually-bound address (resolves port 0). *)

val id : t -> Basalt_proto.Node_id.t
(** [id t] is the node's identifier (its packed endpoint). *)

val view : t -> Endpoint.t list
(** [view t] is the current view as endpoints. *)

val samples : t -> Basalt_core.Sample_stream.t
(** [samples t] is the service's output stream. *)

val publish : t -> bytes -> Basalt_proto.Message.mid
(** [publish t payload] originates a broadcast message through the
    gossip layer and returns its identifier.
    @raise Invalid_argument if {!create} was not given [gossip], or the
    payload exceeds {!Basalt_codec.Wire.max_payload} bytes. *)

val gossip_stats : t -> Basalt_gossip.Gossip.stats option
(** [gossip_stats t] reads the broadcast layer's counters ([None] when
    the layer is disabled). *)

val stats : t -> stats
(** [stats t] returns the transport counters so far. *)

val close : t -> unit
(** [close t] unregisters from the loop and closes the socket. *)
