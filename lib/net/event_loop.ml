module Event_queue = Basalt_engine.Event_queue

type t = {
  clock : unit -> float;
  timers : (unit -> unit) Event_queue.t;
  mutable fds : (Unix.file_descr * (unit -> unit)) list;
  mutable write_fds : (Unix.file_descr * (unit -> unit)) list;
  mutable stopped : bool;
}

let create ~clock () =
  {
    clock;
    timers = Event_queue.create ();
    fds = [];
    write_fds = [];
    stopped = false;
  }

let now t = t.clock ()

let on_readable t fd f = t.fds <- (fd, f) :: List.remove_assoc fd t.fds

let on_writable t fd f =
  t.write_fds <- (fd, f) :: List.remove_assoc fd t.write_fds

let remove_writable t fd = t.write_fds <- List.remove_assoc fd t.write_fds

let remove_fd t fd =
  t.fds <- List.remove_assoc fd t.fds;
  remove_writable t fd

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Event_loop.schedule: negative delay";
  Event_queue.push t.timers ~time:(now t +. delay) f

let every t ?phase ~interval f =
  if interval <= 0.0 then invalid_arg "Event_loop.every: interval must be > 0";
  let phase = Option.value phase ~default:interval in
  let rec fire () =
    f ();
    Event_queue.push t.timers ~time:(now t +. interval) fire
  in
  Event_queue.push t.timers ~time:(now t +. phase) fire

let stop t = t.stopped <- true

let run_due_timers t =
  let rec loop () =
    match Event_queue.peek_time t.timers with
    | Some deadline when deadline <= now t -> (
        match Event_queue.pop t.timers with
        | Some (_, f) ->
            f ();
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ()

let run_for t duration =
  t.stopped <- false;
  let horizon = now t +. duration in
  while (not t.stopped) && now t < horizon do
    run_due_timers t;
    let next_deadline =
      match Event_queue.peek_time t.timers with
      | Some d -> Float.min d horizon
      | None -> horizon
    in
    let timeout = Float.max 0.0 (Float.min 0.05 (next_deadline -. now t)) in
    let read_fds = List.map fst t.fds in
    let write_fds = List.map fst t.write_fds in
    match Unix.select read_fds write_fds [] timeout with
    | readable, writable, _ ->
        List.iter
          (fun fd ->
            match List.assoc_opt fd t.fds with
            | Some callback -> callback ()
            | None -> ())
          readable;
        List.iter
          (fun fd ->
            match List.assoc_opt fd t.write_fds with
            | Some callback -> callback ()
            | None -> ())
          writable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
