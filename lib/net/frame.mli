(** Stream framing for the TCP transport.

    TCP gives a byte stream, not datagrams, so messages travel in frames:

    {v
      offset  size  field
      0       4     length   (big-endian u32: bytes after this field)
      4       8     sender   (big-endian u64: the sender's node id —
                              needed because a TCP connection's source
                              port is ephemeral, unlike UDP)
      12      len-8 payload  (a {!Basalt_codec.Wire} datagram)
    v}

    {!Decoder} incrementally extracts frames from arbitrarily-chunked
    input (the unit tests feed it byte by byte). *)

val max_frame : int
(** Upper bound on the accepted frame length (1 MiB) — a peer announcing
    more is treated as malicious and disconnected. *)

val encode : sender:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> bytes
(** [encode ~sender msg] builds one frame. *)

module Decoder : sig
  type t

  type event =
    | Frame of Basalt_proto.Node_id.t * Basalt_proto.Message.t
        (** A complete, well-formed frame: (sender, message). *)
    | Corrupt of string
        (** Unparseable input; the connection should be dropped. *)

  val create : unit -> t
  (** [create ()] is a decoder with an empty buffer. *)

  val feed : t -> bytes -> off:int -> len:int -> event list
  (** [feed t buf ~off ~len] appends received bytes and returns every
      event completed by them, in order.  After a [Corrupt] event the
      decoder refuses further input (returns [Corrupt] again). *)

  val buffered : t -> int
  (** Bytes currently held waiting for a complete frame. *)
end
