(** A Basalt node over TCP with persistent framed connections.

    The same protocol core as {!Udp_node}, carried over TCP streams
    ({!Frame} framing).  Outgoing connections are dialed lazily
    (non-blocking) per destination and kept open; incoming connections
    are identified by the sender field of their first frame.  Connection
    failures simply drop the affected messages — the epidemic protocol
    tolerates loss by design, so no retransmission machinery is needed.

    Useful where UDP is filtered, and as a demonstration that the core is
    transport-agnostic. *)

type stats = {
  frames_in : int;
  frames_out : int;
  connections_in : int;  (** Accepted. *)
  connections_out : int;  (** Dialed. *)
  connection_errors : int;  (** Dial failures, resets, corrupt streams. *)
}

type t

val create :
  ?config:Basalt_core.Config.t ->
  loop:Event_loop.t ->
  listen:Endpoint.t ->
  bootstrap:Endpoint.t list ->
  seed:int ->
  unit ->
  t
(** Binds and listens on [listen] (port 0 = OS-assigned) and schedules
    the protocol's periodic tasks on [loop].
    @raise Unix.Unix_error if the socket cannot be bound. *)

val endpoint : t -> Endpoint.t
(** [endpoint t] is the actually-bound listen endpoint. *)

val id : t -> Basalt_proto.Node_id.t
(** [id t] is the node's identifier ({!Endpoint.to_node_id} of its
    endpoint). *)

val view : t -> Endpoint.t list
(** [view t] is the current view as endpoints. *)

val samples : t -> Basalt_core.Sample_stream.t
(** [samples t] is the service's output stream. *)

val stats : t -> stats
(** [stats t] returns the transport counters so far. *)

val close : t -> unit
(** Closes the listener and every open connection. *)
