(** Network endpoints as node identifiers.

    The paper's system model (§2.1) assumes that knowing a node's
    identifier suffices to send it a message — "essentially what the
    Internet and the TCP/IP protocol stack provides".  The UDP transport
    realises that literally: a node's identifier {e is} its IPv4 address
    and port, packed losslessly into one non-negative native integer
    (32 address bits above 16 port bits), so the same
    {!Basalt_core.Basalt} instance drives both the simulator and the real
    network. *)

type t = { addr : Unix.inet_addr; port : int }
(** An IPv4 endpoint. *)

val make : string -> int -> t
(** [make host port] resolves a dotted-quad (or name) and checks the
    port range. @raise Invalid_argument on a bad address or port. *)

val of_string : string -> (t, string) result
(** [of_string "a.b.c.d:port"] parses an endpoint. *)

val to_string : t -> string
(** [to_string e] is ["a.b.c.d:port"] (inverse of {!of_string}). *)

val pp : Format.formatter -> t -> unit
(** Formatter for endpoints. *)

val to_node_id : t -> Basalt_proto.Node_id.t
(** [to_node_id e] packs the endpoint into an identifier.
    @raise Invalid_argument on a non-IPv4 address. *)

val of_node_id : Basalt_proto.Node_id.t -> t
(** [of_node_id id] unpacks an identifier produced by {!to_node_id}. *)

val to_sockaddr : t -> Unix.sockaddr
(** [to_sockaddr e] is the corresponding [Unix.ADDR_INET] address. *)

val of_sockaddr : Unix.sockaddr -> (t, string) result
(** [of_sockaddr sa] converts an [ADDR_INET] socket address back; [Error _]
    on any other address family. *)

val equal : t -> t -> bool
(** Equality on endpoints. *)
