(** Single-threaded real-time event loop over Unix file descriptors.

    A minimal reactor: readable-fd callbacks plus monotonic-deadline
    timers, multiplexed with [Unix.select].  One loop can host many
    sockets — the integration tests run a whole overlay of UDP nodes
    inside one process.

    The loop never reads the wall clock itself: the time source is
    injected at {!create} (lint rule D2), so tests can drive timers with
    a virtual clock via {!run_due_timers} while the daemon passes
    [Unix.gettimeofday] at the process boundary. *)

type t
(** A loop instance. *)

val create : clock:(unit -> float) -> unit -> t
(** [create ~clock ()] builds an empty loop reading time from [clock]
    (seconds; only differences are used).  Real deployments pass
    [Unix.gettimeofday]; tests may pass a virtual clock. *)

val now : t -> float
(** [now t] is the current time as reported by the injected clock. *)

val on_readable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** [on_readable t fd f] invokes [f] whenever [fd] is readable.  One
    callback per fd; registering again replaces it. *)

val on_writable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** [on_writable t fd f] invokes [f] when [fd] becomes writable (used for
    non-blocking connects and backpressured sends).  One callback per fd;
    remove it with {!remove_writable} once the buffer drains. *)

val remove_writable : t -> Unix.file_descr -> unit
(** [remove_writable t fd] stops watching [fd] for writability. *)

val remove_fd : t -> Unix.file_descr -> unit
(** [remove_fd t fd] stops watching [fd] (both directions). *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] once after [delay] seconds. *)

val every : t -> ?phase:float -> interval:float -> (unit -> unit) -> unit
(** [every t ~interval f] runs [f] periodically ([phase] defaults to
    [interval]). @raise Invalid_argument if [interval <= 0]. *)

val stop : t -> unit
(** [stop t] makes the current {!run_for} return after the ongoing
    iteration. *)

val run_due_timers : t -> unit
(** [run_due_timers t] fires every timer whose deadline is [<= now t],
    without touching file descriptors.  With a virtual clock this is the
    single-step driver: advance the clock, then call this. *)

val run_for : t -> float -> unit
(** [run_for t seconds] processes events for (at least) the given wall
    duration, then returns.  Returns earlier only on {!stop}. *)
