module Obs = Basalt_obs.Obs

type 'msg event = Deliver of { src : int; dst : int; msg : 'msg } | Timer of (unit -> unit)

type stats = { sent : int; delivered : int; dropped : int; ignored : int; events : int }

type 'msg t = {
  queue : 'msg event Event_queue.t;
  handlers : (from:int -> 'msg -> unit) option array;
  latency : Link.Latency.t;
  loss : Link.Loss.t;
  rng : Basalt_prng.Rng.t;
  obs : Obs.t;
  kind_of : 'msg -> string;
  c_sent : Obs.Counter.t;
  c_delivered : Obs.Counter.t;
  c_dropped : Obs.Counter.t;
  c_ignored : Obs.Counter.t;
  c_timer_fires : Obs.Counter.t;
  mutable clock : float;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable ignored : int;
  mutable events : int;
}

(* A strictly positive delivery delay even for the Zero latency model, so
   that a message sent while executing round [t]'s timer is handled after
   that timer completes but before round [t + tau]. *)
let min_delay = 1e-6

let create ?(latency = Link.Latency.Zero) ?(loss = Link.Loss.None)
    ?(obs = Obs.disabled) ?(kind_of = fun _ -> "msg") ~rng ~n () =
  if n < 0 then invalid_arg "Engine.create: negative n";
  {
    queue = Event_queue.create ();
    handlers = Array.make n None;
    latency;
    loss;
    rng = Basalt_prng.Rng.split rng;
    obs;
    kind_of;
    c_sent = Obs.counter obs "engine.sent";
    c_delivered = Obs.counter obs "engine.delivered";
    c_dropped = Obs.counter obs "engine.dropped";
    c_ignored = Obs.counter obs "engine.ignored";
    c_timer_fires = Obs.counter obs "engine.timer_fires";
    clock = 0.0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    ignored = 0;
    events = 0;
  }

let n t = Array.length t.handlers
let now t = t.clock

let register t node handler =
  if node < 0 || node >= Array.length t.handlers then
    invalid_arg "Engine.register: node out of range";
  t.handlers.(node) <- Some handler

let trace_msg t ev ~src ~dst msg =
  Obs.trace t.obs ~name:ev
    [ ("src", Obs.Int src); ("dst", Obs.Int dst); ("kind", Obs.Str (t.kind_of msg)) ]

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  Obs.Counter.incr t.c_sent;
  if Obs.tracing t.obs then trace_msg t "engine.send" ~src ~dst msg;
  if Link.Loss.drops t.loss t.rng then begin
    t.dropped <- t.dropped + 1;
    Obs.Counter.incr t.c_dropped;
    if Obs.tracing t.obs then trace_msg t "engine.drop" ~src ~dst msg
  end
  else
    let delay = min_delay +. Link.Latency.sample t.latency t.rng in
    Event_queue.push t.queue ~time:(t.clock +. delay)
      (Deliver { src; dst; msg })

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) (Timer f)

let every t ?phase ~interval f =
  if interval <= 0.0 then invalid_arg "Engine.every: interval must be > 0";
  let phase = Option.value phase ~default:interval in
  let rec fire () =
    f ();
    Event_queue.push t.queue ~time:(t.clock +. interval) (Timer fire)
  in
  Event_queue.push t.queue ~time:(t.clock +. phase) (Timer fire)

let execute t event =
  t.events <- t.events + 1;
  match event with
  | Timer f ->
      Obs.Counter.incr t.c_timer_fires;
      f ()
  | Deliver { src; dst; msg } -> (
      let handler =
        if dst >= 0 && dst < Array.length t.handlers then t.handlers.(dst)
        else None
      in
      match handler with
      | Some handler ->
          t.delivered <- t.delivered + 1;
          Obs.Counter.incr t.c_delivered;
          if Obs.tracing t.obs then trace_msg t "engine.deliver" ~src ~dst msg;
          handler ~from:src msg
      | None ->
          t.ignored <- t.ignored + 1;
          Obs.Counter.incr t.c_ignored;
          if Obs.tracing t.obs then trace_msg t "engine.ignore" ~src ~dst msg)

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, event) ->
      t.clock <- max t.clock time;
      execute t event;
      true

let run_until t horizon =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon -> (
        match Event_queue.pop t.queue with
        | Some (time, event) ->
            t.clock <- max t.clock time;
            execute t event;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- max t.clock horizon

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    ignored = t.ignored;
    events = t.events;
  }
