module Obs = Basalt_obs.Obs
module Rng = Basalt_prng.Rng

(* A queued delivery carries its send time and an open "engine.flight"
   span, so delivery can observe the flight latency and close the span
   without a side table.  Dropped messages abandon their span (spans
   emit only on [span_end]), so only completed flights appear in the
   trace. *)
type 'msg event =
  | Deliver of { src : int; dst : int; msg : 'msg; sent : float; span : Obs.span }
  | Timer of (unit -> unit)

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  ignored : int;
  events : int;
  dup : int;
  reordered : int;
  partition_drops : int;
}

(* Per-directed-link fault state: a dedicated RNG stream plus the loss
   model's channel state (Gilbert–Elliott burst phase).  The stream is
   derived from the engine seed and the (src, dst) pair alone, so the
   fault schedule of a link is a pure function of the scenario — not of
   table-creation order or of traffic on other links. *)
type link_state = { link_rng : Rng.t; loss_state : Link.Loss.state }

type 'msg t = {
  queue : 'msg event Event_queue.t;
  handlers : (from:int -> 'msg -> unit) option array;
  latency : Link.Latency.t;
  loss : Link.Loss.t;
  fault : Fault.t option;  (* None = legacy single-stream path *)
  fault_salt : int64;
  link_states : (int, link_state) Hashtbl.t;
  legacy_loss_state : Link.Loss.state;
  rng : Basalt_prng.Rng.t;
  obs : Obs.t;
  kind_of : 'msg -> string;
  c_sent : Obs.Counter.t;
  c_delivered : Obs.Counter.t;
  c_dropped : Obs.Counter.t;
  c_ignored : Obs.Counter.t;
  c_timer_fires : Obs.Counter.t;
  c_dup : Obs.Counter.t;
  c_reordered : Obs.Counter.t;
  c_partition_drops : Obs.Counter.t;
  s_flight : Obs.Sketch.t;
  mutable clock : float;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable ignored : int;
  mutable events : int;
  mutable dup : int;
  mutable reordered : int;
  mutable partition_drops : int;
}

(* A strictly positive delivery delay even for the Zero latency model, so
   that a message sent while executing round [t]'s timer is handled after
   that timer completes but before round [t + tau]. *)
let min_delay = 1e-6

let create ?(latency = Link.Latency.Zero) ?(loss = Link.Loss.None) ?fault
    ?(obs = Obs.disabled) ?(kind_of = fun _ -> "msg") ~rng ~n () =
  if n < 0 then invalid_arg "Engine.create: negative n";
  let rng = Basalt_prng.Rng.split rng in
  let fault =
    match fault with Some f when not (Fault.is_none f) -> Some f | _ -> None
  in
  (* The salt is drawn only when a plan is active, so fault-free engines
     consume exactly the PRNG stream they always did. *)
  let fault_salt =
    match fault with Some _ -> Basalt_prng.Rng.int64 rng | None -> 0L
  in
  {
    queue = Event_queue.create ();
    handlers = Array.make n None;
    latency;
    loss;
    fault;
    fault_salt;
    link_states = Hashtbl.create 64;
    legacy_loss_state = Link.Loss.initial loss;
    rng;
    obs;
    kind_of;
    c_sent = Obs.counter obs "engine.sent";
    c_delivered = Obs.counter obs "engine.delivered";
    c_dropped = Obs.counter obs "engine.dropped";
    c_ignored = Obs.counter obs "engine.ignored";
    c_timer_fires = Obs.counter obs "engine.timer_fires";
    c_dup = Obs.counter obs "engine.dup";
    c_reordered = Obs.counter obs "engine.reordered";
    c_partition_drops = Obs.counter obs "engine.partition_drops";
    s_flight = Obs.sketch obs "engine.flight_latency";
    clock = 0.0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    ignored = 0;
    events = 0;
    dup = 0;
    reordered = 0;
    partition_drops = 0;
  }

let n t = Array.length t.handlers
let now t = t.clock

let register t node handler =
  if node < 0 || node >= Array.length t.handlers then
    invalid_arg "Engine.register: node out of range";
  t.handlers.(node) <- Some handler

let trace_msg ?(extra = []) t ev ~src ~dst msg =
  Obs.trace t.obs ~name:ev
    (( "src", Obs.Int src)
     :: ("dst", Obs.Int dst)
     :: ("kind", Obs.Str (t.kind_of msg))
     :: extra)

(* One flight span per queued copy (a duplicated datagram gets its own),
   opened at send so its causal id orders spans by submission. *)
let flight_span t ~src ~dst msg =
  if Obs.tracing t.obs then
    Obs.span t.obs ~name:"engine.flight"
      [
        ("src", Obs.Int src);
        ("dst", Obs.Int dst);
        ("kind", Obs.Str (t.kind_of msg));
      ]
  else Obs.no_span

let drop t ~src ~dst msg =
  t.dropped <- t.dropped + 1;
  Obs.Counter.incr t.c_dropped;
  if Obs.tracing t.obs then trace_msg t "engine.drop" ~src ~dst msg

let link_state t ~src ~dst =
  let key = (src * Array.length t.handlers) + dst in
  match Hashtbl.find_opt t.link_states key with
  | Some st -> st
  | None ->
      let seed =
        Int64.to_int
          (Basalt_prng.Splitmix64.mix
             (Int64.logxor t.fault_salt (Int64.of_int key)))
      in
      let st =
        {
          link_rng = Rng.create ~seed;
          loss_state = Link.Loss.initial Link.Loss.None;
        }
      in
      Hashtbl.replace t.link_states key st;
      st

let send_faulty t f ~src ~dst msg =
  let time = t.clock in
  if
    Fault.down f ~time ~node:src
    || Fault.down f ~time ~node:dst
    || Fault.partitioned f ~time ~src ~dst
  then begin
    t.dropped <- t.dropped + 1;
    t.partition_drops <- t.partition_drops + 1;
    Obs.Counter.incr t.c_dropped;
    Obs.Counter.incr t.c_partition_drops;
    if Obs.tracing t.obs then
      trace_msg t "engine.drop" ~src ~dst msg
        ~extra:[ ("cause", Obs.Str "partition") ]
  end
  else begin
    let st = link_state t ~src ~dst in
    let spec = Fault.link_for f ~src ~dst in
    let loss =
      match spec with Some { loss = Some l; _ } -> l | _ -> t.loss
    in
    if Link.Loss.drops loss st.loss_state st.link_rng then
      drop t ~src ~dst msg
    else begin
      let latency =
        match spec with Some { latency = Some l; _ } -> l | _ -> t.latency
      in
      let dup, reorder, reorder_window =
        match spec with
        | Some s -> (s.Fault.dup, s.Fault.reorder, s.Fault.reorder_window)
        | None -> (0.0, 0.0, 0.0)
      in
      let delay () =
        let d = min_delay +. Link.Latency.sample latency st.link_rng in
        if reorder > 0.0 && Rng.bernoulli st.link_rng ~p:reorder then begin
          t.reordered <- t.reordered + 1;
          Obs.Counter.incr t.c_reordered;
          d +. Rng.float st.link_rng reorder_window
        end
        else d
      in
      Event_queue.push t.queue ~time:(time +. delay ())
        (Deliver { src; dst; msg; sent = time; span = flight_span t ~src ~dst msg });
      if dup > 0.0 && Rng.bernoulli st.link_rng ~p:dup then begin
        t.dup <- t.dup + 1;
        Obs.Counter.incr t.c_dup;
        if Obs.tracing t.obs then trace_msg t "engine.dup" ~src ~dst msg;
        Event_queue.push t.queue ~time:(time +. delay ())
          (Deliver
             { src; dst; msg; sent = time; span = flight_span t ~src ~dst msg })
      end
    end
  end

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  Obs.Counter.incr t.c_sent;
  if Obs.tracing t.obs then trace_msg t "engine.send" ~src ~dst msg;
  match t.fault with
  | Some f -> send_faulty t f ~src ~dst msg
  | None ->
      if Link.Loss.drops t.loss t.legacy_loss_state t.rng then
        drop t ~src ~dst msg
      else
        let delay = min_delay +. Link.Latency.sample t.latency t.rng in
        Event_queue.push t.queue ~time:(t.clock +. delay)
          (Deliver
             {
               src;
               dst;
               msg;
               sent = t.clock;
               span = flight_span t ~src ~dst msg;
             })

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) (Timer f)

let every t ?phase ~interval f =
  if interval <= 0.0 then invalid_arg "Engine.every: interval must be > 0";
  let phase = Option.value phase ~default:interval in
  let rec fire () =
    f ();
    Event_queue.push t.queue ~time:(t.clock +. interval) (Timer fire)
  in
  Event_queue.push t.queue ~time:(t.clock +. phase) (Timer fire)

let execute t event =
  t.events <- t.events + 1;
  match event with
  | Timer f ->
      Obs.Counter.incr t.c_timer_fires;
      f ()
  | Deliver { src; dst; msg; sent; span } -> (
      let handler =
        if dst >= 0 && dst < Array.length t.handlers then t.handlers.(dst)
        else None
      in
      match handler with
      | Some handler ->
          t.delivered <- t.delivered + 1;
          Obs.Counter.incr t.c_delivered;
          Obs.Sketch.add t.s_flight (t.clock -. sent);
          Obs.span_end ~fields:[ ("outcome", Obs.Str "deliver") ] t.obs span;
          if Obs.tracing t.obs then trace_msg t "engine.deliver" ~src ~dst msg;
          handler ~from:src msg
      | None ->
          t.ignored <- t.ignored + 1;
          Obs.Counter.incr t.c_ignored;
          Obs.span_end ~fields:[ ("outcome", Obs.Str "ignore") ] t.obs span;
          if Obs.tracing t.obs then trace_msg t "engine.ignore" ~src ~dst msg)

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, event) ->
      t.clock <- max t.clock time;
      execute t event;
      true

let run_until t horizon =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon -> (
        match Event_queue.pop t.queue with
        | Some (time, event) ->
            t.clock <- max t.clock time;
            execute t event;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- max t.clock horizon

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    ignored = t.ignored;
    events = t.events;
    dup = t.dup;
    reordered = t.reordered;
    partition_drops = t.partition_drops;
  }
