(** Network link models: delivery latency and message loss.

    The paper assumes a complete communication network with a weak form of
    synchrony (§2.1): some fraction of messages between correct nodes
    arrive within a bounded delay.  These models let experiments inject
    constant or jittered latency and independent (non-adversarial) loss;
    adversarially-biased loss is instead modelled through the attack force
    [F] (§2.1, §4.1). *)

module Latency : sig
  type t =
    | Zero  (** Instantaneous delivery (synchronous-round simulations). *)
    | Constant of float  (** Fixed one-way delay. *)
    | Uniform of { lo : float; hi : float }
        (** Delay drawn uniformly in [\[lo, hi\]]. *)

  val sample : t -> Basalt_prng.Rng.t -> float
  (** [sample t rng] draws a one-way delay. *)

  val pp : Format.formatter -> t -> unit
  (** Formatter for latency models. *)

end

module Loss : sig
  type t =
    | None  (** Reliable channels (the paper's default assumption). *)
    | Bernoulli of float  (** Each message dropped independently with
                              the given probability. *)

  val drops : t -> Basalt_prng.Rng.t -> bool
  (** [drops t rng] is [true] if the message should be discarded. *)

  val pp : Format.formatter -> t -> unit
  (** Formatter for loss models. *)

end
