(** Network link models: delivery latency and message loss.

    The paper assumes a complete communication network with a weak form of
    synchrony (§2.1): some fraction of messages between correct nodes
    arrive within a bounded delay.  These models let experiments inject
    constant or jittered latency and independent or bursty
    (non-adversarial) loss; adversarially-biased loss is instead modelled
    through the attack force [F] (§2.1, §4.1).  Richer behaviours —
    per-direction overrides, duplication, reordering, timed partitions
    and crash/restart outages — compose on top of these primitives in
    {!Fault}. *)

module Latency : sig
  type t =
    | Zero  (** Instantaneous delivery (synchronous-round simulations). *)
    | Constant of float  (** Fixed one-way delay. *)
    | Uniform of { lo : float; hi : float }
        (** Delay drawn uniformly in [\[lo, hi\]]. *)

  val sample : t -> Basalt_prng.Rng.t -> float
  (** [sample t rng] draws a one-way delay. *)

  val pp : Format.formatter -> t -> unit
  (** Formatter for latency models. *)

end

module Loss : sig
  type t =
    | None  (** Reliable channels (the paper's default assumption). *)
    | Bernoulli of float  (** Each message dropped independently with
                              the given probability. *)
    | Gilbert_elliott of {
        p_gb : float;  (** Per-message good→bad transition probability. *)
        p_bg : float;  (** Per-message bad→good transition probability. *)
        good : float;  (** Loss probability while in the good state. *)
        bad : float;  (** Loss probability while in the bad state. *)
      }
        (** Bursty loss: a two-state Gilbert–Elliott Markov chain advanced
            once per message.  The chain state lives in {!state}, one per
            directed link, so bursts on one link never perturb another. *)

  type state
  (** Per-link channel state ({!Gilbert_elliott} burst phase; stateless
      models ignore it). *)

  val initial : t -> state
  (** [initial t] is a fresh channel state (Gilbert–Elliott links start
      in the good state). *)

  val drops : t -> state -> Basalt_prng.Rng.t -> bool
  (** [drops t state rng] is [true] if the message should be discarded,
      advancing [state] for the stateful models. *)

  val mean_loss : t -> float
  (** [mean_loss t] is the long-run per-message drop probability (the
      stationary loss rate for {!Gilbert_elliott}). *)

  val pp : Format.formatter -> t -> unit
  (** Formatter for loss models. *)

end
