type link = {
  loss : Link.Loss.t option;
  latency : Link.Latency.t option;
  dup : float;
  reorder : float;
  reorder_window : float;
}

let check_probability name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.link: %s must be in [0,1]" name)

let link ?loss ?latency ?(dup = 0.0) ?(reorder = 0.0) ?(reorder_window = 1.0)
    () =
  check_probability "dup" dup;
  check_probability "reorder" reorder;
  if reorder_window < 0.0 then
    invalid_arg "Fault.link: reorder_window must be >= 0";
  { loss; latency; dup; reorder; reorder_window }

type partition = {
  from_time : float;
  until_time : float;
  side : int -> bool;
}

type outage = { node : int; from_time : float; until_time : float }

let check_window fname from_time until_time =
  if until_time < from_time then
    invalid_arg (fname ^ ": until_time must be >= from_time")

let partition ~from_time ~until_time side =
  check_window "Fault.partition" from_time until_time;
  { from_time; until_time; side }

let outage ~node ~from_time ~until_time =
  check_window "Fault.outage" from_time until_time;
  { node; from_time; until_time }

type t = {
  base : link option;
  directed : src:int -> dst:int -> link option;
  partitions : partition list;
  outages : outage list;
}

let no_override ~src:_ ~dst:_ = None

let make ?base ?(directed = no_override) ?(partitions = []) ?(outages = []) ()
    =
  { base; directed; partitions; outages }

let none = make ()

let is_none t =
  Option.is_none t.base
  && (match t.partitions with [] -> true | _ :: _ -> false)
  && (match t.outages with [] -> true | _ :: _ -> false)
  && t.directed == no_override

let link_for t ~src ~dst =
  match t.directed ~src ~dst with Some l -> Some l | None -> t.base

let active ~time from_time until_time = time >= from_time && time < until_time

let partitioned t ~time ~src ~dst =
  List.exists
    (fun (p : partition) ->
      active ~time p.from_time p.until_time && p.side src <> p.side dst)
    t.partitions

let down t ~time ~node =
  List.exists
    (fun o -> o.node = node && active ~time o.from_time o.until_time)
    t.outages
