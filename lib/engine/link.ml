module Latency = struct
  type t = Zero | Constant of float | Uniform of { lo : float; hi : float }

  let sample t rng =
    match t with
    | Zero -> 0.0
    | Constant d -> d
    | Uniform { lo; hi } -> lo +. Basalt_prng.Rng.float rng (hi -. lo)

  let pp ppf = function
    | Zero -> Format.fprintf ppf "zero"
    | Constant d -> Format.fprintf ppf "constant(%g)" d
    | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g,%g)" lo hi
end

module Loss = struct
  type t =
    | None
    | Bernoulli of float
    | Gilbert_elliott of {
        p_gb : float;
        p_bg : float;
        good : float;
        bad : float;
      }

  type state = { mutable bad_state : bool }

  let initial _ = { bad_state = false }

  let drops t state rng =
    match t with
    | None -> false
    | Bernoulli p -> Basalt_prng.Rng.bernoulli rng ~p
    | Gilbert_elliott { p_gb; p_bg; good; bad } ->
        (* Advance the two-state Markov chain, then drop with the loss
           probability of the state the message observes. *)
        (if state.bad_state then begin
           if Basalt_prng.Rng.bernoulli rng ~p:p_bg then
             state.bad_state <- false
         end
         else if Basalt_prng.Rng.bernoulli rng ~p:p_gb then
           state.bad_state <- true);
        let p = if state.bad_state then bad else good in
        Basalt_prng.Rng.bernoulli rng ~p

  let mean_loss = function
    | None -> 0.0
    | Bernoulli p -> p
    | Gilbert_elliott { p_gb; p_bg; good; bad } ->
        (* Stationary distribution of the chain: pi_bad = p_gb/(p_gb+p_bg). *)
        let denom = p_gb +. p_bg in
        if denom <= 0.0 then good
        else
          let pi_bad = p_gb /. denom in
          (pi_bad *. bad) +. ((1.0 -. pi_bad) *. good)

  let pp ppf = function
    | None -> Format.fprintf ppf "none"
    | Bernoulli p -> Format.fprintf ppf "bernoulli(%g)" p
    | Gilbert_elliott { p_gb; p_bg; good; bad } ->
        Format.fprintf ppf "gilbert-elliott(%g,%g;%g,%g)" p_gb p_bg good bad
end
