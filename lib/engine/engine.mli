(** Discrete-event message-passing simulation engine.

    The engine owns a virtual clock and an event queue.  Simulated nodes
    are integers in [\[0, n)]; each registers a message handler.  Sending
    a message enqueues its delivery after a latency drawn from the link
    model (unless the loss model drops it).  Timers ({!schedule},
    {!every}) drive periodic protocol rounds.

    Executions are fully deterministic: same seed, same schedule.  All
    randomness used by the engine itself (latency jitter, loss) comes from
    its own RNG sub-stream so that protocol-level randomness is not
    perturbed by transport-level draws. *)

type 'msg t
(** An engine whose messages have type ['msg]. *)

type stats = {
  sent : int;  (** Messages submitted to {!send}. *)
  delivered : int;  (** Messages handed to a registered handler. *)
  dropped : int;  (** Messages discarded by loss, partition or outage. *)
  ignored : int;
      (** Messages that arrived at a node with no registered handler (a
          crashed or never-spawned destination) — distinct from
          [delivered] so crashed-node traffic is not conflated with real
          deliveries. *)
  events : int;  (** Total events executed (deliveries + timers). *)
  dup : int;
      (** Extra deliveries injected by a fault plan's duplication rule;
          with duplication, [delivered] can exceed [sent]. *)
  reordered : int;
      (** Deliveries that received an extra reordering delay (counted per
          enqueued copy, so a duplicated message can count twice). *)
  partition_drops : int;
      (** The subset of [dropped] caused by a partition or outage window
          rather than by the loss model. *)
}

val create :
  ?latency:Link.Latency.t ->
  ?loss:Link.Loss.t ->
  ?fault:Fault.t ->
  ?obs:Basalt_obs.Obs.t ->
  ?kind_of:('msg -> string) ->
  rng:Basalt_prng.Rng.t ->
  n:int ->
  unit ->
  'msg t
(** [create ~rng ~n ()] builds an engine for [n] nodes.  [latency]
    defaults to {!Link.Latency.Zero} wrapped in a small epsilon so that a
    message sent during round [t] is handled before round [t+1]; [loss]
    defaults to {!Link.Loss.None}.

    [fault] (default: no plan) composes richer misbehaviour on top —
    per-direction loss/latency overrides, duplication, reordering, timed
    partitions and node outages (see {!Fault}).  Every fault decision for
    a directed link is drawn from that link's own PRNG stream, derived
    from the engine seed and the [(src, dst)] pair, so fault schedules
    are deterministic and independent across links (DESIGN.md §10).
    Passing a plan for which {!Fault.is_none} holds is equivalent to
    passing none at all, including PRNG consumption.

    [obs] (default {!Basalt_obs.Obs.disabled}) receives counters
    [engine.sent]/[engine.delivered]/[engine.dropped]/[engine.ignored]/
    [engine.timer_fires]/[engine.dup]/[engine.reordered]/
    [engine.partition_drops] mirroring {!stats}, and — when the sink is
    tracing — per-message [engine.send]/[engine.deliver]/[engine.drop]/
    [engine.ignore]/[engine.dup] events with [src], [dst] and [kind]
    fields, where [kind] is computed by [kind_of] (default: constantly
    ["msg"]); partition/outage drops carry an extra [cause] field.
    The virtual-time latency of every completed delivery feeds the
    [engine.flight_latency] quantile sketch, and under tracing each
    queued copy opens an [engine.flight] span at send time, closed at
    delivery with an [outcome] field ([deliver]/[ignore]) — dropped
    messages abandon their span, so only completed flights appear.
    Stamp trace events with virtual time by pointing the sink's clock at
    [now t]. *)

val n : 'msg t -> int
(** [n t] is the number of node slots. *)

val now : 'msg t -> float
(** [now t] is the current virtual time. *)

val register : 'msg t -> int -> (from:int -> 'msg -> unit) -> unit
(** [register t node handler] installs [handler] for messages addressed to
    [node], replacing any previous handler.
    @raise Invalid_argument if [node] is out of range. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** [send t ~src ~dst msg] enqueues delivery of [msg] to [dst].  Messages
    to unregistered nodes are dropped on arrival and counted in the
    [ignored] statistic (the destination behaves as a crashed node). *)

val schedule : 'msg t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay < 0]. *)

val every :
  'msg t -> ?phase:float -> interval:float -> (unit -> unit) -> unit
(** [every t ~phase ~interval f] runs [f] at times
    [phase, phase + interval, …] forever (events beyond the horizon of a
    {!run_until} call simply wait in the queue).  [phase] defaults to
    [interval]. @raise Invalid_argument if [interval <= 0]. *)

val run_until : 'msg t -> float -> unit
(** [run_until t horizon] executes all events with timestamp [<= horizon]
    and leaves the clock at [horizon]. *)

val step : 'msg t -> bool
(** [step t] executes the single earliest event, if any; returns whether
    one was executed. *)

val stats : 'msg t -> stats
(** [stats t] returns the message/event counters so far. *)
