(** Composable fault-injection plans for the simulation engine.

    A plan describes how the network misbehaves: per-link loss/latency
    overrides (optionally different per direction), message duplication
    and reordering, timed network partitions, and per-node crash/restart
    outage windows.  {!Engine.create} takes a plan via [?fault]; all the
    randomness a plan consumes is drawn from a dedicated PRNG stream
    derived per directed link from the engine seed, so an execution under
    a fault plan is bit-identical at any [-j N] parallelism level and the
    traffic on one link never perturbs the fault schedule of another
    (DESIGN.md §10). *)

type link = {
  loss : Link.Loss.t option;
      (** Loss model override ([None] = the engine default). *)
  latency : Link.Latency.t option;
      (** Latency override ([None] = the engine default). *)
  dup : float;  (** Probability a delivered message is duplicated. *)
  reorder : float;
      (** Probability a message receives an extra delay (overtaking). *)
  reorder_window : float;
      (** Upper bound of the uniform extra delay used by [reorder]. *)
}

val link :
  ?loss:Link.Loss.t ->
  ?latency:Link.Latency.t ->
  ?dup:float ->
  ?reorder:float ->
  ?reorder_window:float ->
  unit ->
  link
(** [link ()] is a transparent link behaviour; override pieces as needed.
    [dup] and [reorder] default to [0.], [reorder_window] to [1.].
    @raise Invalid_argument on probabilities outside [\[0,1\]] or a
    negative window. *)

type partition = {
  from_time : float;  (** Start of the cut (inclusive). *)
  until_time : float;  (** End of the cut (exclusive, the healing time). *)
  side : int -> bool;  (** Membership predicate for one side of the cut. *)
}

type outage = {
  node : int;  (** The affected node. *)
  from_time : float;  (** Crash time (inclusive). *)
  until_time : float;  (** Restart time (exclusive). *)
}

val partition :
  from_time:float -> until_time:float -> (int -> bool) -> partition
(** [partition ~from_time ~until_time side] cuts the network into
    [side]-vs-rest during [\[from_time, until_time)]: messages crossing
    the cut are dropped.  @raise Invalid_argument on a reversed window. *)

val outage : node:int -> from_time:float -> until_time:float -> outage
(** [outage ~node ~from_time ~until_time] silences [node] during the
    window: messages from or to it are dropped (a crash/restart with
    state retained — model state loss with {!Scenario}-level churn).
    @raise Invalid_argument on a reversed window. *)

type t = {
  base : link option;  (** Behaviour applied to every directed pair. *)
  directed : src:int -> dst:int -> link option;
      (** Per-direction override, consulted before [base] — this is what
          makes asymmetric links expressible. *)
  partitions : partition list;  (** Timed cuts. *)
  outages : outage list;  (** Timed per-node silences. *)
}

val make :
  ?base:link ->
  ?directed:(src:int -> dst:int -> link option) ->
  ?partitions:partition list ->
  ?outages:outage list ->
  unit ->
  t
(** [make ()] is the transparent plan; compose faults by overriding
    pieces. *)

val none : t
(** [none] is the transparent plan ({!is_none} holds). *)

val is_none : t -> bool
(** [is_none t] is [true] when [t] cannot affect any message; the engine
    then uses its legacy single-stream path, so a [Some none] plan and no
    plan at all consume PRNG draws identically. *)

val link_for : t -> src:int -> dst:int -> link option
(** [link_for t ~src ~dst] is the effective link behaviour for the
    directed pair: the [directed] override if any, else [base]. *)

val partitioned : t -> time:float -> src:int -> dst:int -> bool
(** [partitioned t ~time ~src ~dst] is [true] when an active partition
    separates the pair at [time]. *)

val down : t -> time:float -> node:int -> bool
(** [down t ~time ~node] is [true] when an active outage silences
    [node] at [time]. *)
