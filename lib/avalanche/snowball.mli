(** The Snowball metastable binary consensus (Team Rocket et al., 2019).

    Snowball is the single-decision core of the Avalanche family — the
    paper's target use case for a secure RPS: each node repeatedly queries
    a small committee of [sample_size] peers {e drawn from the peer
    sampling service} and shifts its preference toward colors that gather
    an [alpha]-quorum, finalising after [beta] consecutive quorums for the
    same color.  A biased sampler lets an adversary over-represent its
    votes in committees, which is precisely what Basalt prevents. *)

type color = Red | Blue

val color_equal : color -> color -> bool
(** [color_equal a b] is equality on colors. *)

val opposite : color -> color
(** [opposite c] flips {!Red} and {!Blue}. *)

val pp_color : Format.formatter -> color -> unit
(** Formatter for colors. *)

type config = private {
  sample_size : int;  (** Committee size k. *)
  alpha : int;  (** Quorum threshold (votes needed for a "success"). *)
  beta : int;  (** Consecutive successes needed to finalise. *)
}

val config : ?sample_size:int -> ?alpha:int -> ?beta:int -> unit -> config
(** [config ()] defaults to [k = 10], [alpha = 7], [beta = 15] (values in
    the Avalanche paper's deployment range).
    @raise Invalid_argument unless [0 < alpha <= sample_size] and
    [beta > 0]. *)

type t
(** One node's Snowball instance for one decision. *)

val create : config -> color -> t
(** [create config initial] starts with preference [initial]. *)

val preference : t -> color
(** Current preferred color (what the node answers to queries). *)

val decided : t -> bool
(** Whether the instance has finalised. *)

val decision : t -> color option
(** The finalised color, if {!decided}. *)

val register_votes : t -> color list -> unit
(** [register_votes t votes] processes one completed query round.  If
    some color has at least [alpha] votes, its confidence counter
    increases and the conviction streak advances (resetting when the
    successful color changes); otherwise the streak resets.  No-op once
    decided. *)

val confidence : t -> color -> int
(** [confidence t c] is the accumulated count of successful rounds for
    [c]. *)

val streak : t -> int
(** Current consecutive-success streak length. *)
