(** The Avalanche transaction DAG (Team Rocket et al., 2019, §2).

    Avalanche generalises Snowball from one binary decision to a DAG of
    transactions partitioned into {e conflict sets} (e.g. all spends of
    one UTXO).  Each node maintains:

    - the DAG of known transactions (each names its parents);
    - one {e chit} per transaction — a binary vote earned when a query
      about the transaction gathers an α-quorum;
    - per conflict set, a Snowball-like state: the {e preferred}
      transaction (highest confidence), the last winner, and a counter of
      consecutive successful queries.

    A transaction is {e strongly preferred} when it and every ancestor is
    the preferred member of its conflict set — that is what an honest
    peer answers queries with.  A transaction is {e accepted} by safe
    early commitment (no conflicts ever seen and [beta1] consecutive
    successes) or by the conservative rule ([beta2] consecutive
    successes) (§2, Fig. 5 of the Avalanche paper).

    This module is the per-node data structure; {!Dag_network} runs it
    over the simulator with RPS-sampled query committees. *)

module Tx : sig
  type id = int
  (** Transaction identifier (unique network-wide). *)

  type t = {
    id : id;
    parents : id list;  (** Must already be known on insertion. *)
    conflict : int;  (** Conflict-set key (e.g. spent-output id). *)
  }

  val genesis : t
  (** The root transaction every DAG starts with (id 0, conflict -1). *)

  val pp : Format.formatter -> t -> unit
  (** Formatter for transactions. *)

end

type t
(** One node's DAG state. *)

val create : unit -> t
(** [create ()] contains only {!Tx.genesis} (already accepted). *)

val insert : t -> Tx.t -> (unit, string) result
(** [insert t tx] adds [tx].  Inserting a known transaction is a no-op;
    unknown parents are an error (the network layer fetches ancestors
    first). *)

val known : t -> Tx.id -> bool
(** [known t id] is [true] if [id] is present in the DAG. *)

val tx : t -> Tx.id -> Tx.t
(** [tx t id] returns the stored transaction.
    @raise Invalid_argument if unknown. *)

val transactions : t -> Tx.id list
(** All known transaction ids, insertion-ordered. *)

val ancestor_closure : t -> Tx.id -> Tx.t list
(** [ancestor_closure t id] is [id]'s ancestry (including itself) in
    topological order, parents before children — what a query message
    carries so any recipient can insert the transaction. *)

val conflict_set : t -> Tx.t -> Tx.id list
(** [conflict_set t tx] is every known transaction sharing [tx]'s
    conflict key (including [tx] itself if known). *)

val is_preferred : t -> Tx.id -> bool
(** Whether the transaction is the preferred member of its conflict
    set. *)

val is_strongly_preferred : t -> Tx.id -> bool
(** Whether the transaction and all its ancestors are preferred. *)

val record_query_success : t -> Tx.id -> unit
(** [record_query_success t id] awards a chit to [id] and updates
    preference, last-winner and counter state for it and every ancestor
    (the Avalanche update after an α-quorum of positive votes). *)

val record_query_failure : t -> Tx.id -> unit
(** [record_query_failure t id] resets the consecutive-success counters
    of [id] and its ancestors. *)

val confidence : t -> Tx.id -> int
(** [confidence t id] is the total number of chits in the transaction's
    progeny (descendants including itself) — d(T) in the paper. *)

val accepted : ?beta1:int -> ?beta2:int -> t -> Tx.id -> bool
(** [accepted t id] applies the two commitment rules (defaults
    [beta1 = 11], [beta2 = 20]).  Acceptance requires all ancestors
    accepted too.  Genesis is always accepted. *)

val chit : t -> Tx.id -> bool
(** Whether the transaction earned its chit. *)

val frontier : t -> Tx.id list
(** Transactions with no known children — what new transactions should
    attach to (preferred ones first). *)
