(** Avalanche DAG consensus over an RPS-sampled network.

    Every correct node maintains a {!Tx_dag} and repeatedly queries
    committees drawn from its peer sampling service about not-yet-accepted
    transactions: a query carries the transaction's ancestor closure, the
    recipient inserts it and answers whether it is strongly preferred; an
    [alpha]-quorum of positive votes awards a chit.

    The scenario: after an RPS warm-up, one node issues transaction A and
    another issues a {e conflicting} B (same conflict set), then a chain
    of virtuous transactions builds on whichever branch each issuer
    prefers.  Byzantine nodes answer every query with a vote for the
    minority branch (and keep running the RPS-level flooding attack).

    Measured outcomes: {e safety} — no two correct nodes accept
    conflicting transactions; {e liveness} — virtuous transactions are
    accepted; and the usual committee pollution. *)

type config = private {
  n : int;
  f : float;
  force : float;
  sampling : Network.sampling;
  committee : int;  (** Query committee size k. *)
  alpha : int;  (** Quorum threshold. *)
  beta1 : int;  (** Safe-early-commitment threshold. *)
  beta2 : int;  (** Conservative threshold. *)
  warmup : float;
  steps : float;
  virtuous_txs : int;  (** Virtuous transactions issued after the conflict. *)
  seed : int;
}

val config :
  ?n:int ->
  ?f:float ->
  ?force:float ->
  ?sampling:Network.sampling ->
  ?committee:int ->
  ?alpha:int ->
  ?beta1:int ->
  ?beta2:int ->
  ?warmup:float ->
  ?steps:float ->
  ?virtuous_txs:int ->
  ?seed:int ->
  unit ->
  config
(** Defaults: 200 nodes, [f = 0.15], force 10, Basalt sampling,
    committees of 10 with [alpha = 7], [beta1 = 11], [beta2 = 20],
    warm-up 30, 250 steps, 6 virtuous transactions. *)

type result = {
  safety : bool;  (** No conflicting acceptances across correct nodes. *)
  conflict_resolved_fraction : float;
      (** Correct nodes that accepted one branch of the conflict. *)
  virtuous_accepted_fraction : float;
      (** Mean fraction of virtuous transactions accepted per node. *)
  mean_acceptance_time : float;  (** Over all acceptances ([nan] if none). *)
  committee_byz : float;
  queries : int;
}

val run : config -> result
(** [run config] simulates the configured DAG deployment and returns the
    aggregated {!result}. *)
