type select_strategy = Uniform_slot | Rotating_slot | Least_used_slot

type t = {
  v : int;
  tau : float;
  rho : float;
  k : int;
  backend : Basalt_hashing.Rank.backend;
  select : select_strategy;
  exclude_self : bool;
  evict_after_rounds : int option;
  push_own_id_only : bool;
}

let make ?(v = 160) ?(tau = 1.0) ?(rho = 1.0) ?k
    ?(backend = Basalt_hashing.Rank.Cheap) ?(select = Uniform_slot)
    ?(exclude_self = true) ?evict_after_rounds ?(push_own_id_only = false) () =
  let k = Option.value k ~default:(max 1 (v / 2)) in
  if v <= 0 then invalid_arg "Config.make: v must be positive";
  if k < 1 || Int.compare k v > 0 then
    invalid_arg "Config.make: k must be in [1, v]";
  if tau <= 0.0 then invalid_arg "Config.make: tau must be positive";
  if rho <= 0.0 then invalid_arg "Config.make: rho must be positive";
  (match evict_after_rounds with
  | Some r when r <= 0 ->
      invalid_arg "Config.make: evict_after_rounds must be positive"
  | Some _ | None -> ());
  {
    v;
    tau;
    rho;
    k;
    backend;
    select;
    exclude_self;
    evict_after_rounds;
    push_own_id_only;
  }

let default = make ()
let refresh_interval c = float_of_int c.k /. c.rho
let slot_lifetime c = float_of_int c.v /. c.rho

let equilibrium_exists c ~n ~f =
  let v = float_of_int c.v in
  let n = float_of_int n in
  ((1.0 -. f) ** 2.0) -. (2.0 *. c.rho *. f *. (1.0 -. f) *. n /. (v *. v))
  > 0.0

let pp ppf c =
  Format.fprintf ppf "basalt{v=%d; tau=%g; rho=%g; k=%d; select=%s}" c.v c.tau
    c.rho c.k
    (match c.select with
    | Uniform_slot -> "uniform"
    | Rotating_slot -> "rotating"
    | Least_used_slot -> "least-used")
