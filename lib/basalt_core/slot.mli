(** One view slot of the stubborn chaotic search.

    A slot pairs a random ranking seed with the best-matching identifier
    seen since the seed was last reset (Fig. 1 of the paper).  The current
    best rank is cached so that offering a candidate costs a single hash
    evaluation and comparison; the seed itself is pre-digested at draw
    time ({!Basalt_hashing.Rank.fresh} — SipHash seeds carry a resumable
    key+seed midstate), so that evaluation finishes only the
    identifier-side work.

    This record-per-slot module serves Brahms's sampler array and the
    slot unit/property tests; Basalt proper packs the same state as
    struct-of-arrays inside [Basalt.t] for its batched hot path
    (DESIGN.md §4). *)

type t
(** A mutable slot. *)

val create : Basalt_hashing.Rank.backend -> Basalt_prng.Rng.t -> t
(** [create backend rng] is an empty slot ([peer = None]) with a fresh
    random seed. *)

val offer : t -> Basalt_proto.Node_id.t -> bool
(** [offer slot id] installs [id] as the slot's peer if its rank under the
    slot's seed is strictly smaller than the current best (or if the slot
    is empty); returns whether the slot changed (Alg. 1 lines 20–23). *)

val offer_prepared :
  t -> Basalt_proto.Node_id.t -> Basalt_hashing.Rank.prepared -> bool
(** [offer_prepared slot id p] is {!offer} with the identifier-side hash
    work pre-computed via {!Basalt_hashing.Rank.prepare} — the hot path
    when one identifier is offered to every slot of a view. *)

val peer : t -> Basalt_proto.Node_id.t option
(** [peer slot] is the best-matching identifier seen so far, if any. *)

val reset :
  Basalt_hashing.Rank.backend -> Basalt_prng.Rng.t -> t -> unit
(** [reset backend rng slot] draws a fresh seed and forgets the current
    peer (Alg. 1 line 18); the caller is expected to re-offer the rest of
    the view afterwards (line 19). *)

val seed : t -> Basalt_hashing.Rank.seed
(** [seed slot] is the slot's current ranking seed. *)

val best_rank : t -> int option
(** [best_rank slot] is the cached rank of the current peer. *)

val uses : t -> int
(** [uses slot] counts exchanges served by this slot since its last seed
    reset (the hit counter behind
    {!Config.select_strategy.Least_used_slot}). *)

val mark_used : t -> unit
(** [mark_used slot] increments the hit counter. *)
