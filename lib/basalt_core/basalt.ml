module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module Rng = Basalt_prng.Rng
module Obs = Basalt_obs.Obs

type t = {
  config : Config.t;
  id : Node_id.t;
  slots : Slot.t array;
  rng : Rng.t;
  send : Rps.send;
  mutable next_reset : int;  (* round-robin pointer r, 0-based *)
  mutable next_select : int;  (* used by the Rotating_slot strategy *)
  mutable rounds : int;
  mutable emitted : int;
  (* Dead-peer detection: peers we pulled from and the round of the
     oldest unanswered pull (only populated when eviction is enabled). *)
  probes : (int, int) Hashtbl.t;
  mutable evicted : int;
  (* Run-wide instruments, shared across nodes by name (dummies when the
     sink is disabled — a mutation is then a dead store, DESIGN.md §8). *)
  c_rank_evals : Obs.Counter.t;
  c_rounds : Obs.Counter.t;
  c_pulls : Obs.Counter.t;
  c_pushes : Obs.Counter.t;
  c_samples : Obs.Counter.t;
  c_slot_resets : Obs.Counter.t;
  c_evictions : Obs.Counter.t;
  (* Pull-exchange lifecycle: request time and span per outstanding pull,
     feeding the run-wide "basalt.pull_rtt" sketch (DESIGN.md §8). *)
  rtt : Obs.rtt;
}

let config t = t.config
let id t = t.id

let update_sample t ids =
  let skip_self = t.config.Config.exclude_self in
  let backend = t.config.Config.backend in
  let offer_all id =
    if not (skip_self && Node_id.equal id t.id) then begin
      let prepared =
        Basalt_hashing.Rank.prepare backend (Node_id.to_int id)
      in
      Obs.Counter.add t.c_rank_evals (Array.length t.slots);
      Array.iter
        (fun slot -> ignore (Slot.offer_prepared slot id prepared))
        t.slots
    end
  in
  Array.iter offer_all ids

let create ?(config = Config.default) ?(obs = Obs.disabled) ~id ~bootstrap
    ~rng ~send () =
  let rng = Rng.split rng in
  let slots =
    Array.init config.Config.v (fun _ -> Slot.create config.Config.backend rng)
  in
  let send = Basalt_codec.Metered.send obs ~proto:"basalt" send in
  let t =
    {
      config;
      id;
      slots;
      rng;
      send;
      next_reset = 0;
      next_select = 0;
      rounds = 0;
      emitted = 0;
      probes = Hashtbl.create 16;
      evicted = 0;
      c_rank_evals = Obs.counter obs "basalt.rank_evals";
      c_rounds = Obs.counter obs "basalt.rounds";
      c_pulls = Obs.counter obs "basalt.pulls_sent";
      c_pushes = Obs.counter obs "basalt.pushes_sent";
      c_samples = Obs.counter obs "basalt.samples_emitted";
      c_slot_resets = Obs.counter obs "basalt.slot_resets";
      c_evictions = Obs.counter obs "basalt.evictions";
      rtt = Obs.rtt obs ~name:"basalt.pull";
    }
  in
  update_sample t bootstrap;
  t

let view t =
  let out = ref [] in
  for i = Array.length t.slots - 1 downto 0 do
    match Slot.peer t.slots.(i) with
    | Some p -> out := p :: !out
    | None -> ()
  done;
  Array.of_list !out

let view_slots t = Array.map Slot.peer t.slots

let select_peer t =
  match t.config.Config.select with
  | Config.Uniform_slot ->
      (* Try a few random slots before falling back to a scan, so that a
         mostly-empty view during bootstrap still yields a peer. *)
      let v = Array.length t.slots in
      let rec try_random attempts =
        if attempts = 0 then
          Array.find_map Slot.peer t.slots
        else
          match Slot.peer t.slots.(Rng.int t.rng v) with
          | Some p -> Some p
          | None -> try_random (attempts - 1)
      in
      try_random 8
  | Config.Rotating_slot ->
      let v = Array.length t.slots in
      let rec scan remaining =
        if remaining = 0 then None
        else begin
          let i = t.next_select in
          t.next_select <- (t.next_select + 1) mod v;
          match Slot.peer t.slots.(i) with
          | Some p -> Some p
          | None -> scan (remaining - 1)
        end
      in
      scan v
  | Config.Least_used_slot ->
      (* The filled slot with the fewest exchanges served since its last
         reset; ties broken by slot order. *)
      let best = ref None in
      Array.iter
        (fun slot ->
          match (Slot.peer slot, !best) with
          | None, _ -> ()
          | Some _, Some chosen
            when Int.compare (Slot.uses slot) (Slot.uses chosen) >= 0 ->
              ()
          | Some _, _ -> best := Some slot)
        t.slots;
      Option.map
        (fun slot ->
          Slot.mark_used slot;
          match Slot.peer slot with
          | Some p -> p
          | None -> assert false)
        !best

(* Reset every slot currently holding [peer] and re-offer the rest of the
   view, so the freed slots immediately converge to live candidates. *)
let evict_peer t peer =
  let snapshot =
    Array.of_list
      (List.filter
         (fun p -> not (Node_id.equal p peer))
         (Array.to_list (view t)))
  in
  Array.iter
    (fun slot ->
      match Slot.peer slot with
      | Some p when Node_id.equal p peer ->
          Slot.reset t.config.Config.backend t.rng slot;
          t.evicted <- t.evicted + 1;
          Obs.Counter.incr t.c_evictions
      | Some _ | None -> ())
    t.slots;
  update_sample t snapshot

let run_eviction t ~limit =
  (* Evicting consumes PRNG draws (slot resets), so the eviction order
     must not depend on [Hashtbl] iteration order — sort by node id to
     keep executions a pure function of the protocol history. *)
  let expired =
    List.sort Int.compare
      (Hashtbl.fold
         (fun peer probed acc ->
           if t.rounds - probed > limit then peer :: acc else acc)
         t.probes [])
  in
  List.iter
    (fun peer ->
      Hashtbl.remove t.probes peer;
      evict_peer t (Node_id.of_int peer))
    expired

let record_probe t peer =
  let key = Node_id.to_int peer in
  if not (Hashtbl.mem t.probes key) then Hashtbl.replace t.probes key t.rounds

let on_round t =
  t.rounds <- t.rounds + 1;
  Obs.Counter.incr t.c_rounds;
  (match t.config.Config.evict_after_rounds with
  | Some limit -> run_eviction t ~limit
  | None -> ());
  (match select_peer t with
  | Some p ->
      (* Record the probe before sending so that a reply — however fast —
         always clears it. *)
      (match t.config.Config.evict_after_rounds with
      | Some _ -> record_probe t p
      | None -> ());
      Obs.Counter.incr t.c_pulls;
      Obs.rtt_start t.rtt ~node:(Node_id.to_int t.id)
        ~peer:(Node_id.to_int p);
      t.send ~dst:p Message.Pull_request
  | None -> ());
  match select_peer t with
  | Some q ->
      let payload =
        if t.config.Config.push_own_id_only then Message.Push_id t.id
        else Message.Push (view t)
      in
      Obs.Counter.incr t.c_pushes;
      t.send ~dst:q payload
  | None -> ()

let on_message t ~from msg =
  (* Any traffic from a peer proves it alive. *)
  if t.config.Config.evict_after_rounds <> None then
    Hashtbl.remove t.probes (Node_id.to_int from);
  match msg with
  | Message.Pull_request -> t.send ~dst:from (Message.Pull_reply (view t))
  | Message.Pull_reply ids ->
      Obs.rtt_finish t.rtt ~peer:(Node_id.to_int from);
      (* Alg. 1 line 13: the sender itself is a candidate too. *)
      update_sample t ids;
      update_sample t [| from |]
  | Message.Push ids ->
      update_sample t ids;
      update_sample t [| from |]
  | Message.Push_id id -> update_sample t [| id |]
  (* Broadcast frames belong to the lib/gossip layer sharing the socket;
     the sampler only takes the liveness signal above. *)
  | Message.Gossip _ | Message.Ihave _ | Message.Iwant _ | Message.Graft
  | Message.Prune ->
      ()

let sample_tick t =
  let v = Array.length t.slots in
  let k = t.config.Config.k in
  (* Snapshot the pre-reset view: Alg. 1 line 19 re-offers "the current
     view", in which the just-reset slots still hold their old peers. *)
  let snapshot = view t in
  let samples = ref [] in
  for _ = 1 to k do
    let i = t.next_reset in
    t.next_reset <- (t.next_reset + 1) mod v;
    (match Slot.peer t.slots.(i) with
    | Some p ->
        samples := p :: !samples;
        t.emitted <- t.emitted + 1;
        Obs.Counter.incr t.c_samples
    | None -> ());
    Slot.reset t.config.Config.backend t.rng t.slots.(i);
    Obs.Counter.incr t.c_slot_resets
  done;
  update_sample t snapshot;
  List.rev !samples

let samples_emitted t = t.emitted
let rounds_executed t = t.rounds
let evictions t = t.evicted

let sampler ?config ?obs () : Rps.maker =
 fun ~id ~bootstrap ~rng ~send ->
  let t = create ?config ?obs ~id ~bootstrap ~rng ~send () in
  {
    Rps.protocol = "basalt";
    node = id;
    on_message = (fun ~from msg -> on_message t ~from msg);
    on_round = (fun () -> on_round t);
    sample_tick = (fun () -> sample_tick t);
    current_view = (fun () -> view t);
  }
