module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rps = Basalt_proto.Rps
module Rng = Basalt_prng.Rng
module Obs = Basalt_obs.Obs
module Rank = Basalt_hashing.Rank

(* Slot state lives in parallel struct-of-arrays form: slot [i] is
   [(seeds.(i), holders.(i), best_ranks.(i), uses.(i), stamps.(i))].
   The batched [update_sample] iterates slot-major over these flat int
   arrays — branch-light, cache-friendly, and allocation-free — instead
   of chasing one heap record per slot (DESIGN.md §4).

   On top of the layout sits a rank-work cache: [clock] counts slot
   resets, [stamps.(i)] records the clock value at which slot [i]'s seed
   was drawn, and [seen] maps a candidate identifier to the clock value
   at which it was last offered to *all* slots.  Offering a candidate to
   an unchanged slot is a no-op (the slot's best rank only decreases
   between resets, so a re-offer can never install), hence a candidate
   seen at clock [s] only needs rank evaluations against slots with
   [stamps.(i) > s] — each candidate is hashed once per *seed*, not once
   per call.  Rank values themselves are exactly the uncached ones; the
   differential oracle in test_basalt.ml pins the equivalence. *)
type t = {
  config : Config.t;
  id : Node_id.t;
  self : int;  (* Node_id.to_int id, for the exclude_self fast path *)
  seeds : Rank.seed array;
  holders : int array;  (* holders.(i) < 0 means slot i is empty *)
  best_ranks : int array;  (* max_int when empty *)
  uses : int array;  (* exchanges served since last reset (Least_used) *)
  stamps : int array;  (* clock value at which the slot's seed was drawn *)
  mutable clock : int;  (* total slot resets so far *)
  seen : (int, int) Hashtbl.t;  (* candidate id -> clock at last offer *)
  (* Reusable batch scratch for update_sample (grown on demand). *)
  mutable batch_raw : int array;
  mutable batch_digest : int array;
  mutable batch_since : int array;
  rng : Rng.t;
  send : Rps.send;
  mutable next_reset : int;  (* round-robin pointer r, 0-based *)
  mutable next_select : int;  (* used by the Rotating_slot strategy *)
  mutable rounds : int;
  mutable emitted : int;
  (* Dead-peer detection: peers we pulled from and the round of the
     oldest unanswered pull (only populated when eviction is enabled). *)
  probes : (int, int) Hashtbl.t;
  mutable evicted : int;
  (* Run-wide instruments, shared across nodes by name (dummies when the
     sink is disabled — a mutation is then a dead store, DESIGN.md §8). *)
  c_rank_evals : Obs.Counter.t;
  c_rounds : Obs.Counter.t;
  c_pulls : Obs.Counter.t;
  c_pushes : Obs.Counter.t;
  c_samples : Obs.Counter.t;
  c_slot_resets : Obs.Counter.t;
  c_evictions : Obs.Counter.t;
  (* Pull-exchange lifecycle: request time and span per outstanding pull,
     feeding the run-wide "basalt.pull_rtt" sketch (DESIGN.md §8). *)
  rtt : Obs.rtt;
}

let config t = t.config
let id t = t.id

(* Past this size the seen-cache is swept of entries older than every
   slot's seed (they carry no information: such a candidate needs
   re-evaluation everywhere, same as an absent entry).  Round-robin
   resets cycle through all v slots every v/k ticks, so entries go stale
   at protocol speed and the cache stays O(candidates per slot
   lifetime). *)
let seen_prune_threshold t = (16 * Array.length t.holders) + 64

let prune_seen t =
  if Hashtbl.length t.seen > seen_prune_threshold t then begin
    let min_stamp =
      Array.fold_left (fun acc s -> Int.min acc s) max_int t.stamps
    in
    Hashtbl.filter_map_inplace
      (fun _ s -> if Int.compare s min_stamp < 0 then None else Some s)
      t.seen
  end

let ensure_batch_capacity t n =
  if Array.length t.batch_raw < n then begin
    let cap = Int.max n (2 * Array.length t.batch_raw) in
    t.batch_raw <- Array.make cap 0;
    t.batch_digest <- Array.make cap 0;
    t.batch_since <- Array.make cap (-1)
  end

let update_sample t ids =
  let n = Array.length ids in
  if n > 0 then begin
    ensure_batch_capacity t n;
    let skip_self = t.config.Config.exclude_self in
    let raw = t.batch_raw
    and dig = t.batch_digest
    and since = t.batch_since in
    (* Intake pass: drop self, dedup within the batch, and skip any
       candidate already offered to every current seed (pull replies
       routinely repeat ids across rounds, and the sender rides along as
       its own one-element batch).  Survivors are prepared once —
       identifier-side digest hoisted out of the slot loop. *)
    let len = ref 0 in
    for idx = 0 to n - 1 do
      let cand = Node_id.to_int (Array.unsafe_get ids idx) in
      if not (skip_self && Int.equal cand t.self) then begin
        let last =
          match Hashtbl.find_opt t.seen cand with Some s -> s | None -> -1
        in
        if Int.compare last t.clock < 0 then begin
          let j = !len in
          Array.unsafe_set raw j cand;
          Array.unsafe_set dig j (Rank.digest cand);
          Array.unsafe_set since j last;
          Hashtbl.replace t.seen cand t.clock;
          incr len
        end
      end
    done;
    let len = !len in
    if len > 0 then begin
      let seeds = t.seeds
      and holders = t.holders
      and best = t.best_ranks
      and stamps = t.stamps in
      let evals = ref 0 in
      (* Slot-major pass: per slot, one seed load, then a tight scan of
         the prepared candidates.  A candidate last offered at clock [s]
         is evaluated only against seeds drawn after [s]. *)
      for i = 0 to Array.length seeds - 1 do
        let seed = Array.unsafe_get seeds i in
        let stamp_i = Array.unsafe_get stamps i in
        for j = 0 to len - 1 do
          (* lint: allow D4 — int stamps; a compare call would slow the hot path *)
          if stamp_i > Array.unsafe_get since j then begin
            incr evals;
            let r =
              Rank.rank_digested seed ~id:(Array.unsafe_get raw j)
                ~digest:(Array.unsafe_get dig j)
            in
            (* lint: allow D4 — int ranks; a compare call would slow the hot path *)
            if r < Array.unsafe_get best i || Array.unsafe_get holders i < 0
            then begin
              Array.unsafe_set best i r;
              Array.unsafe_set holders i (Array.unsafe_get raw j)
            end
          end
        done
      done;
      (* Rank evaluations actually performed after dedup and seen-cache
         elision — not candidates × slots (DESIGN.md §8). *)
      Obs.Counter.add t.c_rank_evals !evals
    end
  end

let reset_slot t i =
  t.seeds.(i) <- Rank.fresh t.config.Config.backend t.rng;
  t.holders.(i) <- -1;
  t.best_ranks.(i) <- max_int;
  t.uses.(i) <- 0;
  t.clock <- t.clock + 1;
  t.stamps.(i) <- t.clock

let create ?(config = Config.default) ?(obs = Obs.disabled) ~id ~bootstrap
    ~rng ~send () =
  let rng = Rng.split rng in
  let v = config.Config.v in
  let seeds =
    Array.init v (fun _ -> Rank.fresh config.Config.backend rng)
  in
  let send = Basalt_codec.Metered.send obs ~proto:"basalt" send in
  let t =
    {
      config;
      id;
      self = Node_id.to_int id;
      seeds;
      holders = Array.make v (-1);
      best_ranks = Array.make v max_int;
      uses = Array.make v 0;
      stamps = Array.make v 0;
      clock = 0;
      seen = Hashtbl.create 64;
      batch_raw = [||];
      batch_digest = [||];
      batch_since = [||];
      rng;
      send;
      next_reset = 0;
      next_select = 0;
      rounds = 0;
      emitted = 0;
      probes = Hashtbl.create 16;
      evicted = 0;
      c_rank_evals = Obs.counter obs "basalt.rank_evals";
      c_rounds = Obs.counter obs "basalt.rounds";
      c_pulls = Obs.counter obs "basalt.pulls_sent";
      c_pushes = Obs.counter obs "basalt.pushes_sent";
      c_samples = Obs.counter obs "basalt.samples_emitted";
      c_slot_resets = Obs.counter obs "basalt.slot_resets";
      c_evictions = Obs.counter obs "basalt.evictions";
      rtt = Obs.rtt obs ~name:"basalt.pull";
    }
  in
  update_sample t bootstrap;
  t

let slot_peer t i =
  let h = t.holders.(i) in
  if h < 0 then None else Some (Node_id.of_int h)

let view t =
  let out = ref [] in
  for i = Array.length t.holders - 1 downto 0 do
    let h = t.holders.(i) in
    if h >= 0 then out := Node_id.of_int h :: !out
  done;
  Array.of_list !out

let view_slots t = Array.init (Array.length t.holders) (slot_peer t)

let slot_ranks t =
  Array.init (Array.length t.holders) (fun i ->
      if t.holders.(i) < 0 then None else Some t.best_ranks.(i))

let select_peer t =
  match t.config.Config.select with
  | Config.Uniform_slot ->
      (* Try a few random slots before falling back to a scan, so that a
         mostly-empty view during bootstrap still yields a peer. *)
      let v = Array.length t.holders in
      let rec try_random attempts =
        if attempts = 0 then begin
          let rec scan i =
            if Int.compare i v >= 0 then None
            else
              match slot_peer t i with
              | Some p -> Some p
              | None -> scan (i + 1)
          in
          scan 0
        end
        else
          match slot_peer t (Rng.int t.rng v) with
          | Some p -> Some p
          | None -> try_random (attempts - 1)
      in
      try_random 8
  | Config.Rotating_slot ->
      let v = Array.length t.holders in
      let rec scan remaining =
        if remaining = 0 then None
        else begin
          let i = t.next_select in
          t.next_select <- (t.next_select + 1) mod v;
          match slot_peer t i with
          | Some p -> Some p
          | None -> scan (remaining - 1)
        end
      in
      scan v
  | Config.Least_used_slot ->
      (* The filled slot with the fewest exchanges served since its last
         reset; ties broken by slot order. *)
      let best = ref (-1) in
      for i = 0 to Array.length t.holders - 1 do
        if t.holders.(i) >= 0
           && (!best < 0 || Int.compare t.uses.(i) t.uses.(!best) < 0)
        then best := i
      done;
      if !best < 0 then None
      else begin
        t.uses.(!best) <- t.uses.(!best) + 1;
        Some (Node_id.of_int t.holders.(!best))
      end

(* Reset every slot currently holding [peer] and re-offer the rest of the
   view, so the freed slots immediately converge to live candidates. *)
let evict_peer t peer =
  let peer_int = Node_id.to_int peer in
  let snapshot =
    Array.of_list
      (List.filter
         (fun p -> not (Node_id.equal p peer))
         (Array.to_list (view t)))
  in
  for i = 0 to Array.length t.holders - 1 do
    if Int.equal t.holders.(i) peer_int then begin
      reset_slot t i;
      t.evicted <- t.evicted + 1;
      Obs.Counter.incr t.c_evictions
    end
  done;
  update_sample t snapshot

let run_eviction t ~limit =
  (* Evicting consumes PRNG draws (slot resets), so the eviction order
     must not depend on [Hashtbl] iteration order — sort by node id to
     keep executions a pure function of the protocol history. *)
  let expired =
    List.sort Int.compare
      (Hashtbl.fold
         (fun peer probed acc ->
           if t.rounds - probed > limit then peer :: acc else acc)
         t.probes [])
  in
  List.iter
    (fun peer ->
      Hashtbl.remove t.probes peer;
      evict_peer t (Node_id.of_int peer))
    expired

let record_probe t peer =
  let key = Node_id.to_int peer in
  if not (Hashtbl.mem t.probes key) then Hashtbl.replace t.probes key t.rounds

let on_round t =
  t.rounds <- t.rounds + 1;
  Obs.Counter.incr t.c_rounds;
  (match t.config.Config.evict_after_rounds with
  | Some limit -> run_eviction t ~limit
  | None -> ());
  (match select_peer t with
  | Some p ->
      (* Record the probe before sending so that a reply — however fast —
         always clears it. *)
      (match t.config.Config.evict_after_rounds with
      | Some _ -> record_probe t p
      | None -> ());
      Obs.Counter.incr t.c_pulls;
      Obs.rtt_start t.rtt ~node:(Node_id.to_int t.id)
        ~peer:(Node_id.to_int p);
      t.send ~dst:p Message.Pull_request
  | None -> ());
  match select_peer t with
  | Some q ->
      let payload =
        if t.config.Config.push_own_id_only then Message.Push_id t.id
        else Message.Push (view t)
      in
      Obs.Counter.incr t.c_pushes;
      t.send ~dst:q payload
  | None -> ()

let on_message t ~from msg =
  (* Any traffic from a peer proves it alive. *)
  if t.config.Config.evict_after_rounds <> None then
    Hashtbl.remove t.probes (Node_id.to_int from);
  match msg with
  | Message.Pull_request -> t.send ~dst:from (Message.Pull_reply (view t))
  | Message.Pull_reply ids ->
      Obs.rtt_finish t.rtt ~peer:(Node_id.to_int from);
      (* Alg. 1 line 13: the sender itself is a candidate too. *)
      update_sample t ids;
      update_sample t [| from |]
  | Message.Push ids ->
      update_sample t ids;
      update_sample t [| from |]
  | Message.Push_id id -> update_sample t [| id |]
  (* Broadcast frames belong to the lib/gossip layer sharing the socket;
     the sampler only takes the liveness signal above. *)
  | Message.Gossip _ | Message.Ihave _ | Message.Iwant _ | Message.Graft
  | Message.Prune ->
      ()

let sample_tick t =
  let v = Array.length t.holders in
  let k = t.config.Config.k in
  (* Snapshot the pre-reset view: Alg. 1 line 19 re-offers "the current
     view", in which the just-reset slots still hold their old peers. *)
  let snapshot = view t in
  let samples = ref [] in
  for _ = 1 to k do
    let i = t.next_reset in
    t.next_reset <- (t.next_reset + 1) mod v;
    (match slot_peer t i with
    | Some p ->
        samples := p :: !samples;
        t.emitted <- t.emitted + 1;
        Obs.Counter.incr t.c_samples
    | None -> ());
    reset_slot t i;
    Obs.Counter.incr t.c_slot_resets
  done;
  prune_seen t;
  update_sample t snapshot;
  List.rev !samples

let samples_emitted t = t.emitted
let rounds_executed t = t.rounds
let evictions t = t.evicted

let sampler ?config ?obs () : Rps.maker =
 fun ~id ~bootstrap ~rng ~send ->
  let t = create ?config ?obs ~id ~bootstrap ~rng ~send () in
  {
    Rps.protocol = "basalt";
    node = id;
    on_message = (fun ~from msg -> on_message t ~from msg);
    on_round = (fun () -> on_round t);
    sample_tick = (fun () -> sample_tick t);
    current_view = (fun () -> view t);
  }
