type t = {
  mutable seed : Basalt_hashing.Rank.seed;
  (* [best] is meaningful only when [filled]; [best_rank] caches
     [rank seed best] so each offer costs one hash. *)
  mutable filled : bool;
  mutable best : Basalt_proto.Node_id.t;
  mutable best_rank : int;
  mutable uses : int;
}

let create backend rng =
  {
    seed = Basalt_hashing.Rank.fresh backend rng;
    filled = false;
    best = Basalt_proto.Node_id.of_int 0;
    best_rank = max_int;
    uses = 0;
  }

let install slot id r =
  (* lint: allow D4 — int ranks; a compare call would slow the hot path *)
  if (not slot.filled) || r < slot.best_rank then begin
    slot.filled <- true;
    slot.best <- id;
    slot.best_rank <- r;
    true
  end
  else false

let offer slot id =
  install slot id
    (Basalt_hashing.Rank.rank slot.seed (Basalt_proto.Node_id.to_int id))

let offer_prepared slot id p =
  install slot id (Basalt_hashing.Rank.rank_prepared slot.seed p)

let peer slot = if slot.filled then Some slot.best else None

let reset backend rng slot =
  slot.seed <- Basalt_hashing.Rank.fresh backend rng;
  slot.filled <- false;
  slot.best_rank <- max_int;
  slot.uses <- 0

let uses slot = slot.uses
let mark_used slot = slot.uses <- slot.uses + 1
let seed slot = slot.seed
let best_rank slot = if slot.filled then Some slot.best_rank else None
