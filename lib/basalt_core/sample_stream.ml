module Node_id = Basalt_proto.Node_id

type t = {
  buf : Node_id.t array;
  capacity : int;
  mutable next : int;  (* next write position *)
  mutable filled : int;  (* number of valid entries, <= capacity *)
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Sample_stream.create: capacity <= 0";
  {
    buf = Array.make capacity (Node_id.of_int 0);
    capacity;
    next = 0;
    filled = 0;
    total = 0;
  }

let push t id =
  t.buf.(t.next) <- id;
  t.next <- (t.next + 1) mod t.capacity;
  t.filled <- Int.min (t.filled + 1) t.capacity;
  t.total <- t.total + 1

let push_list t ids = List.iter (push t) ids
let total t = t.total
let retained t = t.filled

let recent t n =
  let n = Int.min n t.filled in
  (* Iterate oldest-to-newest, prepending, so the result is newest first. *)
  let out = ref [] in
  for i = n - 1 downto 0 do
    let pos = (t.next - 1 - i + (2 * t.capacity)) mod t.capacity in
    out := t.buf.(pos) :: !out
  done;
  !out

let iter f t =
  for i = t.filled - 1 downto 0 do
    let pos = (t.next - 1 - i + (2 * t.capacity)) mod t.capacity in
    f t.buf.(pos)
  done

let proportion p t =
  if t.filled = 0 then 0.0
  else begin
    let hits = ref 0 in
    iter (fun id -> if p id then incr hits) t;
    float_of_int !hits /. float_of_int t.filled
  end

let draw t rng ~k =
  if t.filled = 0 then [||]
  else
    Array.init k (fun _ ->
        let i = Basalt_prng.Rng.int rng t.filled in
        let pos = (t.next - 1 - i + (2 * t.capacity)) mod t.capacity in
        t.buf.(pos))
