(** Basalt algorithm parameters (paper Table 1).

    - [v]: view size (number of slots / ranking functions);
    - [tau]: exchange interval — one pull and one push every [tau];
    - [rho]: sampling rate — the service emits [rho] fresh samples per
      time unit on average;
    - [k]: replacement count — every [k/rho] time units, [k] slots are
      sampled and their seeds reset in round-robin order.

    The stability condition of §3.3.2 (Eq. 16) requires
    [(1 - f)^2 > 2 rho f (1 - f) n / v^2] for an equilibrium to exist;
    {!equilibrium_exists} checks it for a given environment. *)

type select_strategy =
  | Uniform_slot  (** Pick a uniformly random slot (Alg. 1, selectPeer). *)
  | Rotating_slot
      (** Cycle deterministically through slots, balancing outgoing
          exchanges across the view (an extension; see DESIGN.md §4). *)
  | Least_used_slot
      (** Pick the filled slot whose peer has served the fewest exchanges
          since its seed was last reset (per-slot hit counters, as in the
          authors' production implementation) — spreads load and reduces
          the information an adversary gains from being selected often. *)

type t = private {
  v : int;
  tau : float;
  rho : float;
  k : int;
  backend : Basalt_hashing.Rank.backend;
      (** Rank function family (see {!Basalt_hashing.Rank.backend}):
          [Cheap] (default) for trusted-simulation speed, [Keyed_cheap]
          when modelled adversaries must not predict ranks but
          cryptographic strength is unnecessary, [Siphash] — whose seeds
          precompute a resumable midstate, so the gap to the mixers is
          ~3x per evaluation rather than ~50x — for deployment-grade
          unpredictability, [Prefix_diverse] for the §6 institutional
          hardening. *)
  select : select_strategy;
  exclude_self : bool;
      (** Never store the local identifier in the local view (avoids
          self-loops in the overlay; deviation from the paper's abstract
          pseudocode, negligible at the scales simulated). *)
  evict_after_rounds : int option;
      (** Dead-peer eviction (an extension the paper's crash-free model
          does not need, but real deployments do): when a pulled peer has
          not answered within this many rounds, every slot holding it is
          reset so the search finds a live peer.  [None] (default)
          disables eviction. *)
  push_own_id_only : bool;
      (** Ablation of the §4.3 payload choice: when [true], pushes carry
          only the sender's identifier (Brahms's design choice) instead
          of the full view (Basalt's).  Default [false] — the paper's
          Basalt.  Expect slower discovery when enabled. *)
}

val make :
  ?v:int ->
  ?tau:float ->
  ?rho:float ->
  ?k:int ->
  ?backend:Basalt_hashing.Rank.backend ->
  ?select:select_strategy ->
  ?exclude_self:bool ->
  ?evict_after_rounds:int ->
  ?push_own_id_only:bool ->
  unit ->
  t
(** [make ()] is the paper's base configuration: [v = 160], [tau = 1],
    [rho = 1], [k = v/2], cheap rank backend, uniform slot selection.
    @raise Invalid_argument if [v <= 0], [k] not in [\[1, v\]],
    [tau <= 0] or [rho <= 0]. *)

val default : t
(** [default] is [make ()]. *)

val refresh_interval : t -> float
(** [refresh_interval c] is [k / rho], the period of the slot-reset
    task (Alg. 1 line 14). *)

val slot_lifetime : t -> float
(** [slot_lifetime c] is [v / rho], the average time between two resets
    of the same slot (§2.3). *)

val equilibrium_exists : t -> n:int -> f:float -> bool
(** [equilibrium_exists c ~n ~f] checks the discriminant of paper
    Eq. (16): whether the continuous model predicts a stable operating
    point [B1 < 1] for a network of [n] nodes with Byzantine fraction
    [f]. *)

val pp : Format.formatter -> t -> unit
(** Formatter for configurations. *)
