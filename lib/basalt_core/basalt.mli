(** The Basalt Byzantine-tolerant random peer sampler (paper Algorithm 1).

    Each node maintains [v] slots, each defining a random ranking function
    over node identifiers.  The node stubbornly keeps, per slot, the
    best-ranked identifier seen since the slot's seed was drawn, and uses
    the resulting view both as the output of the sampling service and to
    drive the epidemic pull/push exchanges that discover new identifiers —
    the tight feedback loop that distinguishes Basalt from Brahms (§2.3).

    Protocol driver contract (matching {!Basalt_proto.Rps.t}):
    - call {!on_round} every [tau] (sends one PULL and one PUSH);
    - route incoming messages to {!on_message};
    - call {!sample_tick} every [k / rho] (emits [k] samples and resets
      the corresponding seeds in round-robin order). *)

type t
(** One node's Basalt state. *)

val create :
  ?config:Config.t ->
  ?obs:Basalt_obs.Obs.t ->
  id:Basalt_proto.Node_id.t ->
  bootstrap:Basalt_proto.Node_id.t array ->
  rng:Basalt_prng.Rng.t ->
  send:Basalt_proto.Rps.send ->
  unit ->
  t
(** [create ~id ~bootstrap ~rng ~send ()] initialises all [v] slots with
    fresh seeds and offers the bootstrap peers to every slot (Alg. 1
    lines 3–6).

    [obs] (default disabled) records the run-wide counters
    [basalt.rank_evals] (rank evaluations actually performed — after
    batch dedup and seen-cache elision, not candidates × slots;
    DESIGN.md §8), [basalt.rounds], [basalt.pulls_sent],
    [basalt.pushes_sent], [basalt.samples_emitted],
    [basalt.slot_resets] and [basalt.evictions], and meters outgoing
    messages through {!Basalt_codec.Metered.send} ([basalt.msgs_sent],
    [basalt.bytes_sent], [basalt.msg_bytes], [basalt.max_msg_bytes]).
    Instruments are shared by name across every node handed the same
    sink, so values aggregate over the whole run. *)

val config : t -> Config.t
(** [config t] is the node's configuration. *)

val id : t -> Basalt_proto.Node_id.t
(** [id t] is the node's own identifier. *)

val update_sample : t -> Basalt_proto.Node_id.t array -> unit
(** [update_sample t ids] offers every identifier of [ids] to every slot
    (Alg. 1 lines 20–23).  The local identifier is skipped when the
    configuration sets [exclude_self].

    The batch is processed in one slot-major pass over
    struct-of-arrays slot state: candidates are deduplicated and
    pre-digested once, and an identifier already offered to every
    current seed is skipped outright — offering a candidate to an
    unchanged slot can never install it, because the slot's best rank
    only decreases between seed resets.  The resulting views are
    bit-identical to the naive per-(slot, candidate) evaluation (the
    differential oracle in [test_basalt.ml] pins this); only the
    number of rank evaluations — and hence [basalt.rank_evals] —
    changes. *)

val select_peer : t -> Basalt_proto.Node_id.t option
(** [select_peer t] picks an exchange partner from the view (Alg. 1
    lines 24–26); [None] while the view is entirely empty. *)

val on_round : t -> unit
(** [on_round t] performs one exchange round: sends [PULL] to one selected
    peer and [PUSH view] to another (Alg. 1 lines 7–9). *)

val on_message : t -> from:Basalt_proto.Node_id.t -> Basalt_proto.Message.t -> unit
(** [on_message t ~from msg] handles [PULL] (replies with the view),
    view-carrying pushes and replies (feeds them, plus the sender, to
    {!update_sample}), and single-identifier pushes. *)

val sample_tick : t -> Basalt_proto.Node_id.t list
(** [sample_tick t] executes Alg. 1 lines 14–19: for [k] slots in
    round-robin order, returns the slot's current peer as a fresh sample
    and resets the slot's seed; finally re-offers the (pre-reset) view to
    all slots.  Empty slots yield no sample. *)

val view : t -> Basalt_proto.Node_id.t array
(** [view t] is the current view: the peers of all non-empty slots, in
    slot order (duplicates possible — distinct slots may have converged to
    the same identifier). *)

val view_slots : t -> Basalt_proto.Node_id.t option array
(** [view_slots t] is the per-slot contents including empty slots. *)

val slot_ranks : t -> int option array
(** [slot_ranks t] is each slot's current best rank, [None] for empty
    slots — the holder of slot [i] always ranks exactly
    [slot_ranks t.(i)] under the slot's seed.  Exposed for the
    differential rank-oracle harness in [test_basalt.ml], which checks
    the batched {!update_sample} against a naive per-(slot, candidate)
    reference model. *)

val samples_emitted : t -> int
(** [samples_emitted t] counts samples returned by {!sample_tick} so
    far. *)

val rounds_executed : t -> int
(** [rounds_executed t] counts {!on_round} invocations. *)

val evictions : t -> int
(** [evictions t] counts slots reset by dead-peer eviction (always 0 when
    [evict_after_rounds] is [None]). *)

val record_probe : t -> Basalt_proto.Node_id.t -> unit
(** [record_probe t peer] marks the current round as the start of an
    unanswered pull to [peer], unless an older probe is already pending
    ({!on_round} does this before each [PULL]; transports with their own
    retry machinery can record extra probes).  Any message from [peer]
    clears the mark. *)

val run_eviction : t -> limit:int -> unit
(** [run_eviction t ~limit] evicts every peer whose oldest unanswered
    probe is more than [limit] rounds old: all slots holding it are reset
    and the rest of the view is re-offered to the freed slots.  Expired
    peers are processed in ascending identifier order so that the PRNG
    draws consumed by slot resets — and therefore the whole execution —
    do not depend on hash-table iteration order.  Called by {!on_round}
    when [evict_after_rounds] is set. *)

val sampler :
  ?config:Config.t -> ?obs:Basalt_obs.Obs.t -> unit -> Basalt_proto.Rps.maker
(** [sampler ?config ()] packages the protocol for the simulation
    runner; [obs] is threaded to {!create}. *)
