(** Deterministic domain pool for Monte-Carlo fan-out.

    Every paper figure averages independent seeded runs; this pool fans
    those runs out over OCaml 5 domains without giving up the repo's
    bitwise determinism.  The design is deliberately minimal:

    - {b fixed task queue, no work stealing} — a [map] materialises its
      input as an indexed array and domains claim the next index from a
      single atomic counter.  There are no per-worker deques to steal
      from, so scheduling can never influence {e which} task runs, only
      {e when}; combined with per-task isolation this makes results
      independent of timing.
    - {b per-task isolation} — tasks share no mutable state through the
      pool: each task reads its own input slot and writes its own result
      slot.  Randomness must come with the task (a scenario seed, or a
      pre-split {!Basalt_prng.Rng} stream via {!map_rng}), never from a
      generator shared across tasks.
    - {b ordered collection} — results come back in input order, so
      [map ~pool f xs] is observably identical to [List.map f xs] for
      pure [f], including on failure: if any task raises, the exception
      of the {e leftmost} failing element is re-raised (backtraces are
      not preserved across domains).

    The submitting domain participates in executing tasks, so a pool is
    never a bottleneck smaller than itself and nested [map]s cannot
    deadlock: a [map] issued from inside a task falls back to the
    sequential path.  Concurrent top-level [map]s on one pool are
    serialised.

    See DESIGN.md §7 for the full determinism argument. *)

type t
(** A pool of worker domains (plus the submitting domain). *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool with a total parallelism degree
    of [domains]: [domains - 1] worker domains are spawned, and the
    domain calling {!map} contributes as the [domains]-th worker.
    Defaults to {!recommended_domains}.  [domains = 1] spawns nothing
    and makes {!map} sequential.
    @raise Invalid_argument if [domains < 1]. *)

val domain_count : t -> int
(** [domain_count t] is the pool's total parallelism degree (workers
    plus the submitting domain). *)

val recommended_domains : unit -> int
(** [recommended_domains ()] is the runtime's recommended number of
    domains for this machine ([Domain.recommended_domain_count]). *)

val shutdown : t -> unit
(** [shutdown t] asks the workers to exit and joins them.  In-flight
    tasks complete first.  Idempotent; subsequent {!map}s on [t] raise
    [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?pool f xs] is [List.map f xs], evaluated on the pool's domains
    when [pool] is given.  [f] must be pure up to per-task state (it
    runs concurrently with other tasks and possibly on another domain).
    Without [pool] — or from inside a pool task, or on a 1-domain pool —
    it is exactly [List.map f xs]. *)

val mapi : ?pool:t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [mapi ?pool f xs] is [List.mapi f xs] with the same contract as
    {!map}. *)

val map_rng :
  ?pool:t ->
  rng:Basalt_prng.Rng.t ->
  (Basalt_prng.Rng.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** [map_rng ?pool ~rng f xs] gives each task its own independent
    generator: one child stream per element is split off [rng]
    {e sequentially on the calling domain before any fan-out}, so the
    stream a task receives depends only on [rng]'s state and the
    element's position — never on scheduling.  The parallel and
    sequential paths are bit-for-bit identical. *)
