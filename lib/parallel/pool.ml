(* Deterministic domain pool.  See pool.mli and DESIGN.md §7 for the
   design; the invariants that matter are repeated next to the code that
   maintains them. *)

module Rng = Basalt_prng.Rng

(* One [map] call.  [run i] evaluates task [i] and stores its result in a
   slot owned by that task alone; the only cross-task state is the claim
   counter [next] and the completion count (guarded by the pool lock). *)
type batch = {
  total : int;
  next : int Atomic.t;
  mutable completed : int; (* guarded by [t.lock] *)
  run : int -> unit; (* never raises: exceptions are captured per slot *)
}

type t = {
  lock : Mutex.t;
  wake : Condition.t; (* workers: a batch was posted, or shutdown *)
  finished : Condition.t; (* submitter: the current batch completed *)
  mutable current : batch option; (* guarded by [lock] *)
  mutable stopping : bool; (* guarded by [lock] *)
  mutable workers : unit Domain.t array;
  submit : Mutex.t; (* serialises concurrent top-level [map]s *)
}

(* True on pool worker domains, and on the submitting domain while it is
   executing batch tasks.  A nested [map] from inside a task must fall
   back to the sequential path: it would otherwise block on [submit]
   while the domains able to release it are busy running its parent. *)
let inside_task = Domain.DLS.new_key (fun () -> false)

let mark_inside f =
  let previous = Domain.DLS.get inside_task in
  Domain.DLS.set inside_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task previous) f

(* Claim-and-run until the batch's counter is exhausted.  Called by both
   workers and the submitting domain, so a [map] makes progress even if
   every worker is still waking up. *)
let drain pool batch =
  let rec claim () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.total then begin
      batch.run i;
      Mutex.lock pool.lock;
      batch.completed <- batch.completed + 1;
      if batch.completed = batch.total then Condition.broadcast pool.finished;
      Mutex.unlock pool.lock;
      claim ()
    end
  in
  claim ()

(* A worker remembers the last batch it drained: [current] stays set
   until the submitter collects the results, so "new work" means a batch
   that is physically distinct from the previous one.  Batch records are
   never resubmitted. *)
let worker pool () =
  Domain.DLS.set inside_task true;
  let rec loop last =
    Mutex.lock pool.lock;
    let rec await () =
      if pool.stopping then None
      else
        match pool.current with
        | Some b when not (List.memq b last) -> Some b
        | Some _ | None ->
            Condition.wait pool.wake pool.lock;
            await ()
    in
    let next = await () in
    Mutex.unlock pool.lock;
    match next with
    | None -> ()
    | Some b ->
        drain pool b;
        loop [ b ]
  in
  loop []

let recommended_domains () = Domain.recommended_domain_count ()

let create ?domains () =
  let requested =
    match domains with Some d -> d | None -> recommended_domains ()
  in
  if requested < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      wake = Condition.create ();
      finished = Condition.create ();
      current = None;
      stopping = false;
      workers = [||];
      submit = Mutex.create ();
    }
  in
  pool.workers <- Array.init (requested - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let domain_count pool = Array.length pool.workers + 1

let shutdown pool =
  Mutex.lock pool.lock;
  let already = pool.stopping in
  pool.stopping <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock;
  (* Only the call that flipped [stopping] joins, so shutdown is
     idempotent and concurrent shutdowns never double-join a domain. *)
  if not already then Array.iter Domain.join pool.workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* The parallel path proper.  Determinism: task [i] computes
   [f input.(i)] with no input other than that element (callers route
   per-task randomness through [map_rng]), and slot [i] of [results] is
   written only by task [i], so the contents of [results] do not depend
   on which domain ran what or in which order.  Publication is safe: a
   worker's slot write happens-before its [completed] increment under
   the lock, which happens-before the submitter's read of
   [completed = total] under the same lock. *)
let parallel_map pool f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  let results = Array.make n None in
  let batch =
    {
      total = n;
      next = Atomic.make 0;
      completed = 0;
      run =
        (fun i ->
          let r = match f input.(i) with v -> Ok v | exception e -> Error e in
          results.(i) <- Some r);
    }
  in
  Mutex.lock pool.submit;
  Mutex.lock pool.lock;
  if pool.stopping then begin
    Mutex.unlock pool.lock;
    Mutex.unlock pool.submit;
    invalid_arg "Pool.map: pool is shut down"
  end;
  pool.current <- Some batch;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock;
  mark_inside (fun () -> drain pool batch);
  Mutex.lock pool.lock;
  while batch.completed < batch.total do
    Condition.wait pool.finished pool.lock
  done;
  pool.current <- None;
  Mutex.unlock pool.lock;
  Mutex.unlock pool.submit;
  (* Ordered collection; re-raise the leftmost failure, as [List.map]
     would have surfaced it first. *)
  Array.iter
    (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
    results;
  Array.to_list
    (Array.map (function Some (Ok v) -> v | Some (Error _) | None -> assert false) results)

let stopped p =
  Mutex.lock p.lock;
  let s = p.stopping in
  Mutex.unlock p.lock;
  s

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some p ->
      if stopped p then invalid_arg "Pool.map: pool is shut down"
      else if
        Domain.DLS.get inside_task
        || Array.length p.workers = 0
        || match xs with [] | [ _ ] -> true | _ -> false
      then List.map f xs
      else parallel_map p f xs

let mapi ?pool f xs =
  map ?pool (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

let map_rng ?pool ~rng f xs =
  (* Split one child stream per element sequentially, before any
     fan-out: the stream handed to task [i] depends only on [rng] and
     [i], never on scheduling. *)
  let tasks = List.map (fun x -> (Rng.split rng, x)) xs in
  map ?pool (fun (r, x) -> f r x) tasks
