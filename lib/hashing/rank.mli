(** Seeded rank functions (min-wise independent permutations).

    Basalt's stubborn chaotic search defines a node's target [i]-th
    neighbor as the peer [p] minimising [rank_seed[i](p)], where
    [rank_seed(p) = h(<seed, p>)] for a uniform hash function [h]
    (paper §2.3).  Drawing a fresh random [seed] re-randomises the
    permutation of node identifiers, realising a uniform sample of the
    identifiers subsequently offered to the slot.

    Four backends are provided:
    - {!Cheap}: a native-integer mixer — the simulator's default, fast
      enough to evaluate ~10⁹ ranks per experiment;
    - {!Keyed_cheap}: the same mixer chained over a secret native-int
      key ({!Mix.keyed63}) — a documented fast path for
      adversarial-model simulations at scale, where per-key rank
      unpredictability matters but cryptographic strength does not;
    - {!Siphash}: a keyed PRF — what a real deployment would use so that
      an adversary cannot precompute low-ranking identifiers.  Seeds
      precompute a {!Siphash.midstate} at draw time, so each evaluation
      only finishes the identifier block;
    - {!Prefix_diverse}: the §6 "specially crafted rank function":
      identifiers are ranked first by a hash of their {e address prefix}
      and only then by a hash of the identifier itself, so a slot's
      target is a uniformly random prefix (then a uniform member of it).
      An attacker concentrated in a few prefixes — the institutional /
      Sybil setting of HAPS — is thereby capped near its {e prefix}
      share instead of its identifier share.  The trade-off: sampling is
      uniform over prefixes, not over nodes.

    Every cached/prepared evaluation path returns bit-identical rank
    values to the plain formula — the differential suites in
    [test_hashing.ml] and [test_basalt.ml] pin the equality.  The test
    suite also checks that the cheap and SipHash backends produce
    statistically indistinguishable sampling behavior; the bench harness
    measures the speed gap (the hash-function ablation of DESIGN.md §4). *)

type backend =
  | Cheap
  | Keyed_cheap of int
      (** The secret key (any native int, e.g. [Rng.bits]); ranks are
          {!Mix.keyed63}[ ~key seed id].  Not cryptographic — a
          simulation-scale stand-in for {!Siphash}. *)
  | Siphash of Siphash.key
  | Prefix_diverse of { prefix_of : int -> int }
      (** [prefix_of id] maps an identifier to its address prefix (e.g.
          an IP /24); prefixes must be non-negative. *)

type seed
(** One random ranking function, i.e. one slot's seed, pre-digested for
    its backend: SipHash seeds carry the resumable key+seed midstate
    absorbed at draw time. *)

val fresh : backend -> Basalt_prng.Rng.t -> seed
(** [fresh backend rng] draws a new uniformly random seed (one
    [Rng.bits] draw, identically for every backend — swapping backends
    never perturbs the PRNG stream shape). *)

val of_int : backend -> int -> seed
(** [of_int backend v] builds a deterministic seed (for tests). *)

val rank : seed -> int -> int
(** [rank seed id] is a non-negative integer rank of node [id] under
    [seed]; lower ranks are better matches.  Deterministic in
    [(seed, id)]. *)

type prepared
(** A candidate identifier pre-digested for repeated ranking.  Offering
    one identifier to all [v] slots of a view evaluates [v] ranks of the
    same identifier under different seeds; preparing the identifier once
    hoists the identifier-side mixing out of that loop. *)

val prepare : backend -> int -> prepared
(** [prepare backend id] pre-digests [id] for the given backend. *)

val rank_prepared : seed -> prepared -> int
(** [rank_prepared seed p] equals [rank seed id] for the [id] that [p] was
    prepared from (under the same backend). *)

val digest : int -> int
(** [digest id] is the identifier-side half of the cheap mixers
    ([Mix.mix63 id]), exposed unboxed for batch loops that keep
    candidate digests in an [int array] instead of a {!prepared} per
    candidate (the struct-of-arrays pass in [Basalt.update_sample]). *)

val rank_digested : seed -> id:int -> digest:int -> int
(** [rank_digested seed ~id ~digest] equals [rank seed id] provided
    [digest = digest id]; the allocation-free hot-path primitive behind
    {!rank} and {!rank_prepared}. *)

val seed_value : seed -> int
(** [seed_value s] exposes the raw seed integer (for diagnostics). *)

val pp : Format.formatter -> seed -> unit
(** Prints the seed value in hex. *)
