(** SipHash-c-d keyed hash function (Aumasson & Bernstein, 2012).

    Implemented from scratch on [int64].  SipHash is a pseudo-random
    function: under a secret key, outputs on attacker-chosen inputs are
    indistinguishable from random, which is exactly the property the
    Basalt rank function needs (a Byzantine node must not be able to craft
    identifiers that rank low under a correct node's fresh seeds).

    The default instance is SipHash-2-4; a faster SipHash-1-3 instance is
    also exposed.  Both match the reference implementation (the 2-4 test
    vectors from the paper's appendix are checked in the unit tests). *)

type key = { k0 : int64; k1 : int64 }
(** A 128-bit secret key. *)

val key_of_rng : Basalt_prng.Rng.t -> key
(** [key_of_rng rng] draws a fresh random key. *)

val key_of_ints : int64 -> int64 -> key
(** [key_of_ints k0 k1] builds a key from two explicit words. *)

val hash_bytes : ?c:int -> ?d:int -> key -> bytes -> int64
(** [hash_bytes ~c ~d key msg] is SipHash-c-d of [msg] under [key]
    (default [c = 2], [d = 4]). *)

val hash_string : ?c:int -> ?d:int -> key -> string -> int64
(** [hash_string] is {!hash_bytes} on the bytes of a string. *)

val hash_int64 : ?c:int -> ?d:int -> key -> int64 -> int64
(** [hash_int64 ~c ~d key x] hashes the 8-byte little-endian encoding of
    [x]; a fast path that allocates nothing. *)

val hash_int : ?c:int -> ?d:int -> key -> int -> int64
(** [hash_int key x] is [hash_int64 key (Int64.of_int x)]. *)

val hash_int64_pair : ?c:int -> ?d:int -> key -> int64 -> int64 -> int64
(** [hash_int64_pair key a b] hashes the 16-byte little-endian encoding of
    [(a, b)]; the allocation-free primitive behind seeded rank functions. *)

type midstate
(** A precomputed hash midstate: the internal SipHash registers after the
    key initialisation and the compression of one fixed 8-byte prefix
    block.  In Basalt the prefix is a slot's rank seed, absorbed once
    when the seed is drawn; ranking an identifier then only finishes the
    identifier block ({!finish_int64_pair}), skipping the key setup and
    the prefix compression on every evaluation — the dominant term of
    the rank hot path at [v × candidates] evaluations per exchange. *)

val prepare_int64 : ?c:int -> key -> int64 -> midstate
(** [prepare_int64 ~c key a] absorbs the first 8-byte block [a] under
    [key] (default [c = 2]) and captures the resumable midstate. *)

val finish_int64_pair : ?d:int -> midstate -> int64 -> int64
(** [finish_int64_pair ~d ms b] resumes [ms] with the second block [b]
    and returns the finished hash (default [d = 4]):
    [finish_int64_pair (prepare_int64 key a) b = hash_int64_pair key a b]
    for every [key], [a], [b] (with matching [c]/[d]).  The default 2-4
    instance runs fully unrolled with unboxed intermediates — roughly an
    order of magnitude faster than {!hash_int64_pair}. *)
