type backend =
  | Cheap
  | Keyed_cheap of int
  | Siphash of Siphash.key
  | Prefix_diverse of { prefix_of : int -> int }

(* A seed is pre-digested per backend at draw time: the SipHash variant
   absorbs the key and the seed word into a resumable midstate once, so
   every rank evaluation only finishes the identifier block.  Rank
   *values* are exactly those of the uncached formulas — the caching
   moves work, never changes results (the test suite pins both the
   reference vectors and the cached = uncached equality). *)
type seed =
  | S_cheap of int
  | S_keyed of { key : int; value : int }
  | S_sip of { value : int; ms : Siphash.midstate }
  | S_prefix of { prefix_of : int -> int; value : int }

let make backend value =
  match backend with
  | Cheap -> S_cheap value
  | Keyed_cheap key -> S_keyed { key; value }
  | Siphash key ->
      S_sip { value; ms = Siphash.prepare_int64 key (Int64.of_int value) }
  | Prefix_diverse { prefix_of } -> S_prefix { prefix_of; value }

let fresh backend rng = make backend (Basalt_prng.Rng.bits rng)
let of_int backend value = make backend value

let seed_value = function
  | S_cheap value
  | S_keyed { value; _ }
  | S_sip { value; _ }
  | S_prefix { value; _ } ->
      value

(* Lexicographic (prefix-rank, id-rank) pair packed into one non-negative
   native integer: 30 bits of prefix rank above 32 bits of id rank. *)
let composite ~prefix_rank ~id_rank =
  ((prefix_rank land 0x3FFFFFFF) lsl 32) lor (id_rank land 0xFFFFFFFF)

(* [digest id] is the identifier-side half of the cheap mixers, hoisted
   out of the per-slot loop; backends that hash the identifier whole
   (SipHash) ignore it.  [rank_digested] is the hot-path primitive: the
   caller prepares [digest id] once per candidate and the per-(seed,
   candidate) work is one mixer tail or one resumed SipHash finish. *)
let digest id = Mix.mix63 id

let rank_digested seed ~id ~digest =
  match seed with
  | S_cheap value -> Mix.mix63 (value lxor digest)
  | S_keyed { key; value } -> Mix.mix63 (key lxor Mix.mix63 (value lxor digest))
  | S_sip { ms; _ } ->
      Int64.to_int (Siphash.finish_int64_pair ms (Int64.of_int id)) land max_int
  | S_prefix { prefix_of; value } ->
      composite
        ~prefix_rank:(Mix.combine63 value (prefix_of id))
        ~id_rank:(Mix.mix63 (value lxor digest))

let rank seed id = rank_digested seed ~id ~digest:(Mix.mix63 id)

(* [mixed] caches the identifier-side half of the cheap mixer;
   [raw] keeps the identifier for backends that hash it whole. *)
type prepared = { raw : int; mixed : int }

let prepare _backend id = { raw = id; mixed = Mix.mix63 id }
let rank_prepared seed p = rank_digested seed ~id:p.raw ~digest:p.mixed

let pp ppf s = Format.fprintf ppf "seed:%#x" (seed_value s)
