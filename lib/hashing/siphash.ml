type key = { k0 : int64; k1 : int64 }

let key_of_ints k0 k1 = { k0; k1 }

let key_of_rng rng =
  { k0 = Basalt_prng.Rng.int64 rng; k1 = Basalt_prng.Rng.int64 rng }

let rotl x b = Int64.(logor (shift_left x b) (shift_right_logical x (64 - b)))

(* The SipRound permutation applied to the four state words. *)
type state = {
  mutable v0 : int64;
  mutable v1 : int64;
  mutable v2 : int64;
  mutable v3 : int64;
}

let sipround s =
  s.v0 <- Int64.add s.v0 s.v1;
  s.v1 <- rotl s.v1 13;
  s.v1 <- Int64.logxor s.v1 s.v0;
  s.v0 <- rotl s.v0 32;
  s.v2 <- Int64.add s.v2 s.v3;
  s.v3 <- rotl s.v3 16;
  s.v3 <- Int64.logxor s.v3 s.v2;
  s.v0 <- Int64.add s.v0 s.v3;
  s.v3 <- rotl s.v3 21;
  s.v3 <- Int64.logxor s.v3 s.v0;
  s.v2 <- Int64.add s.v2 s.v1;
  s.v1 <- rotl s.v1 17;
  s.v1 <- Int64.logxor s.v1 s.v2;
  s.v2 <- rotl s.v2 32

let init key =
  {
    v0 = Int64.logxor key.k0 0x736f6d6570736575L;
    v1 = Int64.logxor key.k1 0x646f72616e646f6dL;
    v2 = Int64.logxor key.k0 0x6c7967656e657261L;
    v3 = Int64.logxor key.k1 0x7465646279746573L;
  }

let compress s ~c m =
  s.v3 <- Int64.logxor s.v3 m;
  for _ = 1 to c do
    sipround s
  done;
  s.v0 <- Int64.logxor s.v0 m

let finalize s ~d =
  s.v2 <- Int64.logxor s.v2 0xFFL;
  for _ = 1 to d do
    sipround s
  done;
  Int64.(logxor (logxor s.v0 s.v1) (logxor s.v2 s.v3))

let hash_bytes ?(c = 2) ?(d = 4) key msg =
  let len = Bytes.length msg in
  let s = init key in
  let full_blocks = len / 8 in
  for i = 0 to full_blocks - 1 do
    compress s ~c (Bytes.get_int64_le msg (i * 8))
  done;
  (* Last block: remaining bytes, padded, with the length in the top byte. *)
  let last = ref (Int64.shift_left (Int64.of_int (len land 0xFF)) 56) in
  for i = full_blocks * 8 to len - 1 do
    last :=
      Int64.logor !last
        (Int64.shift_left
           (Int64.of_int (Char.code (Bytes.get msg i)))
           (8 * (i mod 8)))
  done;
  compress s ~c !last;
  finalize s ~d

let hash_string ?c ?d key msg = hash_bytes ?c ?d key (Bytes.of_string msg)

let hash_int64 ?(c = 2) ?(d = 4) key x =
  let s = init key in
  compress s ~c x;
  (* A single full 8-byte block, then the empty last block carrying the
     length byte (8 mod 256) in its top byte. *)
  compress s ~c (Int64.shift_left 8L 56);
  finalize s ~d

let hash_int ?c ?d key x = hash_int64 ?c ?d key (Int64.of_int x)

let hash_int64_pair ?(c = 2) ?(d = 4) key a b =
  let s = init key in
  compress s ~c a;
  compress s ~c b;
  compress s ~c (Int64.shift_left 16L 56);
  finalize s ~d

(* --- Midstate: resumable hashing for seeded rank functions ----------- *)

(* The four v-registers after the key initialisation and the compression
   of the first 8-byte block.  Absorbing that block — in Basalt, a
   slot's rank seed — costs [c] SipRounds plus the four key XORs; doing
   it once per seed instead of once per (seed, identifier) pair removes
   that work from the rank hot path entirely, and the immutable record
   lets the resumed computation run in straight-line let-bound [int64]
   code the compiler keeps unboxed (the mutable {!state} record boxes a
   fresh [int64] on every register store, which is most of the cost of
   {!hash_int64_pair}). *)
type midstate = { m0 : int64; m1 : int64; m2 : int64; m3 : int64; mc : int }

let prepare_int64 ?(c = 2) key a =
  let s = init key in
  compress s ~c a;
  { m0 = s.v0; m1 = s.v1; m2 = s.v2; m3 = s.v3; mc = c }

(* Generic (any c/d) resumption, used when the instance is not the 2-4
   default. *)
let finish_generic ~d ms b =
  let c = ms.mc in
  let s = { v0 = ms.m0; v1 = ms.m1; v2 = ms.m2; v3 = ms.m3 } in
  compress s ~c b;
  compress s ~c (Int64.shift_left 16L 56);
  finalize s ~d

(* Fully unrolled SipHash-2-4 tail: compress the second block, compress
   the 16-byte length block, finalize.  Eight SipRounds in straight-line
   immutable bindings — every intermediate stays an unboxed int64. *)
let finish24 ms b =
  let ( +% ) = Int64.add and ( ^% ) = Int64.logxor in
  let v0 = ms.m0 and v1 = ms.m1 and v2 = ms.m2 and v3 = ms.m3 in
  (* compress b: v3 ^= b; 2 rounds; v0 ^= b *)
  let v3 = v3 ^% b in
  let v0 = v0 +% v1 in let v1 = rotl v1 13 in let v1 = v1 ^% v0 in
  let v0 = rotl v0 32 in let v2 = v2 +% v3 in let v3 = rotl v3 16 in
  let v3 = v3 ^% v2 in let v0 = v0 +% v3 in let v3 = rotl v3 21 in
  let v3 = v3 ^% v0 in let v2 = v2 +% v1 in let v1 = rotl v1 17 in
  let v1 = v1 ^% v2 in let v2 = rotl v2 32 in
  let v0 = v0 +% v1 in let v1 = rotl v1 13 in let v1 = v1 ^% v0 in
  let v0 = rotl v0 32 in let v2 = v2 +% v3 in let v3 = rotl v3 16 in
  let v3 = v3 ^% v2 in let v0 = v0 +% v3 in let v3 = rotl v3 21 in
  let v3 = v3 ^% v0 in let v2 = v2 +% v1 in let v1 = rotl v1 17 in
  let v1 = v1 ^% v2 in let v2 = rotl v2 32 in
  let v0 = v0 ^% b in
  (* compress the length block (16 bytes total): m = 16 << 56 *)
  let m = Int64.shift_left 16L 56 in
  let v3 = v3 ^% m in
  let v0 = v0 +% v1 in let v1 = rotl v1 13 in let v1 = v1 ^% v0 in
  let v0 = rotl v0 32 in let v2 = v2 +% v3 in let v3 = rotl v3 16 in
  let v3 = v3 ^% v2 in let v0 = v0 +% v3 in let v3 = rotl v3 21 in
  let v3 = v3 ^% v0 in let v2 = v2 +% v1 in let v1 = rotl v1 17 in
  let v1 = v1 ^% v2 in let v2 = rotl v2 32 in
  let v0 = v0 +% v1 in let v1 = rotl v1 13 in let v1 = v1 ^% v0 in
  let v0 = rotl v0 32 in let v2 = v2 +% v3 in let v3 = rotl v3 16 in
  let v3 = v3 ^% v2 in let v0 = v0 +% v3 in let v3 = rotl v3 21 in
  let v3 = v3 ^% v0 in let v2 = v2 +% v1 in let v1 = rotl v1 17 in
  let v1 = v1 ^% v2 in let v2 = rotl v2 32 in
  let v0 = v0 ^% m in
  (* finalize: v2 ^= 0xff; 4 rounds; xor-fold *)
  let v2 = v2 ^% 0xFFL in
  let v0 = v0 +% v1 in let v1 = rotl v1 13 in let v1 = v1 ^% v0 in
  let v0 = rotl v0 32 in let v2 = v2 +% v3 in let v3 = rotl v3 16 in
  let v3 = v3 ^% v2 in let v0 = v0 +% v3 in let v3 = rotl v3 21 in
  let v3 = v3 ^% v0 in let v2 = v2 +% v1 in let v1 = rotl v1 17 in
  let v1 = v1 ^% v2 in let v2 = rotl v2 32 in
  let v0 = v0 +% v1 in let v1 = rotl v1 13 in let v1 = v1 ^% v0 in
  let v0 = rotl v0 32 in let v2 = v2 +% v3 in let v3 = rotl v3 16 in
  let v3 = v3 ^% v2 in let v0 = v0 +% v3 in let v3 = rotl v3 21 in
  let v3 = v3 ^% v0 in let v2 = v2 +% v1 in let v1 = rotl v1 17 in
  let v1 = v1 ^% v2 in let v2 = rotl v2 32 in
  let v0 = v0 +% v1 in let v1 = rotl v1 13 in let v1 = v1 ^% v0 in
  let v0 = rotl v0 32 in let v2 = v2 +% v3 in let v3 = rotl v3 16 in
  let v3 = v3 ^% v2 in let v0 = v0 +% v3 in let v3 = rotl v3 21 in
  let v3 = v3 ^% v0 in let v2 = v2 +% v1 in let v1 = rotl v1 17 in
  let v1 = v1 ^% v2 in let v2 = rotl v2 32 in
  let v0 = v0 +% v1 in let v1 = rotl v1 13 in let v1 = v1 ^% v0 in
  let v0 = rotl v0 32 in let v2 = v2 +% v3 in let v3 = rotl v3 16 in
  let v3 = v3 ^% v2 in let v0 = v0 +% v3 in let v3 = rotl v3 21 in
  let v3 = v3 ^% v0 in let v2 = v2 +% v1 in let v1 = rotl v1 17 in
  let v1 = v1 ^% v2 in let v2 = rotl v2 32 in
  v0 ^% v1 ^% v2 ^% v3

let finish_int64_pair ?d ms b =
  match (ms.mc, d) with
  | 2, (None | Some 4) -> finish24 ms b
  | _, d -> finish_generic ~d:(Option.value d ~default:4) ms b
