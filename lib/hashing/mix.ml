let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let fmix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  Int64.(logxor z (shift_right_logical z 33))

(* Native-int variant of the SplitMix64 finalizer.  Multiplication wraps
   modulo 2^63 on 64-bit OCaml, which degrades the top bits slightly; the
   final [land max_int] keeps the result non-negative and the statistical
   tests in the test suite check the distribution is still uniform enough
   for ranking. *)
let mix63 x =
  let x = (x lxor (x lsr 30)) * 0x5851F42D4C957F2D in
  let x = (x lxor (x lsr 27)) * 0x14057B7EF767814F in
  (x lxor (x lsr 31)) land max_int

let combine63 seed x = mix63 (seed lxor mix63 x)

(* The keyed variant chains one extra finalizer round over the secret
   key, so the seed→rank map differs per key: an adversary who cannot
   read the key cannot precompute low-ranking identifiers against it,
   yet the cost stays within one mix63 of the unkeyed path. *)
let keyed63 ~key seed x = mix63 (key lxor mix63 (seed lxor mix63 x))

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h
