(** Stateless 64-bit and 63-bit integer mixers.

    These are bijective finalizers (SplitMix64 / MurmurHash3 style) used as
    cheap rank functions on the simulator's hot path.  They are {e not}
    cryptographic: a real deployment would use {!Siphash} with a per-node
    secret key (the rank-backend ablation in the bench harness compares the
    two). *)

val mix64 : int64 -> int64
(** [mix64 z] is the SplitMix64 finalizer (Stafford's Mix13 variant). *)

val fmix64 : int64 -> int64
(** [fmix64 z] is the MurmurHash3 64-bit finalizer. *)

val mix63 : int -> int
(** [mix63 x] mixes a native OCaml integer and returns a non-negative
    native integer.  This is the fastest rank primitive: no boxing. *)

val combine63 : int -> int -> int
(** [combine63 seed x] is a non-negative native-integer hash of the pair
    [(seed, x)], suitable for [rank_seed(p) = h(<seed, p>)]. *)

val keyed63 : key:int -> int -> int -> int
(** [keyed63 ~key seed x] is {!combine63} strengthened with a secret
    [key]: a non-negative native-integer hash of [(key, seed, x)] costing
    one extra {!mix63} round.  The statistical backbone of the rank
    layer's [Keyed_cheap] backend — keyed against rank precomputation but
    {e not} cryptographic; deployments facing adaptive adversaries keep
    SipHash. *)

val fnv1a64 : string -> int64
(** [fnv1a64 s] is the FNV-1a 64-bit hash of [s] (used for deriving stable
    seeds from textual labels, e.g. scenario names). *)
