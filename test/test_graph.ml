(* Tests for basalt.graph: snapshots, metrics, isolation, components. *)

open Basalt_graph
module Node_id = Basalt_proto.Node_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let id = Node_id.of_int
let rng () = Basalt_prng.Rng.create ~seed:21
let no_malicious _ = false

(* --- Digraph --- *)

let digraph_dedup_selfloop () =
  let g = Digraph.of_adjacency [| [| 1; 1; 0; 2 |]; [| 0 |]; [||] |] in
  Alcotest.(check (list int))
    "self-loop and dup removed" [ 1; 2 ]
    (Array.to_list (Digraph.out_neighbors g 0));
  check_int "n" 3 (Digraph.n g);
  check_int "edges" 3 (Digraph.edge_count g)

let digraph_out_of_range () =
  Alcotest.check_raises "bad target"
    (Invalid_argument "Digraph: vertex out of range") (fun () ->
      ignore (Digraph.of_adjacency [| [| 5 |] |]))

let digraph_in_degrees () =
  let g = Digraph.of_adjacency [| [| 1; 2 |]; [| 2 |]; [||] |] in
  Alcotest.(check (array int)) "in-degrees" [| 0; 1; 2 |] (Digraph.in_degrees g)

let digraph_transpose () =
  let g = Digraph.of_adjacency [| [| 1 |]; [| 2 |]; [||] |] in
  let r = Digraph.transpose g in
  check_bool "reversed edge" true (Digraph.has_edge r 1 0);
  check_bool "reversed edge 2" true (Digraph.has_edge r 2 1);
  check_int "edge count preserved" (Digraph.edge_count g) (Digraph.edge_count r)

let digraph_has_edge () =
  let g = Digraph.of_adjacency [| [| 1 |]; [||] |] in
  check_bool "present" true (Digraph.has_edge g 0 1);
  check_bool "absent" false (Digraph.has_edge g 1 0)

let digraph_undirected_neighbors () =
  let g = Digraph.of_adjacency [| [| 1 |]; [| 2 |]; [| 0 |] |] in
  let u = Digraph.undirected_neighbors g 0 in
  Alcotest.(check (list int)) "union of both directions" [ 1; 2 ]
    (List.sort Int.compare (Array.to_list u))

let digraph_of_views () =
  let views = [| [| id 1; id 1 |]; [| id 0 |]; [||] |] in
  let g = Digraph.of_views ~n:3 (fun u -> views.(u)) in
  check_int "edges deduped" 2 (Digraph.edge_count g)

(* --- Metrics --- *)

let complete_graph n =
  Digraph.of_adjacency
    (Array.init n (fun u -> Array.init n (fun v -> v) |> Array.to_list
                            |> List.filter (fun v -> v <> u) |> Array.of_list))

let clustering_complete () =
  let g = complete_graph 5 in
  check_float "complete graph = 1" 1.0
    (Metrics.clustering_coefficient ~rng:(rng ()) ~is_malicious:no_malicious g)

let clustering_star () =
  (* Star: center 0 connected to 1..4, no edges among leaves. *)
  let g = Digraph.of_adjacency [| [| 1; 2; 3; 4 |]; [||]; [||]; [||]; [||] |] in
  check_float "star = 0" 0.0
    (Metrics.clustering_coefficient ~rng:(rng ()) ~is_malicious:no_malicious g)

let clustering_malicious_convention () =
  (* Star whose leaves are all malicious: the paper's convention assumes
     malicious nodes form a clique, so the correct center sees a fully
     connected neighborhood. *)
  let g = Digraph.of_adjacency [| [| 1; 2; 3; 4 |]; [||]; [||]; [||]; [||] |] in
  check_float "malicious clique assumed" 1.0
    (Metrics.clustering_coefficient ~rng:(rng ())
       ~is_malicious:(fun u -> u > 0)
       g)

let path_length_chain () =
  (* 0 -> 1 -> 2 -> 3: from each source distances to all reachable.
     Sum of distances: from 0: 1+2+3; from 1: 1+2; from 2: 1; total 10 over
     6 pairs. *)
  let g = Digraph.of_adjacency [| [| 1 |]; [| 2 |]; [| 3 |]; [||] |] in
  let mpl =
    Metrics.mean_path_length ~rng:(rng ()) ~is_malicious:no_malicious g
  in
  check_float "chain mpl" (10.0 /. 6.0) mpl

let path_length_skips_malicious () =
  (* 0 -> 1 -> 2 where 1 is malicious: 2 unreachable through correct
     nodes, so only no finite correct-to-correct paths exist -> nan. *)
  let g = Digraph.of_adjacency [| [| 1 |]; [| 2 |]; [||] |] in
  let mpl =
    Metrics.mean_path_length ~rng:(rng ()) ~is_malicious:(fun u -> u = 1) g
  in
  check_bool "no correct path" true (Float.is_nan mpl)

let reachable_fraction_cases () =
  let complete = complete_graph 4 in
  check_float "complete reaches all" 1.0
    (Metrics.reachable_fraction ~rng:(rng ()) ~is_malicious:no_malicious
       complete);
  let disconnected = Digraph.of_adjacency [| [||]; [||] |] in
  check_float "no edges reaches none" 0.0
    (Metrics.reachable_fraction ~rng:(rng ()) ~is_malicious:no_malicious
       disconnected)

let indegree_metrics () =
  (* Ring: every in-degree is 1 -> spread 0. *)
  let ring = Digraph.of_adjacency [| [| 1 |]; [| 2 |]; [| 3 |]; [| 0 |] |] in
  check_float "regular ring spread" 0.0
    (Metrics.indegree_decile_spread ~is_malicious:no_malicious ring);
  let deg = Metrics.indegrees_correct ~is_malicious:no_malicious ring in
  Alcotest.(check (array int)) "all ones" [| 1; 1; 1; 1 |] deg

let indegree_ignores_malicious_edges () =
  (* Edges from malicious node 0 must not count. *)
  let g = Digraph.of_adjacency [| [| 1; 2 |]; [| 2 |]; [||] |] in
  let deg = Metrics.indegrees_correct ~is_malicious:(fun u -> u = 0) g in
  Alcotest.(check (array int)) "only correct-to-correct" [| 0; 1 |] deg

(* --- Isolation --- *)

let isolation_cases () =
  let is_mal p = Node_id.to_int p >= 100 in
  check_bool "empty view isolated" true (Isolation.is_isolated ~is_malicious:is_mal [||]);
  check_bool "all malicious isolated" true
    (Isolation.is_isolated ~is_malicious:is_mal [| id 100; id 101 |]);
  check_bool "one correct saves" false
    (Isolation.is_isolated ~is_malicious:is_mal [| id 100; id 3 |])

let isolation_count_fraction () =
  let is_mal p = Node_id.to_int p >= 100 in
  let views = function
    | 0 -> [| id 100 |] (* isolated *)
    | 1 -> [| id 2 |] (* fine *)
    | _ -> [||] (* isolated *)
  in
  check_int "count" 2 (Isolation.count ~is_malicious:is_mal ~views ~correct:[ 0; 1; 2 ]);
  check_float "fraction" (2.0 /. 3.0)
    (Isolation.fraction ~is_malicious:is_mal ~views ~correct:[ 0; 1; 2 ]);
  check_float "empty correct" 0.0
    (Isolation.fraction ~is_malicious:is_mal ~views ~correct:[])

(* --- Components --- *)

let weak_components () =
  (* Two weakly connected islands: {0,1} and {2}. *)
  let g = Digraph.of_adjacency [| [| 1 |]; [||]; [||] |] in
  let labels = Components.weakly_connected g in
  check_int "two components" 2 (Components.count_components labels);
  check_bool "0 and 1 together" true (labels.(0) = labels.(1));
  check_bool "2 apart" true (labels.(2) <> labels.(0))

let weak_restrict () =
  (* Restricting away the bridge vertex splits the component. *)
  let g = Digraph.of_adjacency [| [| 1 |]; [| 2 |]; [||] |] in
  let labels = Components.weakly_connected ~restrict:(fun u -> u <> 1) g in
  check_int "bridge removed" 2 (Components.count_components labels);
  check_int "excluded labelled -1" (-1) labels.(1)

let largest_fraction () =
  let g = Digraph.of_adjacency [| [| 1 |]; [||]; [||]; [||] |] in
  check_float "2 of 4" 0.5 (Components.largest_component_fraction g)

let scc_cycle () =
  let g = Digraph.of_adjacency [| [| 1 |]; [| 2 |]; [| 0 |] |] in
  let labels = Components.strongly_connected g in
  check_int "one scc" 1 (Components.count_components labels)

let scc_dag () =
  let g = Digraph.of_adjacency [| [| 1 |]; [| 2 |]; [||] |] in
  let labels = Components.strongly_connected g in
  check_int "three sccs" 3 (Components.count_components labels)

let scc_mixed () =
  (* A 2-cycle {0,1} plus a tail 2 -> 0. *)
  let g = Digraph.of_adjacency [| [| 1 |]; [| 0 |]; [| 0 |] |] in
  let labels = Components.strongly_connected g in
  check_int "two sccs" 2 (Components.count_components labels);
  check_bool "cycle grouped" true (labels.(0) = labels.(1));
  check_bool "tail separate" true (labels.(2) <> labels.(0))

(* --- Generators --- *)

let gen_rng () = Basalt_prng.Rng.create ~seed:33

let generators_erdos_renyi () =
  let g = Generators.erdos_renyi (gen_rng ()) ~n:200 ~p:0.1 in
  check_int "n" 200 (Digraph.n g);
  (* Expected edges: n(n-1)p = 3980; allow 10%. *)
  let e = Digraph.edge_count g in
  check_bool (Printf.sprintf "edge count (%d)" e) true
    (abs (e - 3980) < 400);
  (* The clustering metric works on the undirected closure, where a pair
     is adjacent with probability 1 - (1-p)^2 = 2p - p^2. *)
  let cc =
    Metrics.clustering_coefficient ~rng:(gen_rng ()) ~is_malicious:no_malicious g
  in
  let expected = (2.0 *. 0.1) -. (0.1 *. 0.1) in
  check_bool
    (Printf.sprintf "clustering ~ 2p - p^2 (%.3f)" cc)
    true
    (Float.abs (cc -. expected) < 0.03);
  Alcotest.check_raises "p range"
    (Invalid_argument "Generators.erdos_renyi: p out of [0,1]") (fun () ->
      ignore (Generators.erdos_renyi (gen_rng ()) ~n:5 ~p:1.5))

let generators_k_out () =
  let g = Generators.k_out (gen_rng ()) ~n:100 ~k:8 in
  for u = 0 to 99 do
    check_int "out-degree k" 8 (Digraph.out_degree g u)
  done;
  (* k-out graphs are (overwhelmingly likely) weakly connected. *)
  Alcotest.(check (float 1e-9)) "connected" 1.0
    (Components.largest_component_fraction g);
  check_int "k clamps at n-1" 4 (Digraph.out_degree (Generators.k_out (gen_rng ()) ~n:5 ~k:10) 0)

let generators_ring () =
  let g = Generators.ring (gen_rng ()) ~n:10 in
  check_int "edges" 10 (Digraph.edge_count g);
  check_bool "is a cycle" true (Digraph.has_edge g 9 0);
  let mpl = Metrics.mean_path_length ~rng:(gen_rng ()) ~is_malicious:no_malicious g in
  (* Directed ring of n: mean distance = n/2 = 5. *)
  check_bool (Printf.sprintf "long paths (%.2f)" mpl) true (Float.abs (mpl -. 5.0) < 0.01);
  let g2 = Generators.ring ~shortcuts:30 (gen_rng ()) ~n:100 in
  let mpl_ring =
    Metrics.mean_path_length ~rng:(gen_rng ()) ~is_malicious:no_malicious
      (Generators.ring (gen_rng ()) ~n:100)
  in
  let mpl_sw = Metrics.mean_path_length ~rng:(gen_rng ()) ~is_malicious:no_malicious g2 in
  check_bool "shortcuts shrink paths" true (mpl_sw < mpl_ring)

let generators_preferential () =
  let g = Generators.preferential_attachment (gen_rng ()) ~n:300 ~out_degree:3 in
  check_int "n" 300 (Digraph.n g);
  (* Preferential attachment concentrates in-degree far more than k-out:
     compare the max in-degree. *)
  let max_in a = Array.fold_left max 0 a in
  let pa_max = max_in (Digraph.in_degrees g) in
  let ko_max =
    max_in (Digraph.in_degrees (Generators.k_out (gen_rng ()) ~n:300 ~k:3))
  in
  check_bool
    (Printf.sprintf "heavy tail (pa=%d vs kout=%d)" pa_max ko_max)
    true (pa_max > 2 * ko_max)

module Check = Basalt_check.Check

let prop_scc_refines_weak =
  Check.prop ~name:"SCCs refine weak components" ~count:100
    ~print:
      Check.Print.(list (pair int int))
    Check.Gen.(list ~max_len:30 (pair (nat ~max:9) (nat ~max:9)))
    (fun edges ->
      let adj = Array.make 10 [] in
      List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
      let g = Digraph.of_adjacency (Array.map Array.of_list adj) in
      let weak = Components.weakly_connected g in
      let scc = Components.strongly_connected g in
      (* Same SCC implies same weak component. *)
      let ok = ref true in
      for u = 0 to 9 do
        for v = 0 to 9 do
          if scc.(u) = scc.(v) && weak.(u) <> weak.(v) then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "dedup/self-loop" `Quick digraph_dedup_selfloop;
          Alcotest.test_case "out of range" `Quick digraph_out_of_range;
          Alcotest.test_case "in-degrees" `Quick digraph_in_degrees;
          Alcotest.test_case "transpose" `Quick digraph_transpose;
          Alcotest.test_case "has_edge" `Quick digraph_has_edge;
          Alcotest.test_case "undirected neighbors" `Quick
            digraph_undirected_neighbors;
          Alcotest.test_case "of_views" `Quick digraph_of_views;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "clustering complete" `Quick clustering_complete;
          Alcotest.test_case "clustering star" `Quick clustering_star;
          Alcotest.test_case "clustering malicious convention" `Quick
            clustering_malicious_convention;
          Alcotest.test_case "path length chain" `Quick path_length_chain;
          Alcotest.test_case "paths skip malicious" `Quick
            path_length_skips_malicious;
          Alcotest.test_case "reachable fraction" `Quick
            reachable_fraction_cases;
          Alcotest.test_case "indegree metrics" `Quick indegree_metrics;
          Alcotest.test_case "indegree ignores malicious" `Quick
            indegree_ignores_malicious_edges;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "cases" `Quick isolation_cases;
          Alcotest.test_case "count/fraction" `Quick isolation_count_fraction;
        ] );
      ( "components",
        [
          Alcotest.test_case "weak components" `Quick weak_components;
          Alcotest.test_case "weak restrict" `Quick weak_restrict;
          Alcotest.test_case "largest fraction" `Quick largest_fraction;
          Alcotest.test_case "scc cycle" `Quick scc_cycle;
          Alcotest.test_case "scc dag" `Quick scc_dag;
          Alcotest.test_case "scc mixed" `Quick scc_mixed;
          Check.to_alcotest ~suite:"components" prop_scc_refines_weak;
        ] );
      ( "generators",
        [
          Alcotest.test_case "erdos-renyi" `Quick generators_erdos_renyi;
          Alcotest.test_case "k-out" `Quick generators_k_out;
          Alcotest.test_case "ring" `Quick generators_ring;
          Alcotest.test_case "preferential attachment" `Quick
            generators_preferential;
        ] );
    ]
