(* Tests for basalt.engine: event queue, link models, DES engine. *)

open Basalt_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Event_queue --- *)

let queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string)))
    "first" (Some (1.0, "a")) (Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string)))
    "second" (Some (2.0, "b")) (Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string)))
    "third" (Some (3.0, "c")) (Event_queue.pop q);
  check_bool "drained" true (Event_queue.pop q = None)

let queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.push q ~time:1.0 s) [ "x"; "y"; "z" ];
  let order =
    List.init 3 (fun _ ->
        match Event_queue.pop q with Some (_, s) -> s | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ] order

let queue_size () =
  let q = Event_queue.create () in
  check_int "empty" 0 (Event_queue.size q);
  check_bool "is_empty" true (Event_queue.is_empty q);
  Event_queue.push q ~time:1.0 0;
  Event_queue.push q ~time:2.0 1;
  check_int "two" 2 (Event_queue.size q);
  ignore (Event_queue.pop q);
  check_int "one" 1 (Event_queue.size q)

let queue_peek () =
  let q = Event_queue.create () in
  check_bool "peek empty" true (Event_queue.peek_time q = None);
  Event_queue.push q ~time:5.0 ();
  Event_queue.push q ~time:2.0 ();
  Alcotest.(check (option (float 0.0))) "peek min" (Some 2.0)
    (Event_queue.peek_time q);
  check_int "peek does not remove" 2 (Event_queue.size q)

let queue_interleaved () =
  let q = Event_queue.create () in
  for i = 0 to 99 do
    Event_queue.push q ~time:(float_of_int (99 - i)) (99 - i)
  done;
  let prev = ref (-1.0) in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, v) ->
        check_bool "non-decreasing" true (t >= !prev);
        check_int "payload matches time" v (int_of_float t);
        prev := t;
        drain ()
  in
  drain ()

module Check = Basalt_check.Check
module Gen = Check.Gen
module Gens = Check.Gens
module Print = Check.Print

let prop_queue_sorted =
  Check.prop ~name:"pops are sorted by time" ~count:200
    ~print:(Print.list Print.float)
    (Gen.list ~max_len:60 (Gen.float_range 0.0 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain prev =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= prev && drain t
      in
      drain neg_infinity)

(* Model-based test: interleave pushes and pops, comparing against a
   sorted-list reference implementation (stable on ties). *)
let prop_queue_model =
  Check.prop ~name:"queue matches sorted-list reference" ~count:300
    ~print:(Print.list (Print.pair Print.bool Print.int))
    (Gen.list ~max_len:60 (Gen.pair Gen.bool (Gen.nat ~max:100)))
    (fun ops ->
      let q = Event_queue.create () in
      (* reference: list of (time, seq, value), kept sorted *)
      let reference = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_push, t) ->
          if is_push then begin
            let time = float_of_int t in
            Event_queue.push q ~time !seq;
            reference :=
              List.merge
                (fun (t1, s1, _) (t2, s2, _) ->
                  if t1 <> t2 then Float.compare t1 t2 else Int.compare s1 s2)
                !reference
                [ (time, !seq, !seq) ];
            incr seq
          end
          else begin
            match (Event_queue.pop q, !reference) with
            | None, [] -> ()
            | Some (t, v), (rt, _, rv) :: rest ->
                if t <> rt || v <> rv then ok := false;
                reference := rest
            | Some _, [] | None, _ :: _ -> ok := false
          end)
        ops;
      (* drain both *)
      let rec drain () =
        match (Event_queue.pop q, !reference) with
        | None, [] -> ()
        | Some (t, v), (rt, _, rv) :: rest ->
            if t <> rt || v <> rv then ok := false;
            reference := rest;
            drain ()
        | Some _, [] | None, _ :: _ -> ok := false
      in
      drain ();
      !ok)

(* --- Link models --- *)

let latency_models () =
  let rng = Basalt_prng.Rng.create ~seed:1 in
  check_float "zero" 0.0 (Link.Latency.sample Link.Latency.Zero rng);
  check_float "constant" 0.25 (Link.Latency.sample (Link.Latency.Constant 0.25) rng);
  for _ = 1 to 100 do
    let d = Link.Latency.sample (Link.Latency.Uniform { lo = 0.1; hi = 0.2 }) rng in
    check_bool "uniform in range" true (d >= 0.1 && d <= 0.2)
  done

let loss_models () =
  let rng = Basalt_prng.Rng.create ~seed:2 in
  for _ = 1 to 50 do
    check_bool "none never drops" false (Link.Loss.drops Link.Loss.None rng);
    check_bool "p=1 always drops" true
      (Link.Loss.drops (Link.Loss.Bernoulli 1.0) rng)
  done

(* --- Engine --- *)

let fresh_engine ?latency ?loss n : string Engine.t =
  let rng = Basalt_prng.Rng.create ~seed:7 in
  Engine.create ?latency ?loss ~rng ~n ()

let engine_delivery () =
  let e = fresh_engine 2 in
  let received = ref [] in
  Engine.register e 1 (fun ~from msg -> received := (from, msg) :: !received);
  Engine.send e ~src:0 ~dst:1 "hello";
  Engine.run_until e 1.0;
  Alcotest.(check (list (pair int string)))
    "delivered" [ (0, "hello") ] !received

let engine_unregistered_ok () =
  (* A message to a node with no handler is dropped on arrival: it is
     NOT counted as delivered (it never reached a handler) but shows up
     in the distinct [ignored] statistic. *)
  let e = fresh_engine 2 in
  Engine.send e ~src:0 ~dst:1 "void";
  Engine.run_until e 1.0;
  let s = Engine.stats e in
  check_int "not delivered" 0 s.Engine.delivered;
  check_int "counted ignored" 1 s.Engine.ignored;
  check_int "not dropped (it did arrive)" 0 s.Engine.dropped

let engine_out_of_range_register () =
  let e = fresh_engine 2 in
  Alcotest.check_raises "register out of range"
    (Invalid_argument "Engine.register: node out of range") (fun () ->
      Engine.register e 5 (fun ~from:_ _ -> ()))

let engine_timer_order () =
  let e = fresh_engine 1 in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.run_until e 3.0;
  Alcotest.(check (list string)) "timer order" [ "b"; "a" ] !log

let engine_negative_delay () =
  let e = fresh_engine 1 in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) ignore)

let engine_every_count () =
  let e = fresh_engine 1 in
  let count = ref 0 in
  Engine.every e ~interval:1.0 (fun () -> incr count);
  Engine.run_until e 10.5;
  check_int "fires once per interval" 10 !count;
  (* Events beyond the horizon stay queued: advancing further fires more. *)
  Engine.run_until e 12.5;
  check_int "resumes across horizons" 12 !count

let engine_every_phase () =
  let e = fresh_engine 1 in
  let first = ref Float.nan in
  Engine.every e ~phase:0.25 ~interval:1.0 (fun () ->
      if Float.is_nan !first then first := Engine.now e);
  Engine.run_until e 2.0;
  check_float "first firing at phase" 0.25 !first

let engine_every_invalid () =
  let e = fresh_engine 1 in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Engine.every: interval must be > 0") (fun () ->
      Engine.every e ~interval:0.0 ignore)

let engine_clock_advances () =
  let e = fresh_engine 1 in
  check_float "starts at 0" 0.0 (Engine.now e);
  Engine.run_until e 5.0;
  check_float "reaches horizon" 5.0 (Engine.now e)

let engine_message_before_next_round () =
  (* A message sent during a round-t timer must be delivered before a
     round t+1 timer (the zero-latency epsilon guarantee). *)
  let e = fresh_engine 2 in
  let log = ref [] in
  Engine.register e 1 (fun ~from:_ _ -> log := "deliver" :: !log);
  Engine.every e ~phase:1.0 ~interval:1.0 (fun () ->
      log := "round" :: !log;
      Engine.send e ~src:0 ~dst:1 "m");
  Engine.run_until e 2.5;
  Alcotest.(check (list string))
    "delivery interleaves rounds"
    [ "deliver"; "round"; "deliver"; "round" ]
    !log

let engine_step () =
  let e = fresh_engine 1 in
  check_bool "no events" false (Engine.step e);
  Engine.schedule e ~delay:1.0 ignore;
  check_bool "one event" true (Engine.step e);
  check_bool "drained" false (Engine.step e)

let engine_stats () =
  let e = fresh_engine 2 in
  Engine.register e 1 (fun ~from:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 "x";
  Engine.send e ~src:0 ~dst:1 "y";
  Engine.schedule e ~delay:0.5 ignore;
  Engine.run_until e 1.0;
  let s = Engine.stats e in
  check_int "sent" 2 s.Engine.sent;
  check_int "delivered" 2 s.Engine.delivered;
  check_int "dropped" 0 s.Engine.dropped;
  check_int "ignored" 0 s.Engine.ignored;
  check_int "events = deliveries + timers" 3 s.Engine.events

let engine_loss () =
  let e = fresh_engine ~loss:(Link.Loss.Bernoulli 1.0) 2 in
  Engine.register e 1 (fun ~from:_ _ -> Alcotest.fail "should be dropped");
  for _ = 1 to 10 do
    Engine.send e ~src:0 ~dst:1 "x"
  done;
  Engine.run_until e 1.0;
  let s = Engine.stats e in
  check_int "all dropped" 10 s.Engine.dropped;
  check_int "none delivered" 0 s.Engine.delivered

let engine_latency () =
  let e = fresh_engine ~latency:(Link.Latency.Constant 2.0) 2 in
  let arrival = ref Float.nan in
  Engine.register e 1 (fun ~from:_ _ -> arrival := Engine.now e);
  Engine.send e ~src:0 ~dst:1 "x";
  Engine.run_until e 1.0;
  check_bool "not yet delivered" true (Float.is_nan !arrival);
  Engine.run_until e 3.0;
  check_bool "delivered after latency" true (!arrival >= 2.0 && !arrival < 2.1)

let engine_n () =
  let e = fresh_engine 5 in
  check_int "n" 5 (Engine.n e)

(* --- schedule-invariant properties (DESIGN.md §9) --- *)

let print_latency = function
  | Link.Latency.Zero -> "Zero"
  | Link.Latency.Constant d -> Printf.sprintf "Constant %g" d
  | Link.Latency.Uniform { lo; hi } -> Printf.sprintf "Uniform{%g,%g}" lo hi

let print_loss = function
  | Link.Loss.None -> "None"
  | Link.Loss.Bernoulli p -> Printf.sprintf "Bernoulli %g" p

let print_schedule (s : Gens.schedule) =
  Printf.sprintf "{nodes=%d; registered=%s; sends=%s; horizon=%g}" s.Gens.nodes
    (Print.list Print.bool s.Gens.registered)
    (Print.list (Print.triple Print.float Print.int Print.int) s.Gens.sends)
    s.Gens.horizon

let workload_gen =
  Gen.triple (Gens.schedule ~max_nodes:8 ~max_sends:40) Gens.latency Gens.loss

let print_workload = Print.triple print_schedule print_latency print_loss

(* Replays a generated workload: per-node handlers where [registered],
   every send submitted from a timer at its scheduled time. *)
let run_workload ?(on_event = fun _e -> ()) (sched, latency, loss) =
  let rng = Basalt_prng.Rng.create ~seed:0xC4EC4 in
  let e : unit Engine.t =
    Engine.create ~latency ~loss ~rng ~n:sched.Gens.nodes ()
  in
  List.iteri
    (fun i registered ->
      if registered then Engine.register e i (fun ~from:_ () -> on_event e))
    sched.Gens.registered;
  List.iter
    (fun (t, src, dst) ->
      Engine.schedule e ~delay:t (fun () ->
          on_event e;
          Engine.send e ~src ~dst ()))
    sched.Gens.sends;
  Engine.run_until e sched.Gens.horizon;
  e

(* Message conservation: loss is decided at send time, an arrival
   without a handler is [ignored], everything else reaches a handler. *)
let prop_engine_conservation =
  Check.prop ~name:"sent = delivered + dropped + ignored" ~count:100
    ~print:print_workload workload_gen
    (fun ((sched, _, _) as w) ->
      let e = run_workload w in
      let s = Engine.stats e in
      s.Engine.sent = List.length sched.Gens.sends
      && s.Engine.sent = s.Engine.delivered + s.Engine.dropped + s.Engine.ignored)

(* Event accounting: every executed event is a timer firing or a
   message arrival (delivered or ignored); drops never consume an
   event because lost messages are never enqueued. *)
let prop_engine_event_accounting =
  Check.prop ~name:"events = timers + delivered + ignored" ~count:100
    ~print:print_workload workload_gen
    (fun ((sched, _, _) as w) ->
      let e = run_workload w in
      let s = Engine.stats e in
      let timers = List.length sched.Gens.sends in
      s.Engine.events = timers + s.Engine.delivered + s.Engine.ignored)

(* The virtual clock never runs backwards across any callback, and
   [run_until h] leaves the clock exactly at [h]. *)
let prop_engine_monotone_clock =
  Check.prop ~name:"clock is monotone and lands on the horizon" ~count:100
    ~print:print_workload workload_gen
    (fun ((sched, _, _) as w) ->
      let last = ref neg_infinity in
      let monotone = ref true in
      let e =
        run_workload w ~on_event:(fun e ->
            let t = Engine.now e in
            if t < !last then monotone := false;
            last := t)
      in
      !monotone && Engine.now e = sched.Gens.horizon)

let () =
  Alcotest.run "engine"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick queue_order;
          Alcotest.test_case "fifo ties" `Quick queue_fifo_ties;
          Alcotest.test_case "size" `Quick queue_size;
          Alcotest.test_case "peek" `Quick queue_peek;
          Alcotest.test_case "interleaved" `Quick queue_interleaved;
          Check.to_alcotest ~suite:"event_queue" prop_queue_sorted;
          Check.to_alcotest ~suite:"event_queue" prop_queue_model;
        ] );
      ( "link",
        [
          Alcotest.test_case "latency models" `Quick latency_models;
          Alcotest.test_case "loss models" `Quick loss_models;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivery" `Quick engine_delivery;
          Alcotest.test_case "unregistered dst" `Quick engine_unregistered_ok;
          Alcotest.test_case "register out of range" `Quick
            engine_out_of_range_register;
          Alcotest.test_case "timer order" `Quick engine_timer_order;
          Alcotest.test_case "negative delay" `Quick engine_negative_delay;
          Alcotest.test_case "every count" `Quick engine_every_count;
          Alcotest.test_case "every phase" `Quick engine_every_phase;
          Alcotest.test_case "every invalid" `Quick engine_every_invalid;
          Alcotest.test_case "clock advances" `Quick engine_clock_advances;
          Alcotest.test_case "message before next round" `Quick
            engine_message_before_next_round;
          Alcotest.test_case "step" `Quick engine_step;
          Alcotest.test_case "stats" `Quick engine_stats;
          Alcotest.test_case "loss" `Quick engine_loss;
          Alcotest.test_case "latency" `Quick engine_latency;
          Alcotest.test_case "n" `Quick engine_n;
        ] );
      Check.suite "schedule properties"
        [
          prop_engine_conservation;
          prop_engine_event_accounting;
          prop_engine_monotone_clock;
        ];
    ]
