(* Tests for basalt.engine: event queue, link models, DES engine. *)

open Basalt_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Event_queue --- *)

let queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string)))
    "first" (Some (1.0, "a")) (Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string)))
    "second" (Some (2.0, "b")) (Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) string)))
    "third" (Some (3.0, "c")) (Event_queue.pop q);
  check_bool "drained" true (Event_queue.pop q = None)

let queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.push q ~time:1.0 s) [ "x"; "y"; "z" ];
  let order =
    List.init 3 (fun _ ->
        match Event_queue.pop q with Some (_, s) -> s | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ] order

let queue_size () =
  let q = Event_queue.create () in
  check_int "empty" 0 (Event_queue.size q);
  check_bool "is_empty" true (Event_queue.is_empty q);
  Event_queue.push q ~time:1.0 0;
  Event_queue.push q ~time:2.0 1;
  check_int "two" 2 (Event_queue.size q);
  ignore (Event_queue.pop q);
  check_int "one" 1 (Event_queue.size q)

let queue_peek () =
  let q = Event_queue.create () in
  check_bool "peek empty" true (Event_queue.peek_time q = None);
  Event_queue.push q ~time:5.0 ();
  Event_queue.push q ~time:2.0 ();
  Alcotest.(check (option (float 0.0))) "peek min" (Some 2.0)
    (Event_queue.peek_time q);
  check_int "peek does not remove" 2 (Event_queue.size q)

let queue_interleaved () =
  let q = Event_queue.create () in
  for i = 0 to 99 do
    Event_queue.push q ~time:(float_of_int (99 - i)) (99 - i)
  done;
  let prev = ref (-1.0) in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, v) ->
        check_bool "non-decreasing" true (t >= !prev);
        check_int "payload matches time" v (int_of_float t);
        prev := t;
        drain ()
  in
  drain ()

module Check = Basalt_check.Check
module Gen = Check.Gen
module Gens = Check.Gens
module Print = Check.Print

let prop_queue_sorted =
  Check.prop ~name:"pops are sorted by time" ~count:200
    ~print:(Print.list Print.float)
    (Gen.list ~max_len:60 (Gen.float_range 0.0 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain prev =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= prev && drain t
      in
      drain neg_infinity)

(* Model-based test: interleave pushes and pops, comparing against a
   sorted-list reference implementation (stable on ties). *)
let prop_queue_model =
  Check.prop ~name:"queue matches sorted-list reference" ~count:300
    ~print:(Print.list (Print.pair Print.bool Print.int))
    (Gen.list ~max_len:60 (Gen.pair Gen.bool (Gen.nat ~max:100)))
    (fun ops ->
      let q = Event_queue.create () in
      (* reference: list of (time, seq, value), kept sorted *)
      let reference = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_push, t) ->
          if is_push then begin
            let time = float_of_int t in
            Event_queue.push q ~time !seq;
            reference :=
              List.merge
                (fun (t1, s1, _) (t2, s2, _) ->
                  if t1 <> t2 then Float.compare t1 t2 else Int.compare s1 s2)
                !reference
                [ (time, !seq, !seq) ];
            incr seq
          end
          else begin
            match (Event_queue.pop q, !reference) with
            | None, [] -> ()
            | Some (t, v), (rt, _, rv) :: rest ->
                if t <> rt || v <> rv then ok := false;
                reference := rest
            | Some _, [] | None, _ :: _ -> ok := false
          end)
        ops;
      (* drain both *)
      let rec drain () =
        match (Event_queue.pop q, !reference) with
        | None, [] -> ()
        | Some (t, v), (rt, _, rv) :: rest ->
            if t <> rt || v <> rv then ok := false;
            reference := rest;
            drain ()
        | Some _, [] | None, _ :: _ -> ok := false
      in
      drain ();
      !ok)

(* --- Link models --- *)

let latency_models () =
  let rng = Basalt_prng.Rng.create ~seed:1 in
  check_float "zero" 0.0 (Link.Latency.sample Link.Latency.Zero rng);
  check_float "constant" 0.25 (Link.Latency.sample (Link.Latency.Constant 0.25) rng);
  for _ = 1 to 100 do
    let d = Link.Latency.sample (Link.Latency.Uniform { lo = 0.1; hi = 0.2 }) rng in
    check_bool "uniform in range" true (d >= 0.1 && d <= 0.2)
  done

let loss_models () =
  let rng = Basalt_prng.Rng.create ~seed:2 in
  let none_st = Link.Loss.initial Link.Loss.None in
  let all = Link.Loss.Bernoulli 1.0 in
  let all_st = Link.Loss.initial all in
  for _ = 1 to 50 do
    check_bool "none never drops" false (Link.Loss.drops Link.Loss.None none_st rng);
    check_bool "p=1 always drops" true (Link.Loss.drops all all_st rng)
  done

let loss_gilbert_elliott () =
  let rng = Basalt_prng.Rng.create ~seed:3 in
  (* Degenerate chains pin the behaviour exactly: a chain stuck in the
     good state with good=0 never drops; stuck in bad with bad=1 always
     drops once it transitions (p_gb=1 moves there on the first step). *)
  let stuck_good =
    Link.Loss.Gilbert_elliott { p_gb = 0.0; p_bg = 0.0; good = 0.0; bad = 1.0 }
  in
  let st = Link.Loss.initial stuck_good in
  for _ = 1 to 50 do
    check_bool "stuck-good never drops" false
      (Link.Loss.drops stuck_good st rng)
  done;
  let stuck_bad =
    Link.Loss.Gilbert_elliott { p_gb = 1.0; p_bg = 0.0; good = 0.0; bad = 1.0 }
  in
  let st = Link.Loss.initial stuck_bad in
  for _ = 1 to 50 do
    check_bool "stuck-bad always drops" true
      (Link.Loss.drops stuck_bad st rng)
  done;
  (* Stationary loss of a balanced chain: pi_bad = p_gb/(p_gb+p_bg). *)
  let ge =
    Link.Loss.Gilbert_elliott
      { p_gb = 0.1; p_bg = 0.3; good = 0.0; bad = 0.8 }
  in
  check_float "mean loss" (0.1 /. 0.4 *. 0.8) (Link.Loss.mean_loss ge);
  let st = Link.Loss.initial ge in
  let n = 20_000 in
  let drops = ref 0 in
  for _ = 1 to n do
    if Link.Loss.drops ge st rng then incr drops
  done;
  let observed = float_of_int !drops /. float_of_int n in
  check_bool "empirical loss near stationary" true
    (Float.abs (observed -. Link.Loss.mean_loss ge) < 0.03)

(* --- Engine --- *)

let fresh_engine ?latency ?loss n : string Engine.t =
  let rng = Basalt_prng.Rng.create ~seed:7 in
  Engine.create ?latency ?loss ~rng ~n ()

let engine_delivery () =
  let e = fresh_engine 2 in
  let received = ref [] in
  Engine.register e 1 (fun ~from msg -> received := (from, msg) :: !received);
  Engine.send e ~src:0 ~dst:1 "hello";
  Engine.run_until e 1.0;
  Alcotest.(check (list (pair int string)))
    "delivered" [ (0, "hello") ] !received

let engine_unregistered_ok () =
  (* A message to a node with no handler is dropped on arrival: it is
     NOT counted as delivered (it never reached a handler) but shows up
     in the distinct [ignored] statistic. *)
  let e = fresh_engine 2 in
  Engine.send e ~src:0 ~dst:1 "void";
  Engine.run_until e 1.0;
  let s = Engine.stats e in
  check_int "not delivered" 0 s.Engine.delivered;
  check_int "counted ignored" 1 s.Engine.ignored;
  check_int "not dropped (it did arrive)" 0 s.Engine.dropped

let engine_out_of_range_register () =
  let e = fresh_engine 2 in
  Alcotest.check_raises "register out of range"
    (Invalid_argument "Engine.register: node out of range") (fun () ->
      Engine.register e 5 (fun ~from:_ _ -> ()))

let engine_timer_order () =
  let e = fresh_engine 1 in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.run_until e 3.0;
  Alcotest.(check (list string)) "timer order" [ "b"; "a" ] !log

let engine_negative_delay () =
  let e = fresh_engine 1 in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) ignore)

let engine_every_count () =
  let e = fresh_engine 1 in
  let count = ref 0 in
  Engine.every e ~interval:1.0 (fun () -> incr count);
  Engine.run_until e 10.5;
  check_int "fires once per interval" 10 !count;
  (* Events beyond the horizon stay queued: advancing further fires more. *)
  Engine.run_until e 12.5;
  check_int "resumes across horizons" 12 !count

let engine_every_phase () =
  let e = fresh_engine 1 in
  let first = ref Float.nan in
  Engine.every e ~phase:0.25 ~interval:1.0 (fun () ->
      if Float.is_nan !first then first := Engine.now e);
  Engine.run_until e 2.0;
  check_float "first firing at phase" 0.25 !first

let engine_every_invalid () =
  let e = fresh_engine 1 in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Engine.every: interval must be > 0") (fun () ->
      Engine.every e ~interval:0.0 ignore)

let engine_clock_advances () =
  let e = fresh_engine 1 in
  check_float "starts at 0" 0.0 (Engine.now e);
  Engine.run_until e 5.0;
  check_float "reaches horizon" 5.0 (Engine.now e)

let engine_message_before_next_round () =
  (* A message sent during a round-t timer must be delivered before a
     round t+1 timer (the zero-latency epsilon guarantee). *)
  let e = fresh_engine 2 in
  let log = ref [] in
  Engine.register e 1 (fun ~from:_ _ -> log := "deliver" :: !log);
  Engine.every e ~phase:1.0 ~interval:1.0 (fun () ->
      log := "round" :: !log;
      Engine.send e ~src:0 ~dst:1 "m");
  Engine.run_until e 2.5;
  Alcotest.(check (list string))
    "delivery interleaves rounds"
    [ "deliver"; "round"; "deliver"; "round" ]
    !log

let engine_step () =
  let e = fresh_engine 1 in
  check_bool "no events" false (Engine.step e);
  Engine.schedule e ~delay:1.0 ignore;
  check_bool "one event" true (Engine.step e);
  check_bool "drained" false (Engine.step e)

let engine_stats () =
  let e = fresh_engine 2 in
  Engine.register e 1 (fun ~from:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 "x";
  Engine.send e ~src:0 ~dst:1 "y";
  Engine.schedule e ~delay:0.5 ignore;
  Engine.run_until e 1.0;
  let s = Engine.stats e in
  check_int "sent" 2 s.Engine.sent;
  check_int "delivered" 2 s.Engine.delivered;
  check_int "dropped" 0 s.Engine.dropped;
  check_int "ignored" 0 s.Engine.ignored;
  check_int "events = deliveries + timers" 3 s.Engine.events

let engine_loss () =
  let e = fresh_engine ~loss:(Link.Loss.Bernoulli 1.0) 2 in
  Engine.register e 1 (fun ~from:_ _ -> Alcotest.fail "should be dropped");
  for _ = 1 to 10 do
    Engine.send e ~src:0 ~dst:1 "x"
  done;
  Engine.run_until e 1.0;
  let s = Engine.stats e in
  check_int "all dropped" 10 s.Engine.dropped;
  check_int "none delivered" 0 s.Engine.delivered

let engine_latency () =
  let e = fresh_engine ~latency:(Link.Latency.Constant 2.0) 2 in
  let arrival = ref Float.nan in
  Engine.register e 1 (fun ~from:_ _ -> arrival := Engine.now e);
  Engine.send e ~src:0 ~dst:1 "x";
  Engine.run_until e 1.0;
  check_bool "not yet delivered" true (Float.is_nan !arrival);
  Engine.run_until e 3.0;
  check_bool "delivered after latency" true (!arrival >= 2.0 && !arrival < 2.1)

let engine_n () =
  let e = fresh_engine 5 in
  check_int "n" 5 (Engine.n e)

(* --- fault plans --- *)

let fresh_faulty ?latency ?loss ~fault n : string Engine.t =
  let rng = Basalt_prng.Rng.create ~seed:7 in
  Engine.create ?latency ?loss ~fault ~rng ~n ()

let fault_none_is_legacy () =
  (* [Fault.none] must be indistinguishable from no plan at all, down to
     PRNG consumption: same seed, same jittered delivery times. *)
  let run fault =
    let rng = Basalt_prng.Rng.create ~seed:11 in
    let e : string Engine.t =
      Engine.create
        ~latency:(Link.Latency.Uniform { lo = 0.0; hi = 0.5 })
        ?fault ~rng ~n:2 ()
    in
    let times = ref [] in
    Engine.register e 1 (fun ~from:_ _ -> times := Engine.now e :: !times);
    for _ = 1 to 20 do
      Engine.send e ~src:0 ~dst:1 "x"
    done;
    Engine.run_until e 5.0;
    !times
  in
  Alcotest.(check (list (float 0.0)))
    "identical delivery times" (run None)
    (run (Some Fault.none))

let fault_partition () =
  let fault =
    Fault.make
      ~partitions:
        [ Fault.partition ~from_time:1.0 ~until_time:2.0 (fun i -> i = 0) ]
      ()
  in
  let e = fresh_faulty ~fault 2 in
  let got = ref 0 in
  Engine.register e 1 (fun ~from:_ _ -> incr got);
  (* Before, during and after the cut. *)
  Engine.schedule e ~delay:0.5 (fun () -> Engine.send e ~src:0 ~dst:1 "a");
  Engine.schedule e ~delay:1.5 (fun () -> Engine.send e ~src:0 ~dst:1 "b");
  Engine.schedule e ~delay:2.5 (fun () -> Engine.send e ~src:0 ~dst:1 "c");
  Engine.run_until e 5.0;
  let s = Engine.stats e in
  check_int "two crossed outside the window" 2 !got;
  check_int "one partition drop" 1 s.Engine.partition_drops;
  check_int "dropped includes the partition drop" 1 s.Engine.dropped

let fault_partition_same_side () =
  (* Nodes on the same side of the cut keep talking during the window. *)
  let fault =
    Fault.make
      ~partitions:
        [ Fault.partition ~from_time:0.0 ~until_time:10.0 (fun i -> i < 2) ]
      ()
  in
  let e = fresh_faulty ~fault 4 in
  let got = ref 0 in
  Engine.register e 1 (fun ~from:_ _ -> incr got);
  Engine.register e 3 (fun ~from:_ _ -> incr got);
  Engine.schedule e ~delay:1.0 (fun () ->
      Engine.send e ~src:0 ~dst:1 "same side";
      Engine.send e ~src:2 ~dst:3 "same side";
      Engine.send e ~src:0 ~dst:3 "across");
  Engine.run_until e 5.0;
  check_int "same-side delivered" 2 !got;
  check_int "cross-cut dropped" 1 (Engine.stats e).Engine.partition_drops

let fault_outage () =
  let fault =
    Fault.make ~outages:[ Fault.outage ~node:1 ~from_time:1.0 ~until_time:2.0 ] ()
  in
  let e = fresh_faulty ~fault 3 in
  let got = ref 0 in
  Engine.register e 1 (fun ~from:_ _ -> incr got);
  Engine.register e 2 (fun ~from:_ _ -> incr got);
  Engine.schedule e ~delay:1.5 (fun () ->
      Engine.send e ~src:0 ~dst:1 "to the downed node";
      Engine.send e ~src:1 ~dst:2 "from the downed node";
      Engine.send e ~src:0 ~dst:2 "bystanders");
  Engine.schedule e ~delay:2.5 (fun () ->
      Engine.send e ~src:0 ~dst:1 "after restart");
  Engine.run_until e 5.0;
  let s = Engine.stats e in
  check_int "bystander + post-restart delivered" 2 !got;
  check_int "both directions silenced" 2 s.Engine.partition_drops

let fault_duplication () =
  let fault = Fault.make ~base:(Fault.link ~dup:1.0 ()) () in
  let e = fresh_faulty ~fault 2 in
  let got = ref 0 in
  Engine.register e 1 (fun ~from:_ _ -> incr got);
  for _ = 1 to 10 do
    Engine.send e ~src:0 ~dst:1 "x"
  done;
  Engine.run_until e 5.0;
  let s = Engine.stats e in
  check_int "sent" 10 s.Engine.sent;
  check_int "every message duplicated" 10 s.Engine.dup;
  check_int "delivered twice each" 20 s.Engine.delivered;
  check_int "handler saw every copy" 20 !got

let fault_reorder () =
  (* With certain reordering over a window much wider than the base
     latency, consecutive sends overtake each other. *)
  let fault =
    Fault.make ~base:(Fault.link ~reorder:1.0 ~reorder_window:10.0 ()) ()
  in
  let e = fresh_faulty ~fault 2 in
  let order = ref [] in
  Engine.register e 1 (fun ~from:_ msg -> order := msg :: !order);
  for i = 1 to 20 do
    Engine.send e ~src:0 ~dst:1 (string_of_int i)
  done;
  Engine.run_until e 20.0;
  let s = Engine.stats e in
  check_int "every copy delayed" 20 s.Engine.reordered;
  check_int "all delivered" 20 s.Engine.delivered;
  check_bool "at least one overtake" true
    (List.rev !order <> List.init 20 (fun i -> string_of_int (i + 1)))

let fault_asymmetric () =
  (* A directed override makes 0→1 lossy while 1→0 stays clean. *)
  let fault =
    Fault.make
      ~directed:(fun ~src ~dst ->
        if src = 0 && dst = 1 then
          Some (Fault.link ~loss:(Link.Loss.Bernoulli 1.0) ())
        else None)
      ()
  in
  let e = fresh_faulty ~fault 2 in
  let got = ref [] in
  Engine.register e 0 (fun ~from:_ msg -> got := msg :: !got);
  Engine.register e 1 (fun ~from:_ msg -> got := msg :: !got);
  for _ = 1 to 5 do
    Engine.send e ~src:0 ~dst:1 "lost";
    Engine.send e ~src:1 ~dst:0 "ok"
  done;
  Engine.run_until e 5.0;
  check_int "only the clean direction delivered" 5 (List.length !got);
  check_bool "all survivors from 1 to 0" true
    (List.for_all (String.equal "ok") !got);
  check_int "lossy direction dropped" 5 (Engine.stats e).Engine.dropped

let fault_link_independence () =
  (* The fault schedule of link (0,1) is a pure function of the engine
     seed: injecting extra traffic on an unrelated link must not change
     which (0,1) messages drop or when the survivors arrive. *)
  let run ~extra_traffic =
    let fault =
      Fault.make
        ~base:
          (Fault.link ~loss:(Link.Loss.Bernoulli 0.4)
             ~latency:(Link.Latency.Uniform { lo = 0.0; hi = 0.3 })
             ())
        ()
    in
    let rng = Basalt_prng.Rng.create ~seed:42 in
    let e : string Engine.t = Engine.create ~fault ~rng ~n:4 () in
    let times = ref [] in
    Engine.register e 1 (fun ~from:_ _ -> times := Engine.now e :: !times);
    Engine.register e 3 (fun ~from:_ _ -> ());
    for _ = 1 to 30 do
      Engine.send e ~src:0 ~dst:1 "probe";
      if extra_traffic then Engine.send e ~src:2 ~dst:3 "noise"
    done;
    Engine.run_until e 5.0;
    !times
  in
  Alcotest.(check (list (float 0.0)))
    "(0,1) schedule independent of (2,3) traffic"
    (run ~extra_traffic:false)
    (run ~extra_traffic:true)

let fault_gilbert_elliott_burstiness () =
  (* A bursty channel with the same stationary loss as an independent
     one produces longer drop runs; check that bursts actually appear
     (a maximal run well above the i.i.d. expectation). *)
  let fault =
    Fault.make
      ~base:
        (Fault.link
           ~loss:
             (Link.Loss.Gilbert_elliott
                { p_gb = 0.05; p_bg = 0.2; good = 0.0; bad = 1.0 })
           ())
      ()
  in
  let e = fresh_faulty ~fault 2 in
  let outcomes = ref [] in
  Engine.register e 1 (fun ~from:_ _ -> ());
  for _ = 1 to 500 do
    let before = (Engine.stats e).Engine.dropped in
    Engine.send e ~src:0 ~dst:1 "x";
    let after = (Engine.stats e).Engine.dropped in
    outcomes := (after > before) :: !outcomes
  done;
  let longest, _ =
    List.fold_left
      (fun (best, cur) dropped ->
        if dropped then (max best (cur + 1), cur + 1) else (best, 0))
      (0, 0) (List.rev !outcomes)
  in
  check_bool "bursts of consecutive drops" true (longest >= 4)

(* --- schedule-invariant properties (DESIGN.md §9) --- *)

let print_latency = function
  | Link.Latency.Zero -> "Zero"
  | Link.Latency.Constant d -> Printf.sprintf "Constant %g" d
  | Link.Latency.Uniform { lo; hi } -> Printf.sprintf "Uniform{%g,%g}" lo hi

let print_loss = function
  | Link.Loss.None -> "None"
  | Link.Loss.Bernoulli p -> Printf.sprintf "Bernoulli %g" p
  | Link.Loss.Gilbert_elliott { p_gb; p_bg; good; bad } ->
      Printf.sprintf "GE{%g,%g;%g,%g}" p_gb p_bg good bad

let print_schedule (s : Gens.schedule) =
  Printf.sprintf "{nodes=%d; registered=%s; sends=%s; horizon=%g}" s.Gens.nodes
    (Print.list Print.bool s.Gens.registered)
    (Print.list (Print.triple Print.float Print.int Print.int) s.Gens.sends)
    s.Gens.horizon

let workload_gen =
  Gen.triple (Gens.schedule ~max_nodes:8 ~max_sends:40) Gens.latency Gens.loss

let print_workload = Print.triple print_schedule print_latency print_loss

(* Replays a generated workload: per-node handlers where [registered],
   every send submitted from a timer at its scheduled time. *)
let run_workload ?(on_event = fun _e -> ()) (sched, latency, loss) =
  let rng = Basalt_prng.Rng.create ~seed:0xC4EC4 in
  let e : unit Engine.t =
    Engine.create ~latency ~loss ~rng ~n:sched.Gens.nodes ()
  in
  List.iteri
    (fun i registered ->
      if registered then Engine.register e i (fun ~from:_ () -> on_event e))
    sched.Gens.registered;
  List.iter
    (fun (t, src, dst) ->
      Engine.schedule e ~delay:t (fun () ->
          on_event e;
          Engine.send e ~src ~dst ()))
    sched.Gens.sends;
  Engine.run_until e sched.Gens.horizon;
  e

(* Message conservation: loss is decided at send time, an arrival
   without a handler is [ignored], everything else reaches a handler. *)
let prop_engine_conservation =
  Check.prop ~name:"sent = delivered + dropped + ignored" ~count:100
    ~print:print_workload workload_gen
    (fun ((sched, _, _) as w) ->
      let e = run_workload w in
      let s = Engine.stats e in
      s.Engine.sent = List.length sched.Gens.sends
      && s.Engine.sent = s.Engine.delivered + s.Engine.dropped + s.Engine.ignored)

(* Event accounting: every executed event is a timer firing or a
   message arrival (delivered or ignored); drops never consume an
   event because lost messages are never enqueued. *)
let prop_engine_event_accounting =
  Check.prop ~name:"events = timers + delivered + ignored" ~count:100
    ~print:print_workload workload_gen
    (fun ((sched, _, _) as w) ->
      let e = run_workload w in
      let s = Engine.stats e in
      let timers = List.length sched.Gens.sends in
      s.Engine.events = timers + s.Engine.delivered + s.Engine.ignored)

(* The virtual clock never runs backwards across any callback, and
   [run_until h] leaves the clock exactly at [h]. *)
let prop_engine_monotone_clock =
  Check.prop ~name:"clock is monotone and lands on the horizon" ~count:100
    ~print:print_workload workload_gen
    (fun ((sched, _, _) as w) ->
      let last = ref neg_infinity in
      let monotone = ref true in
      let e =
        run_workload w ~on_event:(fun e ->
            let t = Engine.now e in
            if t < !last then monotone := false;
            last := t)
      in
      !monotone && Engine.now e = sched.Gens.horizon)

let () =
  Alcotest.run "engine"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick queue_order;
          Alcotest.test_case "fifo ties" `Quick queue_fifo_ties;
          Alcotest.test_case "size" `Quick queue_size;
          Alcotest.test_case "peek" `Quick queue_peek;
          Alcotest.test_case "interleaved" `Quick queue_interleaved;
          Check.to_alcotest ~suite:"event_queue" prop_queue_sorted;
          Check.to_alcotest ~suite:"event_queue" prop_queue_model;
        ] );
      ( "link",
        [
          Alcotest.test_case "latency models" `Quick latency_models;
          Alcotest.test_case "loss models" `Quick loss_models;
          Alcotest.test_case "gilbert-elliott" `Quick loss_gilbert_elliott;
        ] );
      ( "fault",
        [
          Alcotest.test_case "none is legacy" `Quick fault_none_is_legacy;
          Alcotest.test_case "partition" `Quick fault_partition;
          Alcotest.test_case "partition same side" `Quick
            fault_partition_same_side;
          Alcotest.test_case "outage" `Quick fault_outage;
          Alcotest.test_case "duplication" `Quick fault_duplication;
          Alcotest.test_case "reorder" `Quick fault_reorder;
          Alcotest.test_case "asymmetric" `Quick fault_asymmetric;
          Alcotest.test_case "link independence" `Quick
            fault_link_independence;
          Alcotest.test_case "gilbert-elliott bursts" `Quick
            fault_gilbert_elliott_burstiness;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivery" `Quick engine_delivery;
          Alcotest.test_case "unregistered dst" `Quick engine_unregistered_ok;
          Alcotest.test_case "register out of range" `Quick
            engine_out_of_range_register;
          Alcotest.test_case "timer order" `Quick engine_timer_order;
          Alcotest.test_case "negative delay" `Quick engine_negative_delay;
          Alcotest.test_case "every count" `Quick engine_every_count;
          Alcotest.test_case "every phase" `Quick engine_every_phase;
          Alcotest.test_case "every invalid" `Quick engine_every_invalid;
          Alcotest.test_case "clock advances" `Quick engine_clock_advances;
          Alcotest.test_case "message before next round" `Quick
            engine_message_before_next_round;
          Alcotest.test_case "step" `Quick engine_step;
          Alcotest.test_case "stats" `Quick engine_stats;
          Alcotest.test_case "loss" `Quick engine_loss;
          Alcotest.test_case "latency" `Quick engine_latency;
          Alcotest.test_case "n" `Quick engine_n;
        ] );
      Check.suite "schedule properties"
        [
          prop_engine_conservation;
          prop_engine_event_accounting;
          prop_engine_monotone_clock;
        ];
    ]
